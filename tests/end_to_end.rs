//! Cross-crate integration tests: the full world → measurement →
//! localization loop, its headline invariants, and the churn ablation.

use churnlab::study::{run_study, StudyConfig, StudyScale};
use churnlab::bgp::Granularity;
use churnlab::sat::Solvability;

fn smoke(seed: u64) -> StudyConfig {
    StudyConfig::preset(StudyScale::Smoke, seed)
}

#[test]
fn noise_free_localization_has_perfect_precision() {
    let mut cfg = smoke(101);
    cfg.platform.noise = churnlab::platform::NoiseConfig::none();
    cfg.censor.policy_change_prob = 0.0;
    let out = run_study(&cfg);
    assert!(out.report.n_censors > 0, "nothing identified");
    assert_eq!(
        out.validation.false_positives, 0,
        "noise-free runs must not accuse innocent ASes"
    );
    assert!((out.validation.precision - 1.0).abs() < 1e-9);
}

#[test]
fn identified_censors_lie_on_censored_paths() {
    let out = run_study(&smoke(102));
    for asn in out.results.identified_censors() {
        assert!(
            out.results.on_censored_path.contains(&asn),
            "{asn} identified but never observed on a censored path"
        );
    }
}

#[test]
fn churn_improves_solvability_end_to_end() {
    // Churn's benefit is measured on *localization power*, not the raw
    // unique-model fraction: an alternate censored path can introduce
    // ASes no clean path has exonerated yet, which inflates the model
    // count of a CNF (unique → multiple) even though the censor itself
    // stays backbone-definite. Counting CNFs that pin down at least one
    // definite censor — and the censors so identified — is monotone in
    // the observations each CNF holds, so suppressing churn can only
    // lose ground. The set-containment claim below needs a noise-free
    // run: noise can flip a CNF unsatisfiable or pin artifact censors,
    // which is why the scenario matrix downgrades it to recall
    // monotonicity on noisy cells.
    let mut cfg = smoke(103);
    cfg.platform.noise = churnlab::platform::NoiseConfig::none();
    cfg.censor.policy_change_prob = 0.0;
    let with_churn = run_study(&cfg);
    let without = run_study(&cfg.clone().without_churn());

    let localized = |out: &churnlab::core::pipeline::PipelineResults| {
        out.outcomes.iter().filter(|o| !o.censors.is_empty()).count()
    };
    let loc_with = localized(&with_churn.results);
    let loc_without = localized(&without.results);
    assert!(
        loc_with > loc_without,
        "churn must localize more CNFs: {loc_with} vs {loc_without}"
    );

    // Every censor identified without churn is still identified with it.
    let ids_with: std::collections::BTreeSet<_> =
        with_churn.results.identified_censors().into_iter().collect();
    let ids_without: std::collections::BTreeSet<_> =
        without.results.identified_censors().into_iter().collect();
    assert!(
        ids_without.is_subset(&ids_with),
        "suppressing churn must not identify censors churn misses: {ids_without:?} vs {ids_with:?}"
    );
}

#[test]
fn leakage_victims_are_foreign_and_upstream() {
    let out = run_study(&smoke(104));
    let topo = &out.world.topology;
    for (censor, victims) in &out.results.leakage.victim_countries_by_censor {
        let censor_country = topo.info_by_asn(*censor).expect("censor exists").country;
        for vc in victims {
            assert_ne!(
                vc,
                censor_country.as_str(),
                "cross-country victim list contains the censor's own country"
            );
        }
    }
}

#[test]
fn study_is_reproducible() {
    let a = run_study(&smoke(105));
    let b = run_study(&smoke(105));
    assert_eq!(a.dataset, b.dataset);
    assert_eq!(a.results.identified_censors(), b.results.identified_censors());
    assert_eq!(a.validation, b.validation);
}

#[test]
fn solvability_fractions_sum_to_one_per_granularity() {
    let out = run_study(&smoke(106));
    for g in Granularity::ALL {
        let f = out.results.solvability_fractions(Some(g), None);
        let sum: f64 = f.iter().sum();
        assert!(
            sum == 0.0 || (sum - 1.0).abs() < 1e-9,
            "fractions at {g} sum to {sum}"
        );
    }
}

#[test]
fn unsat_cnfs_never_name_censors() {
    let out = run_study(&smoke(107));
    for o in &out.results.outcomes {
        if o.solvability == Solvability::Unsat {
            assert!(o.censors.is_empty());
            assert!(o.potential_censors.is_empty());
        }
        if o.solvability == Solvability::Unique {
            assert!(!o.censors.is_empty(), "unique CNFs with positives name someone");
        }
    }
}

#[test]
fn reduction_fractions_bounded() {
    let out = run_study(&smoke(108));
    for v in out.results.reduction_values() {
        assert!((0.0..=1.0).contains(&v));
    }
}
