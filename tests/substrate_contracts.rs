//! Integration tests of the contracts between substrates: routing paths
//! feed flows, censors feed detectors, traceroutes feed conversion.

use churnlab::bgp::{ChurnConfig, RoutingSim};
use churnlab::censor::{CensorConfig, CensorshipScenario, Mechanism};
use churnlab::core::convert::{convert_measurement, ConversionStats};
use churnlab::platform::{Platform, PlatformConfig, PlatformScale};
use churnlab::topology::asys::AsRole;
use churnlab::topology::{generator, WorldConfig, WorldScale};

#[test]
fn converted_paths_are_real_routing_paths_when_noise_free() {
    let world = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 9));
    let mut ccfg = CensorConfig::scaled_for(world.topology.countries().len());
    ccfg.total_days = 60;
    let scenario = CensorshipScenario::generate_for_world(&world, &ccfg);
    let mut pcfg = PlatformConfig::preset(PlatformScale::Smoke, 9);
    pcfg.noise = churnlab::platform::NoiseConfig::none();
    let platform = Platform::new(&world, &scenario, pcfg.clone());
    let sim = RoutingSim::new(
        &world.topology,
        &ChurnConfig { total_days: pcfg.total_days, ..ChurnConfig::default() },
    );
    let (measurements, _) = platform.run_collect(&sim);
    let mut stats = ConversionStats::default();
    let mut checked = 0;
    for m in measurements.iter().take(500) {
        if let Some(path) = convert_measurement(m, platform.measured_ip2as(), &mut stats) {
            // The converted path must equal the oracle's routing path at
            // that epoch, as seen through the registry: the true source is
            // the vantage's *node* AS (an org PoP routes from its own
            // country), while every hop is reported under its public ASN.
            let vp = &platform.vantage_points()[m.vp_id as usize];
            assert_eq!(world.public_asn(vp.asn), m.vp_asn);
            let src = world.topology.idx(vp.asn).unwrap();
            let dst = world.topology.idx(m.dest_asn).unwrap();
            let oracle = sim.asn_path(src, dst, m.epoch).expect("measured ⇒ routable");
            let registry_view: Vec<_> =
                oracle.iter().map(|a| world.public_asn(*a)).collect();
            assert_eq!(path, registry_view, "conversion diverged from the true path");
            checked += 1;
        }
    }
    assert!(checked > 100, "too few conversions checked: {checked}");
}

#[test]
fn censoring_scenario_respects_world_structure() {
    let world = generator::generate(&WorldConfig::preset(WorldScale::Small, 9));
    let cfg = CensorConfig::scaled_for(world.topology.countries().len());
    let scenario = CensorshipScenario::generate_for_world(&world, &cfg);
    for p in &scenario.policies {
        assert!(
            world.topology.info_by_asn(p.asn).is_some(),
            "policy references unknown AS {}",
            p.asn
        );
        assert!(!p.mechanisms.is_empty());
        p.validate(cfg.total_days).expect("schedule valid");
    }
    // At least one heavy-country censor is a transit AS (leakage feedstock)…
    assert!(scenario.policies.iter().any(|p| {
        let role = world.topology.info_by_asn(p.asn).unwrap().role;
        matches!(role, AsRole::NationalTransit | AsRole::RegionalIsp)
    }));
    // …and at least one is a hosting (content) stub with a single mechanism
    // (the VPN-exit filtering population).
    assert!(scenario.policies.iter().any(|p| {
        let info = world.topology.info_by_asn(p.asn).unwrap();
        info.role == AsRole::Stub && p.mechanisms.len() == 1
    }) || scenario.policies.iter().any(|p| p.mechanisms == vec![Mechanism::Blockpage]
        || p.mechanisms == vec![Mechanism::RstInjection]));
}

#[test]
fn platform_dataset_shape_matches_config() {
    let world = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 10));
    let mut ccfg = CensorConfig::scaled_for(world.topology.countries().len());
    ccfg.total_days = 60;
    let scenario = CensorshipScenario::generate_for_world(&world, &ccfg);
    let pcfg = PlatformConfig::preset(PlatformScale::Smoke, 10);
    let platform = Platform::new(&world, &scenario, pcfg.clone());
    let sim = RoutingSim::new(
        &world.topology,
        &ChurnConfig { total_days: pcfg.total_days, ..ChurnConfig::default() },
    );
    let (_, stats) = platform.run_collect(&sim);
    assert_eq!(stats.unique_urls, platform.corpus().len());
    // VP ASes count *registered* ASNs: hosting-org exits collapse onto
    // their org's public ASN (the paper's ~1,000 VPs in 539 ASes).
    let mut public: Vec<_> =
        platform.vantage_points().iter().map(|v| v.public_asn).collect();
    public.sort();
    public.dedup();
    assert_eq!(stats.vp_ases, public.len());
    assert!(stats.vp_ases <= platform.vantage_points().len());
    assert_eq!(
        stats.measurements,
        platform.vantage_points().len() as u64
            * platform.corpus().len() as u64
            * u64::from(pcfg.tests_per_pair)
    );
}
