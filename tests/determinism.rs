//! Determinism contract: a study is a pure function of its config.
//!
//! The serialization layer is deterministic by construction (struct
//! fields serialize in declaration order, hash containers sort their
//! entries), so byte-comparing serialized outputs is a strict equality
//! check over everything the report contains.

use churnlab::study::{run_study, StudyConfig, StudyScale};

#[test]
fn same_seed_yields_byte_identical_reports() {
    let cfg = StudyConfig::preset(StudyScale::Smoke, 5);
    let a = run_study(&cfg);
    let b = run_study(&cfg);

    let report_a = serde_json::to_string(&a.report).expect("report serializes");
    let report_b = serde_json::to_string(&b.report).expect("report serializes");
    assert_eq!(report_a, report_b, "same config must reproduce the same report bytes");

    let dataset_a = serde_json::to_string(&a.dataset).expect("dataset serializes");
    let dataset_b = serde_json::to_string(&b.dataset).expect("dataset serializes");
    assert_eq!(dataset_a, dataset_b, "same config must reproduce the same dataset stats");

    let val_a = serde_json::to_string(&a.validation).expect("validation serializes");
    let val_b = serde_json::to_string(&b.validation).expect("validation serializes");
    assert_eq!(val_a, val_b, "same config must reproduce the same validation scores");

    assert_eq!(
        a.results.identified_censors(),
        b.results.identified_censors(),
        "same config must identify the same censors"
    );
}

#[test]
fn distinct_seeds_yield_distinct_worlds() {
    let a = run_study(&StudyConfig::preset(StudyScale::Smoke, 5));
    let b = run_study(&StudyConfig::preset(StudyScale::Smoke, 6));

    // The topologies themselves must differ (different AS populations or
    // wiring), not merely downstream statistics.
    let asns_a: Vec<_> = a.world.topology.ases().iter().map(|i| (i.asn, i.country)).collect();
    let asns_b: Vec<_> = b.world.topology.ases().iter().map(|i| (i.asn, i.country)).collect();
    assert_ne!(asns_a, asns_b, "seeds 5 and 6 generated identical topologies");

    let report_a = serde_json::to_string(&a.report).expect("report serializes");
    let report_b = serde_json::to_string(&b.report).expect("report serializes");
    assert_ne!(report_a, report_b, "distinct seeds produced byte-identical reports");
}

#[test]
fn config_roundtrips_through_json() {
    // StudyConfig is the reproducibility token: persisting and reloading
    // it must preserve every knob.
    let cfg = StudyConfig::preset(StudyScale::Small, 99);
    let text = serde_json::to_string(&cfg).expect("config serializes");
    let back: StudyConfig = serde_json::from_str(&text).expect("config parses");
    assert_eq!(back, cfg);
}
