//! # churnlab
//!
//! A reproduction of **"A Churn for the Better: Localizing Censorship
//! using Network-level Path Churn and Network Tomography"** (Cho,
//! Nithyanand, Razaghpanah, Gill — CoNExT 2017), as a complete simulated
//! stack: a synthetic Internet with Gao–Rexford routing and BGP-style path
//! churn, packet-level censors, an ICLab-style measurement platform with
//! honest anomaly detectors, a from-scratch SAT toolkit, and the boolean
//! network tomography pipeline that localizes censoring ASes and their
//! cross-border leakage.
//!
//! Quick start (see `examples/quickstart.rs`):
//!
//! ```
//! use churnlab::study::{run_study, StudyConfig, StudyScale};
//!
//! let out = run_study(&StudyConfig::preset(StudyScale::Smoke, 42));
//! println!("identified {} censoring ASes", out.report.n_censors);
//! assert!(out.validation.precision > 0.5);
//! ```
//!
//! The crates re-exported below are usable independently:
//!
//! * [`topology`] — AS graph, countries, prefixes, IP-to-AS mapping.
//! * [`bgp`] — valley-free routing + churn event process.
//! * [`net`] — IPv4/TCP/UDP/DNS wire formats, flows, traceroute.
//! * [`censor`] — censorship policies and injection mechanics.
//! * [`platform`] — the measurement platform (ICLab analogue).
//! * [`sat`] — DPLL, AllSAT, backbones, DIMACS.
//! * [`core`] — the tomography pipeline (the paper's contribution).
//! * [`engine`] — the sharded, order-independent, incremental streaming
//!   engine (production-shaped counterpart of `core`'s batch pipeline).
//! * [`interop`] — record import/export (OONI-style JSONL, CAIDA
//!   prefix2as) feeding external datasets into the same pipeline.

pub use churnlab_bgp as bgp;
pub use churnlab_censor as censor;
pub use churnlab_core as core;
pub use churnlab_engine as engine;
pub use churnlab_interop as interop;
pub use churnlab_net as net;
pub use churnlab_platform as platform;
pub use churnlab_sat as sat;
pub use churnlab_topology as topology;

pub mod study {
    //! One-call end-to-end studies: world → censors → measurements →
    //! localization → validation.

    use crate::bgp::{ChurnConfig, RoutingSim};
    use crate::censor::{CensorConfig, CensorshipScenario};
    use crate::core::pipeline::{ChurnMode, Pipeline, PipelineConfig, PipelineResults};
    use crate::core::report::CensorshipReport;
    use crate::core::validate::{validate, ValidationReport};
    use crate::platform::{DatasetStats, Platform, PlatformConfig, PlatformScale};
    use crate::topology::{generator, GeneratedWorld, WorldConfig, WorldScale};
    use serde::{Deserialize, Serialize};

    /// Study size presets.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
    pub enum StudyScale {
        /// Seconds: unit-test sized.
        Smoke,
        /// Tens of seconds: integration/experiment sized.
        Small,
        /// Minutes: the paper-scale configuration (774 URLs, ~539 vantage
        /// ASes, ~5M measurements).
        Paper,
    }

    /// Full configuration of a study.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct StudyConfig {
        /// World generation.
        pub world: WorldConfig,
        /// Censorship layout.
        pub censor: CensorConfig,
        /// Measurement platform.
        pub platform: PlatformConfig,
        /// Churn process.
        pub churn: ChurnConfig,
        /// Tomography pipeline.
        pub pipeline: PipelineConfig,
    }

    impl StudyConfig {
        /// A coherent preset: all sub-configs share the measurement period
        /// and derive their seeds from `seed`.
        pub fn preset(scale: StudyScale, seed: u64) -> StudyConfig {
            let (wscale, pscale) = match scale {
                StudyScale::Smoke => (WorldScale::Smoke, PlatformScale::Smoke),
                StudyScale::Small => (WorldScale::Small, PlatformScale::Small),
                StudyScale::Paper => (WorldScale::Paper, PlatformScale::Paper),
            };
            let world = WorldConfig::preset(wscale, seed);
            let platform = PlatformConfig::preset(pscale, seed.wrapping_add(1));
            let mut censor = CensorConfig::scaled_for(world.n_countries);
            censor.seed = seed.wrapping_add(2);
            censor.total_days = platform.total_days;
            let churn = ChurnConfig {
                seed: seed.wrapping_add(3),
                total_days: platform.total_days,
                ..ChurnConfig::default()
            };
            let pipeline = PipelineConfig::paper(platform.total_days);
            StudyConfig { world, censor, platform, churn, pipeline }
        }

        /// Switch the pipeline into the Figure-4 no-churn ablation.
        pub fn without_churn(mut self) -> Self {
            self.pipeline.churn_mode = ChurnMode::FirstPathOnly;
            self
        }
    }

    /// Everything a study produces.
    pub struct StudyOutput {
        /// The generated world (topology, prefixes, ground-truth IP-to-AS).
        pub world: GeneratedWorld,
        /// The censorship ground truth.
        pub scenario: CensorshipScenario,
        /// Table-1-style dataset statistics.
        pub dataset: DatasetStats,
        /// Full pipeline results (per-CNF outcomes, churn, leakage…).
        pub results: PipelineResults,
        /// Assembled Table-2/3/Figure-5 report.
        pub report: CensorshipReport,
        /// Ground-truth scoring.
        pub validation: ValidationReport,
    }

    /// Run a complete study: generate the world and censors, run the
    /// measurement campaign, localize, validate.
    pub fn run_study(cfg: &StudyConfig) -> StudyOutput {
        let world = generator::generate(&cfg.world);
        let scenario = CensorshipScenario::generate_for_world(&world, &cfg.censor);
        let dataset;
        let results;
        {
            let platform = Platform::new(&world, &scenario, cfg.platform.clone());
            let sim = RoutingSim::new(&world.topology, &cfg.churn);
            let mut pipeline = Pipeline::new(&platform, cfg.pipeline.clone());
            dataset = platform.run(&sim, |m| pipeline.ingest(&m));
            results = pipeline.finish();
        }
        let report = CensorshipReport::assemble(&results, &world.topology);
        let identified = results.censor_findings.keys().copied().collect();
        let validation =
            validate(&identified, &scenario, &results.on_censored_path, |a| world.public_asn(a));
        StudyOutput { world, scenario, dataset, results, report, validation }
    }
}

#[cfg(test)]
mod tests {
    use super::study::*;

    #[test]
    fn smoke_study_end_to_end() {
        let out = run_study(&StudyConfig::preset(StudyScale::Smoke, 7));
        assert!(out.dataset.measurements > 0);
        assert!(out.report.n_censors > 0, "no censors identified");
        assert!(
            out.validation.precision > 0.8,
            "precision {} too low",
            out.validation.precision
        );
    }
}
