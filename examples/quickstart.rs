//! Quickstart: build a small world, run a measurement campaign, localize
//! the censors, and check the result against ground truth.
//!
//! Run with: `cargo run --release --example quickstart`

use churnlab::study::{run_study, StudyConfig, StudyScale};

fn main() {
    // A coherent preset: synthetic Internet + censors + ICLab-style
    // platform + churn process + tomography pipeline, all from one seed.
    let cfg = StudyConfig::preset(StudyScale::Smoke, 42);
    let out = run_study(&cfg);

    println!(
        "world: {} ASes in {} countries, {} true censors",
        out.world.topology.n_ases(),
        out.world.topology.countries().len(),
        out.scenario.censoring_asns().len(),
    );
    println!(
        "dataset: {} measurements, {} anomalies",
        out.dataset.measurements,
        out.dataset.total_anomalies(),
    );
    println!(
        "localization: {} censoring ASes identified in {} countries",
        out.report.n_censors, out.report.n_countries,
    );
    for row in out.report.regions.iter().take(5) {
        let ases: Vec<String> = row.ases.iter().map(|a| a.to_string()).collect();
        println!("  {} -> {} [{}]", row.country, ases.join(", "), row.anomalies.join(","));
    }
    println!(
        "ground truth: precision {:.2}, observable recall {:.2}",
        out.validation.precision, out.validation.observable_recall,
    );
}
