//! Path-churn anatomy for a single (vantage, destination) pair: dump the
//! AS path over time, count distinct paths per window, and show how each
//! extra distinct path shrinks a hypothetical censor candidate set.
//!
//! Run with: `cargo run --release --example churn_study`

use churnlab::bgp::{ChurnConfig, Granularity, RoutingSim, TimeWindow};
use churnlab::topology::asys::AsRole;
use churnlab::topology::{generator, WorldConfig, WorldScale};
use std::collections::HashSet;

fn main() {
    let world = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 11));
    let churn = ChurnConfig { total_days: 365, ..ChurnConfig::default() };
    let sim = RoutingSim::new(&world.topology, &churn);

    let stubs = world.topology.select(|a| a.role == AsRole::Stub);
    let (src, dst) = (stubs[0], stubs[stubs.len() - 1]);
    println!(
        "pair: {} -> {}",
        world.topology.asn(src),
        world.topology.asn(dst)
    );

    // Sample one path per day (two epochs apart) for a year.
    let mut distinct: Vec<Vec<_>> = Vec::new();
    let mut per_window: [HashSet<u64>; 4] = Default::default();
    let mapper = sim.mapper();
    for day in 0..365u32 {
        for slot in [1, 4] {
            let epoch = mapper.epoch(day, slot);
            if let Some(path) = sim.asn_path(src, dst, epoch) {
                let hash = churnlab::core::churnstats::path_hash(&path);
                for (i, g) in Granularity::ALL.iter().enumerate() {
                    // Track distinct paths within the *current* windows only
                    // (day 0's window for simplicity of display).
                    if TimeWindow::of(day, *g, 365).index
                        == TimeWindow::of(0, *g, 365).index
                    {
                        per_window[i].insert(hash);
                    }
                }
                if !distinct.contains(&path) {
                    println!(
                        "day {:>3}: new path #{}: {}",
                        day,
                        distinct.len() + 1,
                        path.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(" -> ")
                    );
                    distinct.push(path);
                }
            }
        }
    }
    println!("\ndistinct AS-level paths over the year: {}", distinct.len());
    for (i, g) in Granularity::ALL.iter().enumerate() {
        println!("distinct paths within the first {}: {}", g.label(), per_window[i].len());
    }

    // How the candidate set shrinks: pretend the first path was censored,
    // every other path clean — each additional clean path eliminates its
    // member ASes.
    if distinct.len() > 1 {
        let censored: HashSet<_> = distinct[0].iter().copied().collect();
        let mut candidates = censored.clone();
        println!("\ncensor candidates if path #1 was censored and later paths were clean:");
        println!("  start: {} candidates", candidates.len());
        for (i, p) in distinct.iter().enumerate().skip(1) {
            for asn in p {
                candidates.remove(asn);
            }
            println!("  after clean path #{}: {} candidates", i + 1, candidates.len());
        }
    }
}
