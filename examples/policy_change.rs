//! Demonstrates the paper's §3.2 UNSAT mechanism: a censorship policy that
//! turns on mid-window makes the same path observe both "censored" and
//! "clean" — day CNFs around the flip stay solvable, the coarse window
//! containing the flip goes unsatisfiable.
//!
//! Run with: `cargo run --release --example policy_change`

use churnlab::bgp::{Granularity, TimeWindow};
use churnlab::core::analyze::{analyze, SolveConfig};
use churnlab::core::instance::{InstanceBuilder, InstanceKey};
use churnlab::platform::AnomalyType;
use churnlab::topology::Asn;

fn main() {
    // One vantage point's path to a URL, measured daily over a month.
    let path = [Asn(64512), Asn(3320), Asn(4134), Asn(9808)];
    let censor_turns_on_at_day = 14u32;

    let build = |granularity: Granularity, window_of_day: u32| {
        let window = TimeWindow::of(window_of_day, granularity, 30);
        let key = InstanceKey { url_id: 0, anomaly: AnomalyType::Reset, window };
        let mut b = InstanceBuilder::new(key);
        for day in 0..30u32 {
            if TimeWindow::of(day, granularity, 30) != window {
                continue;
            }
            let censored = day >= censor_turns_on_at_day;
            b.observe(&path, censored);
        }
        b.build().expect("window has observations")
    };

    println!("policy flips ON at day {censor_turns_on_at_day}; same path measured daily\n");
    for day in [2u32, 13, 14, 20] {
        let inst = build(Granularity::Day, day);
        let out = analyze(&inst, &SolveConfig::default());
        println!(
            "day {:>2} CNF: {} solutions ({:?} potential censors)",
            day,
            out.solvability,
            out.potential_censors.len()
        );
    }
    let month = build(Granularity::Month, 0);
    let out = analyze(&month, &SolveConfig::default());
    println!(
        "\nmonth CNF spanning the flip: {} solutions — {}",
        out.solvability,
        if out.solvability == churnlab::sat::Solvability::Unsat {
            "unsatisfiable, exactly as §3.2 predicts for policy churn"
        } else {
            "unexpected!"
        }
    );
}
