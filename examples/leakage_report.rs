//! Paper-style end-to-end report: Tables 2 and 3 plus the Figure-5 flow
//! summary, with ground-truth scoring the real paper could not do.
//!
//! Run with: `cargo run --release --example leakage_report`
//! (use `--example leakage_report -- small` for a bigger world)

use churnlab::study::{run_study, StudyConfig, StudyScale};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("small") => StudyScale::Small,
        _ => StudyScale::Smoke,
    };
    eprintln!("running {scale:?}-scale study…");
    let out = run_study(&StudyConfig::preset(scale, 7));

    println!("== Regions with most censoring ASes (Table 2 analogue) ==");
    print!("{}", out.report.render_table2(8));
    println!();
    println!("== Top leaking censors (Table 3 analogue) ==");
    print!("{}", out.report.render_table3(5));
    println!(
        "censors leaking to other ASes: {}, to other countries: {}",
        out.report.leaking_to_ases, out.report.leaking_to_countries,
    );
    println!();
    println!("== Censorship flow (Figure 5 analogue) ==");
    print!("{}", out.report.render_flow(10));
    println!();
    println!("== Validation against simulation ground truth ==");
    println!(
        "identified {} censors; {} true, {} false; precision {:.2}; observable recall {:.2}",
        out.validation.identified,
        out.validation.true_positives,
        out.validation.false_positives,
        out.validation.precision,
        out.validation.observable_recall,
    );
}
