//! Exports a real tomography instance to DIMACS CNF and re-imports it —
//! the interop path for running churnlab instances through an actual
//! off-the-shelf SAT solver (MiniSat, kissat, …), exactly as the paper
//! did.
//!
//! Run with: `cargo run --release --example dimacs_export`

use churnlab::bgp::{Granularity, TimeWindow};
use churnlab::core::instance::{InstanceBuilder, InstanceKey};
use churnlab::platform::AnomalyType;
use churnlab::sat::{census, Cnf};
use churnlab::topology::Asn;

fn main() {
    // The paper's worked example shape: censored path X→Y→Z plus clean
    // observations from churned paths.
    let key = InstanceKey {
        url_id: 7,
        anomaly: AnomalyType::Dns,
        window: TimeWindow::of(12, Granularity::Day, 365),
    };
    let mut b = InstanceBuilder::new(key);
    b.observe(&[Asn(701), Asn(1299), Asn(4134)], true); // X→Y→Z censored
    b.observe(&[Asn(701), Asn(1299), Asn(2914)], false); // clean via another egress
    b.observe(&[Asn(6453), Asn(1299), Asn(2914)], false);
    let inst = b.build().expect("non-empty");

    let dimacs = inst.cnf.to_dimacs();
    println!("-- variable map --");
    for (i, asn) in inst.asn_of.iter().enumerate() {
        println!("v{} = {}", i + 1, asn);
    }
    println!("\n-- DIMACS --\n{dimacs}");

    // Round-trip and solve.
    let back = Cnf::from_dimacs(&dimacs).expect("own output parses");
    assert_eq!(back, inst.cnf);
    let result = census(&back, 64);
    println!("solutions: {:?}", result.count);
    if let Some(model) = &result.unique_model {
        let censors: Vec<String> = model
            .iter()
            .enumerate()
            .filter(|(_, t)| **t)
            .map(|(i, _)| inst.asn_of[i].to_string())
            .collect();
        println!("unique model names the censor: {}", censors.join(", "));
    }
    let path = std::env::temp_dir().join("churnlab_instance.cnf");
    std::fs::write(&path, &dimacs).expect("write dimacs");
    println!("\nwrote {} (feed it to any DIMACS solver)", path.display());
}
