//! Checkpoint/restore acceptance: an engine checkpointed mid-stream,
//! torn down, restored in a "new process" (a fresh engine built only
//! from the checkpoint bytes), and fed the rest of the stream produces a
//! [`churnlab_core::report::CanonicalReport`] **byte-identical** to the
//! uninterrupted run's — across shard counts, seeds, churn modes, with
//! retirement active, and with unflushed feeder tails at the cut.

use std::io::Cursor;

use churnlab_bgp::{ChurnConfig, RoutingSim};
use churnlab_censor::{CensorConfig, CensorshipScenario};
use churnlab_core::pipeline::{ChurnMode, PipelineConfig, PipelineResults};
use churnlab_engine::{Engine, EngineConfig, RestoreError};
use churnlab_platform::{Measurement, Platform, PlatformConfig, PlatformScale};
use churnlab_topology::{generator, GeneratedWorld, WorldConfig, WorldScale};

struct Study {
    world: GeneratedWorld,
    scenario: CensorshipScenario,
    platform_cfg: PlatformConfig,
    churn_cfg: ChurnConfig,
}

fn study(seed: u64) -> Study {
    let world = generator::generate(&WorldConfig::preset(WorldScale::Smoke, seed));
    let mut censor_cfg = CensorConfig::scaled_for(world.topology.countries().len());
    censor_cfg.seed = seed.wrapping_add(2);
    let platform_cfg = PlatformConfig::preset(PlatformScale::Smoke, seed.wrapping_add(1));
    censor_cfg.total_days = platform_cfg.total_days;
    let scenario = CensorshipScenario::generate_for_world(&world, &censor_cfg);
    let churn_cfg = ChurnConfig {
        seed: seed.wrapping_add(3),
        total_days: platform_cfg.total_days,
        ..ChurnConfig::default()
    };
    Study { world, scenario, platform_cfg, churn_cfg }
}

fn measurements(s: &Study) -> (Platform<'_>, Vec<Measurement>) {
    let platform = Platform::new(&s.world, &s.scenario, s.platform_cfg.clone());
    let sim = RoutingSim::new(&s.world.topology, &s.churn_cfg);
    let (ms, _) = platform.run_collect(&sim);
    (platform, ms)
}

fn engine_cfg(
    platform: &Platform<'_>,
    mode: ChurnMode,
    shards: usize,
    horizon: Option<u32>,
) -> EngineConfig {
    let mut cfg = PipelineConfig::paper(platform.config().total_days);
    cfg.churn_mode = mode;
    let mut ecfg = EngineConfig::new(cfg).with_shards(shards);
    ecfg.window_horizon = horizon;
    ecfg
}

fn canonical_json(r: &PipelineResults) -> String {
    serde_json::to_string(&r.canonical_report()).expect("canonical report serializes")
}

/// Run the whole stream through one engine, no interruption.
fn uninterrupted(
    platform: &Platform<'_>,
    s: &Study,
    ms: &[Measurement],
    cfg: EngineConfig,
) -> String {
    let engine = Engine::with_context(platform.measured_ip2as(), &s.world.topology, cfg);
    for m in ms {
        engine.ingest(m);
    }
    canonical_json(&engine.finish())
}

/// Run the stream with a checkpoint/teardown/restore at `cut`, flushing
/// everything before the checkpoint.
fn interrupted(
    platform: &Platform<'_>,
    s: &Study,
    ms: &[Measurement],
    cfg: EngineConfig,
    cut: usize,
) -> String {
    let mut blob = Vec::new();
    {
        let engine =
            Engine::with_context(platform.measured_ip2as(), &s.world.topology, cfg.clone());
        for m in &ms[..cut] {
            engine.ingest(m);
        }
        engine
            .checkpoint(cut as u64, b"import-state", &mut blob)
            .expect("checkpoint to a Vec cannot fail");
        // Engine drops here: the "process" dies.
    }
    let restored =
        Engine::restore(platform.measured_ip2as(), &s.world.topology, cfg, &mut Cursor::new(&blob))
            .expect("restore");
    assert_eq!(restored.cursor, cut as u64);
    assert_eq!(restored.user, b"import-state");
    for m in &ms[restored.cursor as usize..] {
        restored.engine.ingest(m);
    }
    canonical_json(&restored.engine.finish())
}

/// The headline acceptance matrix: shards {1, 4} × 3 seeds × both churn
/// modes, checkpoint at mid-stream, digest byte-identical.
#[test]
fn checkpoint_restore_continue_is_digest_identical() {
    for seed in [11u64, 23, 47] {
        let s = study(seed);
        let (platform, ms) = measurements(&s);
        let cut = ms.len() / 2;
        for mode in [ChurnMode::Normal, ChurnMode::FirstPathOnly] {
            for shards in [1usize, 4] {
                let cfg = engine_cfg(&platform, mode, shards, None);
                let expected = uninterrupted(&platform, &s, &ms, cfg.clone());
                let got = interrupted(&platform, &s, &ms, cfg, cut);
                assert_eq!(
                    got, expected,
                    "seed {seed} mode {mode:?} shards {shards}: restore diverged"
                );
            }
        }
    }
}

/// Same matrix point but with retirement active across the checkpoint: a
/// day-sorted stream and a small horizon so windows genuinely retire on
/// both sides of the cut, including retired-but-undrained cells and
/// folded churn state that must survive the round trip.
#[test]
fn checkpoint_with_retirement_is_digest_identical() {
    for seed in [11u64, 23] {
        let s = study(seed);
        let (platform, mut ms) = measurements(&s);
        ms.sort_by_key(|m| m.day);
        for shards in [1usize, 4] {
            let cfg = engine_cfg(&platform, ChurnMode::Normal, shards, Some(2));
            let expected = uninterrupted(&platform, &s, &ms, cfg.clone());
            for cut in [ms.len() / 4, ms.len() / 2, ms.len() * 3 / 4] {
                let cut = cut.clamp(1, ms.len() - 1);
                let got = interrupted(&platform, &s, &ms, cfg.clone(), cut);
                assert_eq!(
                    got, expected,
                    "seed {seed} shards {shards} cut {cut}: retirement restore diverged"
                );
            }
        }
    }
}

/// A horizon wider than the whole stream retires nothing and must be
/// byte-identical to the no-horizon engine — the "off by default" proof.
#[test]
fn horizon_wider_than_stream_changes_nothing() {
    let s = study(31);
    let (platform, ms) = measurements(&s);
    let base = engine_cfg(&platform, ChurnMode::Normal, 2, None);
    let wide = engine_cfg(&platform, ChurnMode::Normal, 2, Some(10_000));
    assert_eq!(
        uninterrupted(&platform, &s, &ms, wide),
        uninterrupted(&platform, &s, &ms, base),
        "a never-triggering horizon must reproduce the no-retirement digest"
    );
}

/// Checkpointing with unflushed feeder tails: the caller takes the tail,
/// checkpoints, and re-ingests the tail after restore — the documented
/// cut protocol — and the digest still matches the uninterrupted run.
#[test]
fn checkpoint_with_unflushed_feeder_tails() {
    let s = study(59);
    let (platform, ms) = measurements(&s);
    let cfg = engine_cfg(&platform, ChurnMode::Normal, 3, None);
    let expected = uninterrupted(&platform, &s, &ms, cfg.clone());

    // The engine has shipped `[..shipped]`; the feeder still holds
    // `[shipped..cut]` (its chunk is larger than that span, so nothing
    // ever flushed). The checkpoint cursor excludes the pending tail.
    let shipped = ms.len() / 3;
    let cut = shipped + shipped / 2;
    let mut blob = Vec::new();
    let tail: Vec<Measurement>;
    {
        let engine =
            Engine::with_context(platform.measured_ip2as(), &s.world.topology, cfg.clone());
        for m in &ms[..shipped] {
            engine.ingest(m);
        }
        let mut feeder = engine.feeder().with_chunk(ms.len());
        for m in &ms[shipped..cut] {
            feeder.ingest(m);
        }
        tail = feeder.take_pending();
        assert_eq!(tail.len(), cut - shipped, "the whole span must still be pending");
        engine.checkpoint(shipped as u64, &[], &mut blob).expect("checkpoint");
    }
    let restored =
        Engine::restore(platform.measured_ip2as(), &s.world.topology, cfg, &mut Cursor::new(&blob))
            .expect("restore");
    let mut feeder = restored.engine.feeder();
    for m in &tail {
        feeder.ingest(m);
    }
    for m in &ms[cut..] {
        feeder.ingest(m);
    }
    drop(feeder);
    assert_eq!(canonical_json(&restored.engine.finish()), expected);
}

/// Restoring into a different shard count is refused loudly — path ids
/// and URL routing are shard-local, so a silent reshard would corrupt.
#[test]
fn restore_into_different_shard_count_is_a_loud_error() {
    let s = study(71);
    let (platform, ms) = measurements(&s);
    let cfg = engine_cfg(&platform, ChurnMode::Normal, 2, None);
    let mut blob = Vec::new();
    {
        let engine =
            Engine::with_context(platform.measured_ip2as(), &s.world.topology, cfg.clone());
        for m in &ms[..ms.len() / 2] {
            engine.ingest(m);
        }
        engine.checkpoint(0, &[], &mut blob).expect("checkpoint");
    }
    let mut wrong = cfg.clone();
    wrong.shards = 3;
    let err = Engine::restore(
        platform.measured_ip2as(),
        &s.world.topology,
        wrong,
        &mut Cursor::new(&blob),
    )
    .err()
    .expect("resharding a checkpoint must fail");
    match &err {
        RestoreError::Mismatch(msg) => {
            assert!(msg.contains("2 shards"), "unhelpful message: {msg}");
            assert!(msg.contains('3'), "unhelpful message: {msg}");
        }
        other => panic!("expected Mismatch, got {other:?}"),
    }

    // A different pipeline configuration is refused too.
    let mut other_cfg = cfg.clone();
    other_cfg.pipeline.churn_mode = ChurnMode::FirstPathOnly;
    let err = Engine::restore(
        platform.measured_ip2as(),
        &s.world.topology,
        other_cfg,
        &mut Cursor::new(&blob),
    )
    .err()
    .expect("config drift must fail");
    assert!(matches!(err, RestoreError::Mismatch(_)), "got {err:?}");

    // And corrupt bytes are refused, not misparsed.
    let mut torn = blob.clone();
    torn.truncate(torn.len() / 2);
    let err = Engine::restore(
        platform.measured_ip2as(),
        &s.world.topology,
        cfg.clone(),
        &mut Cursor::new(&torn),
    )
    .err()
    .expect("truncated checkpoint must fail");
    assert!(matches!(err, RestoreError::Corrupt(_)), "got {err:?}");

    let mut garbage = blob;
    garbage[0] ^= 0xFF;
    let err =
        Engine::restore(platform.measured_ip2as(), &s.world.topology, cfg, &mut Cursor::new(&garbage))
            .err()
            .expect("bad magic must fail");
    assert!(matches!(err, RestoreError::Corrupt(_)), "got {err:?}");
}

/// Checkpoint bytes are deterministic: checkpointing the same logical
/// state twice yields identical bytes, and checkpointing a restored
/// engine reproduces the original checkpoint.
#[test]
fn checkpoint_bytes_are_deterministic() {
    let s = study(83);
    let (platform, mut ms) = measurements(&s);
    ms.sort_by_key(|m| m.day);
    let cfg = engine_cfg(&platform, ChurnMode::Normal, 2, Some(3));
    let engine = Engine::with_context(platform.measured_ip2as(), &s.world.topology, cfg.clone());
    for m in &ms[..ms.len() / 2] {
        engine.ingest(m);
    }
    let (mut a, mut b) = (Vec::new(), Vec::new());
    engine.checkpoint(7, b"x", &mut a).expect("checkpoint");
    engine.checkpoint(7, b"x", &mut b).expect("checkpoint");
    assert_eq!(a, b, "same state, same bytes");

    let restored =
        Engine::restore(platform.measured_ip2as(), &s.world.topology, cfg, &mut Cursor::new(&a))
            .expect("restore");
    let mut again = Vec::new();
    restored.engine.checkpoint(7, b"x", &mut again).expect("checkpoint");
    assert_eq!(again, a, "restore → checkpoint must reproduce the original bytes");
}

/// [`Engine::compact`] drains retired per-cell outcomes without losing
/// anything: drained outcomes plus the final report's outcomes equal the
/// uninterrupted outcome set, and every aggregate (censors, leakage,
/// churn, trivial count — i.e. the canonical digest minus the outcome
/// list) is unchanged.
#[test]
fn compact_drains_outcomes_but_keeps_aggregates_exact() {
    let s = study(97);
    let (platform, mut ms) = measurements(&s);
    ms.sort_by_key(|m| m.day);
    let cfg = engine_cfg(&platform, ChurnMode::Normal, 2, Some(2));

    let full = {
        let engine =
            Engine::with_context(platform.measured_ip2as(), &s.world.topology, cfg.clone());
        for m in &ms {
            engine.ingest(m);
        }
        engine.finish()
    };

    let engine = Engine::with_context(platform.measured_ip2as(), &s.world.topology, cfg);
    let mut drained = Vec::new();
    let mut drained_trivial = 0u64;
    for (i, m) in ms.iter().enumerate() {
        engine.ingest(m);
        if i % (ms.len() / 4).max(1) == 0 {
            let c = engine.compact();
            drained.extend(c.outcomes);
            drained_trivial += c.trivial;
        }
    }
    let compacted = engine.finish();
    assert!(!drained.is_empty(), "test needs the compactions to drain something");

    let mut combined = drained;
    combined.extend(compacted.outcomes.iter().cloned());
    combined.sort_by_key(|o| o.key);
    let mut expected = full.outcomes.clone();
    expected.sort_by_key(|o| o.key);
    assert_eq!(
        serde_json::to_string(&combined).unwrap(),
        serde_json::to_string(&expected).unwrap(),
        "drained + remaining outcomes must equal the uninterrupted outcome set"
    );
    // Drained trivial cells fold back into the engine's persistent
    // retired state, so the final report's trivial count already
    // includes them — the canonical comparison below proves it. The
    // returned count just reports what each drain carried.
    let _ = drained_trivial;

    // Aggregates: compare full canonical reports with the outcome lists
    // equalized, proving everything else is byte-identical.
    let mut full_eq = full;
    let mut compacted_eq = compacted;
    compacted_eq.outcomes = expected.clone();
    full_eq.outcomes = expected;
    assert_eq!(
        canonical_json(&compacted_eq),
        canonical_json(&full_eq),
        "compaction must not change censors, leakage, churn, or trivial counts"
    );
}
