//! A shard worker that dies must not surface as an unrelated `SendError`
//! unwrap on the feeder thread: the engine joins the dead worker and
//! re-raises its actual panic payload, tagged with the shard id.
//!
//! Needs the deterministic poison hook, which only exists under the
//! `test-instrumentation` feature:
//! `cargo test -p churnlab-engine --features test-instrumentation`.

#![cfg(feature = "test-instrumentation")]

use churnlab_bgp::{ChurnConfig, RoutingSim};
use churnlab_censor::{CensorConfig, CensorshipScenario};
use churnlab_core::pipeline::PipelineConfig;
use churnlab_engine::{Engine, EngineConfig};
use churnlab_platform::{Platform, PlatformConfig, PlatformScale};
use churnlab_topology::{generator, WorldConfig, WorldScale};

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string payload>")
    }
}

#[test]
fn dead_worker_panic_propagates_with_shard_context() {
    let world = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 71));
    let mut censor_cfg = CensorConfig::scaled_for(world.topology.countries().len());
    censor_cfg.seed = 73;
    let platform_cfg = PlatformConfig::preset(PlatformScale::Smoke, 72);
    censor_cfg.total_days = platform_cfg.total_days;
    let scenario = CensorshipScenario::generate_for_world(&world, &censor_cfg);
    let platform = Platform::new(&world, &scenario, platform_cfg.clone());
    let sim = RoutingSim::new(
        &world.topology,
        &ChurnConfig { total_days: platform_cfg.total_days, ..ChurnConfig::default() },
    );
    let (ms, _) = platform.run_collect(&sim);

    let cfg = PipelineConfig::paper(platform_cfg.total_days);
    let engine = Engine::new(&platform, EngineConfig::new(cfg).with_shards(2));
    engine.inject_worker_panic(0);

    // Keep ingesting until some send lands on the dead shard 0; the
    // engine must re-raise the worker's own panic, with shard context,
    // instead of a bare SendError unwrap.
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for m in &ms {
            engine.ingest(m);
        }
        // Every send missed shard 0 (unlikely but possible): a report
        // request touches every shard.
        let _ = engine.snapshot();
    }))
    .expect_err("ingesting into a poisoned engine must panic");
    let text = panic_text(payload);
    assert!(
        text.contains("shard worker 0 panicked"),
        "panic lost its shard context: {text:?}"
    );
    assert!(
        text.contains("poisoned by test instrumentation"),
        "panic lost the worker's payload: {text:?}"
    );

    // The engine is now unusable; dropping it must not double-panic or
    // hang even though a worker is already gone.
    drop(engine);
}
