//! Fused sim→engine campaigns are byte-identical to the serial path.
//!
//! The tentpole guarantee: `campaign::run_fused` (N generator workers,
//! each with its own `Engine::feeder`) produces a serialized
//! [`churnlab_core::report::CanonicalReport`] identical to a serial
//! `Platform::run` feeding the engine one measurement at a time —
//! across threads {1, 4} × shards {1, 4} × 3 seeds, with and without
//! the fleet-sampling schedule, and with identical platform-side stats.

use churnlab_bgp::{ChurnConfig, RoutingSim};
use churnlab_censor::{CensorConfig, CensorshipScenario};
use churnlab_core::pipeline::PipelineConfig;
use churnlab_engine::{campaign, Engine, EngineConfig};
use churnlab_platform::{DatasetStats, Platform, PlatformConfig, PlatformScale};
use churnlab_topology::{generator, GeneratedWorld, WorldConfig, WorldScale};

struct Study {
    world: GeneratedWorld,
    scenario: CensorshipScenario,
    platform_cfg: PlatformConfig,
    churn_cfg: ChurnConfig,
}

fn study(seed: u64) -> Study {
    let world = generator::generate(&WorldConfig::preset(WorldScale::Smoke, seed));
    let mut censor_cfg = CensorConfig::scaled_for(world.topology.countries().len());
    censor_cfg.seed = seed.wrapping_add(2);
    let platform_cfg = PlatformConfig::preset(PlatformScale::Smoke, seed.wrapping_add(1));
    censor_cfg.total_days = platform_cfg.total_days;
    let scenario = CensorshipScenario::generate_for_world(&world, &censor_cfg);
    let churn_cfg = ChurnConfig {
        seed: seed.wrapping_add(3),
        total_days: platform_cfg.total_days,
        ..ChurnConfig::default()
    };
    Study { world, scenario, platform_cfg, churn_cfg }
}

fn serial_reference(s: &Study) -> (String, DatasetStats) {
    let platform = Platform::new(&s.world, &s.scenario, s.platform_cfg.clone());
    let sim = RoutingSim::new(&s.world.topology, &s.churn_cfg);
    let cfg = PipelineConfig::paper(platform.config().total_days);
    let engine = Engine::new(&platform, EngineConfig::new(cfg));
    let stats = platform.run(&sim, |m| engine.ingest_owned(m));
    let report = engine.finish().canonical_report();
    (serde_json::to_string(&report).expect("report serializes"), stats)
}

fn fused(s: &Study, threads: usize, shards: usize) -> (String, DatasetStats) {
    let platform = Platform::new(&s.world, &s.scenario, s.platform_cfg.clone());
    let sim = RoutingSim::new(&s.world.topology, &s.churn_cfg);
    let cfg = PipelineConfig::paper(platform.config().total_days);
    let engine = Engine::new(&platform, EngineConfig::new(cfg).with_shards(shards));
    let run = campaign::run_fused(&platform, &sim, &engine, threads);
    let report = engine.finish().canonical_report();
    (serde_json::to_string(&report).expect("report serializes"), run.stats)
}

#[test]
fn fused_parallel_matches_serial_across_threads_shards_seeds() {
    for seed in [11u64, 12, 13] {
        let s = study(seed);
        let (serial_report, serial_stats) = serial_reference(&s);
        for threads in [1usize, 4] {
            for shards in [1usize, 4] {
                let (report, stats) = fused(&s, threads, shards);
                assert_eq!(
                    report, serial_report,
                    "seed={seed} threads={threads} shards={shards}: report diverged"
                );
                assert_eq!(
                    stats, serial_stats,
                    "seed={seed} threads={threads} shards={shards}: stats diverged"
                );
            }
        }
    }
}

#[test]
fn fused_parallel_matches_serial_under_fleet_sampling() {
    let mut s = study(21);
    s.platform_cfg.fleet_sample = 7;
    s.platform_cfg.tests_per_pair_floor = 2;
    let (serial_report, serial_stats) = serial_reference(&s);
    for threads in [1usize, 3] {
        let (report, stats) = fused(&s, threads, 4);
        assert_eq!(report, serial_report, "threads={threads}: sampled report diverged");
        assert_eq!(stats, serial_stats, "threads={threads}: sampled stats diverged");
    }
    // Sampling must actually have reduced the stream.
    let full = u64::from(s.platform_cfg.tests_per_pair)
        * (s.platform_cfg.n_vpn_vantage + s.platform_cfg.n_residential_vantage) as u64
        * s.platform_cfg.n_urls as u64;
    assert!(serial_stats.measurements < full, "sampling did not shrink the campaign");
}

#[test]
fn fused_busy_accounting_covers_every_worker() {
    let s = study(31);
    let platform = Platform::new(&s.world, &s.scenario, s.platform_cfg.clone());
    let sim = RoutingSim::new(&s.world.topology, &s.churn_cfg);
    let cfg = PipelineConfig::paper(platform.config().total_days);
    let engine = Engine::new(&platform, EngineConfig::new(cfg).with_shards(2));
    let run = campaign::run_fused(&platform, &sim, &engine, 3);
    drop(engine.finish());
    assert_eq!(run.busy.per_worker_nanos.len(), 3);
    assert!(run.busy.total_nanos() > 0);
    assert!(run.busy.max_nanos() <= run.busy.total_nanos());
}
