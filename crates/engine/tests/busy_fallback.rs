//! Busy-time accounting when the per-thread CPU clock is unavailable:
//! with `/proc/<tid>/schedstat` forced away, every timer in the stack
//! (shard workers' `BusyTimer`, the instrumented path's `Stopwatch`
//! laps, the merge accounting) must degrade to wall-interval accounting
//! and still produce sane, non-zero numbers.
//!
//! This lives in its own integration binary because the forcing switch
//! is process-global: sharing a process with other engine tests would
//! leak wall-clock fallback into their timing assertions.

use churnlab_bgp::{ChurnConfig, RoutingSim};
use churnlab_censor::{CensorConfig, CensorshipScenario};
use churnlab_core::pipeline::PipelineConfig;
use churnlab_engine::{Engine, EngineConfig, EngineObs};
use churnlab_obs::{force_wall_clock_for_tests, thread_cpu_nanos, Registry};
use churnlab_platform::{Platform, PlatformConfig, PlatformScale};
use churnlab_topology::{generator, WorldConfig, WorldScale};

#[test]
fn busy_accounting_survives_missing_cpu_clock() {
    force_wall_clock_for_tests(true);
    assert_eq!(thread_cpu_nanos(), None, "forcing must hide the schedstat clock");

    let seed = 11;
    let world = generator::generate(&WorldConfig::preset(WorldScale::Smoke, seed));
    let mut censor_cfg = CensorConfig::scaled_for(world.topology.countries().len());
    censor_cfg.seed = seed.wrapping_add(2);
    let platform_cfg = PlatformConfig::preset(PlatformScale::Smoke, seed.wrapping_add(1));
    censor_cfg.total_days = platform_cfg.total_days;
    let scenario = CensorshipScenario::generate_for_world(&world, &censor_cfg);
    let churn_cfg = ChurnConfig {
        seed: seed.wrapping_add(3),
        total_days: platform_cfg.total_days,
        ..ChurnConfig::default()
    };
    let platform = Platform::new(&world, &scenario, platform_cfg.clone());
    let sim = RoutingSim::new(&world.topology, &churn_cfg);
    let (measurements, _) = platform.run_collect(&sim);

    let registry = Registry::new();
    let cfg = EngineConfig::new(PipelineConfig::paper(platform_cfg.total_days)).with_shards(2);
    let engine = Engine::new_with_obs(&platform, cfg, EngineObs::new(registry.clone()));
    {
        let mut feeder = engine.feeder();
        for m in &measurements {
            feeder.ingest_owned(m.clone());
        }
    }
    let (results, stats) = engine.finish_with_stats();
    assert!(!results.outcomes.is_empty(), "campaign produced no instances");

    // Wall-interval fallback still attributes real busy time, with the
    // same invariants the CPU clock provides.
    assert!(stats.busy.shard_total_nanos > 0, "fallback lost all shard busy time");
    assert!(stats.busy.shard_max_nanos > 0);
    assert!(
        stats.busy.shard_max_nanos <= stats.busy.shard_total_nanos,
        "max shard busy cannot exceed the sum over shards"
    );

    // Stopwatch-driven phase counters degrade to wall laps, not zero.
    let snap = registry.scrape();
    assert!(
        snap.counter_sum("churnlab_phase_nanos_total") > 0,
        "phase attribution vanished under wall fallback"
    );
    assert_eq!(snap.counter_sum("churnlab_measurements_total"), measurements.len() as u64);

    force_wall_clock_for_tests(false);
}
