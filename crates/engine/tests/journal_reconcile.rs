//! The journal's replayability guarantee, asserted end to end: the event
//! stream an instrumented engine emits reconciles *exactly* with the
//! final report — every opened window closes once, the closed windows'
//! per-cell tallies sum to the report's outcome and trivial-instance
//! counts, and the live `churnlab_windows_open` gauge returns to zero.

use churnlab_bgp::{ChurnConfig, RoutingSim};
use churnlab_censor::{CensorConfig, CensorshipScenario};
use churnlab_core::pipeline::PipelineConfig;
use churnlab_engine::{Engine, EngineConfig, EngineObs};
use churnlab_obs::{parse_jsonl, Journal, JournalEvent, MemorySink, Registry};
use churnlab_platform::{Platform, PlatformConfig, PlatformScale};
use churnlab_topology::{generator, WorldConfig, WorldScale};

fn events_named<'a>(events: &'a [JournalEvent], name: &str) -> Vec<&'a JournalEvent> {
    events.iter().filter(|e| e.event == name).collect()
}

#[test]
fn journal_reconciles_with_final_report() {
    let seed = 7;
    let world = generator::generate(&WorldConfig::preset(WorldScale::Smoke, seed));
    let mut censor_cfg = CensorConfig::scaled_for(world.topology.countries().len());
    censor_cfg.seed = seed.wrapping_add(2);
    let platform_cfg = PlatformConfig::preset(PlatformScale::Smoke, seed.wrapping_add(1));
    censor_cfg.total_days = platform_cfg.total_days;
    let scenario = CensorshipScenario::generate_for_world(&world, &censor_cfg);
    let churn_cfg = ChurnConfig {
        seed: seed.wrapping_add(3),
        total_days: platform_cfg.total_days,
        ..ChurnConfig::default()
    };
    let platform = Platform::new(&world, &scenario, platform_cfg.clone());
    let sim = RoutingSim::new(&world.topology, &churn_cfg);
    let (measurements, _) = platform.run_collect(&sim);

    let sink = MemorySink::new();
    let registry = Registry::new();
    let obs = EngineObs::new(registry.clone()).with_journal(Journal::to_writer(sink.clone()));
    let cfg = EngineConfig::new(PipelineConfig::paper(platform_cfg.total_days)).with_shards(3);
    let engine = Engine::new_with_obs(&platform, cfg, obs);

    // A mid-stream snapshot must NOT close windows: only the final
    // report freezes per-cell tallies.
    let half = measurements.len() / 2;
    {
        let mut feeder = engine.feeder();
        for m in &measurements[..half] {
            feeder.ingest_owned(m.clone());
        }
    }
    let _ = engine.snapshot();
    {
        let mut feeder = engine.feeder();
        for m in &measurements[half..] {
            feeder.ingest_owned(m.clone());
        }
    }
    let (results, stats) = engine.finish_with_stats();

    let text = sink.contents();
    let events = parse_jsonl(&text).expect("journal parses back");
    assert!(!events.is_empty(), "instrumented run emitted no events");

    let opened = events_named(&events, "window_opened");
    let closed = events_named(&events, "window_closed");
    let solved = events_named(&events, "cell_solved");
    assert!(!opened.is_empty(), "no windows opened over a non-empty campaign");
    assert_eq!(
        opened.len(),
        closed.len(),
        "every opened window must close exactly once at the final report"
    );

    // Each close names a window some shard opened (same shard, url, index).
    let key = |e: &JournalEvent| {
        (e.field("shard").unwrap(), e.field("url_id").unwrap(), e.field("window_index").unwrap())
    };
    let mut open_keys: Vec<_> = opened.iter().map(|e| key(e)).collect();
    let mut close_keys: Vec<_> = closed.iter().map(|e| key(e)).collect();
    open_keys.sort_unstable();
    close_keys.sort_unstable();
    assert_eq!(open_keys, close_keys, "window_closed events must pair with window_opened");

    // The tallies the closes carry sum to exactly the report's counts.
    let cells_reported: u64 = closed.iter().map(|e| e.field("cells_reported").unwrap()).sum();
    let cells_trivial: u64 = closed.iter().map(|e| e.field("cells_trivial").unwrap()).sum();
    assert_eq!(cells_reported, results.outcomes.len() as u64);
    assert_eq!(cells_trivial, results.trivial_instances);
    assert_eq!(solved.len() as u64, cells_reported, "one cell_solved per reported outcome");

    // Metrics agree with both the stats counters and the journal.
    let snap = registry.scrape();
    assert_eq!(snap.counter_sum("churnlab_measurements_total"), measurements.len() as u64);
    assert_eq!(snap.counter_sum("churnlab_observations_total"), stats.observations);
    let windows_open: i64 = snap
        .samples
        .iter()
        .filter(|s| s.name == "churnlab_windows_open")
        .map(|s| match &s.value {
            churnlab_obs::SampleValue::Gauge(v) => *v,
            other => panic!("windows_open should be a gauge, got {other:?}"),
        })
        .sum();
    assert_eq!(windows_open, 0, "every window must be closed after finish");
}

/// Same reconciliation with a lateness horizon over a day-sorted stream:
/// windows now close **mid-stream** as the watermark passes them, not
/// only at the final report — and the journal must still pair every open
/// with exactly one close, carry exact tallies, and return the gauge to
/// zero.
#[test]
fn journal_reconciles_with_midstream_retirement() {
    let seed = 13;
    let world = generator::generate(&WorldConfig::preset(WorldScale::Smoke, seed));
    let mut censor_cfg = CensorConfig::scaled_for(world.topology.countries().len());
    censor_cfg.seed = seed.wrapping_add(2);
    let platform_cfg = PlatformConfig::preset(PlatformScale::Smoke, seed.wrapping_add(1));
    censor_cfg.total_days = platform_cfg.total_days;
    let scenario = CensorshipScenario::generate_for_world(&world, &censor_cfg);
    let churn_cfg = ChurnConfig {
        seed: seed.wrapping_add(3),
        total_days: platform_cfg.total_days,
        ..ChurnConfig::default()
    };
    let platform = Platform::new(&world, &scenario, platform_cfg.clone());
    let sim = RoutingSim::new(&world.topology, &churn_cfg);
    let (mut measurements, _) = platform.run_collect(&sim);
    // Retirement needs an advancing watermark: feed in day order, the
    // shape a live deployment's stream has.
    measurements.sort_by_key(|m| m.day);

    let sink = MemorySink::new();
    let registry = Registry::new();
    let obs = EngineObs::new(registry.clone()).with_journal(Journal::to_writer(sink.clone()));
    let cfg = EngineConfig::new(PipelineConfig::paper(platform_cfg.total_days))
        .with_shards(3)
        .with_window_horizon(2);
    let engine = Engine::new_with_obs(&platform, cfg, obs);
    for m in &measurements {
        engine.ingest(m);
    }
    let (results, stats) = engine.finish_with_stats();

    assert!(
        stats.retire.windows_retired > 0,
        "a 2-day horizon over a day-sorted Smoke stream must retire windows mid-stream"
    );
    assert!(stats.retire.cells_retired > 0);

    let text = sink.contents();
    let events = parse_jsonl(&text).expect("journal parses back");
    let opened = events_named(&events, "window_opened");
    let closed = events_named(&events, "window_closed");
    let solved = events_named(&events, "cell_solved");
    assert_eq!(opened.len(), closed.len(), "every opened window closes exactly once");

    let key = |e: &JournalEvent| {
        (e.field("shard").unwrap(), e.field("url_id").unwrap(), e.field("window_index").unwrap())
    };
    let mut open_keys: Vec<_> = opened.iter().map(|e| key(e)).collect();
    let mut close_keys: Vec<_> = closed.iter().map(|e| key(e)).collect();
    open_keys.sort_unstable();
    close_keys.sort_unstable();
    assert_eq!(open_keys, close_keys, "retirement closes must pair with opens");

    // Retired windows journal their closes *before* the stream ends; the
    // final report closes the rest. Tallies still reconcile exactly.
    let cells_reported: u64 = closed.iter().map(|e| e.field("cells_reported").unwrap()).sum();
    let cells_trivial: u64 = closed.iter().map(|e| e.field("cells_trivial").unwrap()).sum();
    assert_eq!(cells_reported, results.outcomes.len() as u64);
    assert_eq!(cells_trivial, results.trivial_instances);
    assert_eq!(solved.len() as u64, cells_reported);

    let snap = registry.scrape();
    let windows_open: i64 = snap
        .samples
        .iter()
        .filter(|s| s.name == "churnlab_windows_open")
        .map(|s| match &s.value {
            churnlab_obs::SampleValue::Gauge(v) => *v,
            other => panic!("windows_open should be a gauge, got {other:?}"),
        })
        .sum();
    assert_eq!(windows_open, 0, "retired + finished must drain the gauge to zero");
    assert_eq!(
        snap.counter_sum("churnlab_measurements_total"),
        measurements.len() as u64
    );
}
