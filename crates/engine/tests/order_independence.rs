//! The engine's headline guarantee, asserted end to end: feeding the
//! engine a **shuffled** measurement stream produces a serialized
//! [`churnlab_core::report::CanonicalReport`] that is **byte-identical**
//! to the batch [`Pipeline`] fed the platform runner's URL-grouped order
//! — across seeds, shard counts, churn modes, and concurrent feeders.

use churnlab_bgp::{ChurnConfig, RoutingSim};
use churnlab_censor::{CensorConfig, CensorshipScenario};
use churnlab_core::pipeline::{ChurnMode, Pipeline, PipelineConfig, PipelineResults};
use churnlab_engine::{Engine, EngineConfig};
use churnlab_platform::{Measurement, Platform, PlatformConfig, PlatformScale};
use churnlab_topology::{generator, GeneratedWorld, WorldConfig, WorldScale};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

struct Study {
    world: GeneratedWorld,
    scenario: CensorshipScenario,
    platform_cfg: PlatformConfig,
    churn_cfg: ChurnConfig,
}

fn study(seed: u64) -> Study {
    let world = generator::generate(&WorldConfig::preset(WorldScale::Smoke, seed));
    let mut censor_cfg = CensorConfig::scaled_for(world.topology.countries().len());
    censor_cfg.seed = seed.wrapping_add(2);
    let platform_cfg = PlatformConfig::preset(PlatformScale::Smoke, seed.wrapping_add(1));
    censor_cfg.total_days = platform_cfg.total_days;
    let scenario = CensorshipScenario::generate_for_world(&world, &censor_cfg);
    let churn_cfg = ChurnConfig {
        seed: seed.wrapping_add(3),
        total_days: platform_cfg.total_days,
        ..ChurnConfig::default()
    };
    Study { world, scenario, platform_cfg, churn_cfg }
}

fn measurements(s: &Study) -> (Platform<'_>, Vec<Measurement>) {
    let platform = Platform::new(&s.world, &s.scenario, s.platform_cfg.clone());
    let sim = RoutingSim::new(&s.world.topology, &s.churn_cfg);
    let (ms, _) = platform.run_collect(&sim);
    (platform, ms)
}

fn pipeline_results(
    platform: &Platform<'_>,
    ms: &[Measurement],
    mode: ChurnMode,
) -> PipelineResults {
    let mut cfg = PipelineConfig::paper(platform.config().total_days);
    cfg.churn_mode = mode;
    let mut pipeline = Pipeline::new(platform, cfg);
    for m in ms {
        pipeline.ingest(m);
    }
    pipeline.finish()
}

fn engine_results(
    platform: &Platform<'_>,
    ms: &[Measurement],
    mode: ChurnMode,
    shards: usize,
) -> PipelineResults {
    let mut cfg = PipelineConfig::paper(platform.config().total_days);
    cfg.churn_mode = mode;
    let engine = Engine::new(platform, EngineConfig::new(cfg).with_shards(shards));
    for m in ms {
        engine.ingest(m);
    }
    engine.finish()
}

fn canonical_json(r: &PipelineResults) -> String {
    serde_json::to_string(&r.canonical_report()).expect("canonical report serializes")
}

/// The satellite acceptance test: shuffled engine ingest is byte-identical
/// to the ordered batch pipeline, for several seeds and shard counts.
#[test]
fn shuffled_engine_matches_ordered_pipeline_byte_identically() {
    for seed in [11u64, 23, 47] {
        let s = study(seed);
        let (platform, ms) = measurements(&s);
        let expected = canonical_json(&pipeline_results(&platform, &ms, ChurnMode::Normal));
        for (shards, shuffle_seed) in [(1usize, seed ^ 0xA), (3, seed ^ 0xB)] {
            let mut shuffled = ms.clone();
            shuffled.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
            let got = canonical_json(&engine_results(
                &platform,
                &shuffled,
                ChurnMode::Normal,
                shards,
            ));
            assert_eq!(
                got, expected,
                "seed {seed}, {shards} shard(s): shuffled engine diverged from pipeline"
            );
        }
    }
}

/// The interned-dedup acceptance matrix: shuffled multi-feeder ingest is
/// byte-identical to the ordered batch pipeline across shard counts
/// {1, 4, 8} × both churn modes × 3 seeds. This is the end-to-end proof
/// that the id-based data plane — `PathId` dedup masks, group-shared
/// variable spaces, snapshot-resolved report cells — changes nothing
/// observable, whatever the arrival order or shard layout.
#[test]
fn interned_dedup_matrix_is_byte_identical() {
    for seed in [5u64, 17, 29] {
        let s = study(seed);
        let (platform, ms) = measurements(&s);
        for mode in [ChurnMode::Normal, ChurnMode::FirstPathOnly] {
            let expected = canonical_json(&pipeline_results(&platform, &ms, mode));
            for shards in [1usize, 4, 8] {
                let mut shuffled = ms.clone();
                shuffled.shuffle(&mut StdRng::seed_from_u64(seed ^ (shards as u64) << 8));
                let got = canonical_json(&engine_results(&platform, &shuffled, mode, shards));
                assert_eq!(
                    got, expected,
                    "seed {seed}, mode {mode:?}, {shards} shard(s): interned engine diverged"
                );
            }
        }
    }
}

/// Repeated snapshots are self-consistent: a second snapshot over the
/// same ingested prefix is byte-identical to the first (the deferred
/// Figure-4 buffers are sorted once and must not be corrupted by the
/// sort-tracking), and a later snapshot over more data still matches the
/// batch pipeline — also proving `PathId`s stay valid across snapshot
/// boundaries as the shard tables keep growing.
#[test]
fn repeated_snapshots_are_stable_in_both_modes() {
    for mode in [ChurnMode::Normal, ChurnMode::FirstPathOnly] {
        let s = study(43);
        let (platform, ms) = measurements(&s);
        let mut cfg = PipelineConfig::paper(platform.config().total_days);
        cfg.churn_mode = mode;
        let engine = Engine::new(&platform, EngineConfig::new(cfg).with_shards(2));
        // Out-of-order ingest so the deferred buffers are genuinely dirty.
        let mut shuffled = ms.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(7));
        let half = shuffled.len() / 2;
        for m in &shuffled[..half] {
            engine.ingest(m);
        }
        let snap1 = canonical_json(&engine.snapshot());
        let snap2 = canonical_json(&engine.snapshot());
        assert_eq!(snap1, snap2, "mode {mode:?}: identical prefix, diverging snapshots");
        for m in &shuffled[half..] {
            engine.ingest(m);
        }
        let full = canonical_json(&engine.finish());
        let expected = canonical_json(&pipeline_results(&platform, &ms, mode));
        assert_eq!(full, expected, "mode {mode:?}: post-snapshot ingest diverged from batch");
    }
}

/// The Figure-4 ablation also survives shuffling: the engine restores the
/// test order internally before applying the first-path filter.
#[test]
fn first_path_ablation_is_order_independent_too() {
    let s = study(31);
    let (platform, ms) = measurements(&s);
    let expected = canonical_json(&pipeline_results(&platform, &ms, ChurnMode::FirstPathOnly));
    let mut shuffled = ms.clone();
    shuffled.shuffle(&mut StdRng::seed_from_u64(99));
    let got = canonical_json(&engine_results(&platform, &shuffled, ChurnMode::FirstPathOnly, 2));
    assert_eq!(got, expected, "ablation mode diverged under shuffle");
}

/// Concurrent feeder threads — the multi-vantage regime — agree with the
/// single-threaded batch pipeline too.
#[test]
fn concurrent_feeders_match_pipeline() {
    let s = study(53);
    let (platform, ms) = measurements(&s);
    let expected = canonical_json(&pipeline_results(&platform, &ms, ChurnMode::Normal));

    let cfg = PipelineConfig::paper(platform.config().total_days);
    let engine = Engine::new(&platform, EngineConfig::new(cfg).with_shards(2));
    let n_feeders = 4;
    std::thread::scope(|scope| {
        for chunk in ms.chunks(ms.len().div_ceil(n_feeders)) {
            let engine = &engine;
            scope.spawn(move || {
                // Buffering feeder handle: chunked sends, flushed on drop.
                let mut feeder = engine.feeder();
                for m in chunk {
                    feeder.ingest(m);
                }
            });
        }
    });
    let got = canonical_json(&engine.finish());
    assert_eq!(got, expected, "concurrent feeders diverged from pipeline");
}

/// The documented snapshot cut semantics around feeder tails, asserted
/// while a feeder is genuinely mid-chunk: a flushed tail is included in
/// the snapshot, an unflushed tail is excluded from it (both the
/// outcomes *and* the conversion counters — conversion is shard state,
/// so the accounting tracks the cut exactly), and dropping the feeder
/// implies a flush.
#[test]
fn snapshot_cut_respects_feeder_tails() {
    let s = study(67);
    let (platform, ms) = measurements(&s);
    let cfg = PipelineConfig::paper(platform.config().total_days);
    let engine = Engine::new(&platform, EngineConfig::new(cfg).with_shards(2));
    let half = ms.len() / 2;

    // A chunk bigger than the stream: nothing ships until we say so.
    let mut feeder = engine.feeder().with_chunk(ms.len() + 1);
    for m in &ms[..half] {
        feeder.ingest(m);
    }
    // Unflushed tail: the cut must be empty.
    let before = engine.snapshot();
    assert_eq!(before.conversion.converted + before.conversion.total_discarded(), 0);
    assert!(before.outcomes.is_empty(), "unflushed tail leaked into the snapshot");

    // Flushed tail: the cut must equal a batch run over the same prefix.
    feeder.flush();
    let mid = engine.snapshot();
    let mid_expected = pipeline_results(&platform, &ms[..half], ChurnMode::Normal);
    assert_eq!(canonical_json(&mid), canonical_json(&mid_expected));
    assert_eq!(mid.conversion, mid_expected.conversion);

    // Drop implies flush: the rest of the stream arrives via drop alone.
    for m in &ms[half..] {
        feeder.ingest(m);
    }
    drop(feeder);
    let full = engine.finish();
    let full_expected = pipeline_results(&platform, &ms, ChurnMode::Normal);
    assert_eq!(canonical_json(&full), canonical_json(&full_expected));
    assert_eq!(full.conversion, full_expected.conversion);
}

/// `snapshot()` mid-stream is a consistent prefix report, and ingestion
/// continues unharmed afterwards.
#[test]
fn snapshot_then_continue() {
    let s = study(7);
    let (platform, ms) = measurements(&s);
    let cfg = PipelineConfig::paper(platform.config().total_days);
    let engine = Engine::new(&platform, EngineConfig::new(cfg.clone()).with_shards(2));
    let half = ms.len() / 2;
    for m in &ms[..half] {
        engine.ingest(m);
    }
    let mid = engine.snapshot();
    // The snapshot equals a batch run over the same prefix (the prefix of
    // the runner's order is still URL-grouped, so Pipeline accepts it).
    let mid_expected = pipeline_results(&platform, &ms[..half], ChurnMode::Normal);
    assert_eq!(canonical_json(&mid), canonical_json(&mid_expected));
    for m in &ms[half..] {
        engine.ingest(m);
    }
    let full = engine.finish();
    let full_expected = pipeline_results(&platform, &ms, ChurnMode::Normal);
    assert_eq!(canonical_json(&full), canonical_json(&full_expected));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized shuffle/shard-count draws on a fixed smoke study.
    #[test]
    fn prop_shuffled_stream_is_canonical(shuffle_seed in any::<u64>(), shards in 1usize..5) {
        let s = study(61);
        let (platform, ms) = measurements(&s);
        let expected = canonical_json(&pipeline_results(&platform, &ms, ChurnMode::Normal));
        let mut shuffled = ms.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        let got = canonical_json(&engine_results(&platform, &shuffled, ChurnMode::Normal, shards));
        prop_assert_eq!(got, expected);
    }
}
