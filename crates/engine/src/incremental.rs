//! Incremental per-instance tomography state, interned end to end.
//!
//! The batch pipeline buffers a URL's observations and runs a full
//! census (AllSAT count + backbone probes) per instance at flush time.
//! The engine instead keeps every instance *solved at all times*: each
//! new observation is folded into a memoized unit-propagation/backbone
//! state, and in the common cases the update is a constant-time state
//! transition — no solver call at all:
//!
//! * **early-unsat** — clauses only ever shrink the model set, so an
//!   unsatisfiable instance stays unsatisfiable forever; further
//!   observations are recorded and skipped;
//! * **already-decided** — when the memoized backbone already fixes every
//!   AS a new observation mentions, the model set provably cannot change
//!   (clean path over always-False ASes) or changes in a closed form
//!   (positive clause satisfied by an always-True AS, or needing exactly
//!   the observation's fresh ASes);
//! * otherwise an **incremental re-solve** runs: the memoized backbone
//!   literals — valid under clause addition, since models only shrink —
//!   seed unit propagation, and the census runs over the *reduced*
//!   formula (free ASes only) instead of the raw clause set.
//!
//! Since PR 5, the data plane is id-based. A shard interns each incoming
//! path once ([`crate::PathTable`], one hash per measurement); the
//! granularity×anomaly fan-out then works entirely on the dense
//! [`PathId`]:
//!
//! * an [`InstanceGroup`] holds the one (URL × window) **variable space**
//!   shared by its [`AnomalyType::ALL`] cells — every cell sees the same
//!   observation stream, so the distinct-AS set (and hence the variable
//!   numbering) is provably identical across the anomaly fan-out. The
//!   group resolves a path to its group-local variable-index list
//!   **once**, amortized across all cells;
//! * per-cell dedup is a polarity bitmask looked up with the *same*
//!   group probe — a duplicate observation costs one `u32` map probe for
//!   all five cells together, not five full-path hashes;
//! * each [`IncrementalInstance`] stores `(PathId, polarity)` records,
//!   clause literals are read out of the group's flat index arena, and
//!   the per-AS backbone memo is a dense `Vec<Fate>` indexed by
//!   group-local variable index — no per-AS hashing anywhere on the
//!   update path.
//!
//! The produced [`InstanceOutcome`] is exactly what
//! [`churnlab_core::analyze::analyze`] computes for the same observation
//! set, in any arrival order — the engine's order-independence proof
//! leans on this equivalence (see the crate's property tests, which also
//! check the retained un-interned [`crate::reference`] implementation
//! differentially).

use crate::ckpt::{Dec, Enc};
use crate::intern::{FxMap, PathTable};
use crate::obs::ResolveObs;
use churnlab_bgp::TimeWindow;
use churnlab_core::analyze::InstanceOutcome;
use churnlab_core::instance::InstanceKey;
use churnlab_core::obs::PathId;
use churnlab_platform::{AnomalySet, AnomalyType};
use churnlab_sat::{CompiledCnf, CtxStats, Lit, SolutionCount, Solvability, SolverCtx, Var};
use churnlab_topology::Asn;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Cells per group — one per anomaly type.
const N_CELLS: usize = AnomalyType::ALL.len();

/// What is known about one AS across all models of the current clause
/// set. `Always*` knowledge is stable under new observations (models only
/// shrink), which is what makes the memo reusable; only `Both` entries
/// can tighten.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    /// True in every model — a definite censor.
    AlwaysTrue,
    /// False in every model — a definite non-censor.
    AlwaysFalse,
    /// True in some models, false in others — a potential censor.
    Both,
}

/// The memoized solve state.
#[derive(Debug, Clone)]
enum Memo {
    /// No censored observation yet: the all-False assignment is the
    /// unique model (the `require_positive` "trivial" case).
    Trivial,
    /// Proven unsatisfiable — absorbing.
    Unsat,
    /// Satisfiable, with the (possibly capped) model count and the exact
    /// per-AS backbone knowledge, dense over group-local variable
    /// indices. Invariant: after every update, `fate` covers every group
    /// variable (`fate.len() == group vars`), because any observation
    /// that introduces variables reaches every cell as a non-duplicate.
    Solved { count: SolutionCount, fate: Vec<Fate> },
}

/// Counters describing how much work the incremental path saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IncrementalStats {
    /// Observations that changed an instance (post-dedup).
    pub updates: u64,
    /// Duplicate observations dropped by dedup.
    pub duplicates: u64,
    /// Updates resolved by a closed-form state transition (no solver).
    pub direct_updates: u64,
    /// Updates skipped because the instance was already unsatisfiable.
    pub unsat_skips: u64,
    /// Updates that ran a reduced-formula re-solve.
    pub resolves: u64,
}

impl IncrementalStats {
    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: IncrementalStats) {
        self.updates += other.updates;
        self.duplicates += other.duplicates;
        self.direct_updates += other.direct_updates;
        self.unsat_skips += other.unsat_skips;
        self.resolves += other.resolves;
    }

    /// Fraction of dedup decisions that were duplicates (the
    /// churn-sparsity headline: how duplicate-dominated the per-cell
    /// observe stream was).
    pub fn duplicate_ratio(&self) -> f64 {
        let total = self.updates + self.duplicates;
        if total == 0 {
            0.0
        } else {
            self.duplicates as f64 / total as f64
        }
    }
}

/// Reusable solving scratch shared by every instance a worker owns: the
/// watched-literal [`SolverCtx`], a [`CompiledCnf`] the reduced formulas
/// are built into, and dense per-variable assignment/mapping buffers
/// (indexed by group-local variable index — no hashing). All of it is
/// rewound per re-solve, never freed, so a steady-state shard performs
/// zero solver allocations per observation.
#[derive(Debug, Default)]
pub struct SolveScratch {
    ctx: SolverCtx,
    cnf: CompiledCnf,
    /// Per-variable assignment during a re-solve: `FIXED_FALSE`,
    /// `FIXED_TRUE`, or `UNFIXED`.
    fixed: Vec<u8>,
    /// Group-local variable index → reduced-formula [`Var`] (or
    /// `u32::MAX` for fixed variables).
    var_map: Vec<u32>,
    /// Reduced-formula variable → group-local variable index.
    free_vars: Vec<u32>,
    /// Re-solve timing handles (latency histogram + phase counter),
    /// `None` when the owning engine runs stripped. Wall-clock timed:
    /// re-solves are rare (tens of thousands per millions of updates),
    /// so an `Instant` pair per call is noise.
    resolve_obs: Option<ResolveObs>,
}

impl SolveScratch {
    /// Fresh scratch (buffers grow to steady-state sizes on first use).
    pub fn new() -> Self {
        SolveScratch::default()
    }

    /// The scratch's warm solver context, for callers (the shard's
    /// deferred Figure-4 report path) that run batch [`analyze`]
    /// alongside incremental updates.
    ///
    /// [`analyze`]: churnlab_core::analyze::analyze_with
    pub fn solver_ctx(&mut self) -> &mut SolverCtx {
        &mut self.ctx
    }

    /// Thread re-solve timing handles in (worker construction path).
    pub(crate) fn set_resolve_obs(&mut self, obs: ResolveObs) {
        self.resolve_obs = Some(obs);
    }

    /// Cumulative SAT work counters of the warm context.
    pub(crate) fn sat_stats(&self) -> CtxStats {
        self.ctx.stats()
    }
}

const FIXED_FALSE: u8 = 0;
const FIXED_TRUE: u8 = 1;
const UNFIXED: u8 = 2;

/// `seen` mask bit: a clean observation of the path was recorded.
const SEEN_CLEAN: u8 = 1;
/// `seen` mask bit: a censored observation of the path was recorded.
const SEEN_CENSORED: u8 = 2;

/// One path resolved against a group's variable space: where its
/// variable-index list lives in the flat arena, plus the per-cell
/// dedup polarity masks — so one probe serves resolution *and* dedup for
/// the whole anomaly fan-out.
#[derive(Debug, Clone, Copy)]
struct Resolved {
    /// Start of the var-index list in [`VarSpace::lits`].
    start: u32,
    /// Length of the list (distinct ASes on the path — `u32`, not a
    /// narrower type: imported replay records put no bound on path
    /// length, and a silent truncation here would mis-solve the cell).
    len: u32,
    /// Per-cell seen-polarity masks (`SEEN_CLEAN` / `SEEN_CENSORED`).
    masks: [u8; N_CELLS],
}

/// The (URL × window) variable space shared by a group's cells: the
/// distinct ASes in first-appearance order (the variable numbering), and
/// the per-path resolved variable-index lists in one flat arena.
#[derive(Debug, Clone, Default)]
struct VarSpace {
    /// Group-local variable index → AS, first-appearance order.
    vars: Vec<Asn>,
    /// AS → group-local variable index.
    var_ix: FxMap<Asn, u32>,
    /// Flat arena of resolved var-index lists (one span per path).
    lits: Vec<u32>,
    /// Path → its span in `lits` + dedup masks.
    resolved: FxMap<PathId, Resolved>,
}

impl VarSpace {
    /// The var-index list of a path previously resolved in this space.
    #[inline]
    fn lit_slice(&self, pid: PathId) -> &[u32] {
        let r = &self.resolved[&pid];
        &self.lits[r.start as usize..r.start as usize + r.len as usize]
    }
}

/// One observation record: which interned path, which polarity.
#[derive(Debug, Clone, Copy)]
struct ObsRec {
    path: PathId,
    censored: bool,
}

/// All [`AnomalyType::ALL`] instances of one (URL × window), sharing one
/// [`VarSpace`]. The group is the dedup and resolution point: an
/// observation is resolved to its variable-index list (and checked
/// against every cell's dedup mask) with a single `PathId` probe.
#[derive(Debug, Clone)]
pub struct InstanceGroup {
    space: VarSpace,
    cells: [IncrementalInstance; N_CELLS],
}

impl InstanceGroup {
    /// Fresh group for one (URL × window).
    pub fn new(url_id: u32, window: TimeWindow) -> Self {
        InstanceGroup {
            space: VarSpace::default(),
            cells: std::array::from_fn(|i| {
                IncrementalInstance::new(InstanceKey {
                    url_id,
                    anomaly: AnomalyType::ALL[i],
                    window,
                })
            }),
        }
    }

    /// Fold one interned observation into every cell. `detected` decides
    /// each cell's polarity; `table` resolves the path's distinct-AS list
    /// the first time this group sees it; `cap` is the enumeration cap
    /// ([`churnlab_core::analyze::SolveConfig`]); `scratch` is the
    /// worker-owned reusable solver state.
    pub fn observe(
        &mut self,
        pid: PathId,
        table: &PathTable,
        detected: AnomalySet,
        cap: u64,
        stats: &mut IncrementalStats,
        scratch: &mut SolveScratch,
    ) {
        let (start, len);
        // Polarity to apply per cell; `None` = duplicate, skip.
        let mut todo = [None::<bool>; N_CELLS];
        {
            let VarSpace { vars, var_ix, lits, resolved } = &mut self.space;
            let entry = resolved.entry(pid).or_insert_with(|| {
                // First sight of this path in the group: resolve its
                // distinct ASes to group-local variable indices once,
                // registering fresh variables in appearance order.
                let start = lits.len() as u32;
                for a in table.distinct(pid) {
                    let ix = *var_ix.entry(*a).or_insert_with(|| {
                        let ix = vars.len() as u32;
                        vars.push(*a);
                        ix
                    });
                    lits.push(ix);
                }
                let len = lits.len() as u32 - start;
                Resolved { start, len, masks: [0; N_CELLS] }
            });
            start = entry.start as usize;
            len = entry.len as usize;
            for (i, anomaly) in AnomalyType::ALL.into_iter().enumerate() {
                let censored = detected.contains(anomaly);
                let bit = if censored { SEEN_CENSORED } else { SEEN_CLEAN };
                if entry.masks[i] & bit != 0 {
                    stats.duplicates += 1;
                } else {
                    entry.masks[i] |= bit;
                    todo[i] = Some(censored);
                }
            }
        }
        let space = &self.space;
        let vlist = &space.lits[start..start + len];
        for (i, censored) in todo.iter().enumerate() {
            if let Some(censored) = *censored {
                stats.updates += 1;
                self.cells[i].observe(pid, vlist, censored, space, cap, stats, scratch);
            }
        }
    }

    /// The group's variable numbering (group-local index → AS).
    pub fn vars(&self) -> &[Asn] {
        &self.space.vars
    }

    /// The group's cells, in [`AnomalyType::ALL`] order.
    pub fn cells(&self) -> impl Iterator<Item = &IncrementalInstance> {
        self.cells.iter()
    }

    /// The cell localizing one anomaly type.
    pub fn cell(&self, anomaly: AnomalyType) -> &IncrementalInstance {
        let i = AnomalyType::ALL.iter().position(|a| *a == anomaly).expect("known anomaly");
        &self.cells[i]
    }
}

/// One (URL × window × anomaly) instance kept incrementally solved, all
/// state id- and index-based: `(PathId, polarity)` observation records,
/// `PathId` clauses read out of the group's literal arena, and a dense
/// per-variable [`Fate`] memo. Lives inside an [`InstanceGroup`], which
/// owns dedup and variable resolution.
#[derive(Debug, Clone)]
pub struct IncrementalInstance {
    key: InstanceKey,
    observations: Vec<ObsRec>,
    n_positive: usize,
    /// Deduplicated censored paths (the positive clauses), by id.
    pos_clauses: Vec<PathId>,
    /// Variables appearing on some clean path — axiom unit negations
    /// (dense over group-local variable indices, lazily grown).
    neg_forced: Vec<bool>,
    memo: Memo,
}

/// Saturate a model count at the enumeration cap, mirroring the batch
/// census: exact at or below the cap, a lower bound strictly above it.
fn cap_count(value: u128, cap: u64) -> SolutionCount {
    if value > u128::from(cap) {
        SolutionCount::AtLeast(cap)
    } else {
        SolutionCount::Exact(value as u64)
    }
}

/// Multiply a (possibly capped) count by an exact factor (>= 1).
fn scale_count(count: SolutionCount, factor: u128, cap: u64) -> SolutionCount {
    debug_assert!(factor >= 1);
    match count {
        SolutionCount::Exact(n) => cap_count(u128::from(n) * factor, cap),
        SolutionCount::AtLeast(_) => SolutionCount::AtLeast(cap),
    }
}

/// `2^n` clamped into `u128` range (n is a path-length-bounded AS count).
fn pow2(n: usize) -> u128 {
    if n >= 127 {
        u128::MAX
    } else {
        1u128 << n
    }
}

impl IncrementalInstance {
    /// Fresh instance.
    fn new(key: InstanceKey) -> Self {
        IncrementalInstance {
            key,
            observations: Vec::new(),
            n_positive: 0,
            pos_clauses: Vec::new(),
            neg_forced: Vec::new(),
            memo: Memo::Trivial,
        }
    }

    /// The instance identity.
    pub fn key(&self) -> InstanceKey {
        self.key
    }

    /// True once at least one censored observation arrived.
    pub fn has_positive(&self) -> bool {
        self.n_positive > 0
    }

    /// Distinct observations so far.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True if nothing observed.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The deduplicated censored paths (leakage analysis input), as ids
    /// against the shard's [`PathTable`] — resolved back to AS paths only
    /// at the report boundary.
    pub fn censored_paths(&self) -> impl Iterator<Item = PathId> + '_ {
        self.observations.iter().filter(|o| o.censored).map(|o| o.path)
    }

    #[inline]
    fn is_neg_forced(&self, ix: u32) -> bool {
        self.neg_forced.get(ix as usize).copied().unwrap_or(false)
    }

    /// Fold in one non-duplicate observation. `vlist` is the path's
    /// group-resolved variable-index list; `space` resolves clause ids
    /// during re-solves.
    #[allow(clippy::too_many_arguments)]
    fn observe(
        &mut self,
        pid: PathId,
        vlist: &[u32],
        censored: bool,
        space: &VarSpace,
        cap: u64,
        stats: &mut IncrementalStats,
        scratch: &mut SolveScratch,
    ) {
        self.observations.push(ObsRec { path: pid, censored });
        if censored {
            self.n_positive += 1;
            self.pos_clauses.push(pid);
        } else {
            for &ix in vlist {
                let ix = ix as usize;
                if ix >= self.neg_forced.len() {
                    self.neg_forced.resize(ix + 1, false);
                }
                self.neg_forced[ix] = true;
            }
        }

        if matches!(self.memo, Memo::Unsat) {
            stats.unsat_skips += 1;
            return;
        }
        let n_vars = space.vars.len();
        if censored {
            self.apply_positive(vlist, n_vars, cap, stats, space, scratch);
        } else {
            self.apply_negative(vlist, n_vars, cap, stats, space, scratch);
        }
    }

    /// New positive clause (censored path) against the current memo.
    fn apply_positive(
        &mut self,
        vlist: &[u32],
        n_vars: usize,
        cap: u64,
        stats: &mut IncrementalStats,
        space: &VarSpace,
        scratch: &mut SolveScratch,
    ) {
        match &mut self.memo {
            Memo::Unsat => unreachable!("handled by caller"),
            Memo::Trivial => {
                // First censored observation: every previously seen AS is
                // a clean-path axiom (False), so the models are exactly
                // the non-empty subsets of the path's unexonerated ASes.
                stats.direct_updates += 1;
                let n_cand = vlist.iter().filter(|&&ix| !self.is_neg_forced(ix)).count();
                if n_cand == 0 {
                    self.memo = Memo::Unsat;
                    return;
                }
                let mut fate = vec![Fate::AlwaysFalse; n_vars];
                if n_cand == 1 {
                    let ix = vlist
                        .iter()
                        .copied()
                        .find(|&ix| !self.is_neg_forced(ix))
                        .expect("one candidate");
                    fate[ix as usize] = Fate::AlwaysTrue;
                    self.memo = Memo::Solved { count: SolutionCount::Exact(1), fate };
                } else {
                    for &ix in vlist {
                        if !self.is_neg_forced(ix) {
                            fate[ix as usize] = Fate::Both;
                        }
                    }
                    let count = cap_count(pow2(n_cand) - 1, cap);
                    self.memo = Memo::Solved { count, fate };
                }
            }
            Memo::Solved { count, fate } => {
                // Variables beyond the memo's coverage are exactly this
                // path's fresh ASes: any observation that grows the group
                // variable space reaches every cell as a non-duplicate,
                // so the memo was full-coverage before this path arrived.
                let known = fate.len();
                let n_fresh = n_vars - known;
                debug_assert_eq!(
                    n_fresh,
                    vlist.iter().filter(|&&ix| ix as usize >= known).count(),
                    "fresh variables must all come from this path"
                );
                let mut satisfied = false;
                let mut undecided = false;
                for &ix in vlist {
                    if (ix as usize) < known {
                        match fate[ix as usize] {
                            Fate::AlwaysTrue => satisfied = true,
                            Fate::Both => undecided = true,
                            Fate::AlwaysFalse => {}
                        }
                    }
                }
                if satisfied {
                    // The clause already holds in every model; the fresh
                    // ASes it introduces are entirely free.
                    stats.direct_updates += 1;
                    if n_fresh > 0 {
                        *count = scale_count(*count, pow2(n_fresh), cap);
                        fate.resize(n_vars, Fate::Both);
                    }
                    return;
                }
                if undecided {
                    // The clause interacts with genuinely ambiguous ASes:
                    // re-solve over the reduced formula.
                    stats.resolves += 1;
                    self.resolve(n_vars, space, cap, scratch);
                    return;
                }
                // Every known AS on the path is always-False: the clause
                // can only be satisfied by its fresh ASes.
                stats.direct_updates += 1;
                match n_fresh {
                    0 => self.memo = Memo::Unsat,
                    1 => {
                        // Exactly one candidate: a censor identified
                        // incrementally; the model count is unchanged.
                        fate.resize(n_vars, Fate::AlwaysTrue);
                    }
                    n => {
                        *count = scale_count(*count, pow2(n) - 1, cap);
                        fate.resize(n_vars, Fate::Both);
                    }
                }
            }
        }
    }

    /// New unit negations (clean path) against the current memo.
    fn apply_negative(
        &mut self,
        vlist: &[u32],
        n_vars: usize,
        cap: u64,
        stats: &mut IncrementalStats,
        space: &VarSpace,
        scratch: &mut SolveScratch,
    ) {
        match &mut self.memo {
            Memo::Unsat => unreachable!("handled by caller"),
            Memo::Trivial => {
                // Still no positive clause; all-False remains the model.
                stats.direct_updates += 1;
            }
            Memo::Solved { fate, .. } => {
                let known = fate.len();
                let mut any_true = false;
                let mut any_both = false;
                for &ix in vlist {
                    if (ix as usize) < known {
                        match fate[ix as usize] {
                            Fate::AlwaysTrue => any_true = true,
                            Fate::Both => any_both = true,
                            Fate::AlwaysFalse => {}
                        }
                    }
                }
                if any_true {
                    // A definite censor observed clean in the same window:
                    // contradiction (noise or a policy change).
                    stats.direct_updates += 1;
                    self.memo = Memo::Unsat;
                    return;
                }
                if !any_both {
                    // Every known AS here is already always-False; the new
                    // units are implied and fresh ASes are plain axioms.
                    stats.direct_updates += 1;
                    fate.resize(n_vars, Fate::AlwaysFalse);
                    return;
                }
                // A potential censor just got exonerated: re-solve.
                stats.resolves += 1;
                self.resolve(n_vars, space, cap, scratch);
            }
        }
    }

    /// [`IncrementalInstance::resolve_inner`] with optional wall-clock
    /// timing into the scratch's re-solve observability handles. The
    /// handles are taken out for the duration so the borrow of `scratch`
    /// stays whole.
    fn resolve(&mut self, n_vars: usize, space: &VarSpace, cap: u64, scratch: &mut SolveScratch) {
        match scratch.resolve_obs.take() {
            None => self.resolve_inner(n_vars, space, cap, scratch),
            Some(obs) => {
                let t0 = Instant::now();
                self.resolve_inner(n_vars, space, cap, scratch);
                let nanos = t0.elapsed().as_nanos() as u64;
                obs.latency.observe(nanos);
                obs.nanos.add(nanos);
                scratch.resolve_obs = Some(obs);
            }
        }
    }

    /// Incremental re-solve: seed unit propagation with the axiom units
    /// and the memoized backbone (both survive clause addition), then run
    /// the census over the reduced formula only — on the worker's warm
    /// [`SolverCtx`], building the reduced CNF into its reusable CSR
    /// arena, with all per-variable state in dense scratch vectors. The
    /// only per-call heap traffic is the recycled buffers' occasional
    /// growth.
    fn resolve_inner(&mut self, n_vars: usize, space: &VarSpace, cap: u64, scratch: &mut SolveScratch) {
        let fixed = &mut scratch.fixed;
        fixed.clear();
        fixed.resize(n_vars, UNFIXED);
        for (ix, neg) in self.neg_forced.iter().enumerate() {
            if *neg {
                fixed[ix] = FIXED_FALSE;
            }
        }
        // Take the memo (leaving the absorbing Unsat in place, which every
        // early return below wants): its fate seeds the fixed set, and its
        // vector is recycled as the next memo's allocation.
        let mut fate = match std::mem::replace(&mut self.memo, Memo::Unsat) {
            Memo::Solved { fate, .. } => {
                for (ix, f) in fate.iter().enumerate() {
                    match f {
                        Fate::AlwaysTrue => {
                            if fixed[ix] == FIXED_FALSE {
                                return; // exonerated definite censor: unsat
                            }
                            fixed[ix] = FIXED_TRUE;
                        }
                        Fate::AlwaysFalse => fixed[ix] = FIXED_FALSE,
                        Fate::Both => {}
                    }
                }
                let mut fate = fate;
                fate.clear();
                fate
            }
            _ => Vec::with_capacity(n_vars),
        };
        // Unit propagation over the positive clauses to fixpoint. Clause
        // literal lists are pre-deduplicated (the group resolves distinct
        // ASes only), so a clause is unit when exactly one literal is
        // unfixed.
        loop {
            let mut changed = false;
            for &pid in &self.pos_clauses {
                let clause = space.lit_slice(pid);
                if clause.iter().any(|&ix| fixed[ix as usize] == FIXED_TRUE) {
                    continue;
                }
                let mut first_free: Option<u32> = None;
                let mut multi = false;
                for &ix in clause {
                    if fixed[ix as usize] != UNFIXED {
                        continue;
                    }
                    if first_free.is_some() {
                        multi = true;
                        break;
                    }
                    first_free = Some(ix);
                }
                match first_free {
                    None => return, // conflict: memo stays Unsat
                    Some(ix) if !multi => {
                        fixed[ix as usize] = FIXED_TRUE;
                        changed = true;
                    }
                    Some(_) => {}
                }
            }
            if !changed {
                break;
            }
        }
        // Census over the reduced formula. Unconstrained free ASes count
        // as 2^k model blocks, exactly as the batch census sees them.
        let var_map = &mut scratch.var_map;
        var_map.clear();
        var_map.resize(n_vars, u32::MAX);
        let free_vars = &mut scratch.free_vars;
        free_vars.clear();
        for (ix, f) in fixed.iter().enumerate() {
            if *f == UNFIXED {
                var_map[ix] = free_vars.len() as u32;
                free_vars.push(ix as u32);
            }
        }
        scratch.cnf.reset(free_vars.len());
        for &pid in &self.pos_clauses {
            let clause = space.lit_slice(pid);
            if clause.iter().any(|&ix| fixed[ix as usize] == FIXED_TRUE) {
                continue;
            }
            scratch.cnf.push_clause(
                clause
                    .iter()
                    .filter(|&&ix| fixed[ix as usize] == UNFIXED)
                    .map(|&ix| Lit::pos(Var(var_map[ix as usize]))),
            );
        }
        let result = scratch.ctx.census(&scratch.cnf, cap);
        let Some(backbone) = result.backbone else {
            return; // memo stays Unsat
        };
        fate.reserve(n_vars);
        for (ix, f) in fixed.iter().enumerate() {
            let fate_ix = match *f {
                FIXED_TRUE => Fate::AlwaysTrue,
                FIXED_FALSE => Fate::AlwaysFalse,
                _ => {
                    let v = var_map[ix] as usize;
                    match (backbone.ever_true[v], backbone.ever_false[v]) {
                        (true, false) => Fate::AlwaysTrue,
                        (false, true) => Fate::AlwaysFalse,
                        // (false, false) cannot happen when satisfiable.
                        _ => Fate::Both,
                    }
                }
            };
            fate.push(fate_ix);
        }
        self.memo = Memo::Solved { count: result.count, fate };
    }

    /// The analysed outcome — identical to running
    /// [`churnlab_core::analyze::analyze`] on the batch-built instance
    /// over the same observation set. `vars` is the owning group's
    /// variable numbering ([`InstanceGroup::vars`]); every cell of a
    /// group shares it, since every cell sees every observation.
    pub fn outcome(&self, vars: &[Asn]) -> InstanceOutcome {
        let n_vars = vars.len();
        let (solvability, bucket, censors, potential, eliminated) = match &self.memo {
            Memo::Trivial => {
                // Clean observations only: the all-False assignment is
                // the unique model and every AS is exonerated.
                let mut elim = vars.to_vec();
                elim.sort();
                (Solvability::Unique, 1u8, Vec::new(), Vec::new(), elim)
            }
            Memo::Unsat => (Solvability::Unsat, 0, Vec::new(), Vec::new(), Vec::new()),
            Memo::Solved { count, fate } => {
                debug_assert_eq!(fate.len(), n_vars, "memo covers the group's variables");
                let solvability = count.solvability();
                debug_assert_ne!(solvability, Solvability::Unsat, "Solved memo is satisfiable");
                let mut censors = Vec::new();
                let mut potential = Vec::new();
                let mut eliminated = Vec::new();
                for (ix, f) in fate.iter().enumerate() {
                    match f {
                        Fate::AlwaysTrue => censors.push(vars[ix]),
                        Fate::AlwaysFalse => eliminated.push(vars[ix]),
                        Fate::Both => potential.push(vars[ix]),
                    }
                }
                debug_assert!(
                    solvability != Solvability::Unique || potential.is_empty(),
                    "a unique model fixes every variable"
                );
                censors.sort();
                potential.sort();
                eliminated.sort();
                (solvability, count.bucket(), censors, potential, eliminated)
            }
        };
        let eliminated_frac =
            if n_vars == 0 { 0.0 } else { eliminated.len() as f64 / n_vars as f64 };
        InstanceOutcome {
            key: self.key,
            n_vars,
            n_observations: self.observations.len(),
            n_positive: self.n_positive,
            solvability,
            bucket,
            censors,
            potential_censors: potential,
            eliminated,
            eliminated_frac,
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoint encode/decode.
//
// Lives here because group and cell state is private by design. Encoding
// is canonical (resolved spans written sorted by `PathId`); decoding
// revalidates every index and tag so a corrupt checkpoint surfaces as an
// error at restore time instead of a panic deep inside a later solve.

impl InstanceGroup {
    /// Serialize the group: variable space, resolved spans, and the five
    /// cells in [`AnomalyType::ALL`] order.
    pub(crate) fn encode(&self, e: &mut Enc) {
        e.asns(&self.space.vars);
        e.u32s(&self.space.lits);
        let mut resolved: Vec<(PathId, Resolved)> =
            self.space.resolved.iter().map(|(p, r)| (*p, *r)).collect();
        resolved.sort_by_key(|(p, _)| p.0);
        e.u64(resolved.len() as u64);
        for (pid, r) in resolved {
            e.u32(pid.0);
            e.u32(r.start);
            e.u32(r.len);
            for m in r.masks {
                e.u8(m);
            }
        }
        for cell in &self.cells {
            cell.encode(e);
        }
    }

    /// Rebuild a group from its encoded form. The identity (URL and
    /// window) comes from the enclosing shard map key, so it is not
    /// stored per group; `n_paths` is the restored shard table's size,
    /// bounding every path id the group may reference.
    pub(crate) fn decode(
        url_id: u32,
        window: TimeWindow,
        n_paths: usize,
        d: &mut Dec,
    ) -> Result<Self, String> {
        let vars = d.asns()?;
        let mut var_ix = FxMap::default();
        for (ix, a) in vars.iter().enumerate() {
            if var_ix.insert(*a, ix as u32).is_some() {
                return Err(format!("duplicate group variable AS{}", a.0));
            }
        }
        let lits = d.u32s()?;
        for &ix in &lits {
            if ix as usize >= vars.len() {
                return Err(format!("literal index {ix} out of variable range"));
            }
        }
        let n = d.len()?;
        let mut resolved = FxMap::default();
        for _ in 0..n {
            let pid = PathId(d.u32()?);
            if pid.usize() >= n_paths {
                return Err(format!("resolved path {} out of table range", pid.0));
            }
            let start = d.u32()?;
            let len = d.u32()?;
            if u64::from(start) + u64::from(len) > lits.len() as u64 {
                return Err(format!("resolved span {start}+{len} exceeds literal arena"));
            }
            let mut masks = [0u8; N_CELLS];
            for m in &mut masks {
                *m = d.u8()?;
                if *m & !(SEEN_CLEAN | SEEN_CENSORED) != 0 {
                    return Err(format!("bad dedup mask {m:#x}"));
                }
            }
            if resolved.insert(pid, Resolved { start, len, masks }).is_some() {
                return Err(format!("duplicate resolved path {}", pid.0));
            }
        }
        let space = VarSpace { vars, var_ix, lits, resolved };
        let mut cells = Vec::with_capacity(N_CELLS);
        for anomaly in AnomalyType::ALL {
            let key = InstanceKey { url_id, anomaly, window };
            cells.push(IncrementalInstance::decode(key, &space, d)?);
        }
        let cells: [IncrementalInstance; N_CELLS] =
            cells.try_into().expect("exactly N_CELLS cells decoded");
        Ok(InstanceGroup { space, cells })
    }
}

impl IncrementalInstance {
    /// Serialize the cell: the observation log plus the memo. Derived
    /// state (positive clauses, clean-path axiom units) is not stored —
    /// it replays deterministically from the log at decode time.
    fn encode(&self, e: &mut Enc) {
        e.u64(self.observations.len() as u64);
        for o in &self.observations {
            e.u32(o.path.0);
            e.u8(u8::from(o.censored));
        }
        match &self.memo {
            Memo::Trivial => e.u8(0),
            Memo::Unsat => e.u8(1),
            Memo::Solved { count, fate } => {
                e.u8(2);
                match count {
                    SolutionCount::Exact(n) => {
                        e.u8(0);
                        e.u64(*n);
                    }
                    SolutionCount::AtLeast(n) => {
                        e.u8(1);
                        e.u64(*n);
                    }
                }
                e.u64(fate.len() as u64);
                for f in fate {
                    e.u8(match f {
                        Fate::AlwaysTrue => 0,
                        Fate::AlwaysFalse => 1,
                        Fate::Both => 2,
                    });
                }
            }
        }
    }

    /// Rebuild a cell against its group's already-decoded space.
    fn decode(key: InstanceKey, space: &VarSpace, d: &mut Dec) -> Result<Self, String> {
        let n = d.len()?;
        let mut inst = IncrementalInstance::new(key);
        for _ in 0..n {
            let pid = PathId(d.u32()?);
            let censored = match d.u8()? {
                0 => false,
                1 => true,
                t => return Err(format!("bad polarity tag {t}")),
            };
            if !space.resolved.contains_key(&pid) {
                return Err(format!("observation of unresolved path {}", pid.0));
            }
            inst.observations.push(ObsRec { path: pid, censored });
            if censored {
                inst.n_positive += 1;
                inst.pos_clauses.push(pid);
            } else {
                for &ix in space.lit_slice(pid) {
                    let ix = ix as usize;
                    if ix >= inst.neg_forced.len() {
                        inst.neg_forced.resize(ix + 1, false);
                    }
                    inst.neg_forced[ix] = true;
                }
            }
        }
        inst.memo = match d.u8()? {
            0 => Memo::Trivial,
            1 => Memo::Unsat,
            2 => {
                let count = match d.u8()? {
                    0 => SolutionCount::Exact(d.u64()?),
                    1 => SolutionCount::AtLeast(d.u64()?),
                    t => return Err(format!("bad count tag {t}")),
                };
                let n_fate = d.len()?;
                if n_fate != space.vars.len() {
                    return Err(format!(
                        "memo covers {n_fate} variables, group has {}",
                        space.vars.len()
                    ));
                }
                let mut fate = Vec::with_capacity(n_fate);
                for _ in 0..n_fate {
                    fate.push(match d.u8()? {
                        0 => Fate::AlwaysTrue,
                        1 => Fate::AlwaysFalse,
                        2 => Fate::Both,
                        t => return Err(format!("bad fate tag {t}")),
                    });
                }
                Memo::Solved { count, fate }
            }
            t => return Err(format!("bad memo tag {t}")),
        };
        if matches!(inst.memo, Memo::Trivial) && inst.n_positive > 0 {
            return Err("trivial memo alongside censored observations".to_string());
        }
        Ok(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{ReferenceScratch, UninternedInstance};
    use churnlab_bgp::Granularity;
    use churnlab_core::analyze::{analyze, SolveConfig};
    use churnlab_core::instance::InstanceBuilder;
    use proptest::prelude::*;

    fn key() -> InstanceKey {
        InstanceKey {
            url_id: 3,
            anomaly: AnomalyType::Dns,
            window: window(),
        }
    }

    fn window() -> TimeWindow {
        TimeWindow::of(0, Granularity::Day, 365)
    }

    fn asns(v: &[u32]) -> Vec<Asn> {
        v.iter().map(|x| Asn(*x)).collect()
    }

    /// Drives an [`InstanceGroup`] the way a shard does, reporting the
    /// Dns cell (whose polarity tracks the `censored` flag; the other
    /// four cells see the same paths all-clean).
    struct Harness {
        table: PathTable,
        group: InstanceGroup,
        stats: IncrementalStats,
        scratch: SolveScratch,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                table: PathTable::new(),
                group: InstanceGroup::new(3, window()),
                stats: IncrementalStats::default(),
                scratch: SolveScratch::new(),
            }
        }

        fn observe(&mut self, path: &[Asn], censored: bool) {
            let pid = self.table.intern(path);
            let mut detected = AnomalySet::empty();
            if censored {
                detected.insert(AnomalyType::Dns);
            }
            self.group.observe(pid, &self.table, detected, 64, &mut self.stats, &mut self.scratch);
        }

        fn dns(&self) -> &IncrementalInstance {
            self.group.cell(AnomalyType::Dns)
        }

        fn outcome(&self) -> InstanceOutcome {
            self.dns().outcome(self.group.vars())
        }
    }

    /// Batch-analyse the same observation sequence with the pipeline's
    /// builder.
    fn batch_outcome(observations: &[(Vec<Asn>, bool)]) -> Option<InstanceOutcome> {
        let mut b = InstanceBuilder::new(key());
        for (path, censored) in observations {
            b.observe(path, *censored);
        }
        b.build().map(|inst| analyze(&inst, &SolveConfig::default()))
    }

    fn incremental_outcome(observations: &[(Vec<Asn>, bool)]) -> Option<InstanceOutcome> {
        let mut h = Harness::new();
        for (path, censored) in observations {
            h.observe(path, *censored);
        }
        if h.dns().is_empty() {
            None
        } else {
            Some(h.outcome())
        }
    }

    /// The retained un-interned implementation, as differential oracle.
    fn reference_outcome(observations: &[(Vec<Asn>, bool)]) -> Option<InstanceOutcome> {
        let mut inst = UninternedInstance::new(key());
        let mut stats = IncrementalStats::default();
        let mut scratch = ReferenceScratch::new();
        for (path, censored) in observations {
            inst.observe(path, *censored, SolveConfig::default().count_cap, &mut stats, &mut scratch);
        }
        if inst.is_empty() {
            None
        } else {
            Some(inst.outcome())
        }
    }

    #[test]
    fn unique_censor_identified_incrementally() {
        let mut h = Harness::new();
        h.observe(&asns(&[1, 2, 3]), true);
        h.observe(&asns(&[1, 2, 4]), false);
        let out = h.outcome();
        assert_eq!(out.solvability, Solvability::Unique);
        assert_eq!(out.censors, asns(&[3]));
        assert_eq!(out.eliminated, asns(&[1, 2, 4]));
        // The first positive is closed-form on the Dns cell; the clean
        // path exonerates potential censors, which is the one genuine
        // re-solve case (the other four cells stay Trivial throughout).
        assert_eq!(h.stats.resolves, 1);
        // A duplicate of either observation is a no-op for all 5 cells,
        // and a clean path over already-eliminated ASes is closed-form.
        h.observe(&asns(&[1, 2, 4]), false);
        assert_eq!(h.stats.duplicates, N_CELLS as u64);
        h.observe(&asns(&[1, 4]), false);
        assert_eq!(h.stats.resolves, 1, "implied units must not re-solve");
    }

    #[test]
    fn contradiction_is_absorbing_unsat() {
        let mut h = Harness::new();
        h.observe(&asns(&[5, 6]), true);
        h.observe(&asns(&[5, 6]), false);
        assert_eq!(h.outcome().solvability, Solvability::Unsat);
        // Everything after is a constant-time skip on the Dns cell.
        h.observe(&asns(&[7, 8]), true);
        h.observe(&asns(&[7]), false);
        assert_eq!(h.stats.unsat_skips, 2);
        let out = h.outcome();
        assert_eq!(out.solvability, Solvability::Unsat);
        assert_eq!(out.n_vars, 4);
        assert_eq!(out.n_observations, 4);
    }

    #[test]
    fn same_path_both_polarities_dedups_separately() {
        // The ID-based dedup keys on (PathId, polarity): the same path
        // observed censored AND clean is two distinct records (the
        // contradiction the paper keeps), while re-observing either
        // polarity is a duplicate.
        let mut h = Harness::new();
        h.observe(&asns(&[1, 2]), true);
        h.observe(&asns(&[1, 2]), false); // same id, other polarity: kept (Dns)
        h.observe(&asns(&[1, 2]), true); // duplicate censored: dropped
        h.observe(&asns(&[1, 2]), false); // duplicate clean: dropped
        assert_eq!(h.dns().len(), 2, "both polarities recorded once each");
        assert_eq!(h.outcome().solvability, Solvability::Unsat);
        assert_eq!(h.table.len(), 1, "one distinct path interned");
        assert_eq!(h.table.stats().hits, 3);
    }

    #[test]
    fn repeated_ases_on_a_path_collapse_to_one_variable() {
        // A path visiting the same AS twice (route with an AS-level
        // loop artifact) contributes that AS once to the variable space
        // and once per clause — so [9, 9] censored has models {9}, i.e.
        // a unique censor, exactly as the batch builder sees it.
        let seq = vec![(asns(&[9, 9]), true)];
        let batch = batch_outcome(&seq).expect("non-empty");
        let inc = incremental_outcome(&seq).expect("non-empty");
        assert_eq!(inc, batch);
        assert_eq!(inc.censors, asns(&[9]));
        assert_eq!(inc.n_vars, 1);
        // And through a longer mixed sequence with repeats.
        let seq = vec![
            (asns(&[1, 7, 1, 3]), true),
            (asns(&[1, 1]), false),
            (asns(&[3, 3, 3]), false),
        ];
        assert_eq!(incremental_outcome(&seq), batch_outcome(&seq));
    }

    #[test]
    fn clean_paths_arriving_first_are_equivalent() {
        let seq_a = vec![(asns(&[1, 2, 3]), true), (asns(&[1, 2, 4]), false)];
        let seq_b = vec![(asns(&[1, 2, 4]), false), (asns(&[1, 2, 3]), true)];
        assert_eq!(incremental_outcome(&seq_a), incremental_outcome(&seq_b));
        assert_eq!(incremental_outcome(&seq_a), batch_outcome(&seq_a));
    }

    #[test]
    fn duplicates_are_noops() {
        let mut h = Harness::new();
        h.observe(&asns(&[1, 2]), true);
        h.observe(&asns(&[1, 2]), true);
        assert_eq!(h.stats.duplicates, N_CELLS as u64, "all five cells dedup");
        assert_eq!(h.dns().len(), 1);
    }

    #[test]
    fn trivial_instance_matches_batch_when_analysed() {
        let seq = vec![(asns(&[1, 2]), false), (asns(&[2, 3]), false)];
        assert_eq!(incremental_outcome(&seq), batch_outcome(&seq));
        let out = incremental_outcome(&seq).unwrap();
        assert_eq!(out.solvability, Solvability::Unique);
        assert!(out.censors.is_empty());
        assert_eq!(out.eliminated_frac, 1.0);
    }

    #[test]
    fn churn_pins_down_shared_censor_any_order() {
        let obs = vec![
            (asns(&[1, 9, 3]), true),
            (asns(&[2, 9, 4]), true),
            (asns(&[1, 2, 3, 4]), false),
        ];
        // All 6 arrival orders agree with the batch result.
        let orders: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let expect = batch_outcome(&obs).unwrap();
        assert_eq!(expect.censors, asns(&[9]));
        for order in orders {
            let seq: Vec<_> = order.iter().map(|&i| obs[i].clone()).collect();
            assert_eq!(incremental_outcome(&seq).unwrap(), expect, "order {order:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Over a small AS universe (model counts stay below the cap, so
        /// outcomes are exact), the interned state machine agrees with
        /// the batch analyze() AND the retained un-interned reference
        /// for the same observations — in the given order AND reversed
        /// (order independence). Paths draw with repetition from a tiny
        /// universe, so repeated ASes within a path are exercised.
        #[test]
        fn prop_interned_matches_batch_and_reference(
            observations in proptest::collection::vec(
                (proptest::collection::vec(1u32..6, 1..5), any::<bool>()),
                1..10,
            ),
        ) {
            let obs: Vec<(Vec<Asn>, bool)> = observations
                .into_iter()
                .map(|(path, censored)| (asns(&path), censored))
                .collect();
            let batch = batch_outcome(&obs);
            prop_assert_eq!(incremental_outcome(&obs), batch.clone());
            prop_assert_eq!(reference_outcome(&obs), batch.clone());
            let reversed: Vec<_> = obs.iter().rev().cloned().collect();
            prop_assert_eq!(incremental_outcome(&reversed), batch);
        }
    }
}
