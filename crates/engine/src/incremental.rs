//! Incremental per-instance tomography state.
//!
//! The batch pipeline buffers a URL's observations and runs a full
//! census (AllSAT count + backbone probes) per instance at flush time.
//! [`IncrementalInstance`] instead keeps the instance *solved at all
//! times*: each new observation is folded into a memoized
//! unit-propagation/backbone state, and in the common cases the update is
//! a constant number of hash probes per path AS — no solver call at all:
//!
//! * **early-unsat** — clauses only ever shrink the model set, so an
//!   unsatisfiable instance stays unsatisfiable forever; further
//!   observations are recorded and skipped;
//! * **already-decided** — when the memoized backbone already fixes every
//!   AS a new observation mentions, the model set provably cannot change
//!   (clean path over always-False ASes) or changes in a closed form
//!   (positive clause satisfied by an always-True AS, or needing exactly
//!   the observation's fresh ASes);
//! * otherwise an **incremental re-solve** runs: the memoized backbone
//!   literals — valid under clause addition, since models only shrink —
//!   seed unit propagation, and the census runs over the *reduced*
//!   formula (free ASes only) instead of the raw clause set.
//!
//! The produced [`InstanceOutcome`] is exactly what
//! [`churnlab_core::analyze::analyze`] computes for the same observation
//! set, in any arrival order — the engine's order-independence proof
//! leans on this equivalence (see the crate's property tests).

use churnlab_core::analyze::InstanceOutcome;
use churnlab_core::instance::{InstanceKey, Observation};
use churnlab_sat::{CompiledCnf, Lit, SolutionCount, Solvability, SolverCtx, Var};
use churnlab_topology::Asn;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};

/// What is known about one AS across all models of the current clause
/// set. `Always*` knowledge is stable under new observations (models only
/// shrink), which is what makes the memo reusable; only `Both` entries
/// can tighten.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    /// True in every model — a definite censor.
    AlwaysTrue,
    /// False in every model — a definite non-censor.
    AlwaysFalse,
    /// True in some models, false in others — a potential censor.
    Both,
}

/// The memoized solve state.
#[derive(Debug, Clone)]
enum Memo {
    /// No censored observation yet: the all-False assignment is the
    /// unique model (the `require_positive` "trivial" case).
    Trivial,
    /// Proven unsatisfiable — absorbing.
    Unsat,
    /// Satisfiable, with the (possibly capped) model count and the exact
    /// per-AS backbone knowledge.
    Solved { count: SolutionCount, fate: HashMap<Asn, Fate> },
}

/// Counters describing how much work the incremental path saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IncrementalStats {
    /// Observations that changed an instance (post-dedup).
    pub updates: u64,
    /// Duplicate observations dropped by dedup.
    pub duplicates: u64,
    /// Updates resolved by a closed-form state transition (no solver).
    pub direct_updates: u64,
    /// Updates skipped because the instance was already unsatisfiable.
    pub unsat_skips: u64,
    /// Updates that ran a reduced-formula re-solve.
    pub resolves: u64,
}

impl IncrementalStats {
    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: IncrementalStats) {
        self.updates += other.updates;
        self.duplicates += other.duplicates;
        self.direct_updates += other.direct_updates;
        self.unsat_skips += other.unsat_skips;
        self.resolves += other.resolves;
    }
}

/// Reusable solving scratch shared by every instance a worker owns: the
/// watched-literal [`SolverCtx`], a [`CompiledCnf`] the reduced formulas
/// are built into, and the AS↔variable mapping buffers. All of it is
/// rewound per re-solve, never freed, so a steady-state shard performs
/// zero solver allocations per observation.
#[derive(Debug, Default)]
pub struct SolveScratch {
    ctx: SolverCtx,
    cnf: CompiledCnf,
    var_of: HashMap<Asn, Var>,
    fixed: HashMap<Asn, bool>,
    free_vars: Vec<Asn>,
}

impl SolveScratch {
    /// Fresh scratch (buffers grow to steady-state sizes on first use).
    pub fn new() -> Self {
        SolveScratch::default()
    }
}

/// `seen` mask bit: a clean observation of the path was recorded.
const SEEN_CLEAN: u8 = 1;
/// `seen` mask bit: a censored observation of the path was recorded.
const SEEN_CENSORED: u8 = 2;

/// One (URL × window × anomaly) instance kept incrementally solved.
#[derive(Debug, Clone)]
pub struct IncrementalInstance {
    key: InstanceKey,
    /// Dedup index: path → which polarities were already observed.
    /// Keyed by owned path but probed by slice, so the (frequent)
    /// duplicate observation costs no allocation.
    seen: HashMap<Vec<Asn>, u8>,
    observations: Vec<Observation>,
    n_positive: usize,
    /// Distinct ASes, first-appearance order.
    vars: Vec<Asn>,
    var_set: HashSet<Asn>,
    /// Deduplicated censored paths (the positive clauses).
    pos_clauses: Vec<Vec<Asn>>,
    /// ASes appearing on some clean path — axiom unit negations.
    neg_forced: HashSet<Asn>,
    memo: Memo,
}

/// Saturate a model count at the enumeration cap, mirroring the batch
/// census: exact at or below the cap, a lower bound strictly above it.
fn cap_count(value: u128, cap: u64) -> SolutionCount {
    if value > u128::from(cap) {
        SolutionCount::AtLeast(cap)
    } else {
        SolutionCount::Exact(value as u64)
    }
}

/// Multiply a (possibly capped) count by an exact factor (>= 1).
fn scale_count(count: SolutionCount, factor: u128, cap: u64) -> SolutionCount {
    debug_assert!(factor >= 1);
    match count {
        SolutionCount::Exact(n) => cap_count(u128::from(n) * factor, cap),
        SolutionCount::AtLeast(_) => SolutionCount::AtLeast(cap),
    }
}

/// `2^n` clamped into `u128` range (n is a path-length-bounded AS count).
fn pow2(n: usize) -> u128 {
    if n >= 127 {
        u128::MAX
    } else {
        1u128 << n
    }
}

impl IncrementalInstance {
    /// Fresh instance.
    pub fn new(key: InstanceKey) -> Self {
        IncrementalInstance {
            key,
            seen: HashMap::new(),
            observations: Vec::new(),
            n_positive: 0,
            vars: Vec::new(),
            var_set: HashSet::new(),
            pos_clauses: Vec::new(),
            neg_forced: HashSet::new(),
            memo: Memo::Trivial,
        }
    }

    /// The instance identity.
    pub fn key(&self) -> InstanceKey {
        self.key
    }

    /// True once at least one censored observation arrived.
    pub fn has_positive(&self) -> bool {
        self.n_positive > 0
    }

    /// Distinct observations so far.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True if nothing observed.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The deduplicated censored paths (leakage analysis input).
    pub fn censored_paths(&self) -> impl Iterator<Item = &[Asn]> {
        self.observations.iter().filter(|o| o.censored).map(|o| o.path.as_slice())
    }

    /// Fold in one observation, keeping the memoized solve state current.
    /// `cap` is the enumeration cap ([`churnlab_core::analyze::SolveConfig`]);
    /// `scratch` is the worker-owned reusable solver state — re-solves run
    /// on its warm context instead of allocating a solver per update.
    pub fn observe(
        &mut self,
        path: &[Asn],
        censored: bool,
        cap: u64,
        stats: &mut IncrementalStats,
        scratch: &mut SolveScratch,
    ) {
        let bit = if censored { SEEN_CENSORED } else { SEEN_CLEAN };
        match self.seen.get_mut(path) {
            Some(mask) if *mask & bit != 0 => {
                stats.duplicates += 1;
                return;
            }
            Some(mask) => *mask |= bit,
            None => {
                self.seen.insert(path.to_vec(), bit);
            }
        }
        self.observations.push(Observation { path: path.to_vec(), censored });
        stats.updates += 1;
        for a in path {
            if self.var_set.insert(*a) {
                self.vars.push(*a);
            }
        }
        if censored {
            self.n_positive += 1;
            self.pos_clauses.push(path.to_vec());
        } else {
            self.neg_forced.extend(path.iter().copied());
        }

        if matches!(self.memo, Memo::Unsat) {
            stats.unsat_skips += 1;
            return;
        }
        if censored {
            self.apply_positive(path, cap, stats, scratch);
        } else {
            self.apply_negative(path, cap, stats, scratch);
        }
    }

    /// New positive clause (censored path) against the current memo.
    fn apply_positive(
        &mut self,
        path: &[Asn],
        cap: u64,
        stats: &mut IncrementalStats,
        scratch: &mut SolveScratch,
    ) {
        match &mut self.memo {
            Memo::Unsat => unreachable!("handled by caller"),
            Memo::Trivial => {
                // First censored observation: every previously seen AS is
                // a clean-path axiom (False), so the models are exactly
                // the non-empty subsets of the path's unexonerated ASes.
                let candidates: BTreeSet<Asn> =
                    path.iter().filter(|a| !self.neg_forced.contains(a)).copied().collect();
                stats.direct_updates += 1;
                if candidates.is_empty() {
                    self.memo = Memo::Unsat;
                    return;
                }
                let mut fate: HashMap<Asn, Fate> = self
                    .vars
                    .iter()
                    .map(|a| (*a, Fate::AlwaysFalse))
                    .collect();
                if candidates.len() == 1 {
                    fate.insert(*candidates.iter().next().expect("non-empty"), Fate::AlwaysTrue);
                    self.memo = Memo::Solved { count: SolutionCount::Exact(1), fate };
                } else {
                    for a in &candidates {
                        fate.insert(*a, Fate::Both);
                    }
                    let count = cap_count(pow2(candidates.len()) - 1, cap);
                    self.memo = Memo::Solved { count, fate };
                }
            }
            Memo::Solved { count, fate } => {
                let fresh: BTreeSet<Asn> =
                    path.iter().filter(|a| !fate.contains_key(a)).copied().collect();
                let satisfied = path.iter().any(|a| fate.get(a) == Some(&Fate::AlwaysTrue));
                if satisfied {
                    // The clause already holds in every model; the fresh
                    // ASes it introduces are entirely free.
                    stats.direct_updates += 1;
                    if !fresh.is_empty() {
                        *count = scale_count(*count, pow2(fresh.len()), cap);
                        for a in &fresh {
                            fate.insert(*a, Fate::Both);
                        }
                    }
                    return;
                }
                let undecided = path
                    .iter()
                    .any(|a| fate.get(a) == Some(&Fate::Both));
                if undecided {
                    // The clause interacts with genuinely ambiguous ASes:
                    // re-solve over the reduced formula.
                    stats.resolves += 1;
                    self.resolve(cap, scratch);
                    return;
                }
                // Every known AS on the path is always-False: the clause
                // can only be satisfied by its fresh ASes.
                stats.direct_updates += 1;
                match fresh.len() {
                    0 => self.memo = Memo::Unsat,
                    1 => {
                        // Exactly one candidate: a censor identified
                        // incrementally; the model count is unchanged.
                        fate.insert(*fresh.iter().next().expect("one"), Fate::AlwaysTrue);
                    }
                    n => {
                        *count = scale_count(*count, pow2(n) - 1, cap);
                        for a in &fresh {
                            fate.insert(*a, Fate::Both);
                        }
                    }
                }
            }
        }
    }

    /// New unit negations (clean path) against the current memo.
    fn apply_negative(
        &mut self,
        path: &[Asn],
        cap: u64,
        stats: &mut IncrementalStats,
        scratch: &mut SolveScratch,
    ) {
        match &mut self.memo {
            Memo::Unsat => unreachable!("handled by caller"),
            Memo::Trivial => {
                // Still no positive clause; all-False remains the model.
                stats.direct_updates += 1;
            }
            Memo::Solved { fate, .. } => {
                if path.iter().any(|a| fate.get(a) == Some(&Fate::AlwaysTrue)) {
                    // A definite censor observed clean in the same window:
                    // contradiction (noise or a policy change).
                    stats.direct_updates += 1;
                    self.memo = Memo::Unsat;
                    return;
                }
                if path.iter().all(|a| !matches!(fate.get(a), Some(Fate::Both))) {
                    // Every known AS here is already always-False; the new
                    // units are implied and fresh ASes are plain axioms.
                    stats.direct_updates += 1;
                    for a in path {
                        fate.entry(*a).or_insert(Fate::AlwaysFalse);
                    }
                    return;
                }
                // A potential censor just got exonerated: re-solve.
                stats.resolves += 1;
                self.resolve(cap, scratch);
            }
        }
    }

    /// Incremental re-solve: seed unit propagation with the axiom units
    /// and the memoized backbone (both survive clause addition), then run
    /// the census over the reduced formula only — on the worker's warm
    /// [`SolverCtx`], building the reduced CNF into its reusable CSR
    /// arena. The only per-call heap traffic is the recycled fate map's
    /// occasional growth.
    fn resolve(&mut self, cap: u64, scratch: &mut SolveScratch) {
        let fixed = &mut scratch.fixed;
        fixed.clear();
        for a in &self.neg_forced {
            fixed.insert(*a, false);
        }
        // Take the memo (leaving the absorbing Unsat in place, which every
        // early return below wants): its fate seeds the fixed set, and its
        // map is recycled as the next memo's allocation.
        let mut fate = match std::mem::replace(&mut self.memo, Memo::Unsat) {
            Memo::Solved { fate, .. } => {
                for (a, f) in &fate {
                    let v = match f {
                        Fate::AlwaysTrue => true,
                        Fate::AlwaysFalse => false,
                        Fate::Both => continue,
                    };
                    if fixed.insert(*a, v) == Some(!v) {
                        return;
                    }
                }
                let mut fate = fate;
                fate.clear();
                fate
            }
            _ => HashMap::with_capacity(self.vars.len()),
        };
        // Unit propagation over the positive clauses to fixpoint. A clause
        // is unit when exactly one *distinct* AS on it is unfixed.
        loop {
            let mut changed = false;
            for clause in &self.pos_clauses {
                if clause.iter().any(|a| fixed.get(a) == Some(&true)) {
                    continue;
                }
                let mut first_free: Option<Asn> = None;
                let mut multi = false;
                for a in clause {
                    if fixed.contains_key(a) {
                        continue;
                    }
                    match first_free {
                        None => first_free = Some(*a),
                        Some(f) if f != *a => {
                            multi = true;
                            break;
                        }
                        Some(_) => {}
                    }
                }
                match first_free {
                    None => return, // conflict: memo stays Unsat
                    Some(a) if !multi => {
                        fixed.insert(a, true);
                        changed = true;
                    }
                    Some(_) => {}
                }
            }
            if !changed {
                break;
            }
        }
        // Census over the reduced formula. Unconstrained free ASes count
        // as 2^k model blocks, exactly as the batch census sees them.
        let var_of = &mut scratch.var_of;
        let free_vars = &mut scratch.free_vars;
        var_of.clear();
        free_vars.clear();
        for a in &self.vars {
            if !fixed.contains_key(a) {
                var_of.insert(*a, Var(free_vars.len() as u32));
                free_vars.push(*a);
            }
        }
        scratch.cnf.reset(free_vars.len());
        for clause in &self.pos_clauses {
            if clause.iter().any(|a| fixed.get(a) == Some(&true)) {
                continue;
            }
            scratch
                .cnf
                .push_clause(clause.iter().filter_map(|a| var_of.get(a)).map(|v| Lit::pos(*v)));
        }
        let result = scratch.ctx.census(&scratch.cnf, cap);
        let Some(backbone) = result.backbone else {
            return; // memo stays Unsat
        };
        for (a, v) in fixed.iter() {
            fate.insert(*a, if *v { Fate::AlwaysTrue } else { Fate::AlwaysFalse });
        }
        for (i, a) in free_vars.iter().enumerate() {
            let f = match (backbone.ever_true[i], backbone.ever_false[i]) {
                (true, false) => Fate::AlwaysTrue,
                (false, true) => Fate::AlwaysFalse,
                // (false, false) cannot happen for a satisfiable formula.
                _ => Fate::Both,
            };
            fate.insert(*a, f);
        }
        self.memo = Memo::Solved { count: result.count, fate };
    }

    /// The analysed outcome — identical to running
    /// [`churnlab_core::analyze::analyze`] on the batch-built instance
    /// over the same observation set.
    pub fn outcome(&self) -> InstanceOutcome {
        let n_vars = self.vars.len();
        let (solvability, bucket, censors, potential, eliminated) = match &self.memo {
            Memo::Trivial => {
                // Clean observations only: the all-False assignment is
                // the unique model and every AS is exonerated.
                let mut elim = self.vars.clone();
                elim.sort();
                (Solvability::Unique, 1u8, Vec::new(), Vec::new(), elim)
            }
            Memo::Unsat => (Solvability::Unsat, 0, Vec::new(), Vec::new(), Vec::new()),
            Memo::Solved { count, fate } => {
                let solvability = count.solvability();
                debug_assert_ne!(solvability, Solvability::Unsat, "Solved memo is satisfiable");
                let mut censors = Vec::new();
                let mut potential = Vec::new();
                let mut eliminated = Vec::new();
                for (a, f) in fate {
                    match f {
                        Fate::AlwaysTrue => censors.push(*a),
                        Fate::AlwaysFalse => eliminated.push(*a),
                        Fate::Both => potential.push(*a),
                    }
                }
                debug_assert!(
                    solvability != Solvability::Unique || potential.is_empty(),
                    "a unique model fixes every variable"
                );
                censors.sort();
                potential.sort();
                eliminated.sort();
                (solvability, count.bucket(), censors, potential, eliminated)
            }
        };
        let eliminated_frac =
            if n_vars == 0 { 0.0 } else { eliminated.len() as f64 / n_vars as f64 };
        InstanceOutcome {
            key: self.key,
            n_vars,
            n_observations: self.observations.len(),
            n_positive: self.n_positive,
            solvability,
            bucket,
            censors,
            potential_censors: potential,
            eliminated,
            eliminated_frac,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_bgp::{Granularity, TimeWindow};
    use churnlab_core::analyze::{analyze, SolveConfig};
    use churnlab_core::instance::InstanceBuilder;
    use churnlab_platform::AnomalyType;
    use proptest::prelude::*;

    fn key() -> InstanceKey {
        InstanceKey {
            url_id: 3,
            anomaly: AnomalyType::Dns,
            window: TimeWindow::of(0, Granularity::Day, 365),
        }
    }

    fn asns(v: &[u32]) -> Vec<Asn> {
        v.iter().map(|x| Asn(*x)).collect()
    }

    /// Batch-analyse the same observation sequence with the pipeline's
    /// builder.
    fn batch_outcome(observations: &[(Vec<Asn>, bool)]) -> Option<InstanceOutcome> {
        let mut b = InstanceBuilder::new(key());
        for (path, censored) in observations {
            b.observe(path, *censored);
        }
        b.build().map(|inst| analyze(&inst, &SolveConfig::default()))
    }

    fn incremental_outcome(observations: &[(Vec<Asn>, bool)]) -> Option<InstanceOutcome> {
        let mut inst = IncrementalInstance::new(key());
        let mut stats = IncrementalStats::default();
        let mut scratch = SolveScratch::new();
        for (path, censored) in observations {
            inst.observe(path, *censored, SolveConfig::default().count_cap, &mut stats, &mut scratch);
        }
        if inst.is_empty() {
            None
        } else {
            Some(inst.outcome())
        }
    }

    #[test]
    fn unique_censor_identified_incrementally() {
        let mut inst = IncrementalInstance::new(key());
        let mut stats = IncrementalStats::default();
        let mut scratch = SolveScratch::new();
        inst.observe(&asns(&[1, 2, 3]), true, 64, &mut stats, &mut scratch);
        inst.observe(&asns(&[1, 2, 4]), false, 64, &mut stats, &mut scratch);
        let out = inst.outcome();
        assert_eq!(out.solvability, Solvability::Unique);
        assert_eq!(out.censors, asns(&[3]));
        assert_eq!(out.eliminated, asns(&[1, 2, 4]));
        // The first positive is closed-form; the clean path exonerates
        // potential censors, which is the one genuine re-solve case.
        assert_eq!(stats.direct_updates, 1);
        assert_eq!(stats.resolves, 1);
        // A duplicate of either observation is then a no-op, and a clean
        // path over already-eliminated ASes is closed-form again.
        inst.observe(&asns(&[1, 2, 4]), false, 64, &mut stats, &mut scratch);
        assert_eq!(stats.duplicates, 1);
        inst.observe(&asns(&[1, 4]), false, 64, &mut stats, &mut scratch);
        assert_eq!(stats.direct_updates, 2);
        assert_eq!(stats.resolves, 1, "implied units must not re-solve");
    }

    #[test]
    fn clean_paths_arriving_first_are_equivalent() {
        let seq_a = vec![(asns(&[1, 2, 3]), true), (asns(&[1, 2, 4]), false)];
        let seq_b = vec![(asns(&[1, 2, 4]), false), (asns(&[1, 2, 3]), true)];
        assert_eq!(incremental_outcome(&seq_a), incremental_outcome(&seq_b));
        assert_eq!(incremental_outcome(&seq_a), batch_outcome(&seq_a));
    }

    #[test]
    fn contradiction_is_absorbing_unsat() {
        let mut inst = IncrementalInstance::new(key());
        let mut stats = IncrementalStats::default();
        let mut scratch = SolveScratch::new();
        inst.observe(&asns(&[5, 6]), true, 64, &mut stats, &mut scratch);
        inst.observe(&asns(&[5, 6]), false, 64, &mut stats, &mut scratch);
        assert_eq!(inst.outcome().solvability, Solvability::Unsat);
        // Everything after is a constant-time skip.
        inst.observe(&asns(&[7, 8]), true, 64, &mut stats, &mut scratch);
        inst.observe(&asns(&[7]), false, 64, &mut stats, &mut scratch);
        assert_eq!(stats.unsat_skips, 2);
        let out = inst.outcome();
        assert_eq!(out.solvability, Solvability::Unsat);
        assert_eq!(out.n_vars, 4);
        assert_eq!(out.n_observations, 4);
    }

    #[test]
    fn duplicates_are_noops() {
        let mut inst = IncrementalInstance::new(key());
        let mut stats = IncrementalStats::default();
        let mut scratch = SolveScratch::new();
        inst.observe(&asns(&[1, 2]), true, 64, &mut stats, &mut scratch);
        inst.observe(&asns(&[1, 2]), true, 64, &mut stats, &mut scratch);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn trivial_instance_matches_batch_when_analysed() {
        let seq = vec![(asns(&[1, 2]), false), (asns(&[2, 3]), false)];
        assert_eq!(incremental_outcome(&seq), batch_outcome(&seq));
        let out = incremental_outcome(&seq).unwrap();
        assert_eq!(out.solvability, Solvability::Unique);
        assert!(out.censors.is_empty());
        assert_eq!(out.eliminated_frac, 1.0);
    }

    #[test]
    fn churn_pins_down_shared_censor_any_order() {
        let obs = vec![
            (asns(&[1, 9, 3]), true),
            (asns(&[2, 9, 4]), true),
            (asns(&[1, 2, 3, 4]), false),
        ];
        // All 6 arrival orders agree with the batch result.
        let orders: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let expect = batch_outcome(&obs).unwrap();
        assert_eq!(expect.censors, asns(&[9]));
        for order in orders {
            let seq: Vec<_> = order.iter().map(|&i| obs[i].clone()).collect();
            assert_eq!(incremental_outcome(&seq).unwrap(), expect, "order {order:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Over a small AS universe (model counts stay below the cap, so
        /// outcomes are exact), the incremental state machine agrees with
        /// the batch analyze() for the same observations — in the given
        /// order AND reversed (order independence).
        #[test]
        fn prop_incremental_matches_batch(
            observations in proptest::collection::vec(
                (proptest::collection::vec(1u32..6, 1..5), any::<bool>()),
                1..10,
            ),
        ) {
            let obs: Vec<(Vec<Asn>, bool)> = observations
                .into_iter()
                .map(|(path, censored)| (asns(&path), censored))
                .collect();
            let batch = batch_outcome(&obs);
            prop_assert_eq!(incremental_outcome(&obs), batch.clone());
            let reversed: Vec<_> = obs.iter().rev().cloned().collect();
            prop_assert_eq!(incremental_outcome(&reversed), batch);
        }
    }
}
