//! Engine-side observability: the handles shard workers and the merge
//! publish through.
//!
//! The engine itself stays obs-optional: constructed plainly it holds no
//! registry, takes no atomic ops, and emits nothing — that *stripped*
//! configuration is the baseline the bench's overhead gate compares
//! against. Constructed with [`EngineObs`]
//! ([`crate::Engine::with_context_obs`]), each shard worker gets a
//! [`ShardObs`] of pre-registered handles:
//!
//! * `churnlab_measurements_total{shard}` — raw measurements routed in;
//! * `churnlab_observations_total{shard}` — conversions that survived
//!   the §3.1 elimination rules (one relaxed `fetch_add` per
//!   measurement — the only per-measurement instrumentation);
//! * `churnlab_phase_nanos_total{phase,shard}` — on-CPU time by phase
//!   (`convert` / `intern` at batch granularity, `resolve` per re-solve,
//!   plus the merge thread's `phase="merge"` series);
//! * `churnlab_windows_open{shard}` — live (URL × window) groups;
//! * `churnlab_resolve_nanos{shard}` — re-solve latency distribution
//!   (wall-timed: re-solves are rare enough that an `Instant` pair per
//!   call is noise).
//!
//! The optional [`Journal`] records the run's narrative — window
//! opened/closed, cell solved, worker panic — precisely enough that the
//! event stream *reconciles* with the final report (see the
//! `journal_reconcile` integration test).

use churnlab_bgp::TimeWindow;
use churnlab_core::analyze::InstanceOutcome;
use churnlab_obs::{Counter, Gauge, Histogram, Journal, Registry};

/// Names/help shared by every series the engine registers, so the shard
/// workers and the stats mirror agree on them.
pub(crate) const PHASE_NANOS: (&str, &str) =
    ("churnlab_phase_nanos_total", "on-CPU nanoseconds by phase");

/// Observability context for one [`crate::Engine`]: a metrics registry
/// plus an optional event journal. Cheap to construct; the engine clones
/// per-shard handles out of it at spawn time.
pub struct EngineObs {
    registry: Registry,
    journal: Option<Journal>,
}

impl EngineObs {
    /// Observability over `registry`, with no journal.
    pub fn new(registry: Registry) -> Self {
        EngineObs { registry, journal: None }
    }

    /// Attach an event journal.
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// The registry every engine series is registered in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The event journal, if one is attached.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Record a worker panic: journal event plus a counter, so the
    /// metrics surface shows it even when no journal is attached.
    pub(crate) fn worker_panic(&self, shard: usize, message: &str) {
        self.registry
            .counter("churnlab_worker_panics_total", "shard workers lost to panics", &[])
            .inc();
        if let Some(j) = &self.journal {
            j.emit_tagged(
                "worker_panic",
                &[("shard", shard as u64)],
                &[("message", message)],
            );
        }
    }
}

/// Per-shard observation handles, cloned out of an [`EngineObs`] before
/// the worker thread spawns. Everything here is pre-registered: the hot
/// path never touches the registry lock.
#[derive(Debug)]
pub(crate) struct ShardObs {
    shard: u64,
    journal: Option<Journal>,
    pub(crate) measurements: Counter,
    pub(crate) observations: Counter,
    pub(crate) phase_convert: Counter,
    pub(crate) phase_intern: Counter,
    pub(crate) windows_open: Gauge,
    pub(crate) resolve: ResolveObs,
}

impl ShardObs {
    /// Register shard `shard`'s series and clone out the handles.
    pub(crate) fn new(obs: &EngineObs, shard: usize) -> ShardObs {
        let reg = &obs.registry;
        let s = shard.to_string();
        let shard_label: &[(&str, &str)] = &[("shard", &s)];
        ShardObs {
            shard: shard as u64,
            journal: obs.journal.clone(),
            measurements: reg.counter(
                "churnlab_measurements_total",
                "raw measurements ingested, per shard",
                shard_label,
            ),
            observations: reg.counter(
                "churnlab_observations_total",
                "converted observations folded into shard state",
                shard_label,
            ),
            phase_convert: reg.counter(
                PHASE_NANOS.0,
                PHASE_NANOS.1,
                &[("phase", "convert"), ("shard", &s)],
            ),
            phase_intern: reg.counter(
                PHASE_NANOS.0,
                PHASE_NANOS.1,
                &[("phase", "intern"), ("shard", &s)],
            ),
            windows_open: reg.gauge(
                "churnlab_windows_open",
                "churn windows (URL x window groups) currently open",
                shard_label,
            ),
            resolve: ResolveObs {
                latency: reg.histogram(
                    "churnlab_resolve_nanos",
                    "incremental re-solve latency, nanoseconds",
                    shard_label,
                ),
                nanos: reg.counter(
                    PHASE_NANOS.0,
                    PHASE_NANOS.1,
                    &[("phase", "resolve"), ("shard", &s)],
                ),
            },
        }
    }

    /// A fresh (URL × window) group came into existence.
    pub(crate) fn window_opened(&self, url_id: u32, window: TimeWindow) {
        self.windows_open.add(1);
        if let Some(j) = &self.journal {
            j.emit_tagged(
                "window_opened",
                &[
                    ("shard", self.shard),
                    ("url_id", u64::from(url_id)),
                    ("window_index", u64::from(window.index)),
                ],
                &[("granularity", &format!("{:?}", window.granularity))],
            );
        }
    }

    /// A group reached the final report: its per-cell tallies are fixed.
    pub(crate) fn window_closed(
        &self,
        url_id: u32,
        window: TimeWindow,
        cells_reported: u64,
        cells_trivial: u64,
    ) {
        self.windows_open.add(-1);
        if let Some(j) = &self.journal {
            j.emit_tagged(
                "window_closed",
                &[
                    ("shard", self.shard),
                    ("url_id", u64::from(url_id)),
                    ("window_index", u64::from(window.index)),
                    ("cells_reported", cells_reported),
                    ("cells_trivial", cells_trivial),
                ],
                &[("granularity", &format!("{:?}", window.granularity))],
            );
        }
    }

    /// One analysed cell crossed into the final report.
    pub(crate) fn cell_solved(&self, outcome: &InstanceOutcome) {
        if let Some(j) = &self.journal {
            j.emit_tagged(
                "cell_solved",
                &[
                    ("shard", self.shard),
                    ("url_id", u64::from(outcome.key.url_id)),
                    ("window_index", u64::from(outcome.key.window.index)),
                    ("censors", outcome.censors.len() as u64),
                    ("potential_censors", outcome.potential_censors.len() as u64),
                ],
                &[
                    ("anomaly", &format!("{:?}", outcome.key.anomaly)),
                    ("solvability", &format!("{:?}", outcome.solvability)),
                ],
            );
        }
    }
}

/// Re-solve timing handles threaded into the worker's
/// [`crate::SolveScratch`], so `IncrementalInstance::resolve` can time
/// itself without knowing anything else about the shard.
#[derive(Debug, Clone)]
pub(crate) struct ResolveObs {
    pub(crate) latency: Histogram,
    pub(crate) nanos: Counter,
}
