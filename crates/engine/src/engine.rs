//! The sharded engine: ingestion routing, shard workers, report merging,
//! the window-retirement fold protocol, and checkpoint/restore.

use crate::ckpt::{self, Dec, Enc, RestoreError, MAGIC, VERSION};
use crate::incremental::IncrementalStats;
use crate::intern::InternStats;
use crate::obs::{EngineObs, ShardObs, PHASE_NANOS};
use crate::shard::{run_worker, CompactCut, Msg, ShardReport, ShardState, SolvedCell};
use churnlab_core::accumulate::FindingsAccumulator;
use churnlab_core::analyze::InstanceOutcome;
use churnlab_core::convert::ConversionStats;
use churnlab_core::pipeline::{ChurnMode, PipelineConfig, PipelineResults};
use churnlab_core::{ChurnAccumulator, RetiredChurn};
use churnlab_obs::{thread_cpu_nanos, Registry};
use churnlab_platform::{Measurement, Platform};
use churnlab_sat::CtxStats;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// The tomography configuration (identical semantics to the batch
    /// [`churnlab_core::pipeline::Pipeline`]).
    pub pipeline: PipelineConfig,
    /// Shard worker count; `0` means one per available core.
    pub shards: usize,
    /// Bounded per-shard queue depth in messages (backpressure: sends
    /// block when a shard falls this far behind; a message is one direct
    /// ingest or one feeder chunk).
    pub queue_capacity: usize,
    /// Lateness horizon in days: a (URL × window) group retires — its
    /// cells solved once, its solver state freed — when the shard's
    /// high-water day passes `window end + horizon`. `None` (default)
    /// keeps every group live forever, reproducing pre-lifecycle results
    /// byte for byte. Defaults on deserialize so stored configs parse.
    #[serde(default)]
    pub window_horizon: Option<u32>,
}

impl EngineConfig {
    /// Default shard/queue sizing over a pipeline configuration.
    pub fn new(pipeline: PipelineConfig) -> Self {
        EngineConfig { pipeline, shards: 0, queue_capacity: 1024, window_horizon: None }
    }

    /// Override the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Set a window-retirement lateness horizon (days).
    pub fn with_window_horizon(mut self, days: u32) -> Self {
        self.window_horizon = Some(days);
        self
    }

    fn resolved_shards(&self) -> usize {
        if self.shards != 0 {
            return self.shards;
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Per-thread busy-time attribution, nanoseconds. Shard workers account
/// every nanosecond they spend converting, solving, and building
/// reports; the merge accounts its own serial section. Together these
/// give the bench an Amdahl-style critical path (`max shard busy +
/// merge`) that exposes a serialized engine even on machines with fewer
/// cores than shards — the basis of the committed scaling-efficiency
/// gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineBusy {
    /// Sum of all shard workers' busy time — the run's total parallel
    /// work (grows slightly with shard count: per-shard interners
    /// re-intern paths that cross shards).
    pub shard_total_nanos: u64,
    /// The slowest shard worker's busy time — the parallel section's
    /// critical path. Flat scaling shows up here: a serialized engine
    /// has `max ≈ total`.
    pub shard_max_nanos: u64,
    /// Critical-path cost of the merge that produced this report: the
    /// merging thread's on-CPU time plus the slowest parallel
    /// accumulation worker (wall time where the CPU clock is
    /// unavailable). The serial section at the snapshot boundary.
    pub merge_nanos: u64,
}

/// Window-lifecycle counters, summed over shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetireStats {
    /// (URL × window) groups retired under the lateness horizon.
    pub windows_retired: u64,
    /// Cells solved at retirement time.
    pub cells_retired: u64,
    /// Observations dropped because their tomography window had already
    /// retired.
    pub late_dropped: u64,
    /// Churn samples dropped below the fold frontier.
    pub churn_late_dropped: u64,
}

/// Aggregate engine-side work counters (incremental-solve effectiveness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Shard workers used.
    pub shards: usize,
    /// Converted observations routed to shards.
    pub observations: u64,
    /// Per-instance incremental-solve counters, summed over shards.
    pub incremental: IncrementalStats,
    /// Path-interner counters, summed over shards (a path routed to two
    /// shards counts as distinct in each — distinctness is per shard).
    /// Describes the *ingest* stream: in the deferred
    /// [`churnlab_core::pipeline::ChurnMode::FirstPathOnly`] ablation,
    /// where ingestion buffers rather than interns, these stay zero.
    /// Defaults on deserialize so pre-interning stats blobs still parse.
    #[serde(default)]
    pub interner: InternStats,
    /// Busy-time attribution for this report's cut. Defaults on
    /// deserialize so pre-accounting stats blobs still parse.
    #[serde(default)]
    pub busy: EngineBusy,
    /// SAT-solver work counters, summed over the shards' warm contexts
    /// (propagations, backtracks, censuses, models). Defaults on
    /// deserialize so pre-solver-stats blobs still parse.
    #[serde(default)]
    pub sat: CtxStats,
    /// Window-lifecycle counters. Defaults on deserialize so
    /// pre-lifecycle stats blobs still parse.
    #[serde(default)]
    pub retire: RetireStats,
}

/// Mirror a `u64` counter value into an absolute gauge (gauges are
/// `i64`; values past `i64::MAX` saturate, which nothing real reaches).
fn stats_gauge(reg: &Registry, name: &str, help: &str, v: u64) {
    reg.gauge(name, help, &[]).set(v.min(i64::MAX as u64) as i64);
}

impl EngineStats {
    /// Mirror this stats block into `churnlab_stats_*` gauges on
    /// `registry` — the *uniform stats surface* the binaries publish
    /// instead of hand-formatted text blocks. Gauges, not counters, on
    /// purpose: these are absolute cumulative values from a finished
    /// cut, so re-recording after a later cut must overwrite, not add.
    /// The namespace is disjoint from the live `churnlab_*_total{shard}`
    /// series so the two never collide on metric kind.
    pub fn record_into(&self, registry: &Registry) {
        stats_gauge(registry, "churnlab_stats_shards", "shard workers used", self.shards as u64);
        stats_gauge(
            registry,
            "churnlab_stats_observations",
            "converted observations routed to shards",
            self.observations,
        );
        let inc = &self.incremental;
        stats_gauge(
            registry,
            "churnlab_stats_updates",
            "observations that changed an instance (post-dedup)",
            inc.updates,
        );
        stats_gauge(
            registry,
            "churnlab_stats_duplicates",
            "duplicate observations dropped by dedup",
            inc.duplicates,
        );
        stats_gauge(
            registry,
            "churnlab_stats_direct_updates",
            "updates resolved by a closed-form state transition",
            inc.direct_updates,
        );
        stats_gauge(
            registry,
            "churnlab_stats_unsat_skips",
            "updates skipped on already-unsat instances",
            inc.unsat_skips,
        );
        stats_gauge(
            registry,
            "churnlab_stats_resolves",
            "updates that ran a reduced-formula re-solve",
            inc.resolves,
        );
        self.interner.record_into(registry);
        stats_gauge(
            registry,
            "churnlab_stats_shard_total_nanos",
            "sum of shard workers' busy nanoseconds",
            self.busy.shard_total_nanos,
        );
        stats_gauge(
            registry,
            "churnlab_stats_shard_max_nanos",
            "slowest shard worker's busy nanoseconds",
            self.busy.shard_max_nanos,
        );
        stats_gauge(
            registry,
            "churnlab_stats_merge_nanos",
            "critical-path nanoseconds of the merge",
            self.busy.merge_nanos,
        );
        stats_gauge(
            registry,
            "churnlab_stats_sat_propagations",
            "SAT trail entries processed by unit propagation",
            self.sat.propagations,
        );
        stats_gauge(
            registry,
            "churnlab_stats_sat_backtracks",
            "SAT decision levels undone",
            self.sat.backtracks,
        );
        stats_gauge(
            registry,
            "churnlab_stats_sat_censuses",
            "SAT census queries answered",
            self.sat.censuses,
        );
        stats_gauge(
            registry,
            "churnlab_stats_sat_census_models",
            "models counted across all SAT censuses",
            self.sat.census_models,
        );
        stats_gauge(
            registry,
            "churnlab_stats_windows_retired",
            "(URL x window) groups retired under the lateness horizon",
            self.retire.windows_retired,
        );
        stats_gauge(
            registry,
            "churnlab_stats_cells_retired",
            "cells solved at retirement time",
            self.retire.cells_retired,
        );
        stats_gauge(
            registry,
            "churnlab_stats_late_dropped",
            "observations dropped for already-retired windows",
            self.retire.late_dropped,
        );
    }
}

/// The sharded, order-independent, incremental tomography engine.
///
/// Unlike the batch [`churnlab_core::pipeline::Pipeline`], the engine
/// accepts measurements in **any order** — there is no URL-grouping
/// contract — and keeps every (URL × window × anomaly) instance
/// incrementally solved as observations stream in. `ingest` routes the
/// *raw* measurement to a shard worker by `hash(url_id)` over a bounded
/// channel; conversion (the §3.1 elimination rules — the most expensive
/// per-measurement stage) runs **on the shard's thread**, so one
/// ingesting caller drives N shards' worth of conversion in parallel.
/// `&self` ingestion means any number of feeder threads can share one
/// engine.
///
/// [`Engine::snapshot`] merges per-shard reports into a
/// [`PipelineResults`] without stopping ingestion; [`Engine::finish`]
/// does the same and shuts the workers down. Reports are
/// `PipelineResults`-compatible, so everything downstream — reports,
/// validation, the matrix harness — works unchanged, and
/// [`churnlab_core::report::CanonicalReport`] serializations are
/// byte-identical to the batch pipeline's over the same measurement
/// set.
pub struct Engine<'c> {
    topo: &'c churnlab_topology::Topology,
    cfg: PipelineConfig,
    /// Window-retirement lateness horizon (see
    /// [`EngineConfig::window_horizon`]).
    horizon: Option<u32>,
    senders: Vec<SyncSender<Msg>>,
    /// Joined on shutdown, or eagerly by [`Engine::worker_died`] when a
    /// send fails — `Mutex` because `&self` senders may hit a dead
    /// worker concurrently and exactly one of them gets to join it.
    workers: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// Engine-persistent retired state: what [`Engine::compact`] drained
    /// from the shards (findings, trivial counts) plus the globally
    /// folded churn tallies and fold frontier. Re-merged into every
    /// report, so draining retired cells never changes censor findings,
    /// leakage, churn distributions, or trivial accounting.
    retired: Mutex<EngineRetired>,
    /// Observability context; `None` is the stripped configuration the
    /// overhead gate baselines against (no registry, no atomics).
    obs: Option<Arc<EngineObs>>,
}

/// See [`Engine::retired`].
#[derive(Default)]
struct EngineRetired {
    churn: RetiredChurn,
    churn_frontier: u32,
    findings: FindingsAccumulator,
    trivial: u64,
}

/// Deterministic URL → shard routing: round robin over the id.
///
/// URL ids are dense corpus indices (the platform's corpus and the
/// interop importer both hand them out sequentially), so modulo is the
/// *balanced* partition — every shard owns the same number of URLs ±1.
/// The avalanche hash this replaces looked more principled but binned a
/// small dense id space binomially: at 60 URLs over 8 shards the
/// busiest shard drew ~40% more URLs than the mean, and that partition
/// skew — not any serialization — capped 8-shard scaling efficiency at
/// ~0.6× linear.
fn shard_of(url_id: u32, n_shards: usize) -> usize {
    (url_id as usize) % n_shards
}

/// Render a worker's panic payload for re-raising with shard context.
fn payload_msg(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Cells below this total skip the scoped-thread fan-out at the merge
/// boundary: spawning per-shard merge threads costs more than resolving
/// a small report serially.
const PARALLEL_MERGE_MIN_CELLS: usize = 1024;

impl<'c> Engine<'c> {
    /// New engine over a platform (interpret the platform's measurements
    /// with the platform's own degraded IP-to-AS view).
    pub fn new(platform: &'c Platform<'c>, cfg: EngineConfig) -> Self {
        Self::with_context(platform.measured_ip2as(), &platform.world().topology, cfg)
    }

    /// [`Engine::new`] with an observability context (see
    /// [`Engine::with_context_obs`]).
    pub fn new_with_obs(platform: &'c Platform<'c>, cfg: EngineConfig, obs: EngineObs) -> Self {
        Self::with_context_obs(
            platform.measured_ip2as(),
            &platform.world().topology,
            cfg,
            Some(obs),
        )
    }

    /// New engine over externally supplied context — the entry point for
    /// imported measurement records, mirroring
    /// [`churnlab_core::pipeline::Pipeline::with_context`]. The IP-to-AS
    /// database is cloned once into the shard workers (they convert on
    /// their own threads and outlive the borrow).
    pub fn with_context(
        db: &churnlab_topology::Ip2AsDb,
        topo: &'c churnlab_topology::Topology,
        cfg: EngineConfig,
    ) -> Self {
        Self::with_context_obs(db, topo, cfg, None)
    }

    /// [`Engine::with_context`] with an observability context: shard
    /// workers publish live metrics (and journal events, when a journal
    /// is attached) through `obs`. Passing `None` is the *stripped*
    /// configuration — no registry, no atomic ops, one predictable
    /// branch per instrumentation site — which is what the bench's
    /// overhead gate compares the instrumented engine against.
    pub fn with_context_obs(
        db: &churnlab_topology::Ip2AsDb,
        topo: &'c churnlab_topology::Topology,
        cfg: EngineConfig,
        obs: Option<EngineObs>,
    ) -> Self {
        let obs = obs.map(Arc::new);
        let n = cfg.resolved_shards().max(1);
        let states = (0..n)
            .map(|i| {
                let shard_obs = obs.as_ref().map(|o| ShardObs::new(o, i));
                ShardState::new(cfg.pipeline.clone(), cfg.window_horizon, shard_obs)
            })
            .collect();
        Self::spawn(db, topo, cfg, obs, states)
    }

    /// Spawn workers over pre-built shard states — shared by fresh
    /// construction and checkpoint restore, so both run the same worker.
    fn spawn(
        db: &churnlab_topology::Ip2AsDb,
        topo: &'c churnlab_topology::Topology,
        cfg: EngineConfig,
        obs: Option<Arc<EngineObs>>,
        states: Vec<ShardState>,
    ) -> Self {
        assert!(
            cfg.window_horizon.is_none() || cfg.pipeline.churn_mode != ChurnMode::FirstPathOnly,
            "window_horizon is incompatible with the FirstPathOnly ablation: \
             \"first path\" is only defined over the whole stream, so its \
             windows can never retire"
        );
        let db = Arc::new(db.clone());
        let mut senders = Vec::with_capacity(states.len());
        let mut workers = Vec::with_capacity(states.len());
        for (i, state) in states.into_iter().enumerate() {
            let (tx, rx) = sync_channel(cfg.queue_capacity.max(1));
            let worker_db = Arc::clone(&db);
            let handle = std::thread::Builder::new()
                .name(format!("churnlab-shard-{i}"))
                .spawn(move || run_worker(rx, state, worker_db))
                .expect("spawn shard worker");
            senders.push(tx);
            workers.push(Some(handle));
        }
        Engine {
            topo,
            cfg: cfg.pipeline,
            horizon: cfg.window_horizon,
            senders,
            workers: Mutex::new(workers),
            retired: Mutex::new(EngineRetired::default()),
            obs,
        }
    }

    /// The engine's observability context, if one was attached.
    pub fn obs(&self) -> Option<&EngineObs> {
        self.obs.as_deref()
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Send to a shard, turning a dead worker into a contextful panic
    /// instead of an unrelated `SendError` unwrap.
    pub(crate) fn send(&self, shard: usize, msg: Msg) {
        if self.senders[shard].send(msg).is_err() {
            self.worker_died(shard);
        }
    }

    /// A send or reply failed because shard `shard`'s worker is gone:
    /// join it and propagate its panic payload with shard context. A
    /// worker exiting without panicking while senders are live is a bug
    /// in its own right and panics too.
    #[cold]
    fn worker_died(&self, shard: usize) -> ! {
        let handle =
            self.workers.lock().unwrap_or_else(|e| e.into_inner())[shard].take();
        match handle.map(JoinHandle::join) {
            Some(Err(payload)) => {
                let msg = payload_msg(payload.as_ref());
                if let Some(obs) = &self.obs {
                    obs.worker_panic(shard, msg);
                }
                panic!("shard worker {shard} panicked: {msg}")
            }
            Some(Ok(())) => {
                panic!("shard worker {shard} exited with senders still live (engine bug)")
            }
            // Another thread already joined it and is propagating; this
            // thread still cannot make progress.
            None => panic!("shard worker {shard} is dead (joined elsewhere)"),
        }
    }

    /// Test instrumentation: make shard `shard`'s worker panic, so the
    /// worker-death propagation path can be exercised deterministically.
    /// Compiled only under the `test-instrumentation` feature; not part
    /// of the public API.
    #[cfg(feature = "test-instrumentation")]
    #[doc(hidden)]
    pub fn inject_worker_panic(&self, shard: usize) {
        // An Err means the worker is already gone, which is fine — the
        // next real send will propagate.
        let _ = self.senders[shard].send(Msg::Poison);
    }

    /// Ingest one measurement, in any order relative to any other. The
    /// raw measurement is routed to its URL's shard and converted (the
    /// §3.1 elimination rules) on the shard's own thread. Blocks only
    /// when that shard's bounded queue is full. Copies the measurement —
    /// callers that own theirs should prefer [`Engine::ingest_owned`].
    pub fn ingest(&self, m: &Measurement) {
        self.ingest_owned(m.clone());
    }

    /// [`Engine::ingest`] without the copy.
    pub fn ingest_owned(&self, m: Measurement) {
        let shard = shard_of(m.url_id, self.senders.len());
        self.send(shard, Msg::Raw(m));
    }

    /// A buffering ingest handle for one feeder thread: measurements
    /// accumulate locally and ship to shards in chunks, amortizing the
    /// channel synchronization that per-measurement `ingest` pays. Spawn
    /// one per feeder thread; buffered measurements reach the shards when
    /// a chunk fills, at [`Feeder::flush`], or on drop — flush (or drop)
    /// every feeder before `snapshot` if the snapshot must include its
    /// tail.
    pub fn feeder(&self) -> Feeder<'_, 'c> {
        Feeder {
            engine: self,
            buffers: vec![Vec::new(); self.senders.len()],
            chunk: Feeder::DEFAULT_CHUNK,
        }
    }

    /// Collect one report per shard. Each shard replies after draining
    /// everything enqueued before the request — a consistent cut per
    /// shard even while feeders keep ingesting.
    fn collect_reports(&self, fin: bool) -> Vec<ShardReport> {
        let mut pending = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (reply_tx, reply_rx) = sync_channel(1);
            self.send(shard, Msg::Report { reply: reply_tx, fin });
            pending.push(reply_rx);
        }
        pending
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| match rx.recv() {
                Ok(report) => report,
                Err(_) => self.worker_died(shard),
            })
            .collect()
    }

    fn merge(&self, reports: Vec<ShardReport>) -> (PipelineResults, EngineStats) {
        // Critical-path accounting, same basis as the shard workers:
        // the merging thread's on-CPU time (immune to being descheduled
        // under core oversubscription) plus the slowest parallel
        // accumulation worker — what an unconstrained machine would
        // serially wait for. Wall time is the fallback.
        let cpu0 = thread_cpu_nanos();
        let t0 = Instant::now();
        let mut par_max_nanos = 0u64;
        let mut stats = EngineStats { shards: self.senders.len(), ..Default::default() };
        let mut conversion = ConversionStats::default();
        let mut churn = ChurnAccumulator::new();
        let mut trivial = 0u64;
        let mut total_cells = 0usize;
        // The global fold watermark: the *minimum* high-water day across
        // every shard. `None` if any shard has seen no data yet — then
        // no churn window can be proven globally closed.
        let mut min_hw = Some(u32::MAX);
        for r in &reports {
            stats.observations += r.observations;
            stats.incremental.merge(r.stats);
            stats.interner.merge(r.intern);
            stats.sat = stats.sat.merged(r.sat);
            stats.busy.shard_total_nanos += r.busy_nanos;
            stats.busy.shard_max_nanos = stats.busy.shard_max_nanos.max(r.busy_nanos);
            stats.retire.windows_retired += r.windows_retired;
            stats.retire.cells_retired += r.cells_retired;
            stats.retire.late_dropped += r.late_dropped;
            conversion.merge(r.conversion);
            trivial += r.trivial;
            total_cells += r.cells.len();
            min_hw = match (min_hw, r.high_water) {
                (Some(m), Some(h)) => Some(m.min(h)),
                _ => None,
            };
        }
        // Cells carry PathIds; each id is only meaningful against its own
        // shard's snapshot, so findings accumulate per shard — in
        // parallel for big reports (scoped threads: the topology is a
        // borrow) — and fan in through the order-independent
        // `FindingsAccumulator::merge`. This keeps the snapshot boundary
        // from serializing on one thread as shard counts grow.
        let topo = self.topo;
        let shard_acc = |r: &ShardReport| {
            let mut acc = FindingsAccumulator::new();
            for cell in &r.cells {
                acc.record(
                    &cell.outcome,
                    cell.censored_paths.iter().map(|id| r.paths.path(*id)),
                    topo,
                );
            }
            acc
        };
        let accs: Vec<FindingsAccumulator> =
            if total_cells >= PARALLEL_MERGE_MIN_CELLS && reports.len() > 1 {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = reports
                        .iter()
                        .map(|r| {
                            scope.spawn(|| {
                                let c0 = thread_cpu_nanos().unwrap_or(0);
                                let acc = shard_acc(r);
                                let c1 = thread_cpu_nanos().unwrap_or(0);
                                (acc, c1.saturating_sub(c0))
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            let (acc, nanos) = h.join().expect("merge worker");
                            par_max_nanos = par_max_nanos.max(nanos);
                            acc
                        })
                        .collect()
                })
            } else {
                reports.iter().map(shard_acc).collect()
            };
        let mut acc = FindingsAccumulator::new();
        for a in accs {
            acc.merge(a);
        }
        let mut outcomes = Vec::with_capacity(total_cells);
        for r in reports {
            churn.merge(r.churn);
            acc.on_censored_path.extend(r.on_censored_path);
            outcomes.extend(r.cells.into_iter().map(|c: SolvedCell| c.outcome));
        }
        // One deterministic global order, whatever the shard layout.
        outcomes.sort_by_key(|o| o.key);
        stats.retire.churn_late_dropped = churn.late_dropped();
        // Fold in the engine's persistent retired state, then (with a
        // horizon configured and every shard reporting a watermark) fold
        // churn windows closed below the global watermark into it and
        // tell the shards to free their matching partials. The
        // adopt → fold → write-back happens under one lock hold, so
        // concurrent snapshots cannot interleave fold frontiers;
        // re-folding is additionally guarded by the accumulator's stale
        // check.
        let mut prune = None;
        {
            let mut ret = self.retired.lock().unwrap_or_else(|e| e.into_inner());
            churn.adopt_retired(&ret.churn, ret.churn_frontier);
            if self.horizon.is_some() {
                if let Some(hw) = min_hw {
                    churn.fold_closed(hw);
                    let (folded, frontier) = churn.retired_state();
                    ret.churn = folded.clone();
                    ret.churn_frontier = frontier;
                    prune = Some(hw);
                }
            }
            trivial += ret.trivial;
            acc.merge(ret.findings.clone());
        }
        if let Some(hw) = prune {
            for shard in 0..self.senders.len() {
                self.send(shard, Msg::PruneChurn(hw));
            }
        }
        let FindingsAccumulator { censor_findings, leakage, on_censored_path } = acc;
        stats.busy.merge_nanos = match (cpu0, thread_cpu_nanos()) {
            // Caller CPU excludes the scoped workers (and the idle wait
            // joining them); add back the slowest worker's CPU.
            (Some(a), Some(b)) => b.saturating_sub(a) + par_max_nanos,
            _ => t0.elapsed().as_nanos() as u64,
        };
        if let Some(obs) = &self.obs {
            obs.registry()
                .counter(PHASE_NANOS.0, PHASE_NANOS.1, &[("phase", "merge")])
                .add(stats.busy.merge_nanos);
        }
        let results = PipelineResults {
            outcomes,
            conversion,
            censor_findings,
            leakage,
            churn,
            trivial_instances: trivial,
            on_censored_path,
            config: self.cfg.clone(),
        };
        (results, stats)
    }

    /// Merge a point-in-time report without stopping ingestion. The cut
    /// is per-shard consistent: everything enqueued before the call is
    /// included — and because conversion is shard state, the conversion
    /// counters agree exactly with the cut (a [`Feeder`]'s unflushed
    /// tail is excluded from both).
    pub fn snapshot(&self) -> PipelineResults {
        self.merge(self.collect_reports(false)).0
    }

    /// Drain every shard's retired outcomes — the daemon's memory
    /// reclamation step. The drained per-cell outcomes are returned
    /// (sorted by key) for the caller to emit or discard; their censor
    /// findings, leakage, observability horizon, trivial counts, and
    /// globally-closed churn windows fold into the engine's persistent
    /// retired state, so every aggregate in later reports stays exact —
    /// only the per-cell `outcomes` list of later reports no longer
    /// re-lists what was drained here.
    pub fn compact(&self) -> CompactReport {
        let mut pending = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (tx, rx) = sync_channel(1);
            self.send(shard, Msg::Compact { reply: tx });
            pending.push(rx);
        }
        let cuts: Vec<CompactCut> = pending
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| match rx.recv() {
                Ok(cut) => cut,
                Err(_) => self.worker_died(shard),
            })
            .collect();
        let mut churn = ChurnAccumulator::new();
        let mut min_hw = Some(u32::MAX);
        let mut outcomes = Vec::new();
        let mut trivial = 0u64;
        let mut prune = None;
        {
            let mut ret = self.retired.lock().unwrap_or_else(|e| e.into_inner());
            for cut in cuts {
                let CompactCut { high_water, churn: shard_churn, cells, trivial: t, paths } = cut;
                min_hw = match (min_hw, high_water) {
                    (Some(m), Some(h)) => Some(m.min(h)),
                    _ => None,
                };
                churn.merge(shard_churn);
                trivial += t;
                ret.trivial += t;
                for cell in &cells {
                    ret.findings.record(
                        &cell.outcome,
                        cell.censored_paths.iter().map(|id| paths.path(*id)),
                        self.topo,
                    );
                }
                outcomes.extend(cells.into_iter().map(|c| c.outcome));
            }
            churn.adopt_retired(&ret.churn, ret.churn_frontier);
            if self.horizon.is_some() {
                if let Some(hw) = min_hw {
                    churn.fold_closed(hw);
                    let (folded, frontier) = churn.retired_state();
                    ret.churn = folded.clone();
                    ret.churn_frontier = frontier;
                    prune = Some(hw);
                }
            }
        }
        if let Some(hw) = prune {
            for shard in 0..self.senders.len() {
                self.send(shard, Msg::PruneChurn(hw));
            }
        }
        outcomes.sort_by_key(|o| o.key);
        CompactReport { outcomes, trivial }
    }

    /// Write a versioned binary checkpoint of the engine's full state:
    /// per-shard live groups, path tables, retired accumulators, and
    /// counters, plus the engine's own retired state. `cursor` is the
    /// caller's stream position and `user` an opaque caller blob (e.g.
    /// import counters); both come back verbatim from
    /// [`Engine::restore`]. The cut is per-shard consistent — everything
    /// enqueued before the call is included — so quiesce feeders (flush
    /// or [`Feeder::take_pending`]) first if the checkpoint must line up
    /// exactly with `cursor`. Checkpointing the same logical state twice
    /// produces byte-identical output.
    pub fn checkpoint<W: Write>(&self, cursor: u64, user: &[u8], w: &mut W) -> std::io::Result<()> {
        let mut pending = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (tx, rx) = sync_channel(1);
            self.send(shard, Msg::Checkpoint { reply: tx });
            pending.push(rx);
        }
        let blobs: Vec<Vec<u8>> = pending
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| match rx.recv() {
                Ok(blob) => blob,
                Err(_) => self.worker_died(shard),
            })
            .collect();
        let mut e = Enc::default();
        e.buf.extend_from_slice(&MAGIC);
        e.u32(VERSION);
        e.u32(0); // reserved
        e.u64(cursor);
        e.bytes(user);
        e.str(&serde_json::to_string(&self.cfg).expect("pipeline config serializes"));
        e.u32(self.senders.len() as u32);
        e.opt_u32(self.horizon);
        {
            let ret = self.retired.lock().unwrap_or_else(|x| x.into_inner());
            ckpt::encode_retired_churn(&mut e, &ret.churn);
            e.u32(ret.churn_frontier);
            ckpt::encode_findings(&mut e, &ret.findings);
            e.u64(ret.trivial);
        }
        for blob in &blobs {
            e.bytes(blob);
            e.u64(ckpt::fnv64(blob));
        }
        w.write_all(&e.buf)
    }

    /// Restore an engine from a checkpoint written by
    /// [`Engine::checkpoint`]. The configuration must match the
    /// checkpointing engine's — same pipeline config, same shard count
    /// (path ids and URL routing are shard-local, so resharding a
    /// checkpoint is not defined), same horizon; `queue_capacity` is
    /// free. Returns the engine plus the stored cursor and user blob.
    /// Continuing the stream from `cursor` produces reports identical to
    /// an uninterrupted run's.
    pub fn restore(
        db: &churnlab_topology::Ip2AsDb,
        topo: &'c churnlab_topology::Topology,
        cfg: EngineConfig,
        r: &mut impl Read,
    ) -> Result<Restored<'c>, RestoreError> {
        Self::restore_with_obs(db, topo, cfg, r, None)
    }

    /// [`Engine::restore`] with an observability context. Restored
    /// shards seed the `churnlab_windows_open` gauge from their live
    /// group count, but emit no journal events for pre-checkpoint
    /// history: a restored journal narrates the post-restore stream
    /// only.
    pub fn restore_with_obs(
        db: &churnlab_topology::Ip2AsDb,
        topo: &'c churnlab_topology::Topology,
        cfg: EngineConfig,
        r: &mut impl Read,
        obs: Option<EngineObs>,
    ) -> Result<Restored<'c>, RestoreError> {
        fn c<T>(r: Result<T, String>) -> Result<T, RestoreError> {
            r.map_err(RestoreError::Corrupt)
        }
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes).map_err(RestoreError::Io)?;
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(RestoreError::Corrupt("bad magic — not a checkpoint".to_string()));
        }
        let mut d = Dec::new(&bytes[MAGIC.len()..]);
        let version = c(d.u32())?;
        if version != VERSION {
            return Err(RestoreError::Corrupt(format!(
                "unsupported checkpoint version {version} (expected {VERSION})"
            )));
        }
        let _reserved = c(d.u32())?;
        let cursor = c(d.u64())?;
        let user = c(d.bytes())?.to_vec();
        let stored_cfg = c(d.str())?;
        let our_cfg = serde_json::to_string(&cfg.pipeline).expect("pipeline config serializes");
        if stored_cfg != our_cfg {
            return Err(RestoreError::Mismatch(format!(
                "pipeline config differs from the checkpoint's: checkpoint {stored_cfg}, \
                 configured {our_cfg}"
            )));
        }
        let n_shards = c(d.u32())? as usize;
        let ours = cfg.resolved_shards().max(1);
        if n_shards != ours {
            return Err(RestoreError::Mismatch(format!(
                "checkpoint was taken with {n_shards} shards but the engine is configured \
                 for {ours}; path ids and URL routing are shard-local, so restore requires \
                 the same shard count"
            )));
        }
        let horizon = c(d.opt_u32())?;
        if horizon != cfg.window_horizon {
            return Err(RestoreError::Mismatch(format!(
                "checkpoint window horizon {horizon:?} differs from configured {:?}",
                cfg.window_horizon
            )));
        }
        let retired = EngineRetired {
            churn: c(ckpt::decode_retired_churn(&mut d))?,
            churn_frontier: c(d.u32())?,
            findings: c(ckpt::decode_findings(&mut d))?,
            trivial: c(d.u64())?,
        };
        let obs = obs.map(Arc::new);
        let mut states = Vec::with_capacity(n_shards);
        for shard in 0..n_shards {
            let blob = c(d.bytes())?;
            let checksum = c(d.u64())?;
            if ckpt::fnv64(blob) != checksum {
                return Err(RestoreError::Corrupt(format!("shard {shard} blob checksum mismatch")));
            }
            let shard_obs = obs.as_ref().map(|o| ShardObs::new(o, shard));
            let state = ShardState::decode(cfg.pipeline.clone(), horizon, shard_obs, blob)
                .map_err(|m| RestoreError::Corrupt(format!("shard {shard}: {m}")))?;
            states.push(state);
        }
        c(d.done())?;
        let engine = Self::spawn(db, topo, cfg, obs, states);
        *engine.retired.lock().unwrap_or_else(|e| e.into_inner()) = retired;
        Ok(Restored { engine, cursor, user })
    }

    /// Final report plus the engine-side work counters; shuts the shard
    /// workers down (propagating any worker panic with shard context).
    pub fn finish_with_stats(mut self) -> (PipelineResults, EngineStats) {
        let merged = self.merge(self.collect_reports(true));
        self.shutdown(true);
        merged
    }

    /// Final report; shuts the shard workers down.
    pub fn finish(self) -> PipelineResults {
        self.finish_with_stats().0
    }

    fn shutdown(&mut self, propagate: bool) {
        self.senders.clear(); // workers exit when the last sender drops
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        for (shard, slot) in workers.iter_mut().enumerate() {
            if let Some(handle) = slot.take() {
                if let Err(payload) = handle.join() {
                    let msg = payload_msg(payload.as_ref());
                    if let Some(obs) = &self.obs {
                        obs.worker_panic(shard, msg);
                    }
                    if propagate {
                        panic!("shard worker {shard} panicked: {msg}");
                    }
                }
            }
        }
    }
}

impl Drop for Engine<'_> {
    fn drop(&mut self) {
        // Propagate a worker panic out of a plain drop too — but never
        // while already unwinding (a double panic aborts).
        let unwinding = std::thread::panicking();
        self.shutdown(!unwinding);
    }
}

/// What [`Engine::compact`] drained: the per-cell outcomes of every
/// retired window (sorted by instance key) and the trivial-cell count
/// that retired alongside them. Aggregates derived from these cells
/// remain inside the engine and keep appearing in later reports.
#[derive(Debug, Clone, Default)]
pub struct CompactReport {
    /// Solved outcomes of the drained retired cells, sorted by key.
    pub outcomes: Vec<InstanceOutcome>,
    /// Trivial (all-clean) cells drained along with them.
    pub trivial: u64,
}

/// An engine resurrected by [`Engine::restore`], with the stream
/// position and caller blob stored at checkpoint time.
pub struct Restored<'c> {
    /// The restored engine, ready for further ingest.
    pub engine: Engine<'c>,
    /// Stream cursor passed to [`Engine::checkpoint`].
    pub cursor: u64,
    /// Opaque caller blob passed to [`Engine::checkpoint`].
    pub user: Vec<u8>,
}

/// A per-thread buffering ingest handle (see [`Engine::feeder`]). Holds
/// raw measurements — conversion happens shard-side — so its only
/// per-measurement work is a hash and a buffer push.
pub struct Feeder<'e, 'c> {
    engine: &'e Engine<'c>,
    buffers: Vec<Vec<Measurement>>,
    chunk: usize,
}

impl Feeder<'_, '_> {
    /// Default per-shard chunk size. Sized for throughput: feeding is so
    /// cheap post-routing that channel synchronization dominates it, so
    /// chunks are big; live vantage feeds that want short unflushed
    /// tails before snapshots can shrink this via [`Feeder::with_chunk`].
    pub const DEFAULT_CHUNK: usize = 512;

    /// Override the per-shard chunk size (measurements buffered before a
    /// channel send). Larger chunks amortize synchronization further at
    /// the cost of a longer unflushed tail before `snapshot`.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Ingest one measurement through this feeder's local buffers.
    /// Copies the measurement — callers that own theirs should prefer
    /// [`Feeder::ingest_owned`].
    pub fn ingest(&mut self, m: &Measurement) {
        self.ingest_owned(m.clone());
    }

    /// [`Feeder::ingest`] without the copy.
    pub fn ingest_owned(&mut self, m: Measurement) {
        let shard = shard_of(m.url_id, self.buffers.len());
        let buf = &mut self.buffers[shard];
        buf.push(m);
        if buf.len() >= self.chunk {
            let batch = std::mem::replace(buf, Vec::with_capacity(self.chunk));
            self.engine.send(shard, Msg::Batch(batch));
        }
    }

    /// Ship every buffered measurement to its shard.
    pub fn flush(&mut self) {
        for (shard, buf) in self.buffers.iter_mut().enumerate() {
            if !buf.is_empty() {
                let batch = std::mem::take(buf);
                self.engine.send(shard, Msg::Batch(batch));
            }
        }
    }

    /// Take the unflushed tail instead of shipping it — the checkpoint
    /// cut protocol: take the tail, checkpoint the engine with a cursor
    /// that excludes it, then re-ingest the tail (or drop it, if the
    /// stream will be replayed from the cursor).
    pub fn take_pending(&mut self) -> Vec<Measurement> {
        let mut out = Vec::new();
        for buf in &mut self.buffers {
            out.append(buf);
        }
        out
    }
}

impl Drop for Feeder<'_, '_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Best-effort tail delivery while unwinding: a dead worker
            // must not turn one panic into an abort.
            for (shard, buf) in self.buffers.iter_mut().enumerate() {
                if !buf.is_empty() {
                    let batch = std::mem::take(buf);
                    let _ = self.engine.senders[shard].send(Msg::Batch(batch));
                }
            }
        } else {
            self.flush();
        }
    }
}
