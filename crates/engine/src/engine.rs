//! The sharded engine: ingestion routing, shard workers, report merging.

use crate::incremental::IncrementalStats;
use crate::intern::InternStats;
use crate::shard::{run_worker, Msg, ShardReport, SolvedCell};
use churnlab_core::accumulate::FindingsAccumulator;
use churnlab_core::convert::ConversionStats;
use churnlab_core::obs::ConvertedObs;
use churnlab_core::pipeline::{PipelineConfig, PipelineResults};
use churnlab_core::ChurnAccumulator;
use churnlab_platform::{Measurement, Platform};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::thread::JoinHandle;

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// The tomography configuration (identical semantics to the batch
    /// [`churnlab_core::pipeline::Pipeline`]).
    pub pipeline: PipelineConfig,
    /// Shard worker count; `0` means one per available core.
    pub shards: usize,
    /// Bounded per-shard queue depth (backpressure: `ingest` blocks when
    /// a shard falls this far behind).
    pub queue_capacity: usize,
}

impl EngineConfig {
    /// Default shard/queue sizing over a pipeline configuration.
    pub fn new(pipeline: PipelineConfig) -> Self {
        EngineConfig { pipeline, shards: 0, queue_capacity: 1024 }
    }

    /// Override the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    fn resolved_shards(&self) -> usize {
        if self.shards != 0 {
            return self.shards;
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Aggregate engine-side work counters (incremental-solve effectiveness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Shard workers used.
    pub shards: usize,
    /// Converted observations routed to shards.
    pub observations: u64,
    /// Per-instance incremental-solve counters, summed over shards.
    pub incremental: IncrementalStats,
    /// Path-interner counters, summed over shards (a path routed to two
    /// shards counts as distinct in each — distinctness is per shard).
    /// Describes the *ingest* stream: in the deferred
    /// [`churnlab_core::pipeline::ChurnMode::FirstPathOnly`] ablation,
    /// where ingestion buffers rather than interns, these stay zero.
    /// Defaults on deserialize so pre-interning stats blobs still parse.
    #[serde(default)]
    pub interner: InternStats,
}

/// The sharded, order-independent, incremental tomography engine.
///
/// Unlike the batch [`churnlab_core::pipeline::Pipeline`], the engine
/// accepts measurements in **any order** — there is no URL-grouping
/// contract — and keeps every (URL × window × anomaly) instance
/// incrementally solved as observations stream in. `ingest` converts on
/// the calling thread, then routes the observation to a shard worker by
/// `hash(url_id)` over a bounded channel; `&self` ingestion means any
/// number of feeder threads can share one engine.
///
/// [`Engine::snapshot`] merges per-shard reports into a
/// [`PipelineResults`] without stopping ingestion; [`Engine::finish`]
/// does the same and shuts the workers down. Reports are
/// `PipelineResults`-compatible, so everything downstream — reports,
/// validation, the matrix harness — works unchanged, and
/// [`churnlab_core::report::CanonicalReport`] serializations are
/// byte-identical to the batch pipeline's over the same measurement set.
pub struct Engine<'c> {
    db: &'c churnlab_topology::Ip2AsDb,
    topo: &'c churnlab_topology::Topology,
    cfg: PipelineConfig,
    senders: Vec<SyncSender<Msg>>,
    workers: Vec<JoinHandle<()>>,
    /// `[converted, discarded-rule1..rule4]`, accumulated lock-free from
    /// feeder threads.
    conversion: [AtomicU64; 5],
}

/// Deterministic URL → shard routing (splitmix-style avalanche so
/// consecutive URL ids spread across shards).
fn shard_of(url_id: u32, n_shards: usize) -> usize {
    let mut x = u64::from(url_id).wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((x ^ (x >> 31)) % n_shards as u64) as usize
}

impl<'c> Engine<'c> {
    /// New engine over a platform (interpret the platform's measurements
    /// with the platform's own degraded IP-to-AS view).
    pub fn new(platform: &'c Platform<'c>, cfg: EngineConfig) -> Self {
        Self::with_context(platform.measured_ip2as(), &platform.world().topology, cfg)
    }

    /// New engine over externally supplied context — the entry point for
    /// imported measurement records, mirroring
    /// [`churnlab_core::pipeline::Pipeline::with_context`].
    pub fn with_context(
        db: &'c churnlab_topology::Ip2AsDb,
        topo: &'c churnlab_topology::Topology,
        cfg: EngineConfig,
    ) -> Self {
        let n = cfg.resolved_shards().max(1);
        let mut senders = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = sync_channel(cfg.queue_capacity.max(1));
            let worker_cfg = cfg.pipeline.clone();
            let handle = std::thread::Builder::new()
                .name(format!("churnlab-shard-{i}"))
                .spawn(move || run_worker(rx, worker_cfg))
                .expect("spawn shard worker");
            senders.push(tx);
            workers.push(handle);
        }
        Engine {
            db,
            topo,
            cfg: cfg.pipeline,
            senders,
            workers,
            conversion: Default::default(),
        }
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Ingest one measurement, in any order relative to any other.
    /// Conversion (the §3.1 elimination rules) runs on the calling
    /// thread; the surviving observation is routed to its URL's shard.
    /// Blocks only when that shard's bounded queue is full.
    pub fn ingest(&self, m: &Measurement) {
        let mut local = ConversionStats::default();
        let obs = ConvertedObs::from_measurement(m, self.db, &mut local);
        if local.converted > 0 {
            self.conversion[0].fetch_add(local.converted, Ordering::Relaxed);
        }
        for (i, d) in local.discarded.into_iter().enumerate() {
            if d > 0 {
                self.conversion[i + 1].fetch_add(d, Ordering::Relaxed);
            }
        }
        if let Some(o) = obs {
            let shard = shard_of(o.url_id, self.senders.len());
            self.senders[shard].send(Msg::Obs(vec![o])).expect("shard worker alive");
        }
    }

    /// A buffering ingest handle for one feeder thread: conversions
    /// accumulate locally and ship to shards in chunks, amortizing the
    /// channel synchronization that per-measurement `ingest` pays. Spawn
    /// one per feeder thread; buffered observations reach the shards when
    /// a chunk fills, at [`Feeder::flush`], or on drop — flush (or drop)
    /// every feeder before `snapshot` if the snapshot must include its
    /// tail.
    pub fn feeder(&self) -> Feeder<'_, 'c> {
        Feeder {
            engine: self,
            buffers: vec![Vec::new(); self.senders.len()],
            chunk: 128,
            conversion: ConversionStats::default(),
        }
    }

    /// Collect one report per shard. Each shard replies after draining
    /// everything enqueued before the request — a consistent cut per
    /// shard even while feeders keep ingesting.
    fn collect_reports(&self) -> Vec<ShardReport> {
        let mut pending = Vec::with_capacity(self.senders.len());
        for tx in &self.senders {
            let (reply_tx, reply_rx) = sync_channel(1);
            tx.send(Msg::Report(reply_tx)).expect("shard worker alive");
            pending.push(reply_rx);
        }
        pending.into_iter().map(|rx| rx.recv().expect("shard report")).collect()
    }

    fn merge(&self, reports: Vec<ShardReport>) -> (PipelineResults, EngineStats) {
        let mut stats = EngineStats { shards: self.senders.len(), ..Default::default() };
        let mut acc = FindingsAccumulator::new();
        let mut churn = ChurnAccumulator::new();
        let mut trivial = 0u64;
        // Cells cross the shard boundary carrying PathIds; each id is
        // only meaningful against its own shard's snapshot, so cells are
        // tagged with their shard index for resolution below — the one
        // place ids turn back into AS paths.
        let mut snaps = Vec::with_capacity(reports.len());
        let mut cells: Vec<(usize, SolvedCell)> = Vec::new();
        for (si, r) in reports.into_iter().enumerate() {
            stats.observations += r.observations;
            stats.incremental.merge(r.stats);
            stats.interner.merge(r.intern);
            trivial += r.trivial;
            churn.merge(r.churn);
            acc.on_censored_path.extend(r.on_censored_path);
            cells.extend(r.cells.into_iter().map(|c| (si, c)));
            snaps.push(r.paths);
        }
        // One deterministic global order, whatever the shard layout.
        cells.sort_by_key(|(_, c)| c.outcome.key);
        let mut outcomes = Vec::with_capacity(cells.len());
        for (si, cell) in cells {
            let snap = &snaps[si];
            acc.record(
                &cell.outcome,
                cell.censored_paths.iter().map(|id| snap.path(*id)),
                self.topo,
            );
            outcomes.push(cell.outcome);
        }
        let conversion = ConversionStats {
            converted: self.conversion[0].load(Ordering::Relaxed),
            discarded: [
                self.conversion[1].load(Ordering::Relaxed),
                self.conversion[2].load(Ordering::Relaxed),
                self.conversion[3].load(Ordering::Relaxed),
                self.conversion[4].load(Ordering::Relaxed),
            ],
        };
        let FindingsAccumulator { censor_findings, leakage, on_censored_path } = acc;
        let results = PipelineResults {
            outcomes,
            conversion,
            censor_findings,
            leakage,
            churn,
            trivial_instances: trivial,
            on_censored_path,
            config: self.cfg.clone(),
        };
        (results, stats)
    }

    /// Merge a point-in-time report without stopping ingestion. The cut
    /// is per-shard consistent: everything enqueued before the call is
    /// included.
    ///
    /// Consistency boundary: the tomography state (outcomes, findings,
    /// leakage, churn) reflects exactly the per-shard cut, but the
    /// conversion counters are global atomics read at merge time — under
    /// concurrent feeding they can lead the cut by in-flight
    /// measurements (or lag it by a [`Feeder`]'s unflushed tail). Once
    /// feeders are flushed and ingestion quiesces — and always at
    /// [`Engine::finish`] — the counters agree exactly with the report.
    pub fn snapshot(&self) -> PipelineResults {
        self.merge(self.collect_reports()).0
    }

    /// Final report plus the engine-side work counters; shuts the shard
    /// workers down.
    pub fn finish_with_stats(mut self) -> (PipelineResults, EngineStats) {
        let merged = self.merge(self.collect_reports());
        self.shutdown();
        merged
    }

    /// Final report; shuts the shard workers down.
    pub fn finish(self) -> PipelineResults {
        self.finish_with_stats().0
    }

    fn shutdown(&mut self) {
        self.senders.clear(); // workers exit when the last sender drops
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine<'_> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A per-thread buffering ingest handle (see [`Engine::feeder`]).
pub struct Feeder<'e, 'c> {
    engine: &'e Engine<'c>,
    buffers: Vec<Vec<ConvertedObs>>,
    chunk: usize,
    conversion: ConversionStats,
}

impl Feeder<'_, '_> {
    /// Override the per-shard chunk size (observations buffered before a
    /// channel send). Larger chunks amortize synchronization further at
    /// the cost of a longer unflushed tail before `snapshot`; replay
    /// front-ends reading from fast local files benefit from bigger
    /// chunks than live vantage feeds do.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Ingest one measurement through this feeder's local buffers.
    pub fn ingest(&mut self, m: &Measurement) {
        let obs = ConvertedObs::from_measurement(m, self.engine.db, &mut self.conversion);
        if let Some(o) = obs {
            let shard = shard_of(o.url_id, self.buffers.len());
            self.buffers[shard].push(o);
            if self.buffers[shard].len() >= self.chunk {
                let batch = std::mem::take(&mut self.buffers[shard]);
                self.engine.senders[shard].send(Msg::Obs(batch)).expect("shard worker alive");
            }
        }
    }

    /// Ship every buffered observation and fold the conversion counters
    /// into the engine.
    pub fn flush(&mut self) {
        for (shard, buf) in self.buffers.iter_mut().enumerate() {
            if !buf.is_empty() {
                let batch = std::mem::take(buf);
                self.engine.senders[shard].send(Msg::Obs(batch)).expect("shard worker alive");
            }
        }
        let stats = std::mem::take(&mut self.conversion);
        if stats.converted > 0 {
            self.engine.conversion[0].fetch_add(stats.converted, Ordering::Relaxed);
        }
        for (i, d) in stats.discarded.into_iter().enumerate() {
            if d > 0 {
                self.engine.conversion[i + 1].fetch_add(d, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for Feeder<'_, '_> {
    fn drop(&mut self) {
        self.flush();
    }
}
