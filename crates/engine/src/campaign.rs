//! Fused simulate→tomography campaigns: the platform's parallel runner
//! streaming straight into the engine's shard channels.
//!
//! Before this module, a campaign at scale meant "run the platform,
//! write JSONL, replay the dump through the engine" — two passes over
//! millions of records with a serialization round trip between them.
//! Fused mode deletes the intermediate: each runner worker owns an
//! [`Engine::feeder`] handle (per-thread buffering, chunked sends), so
//! measurement generation and conversion/solving overlap on the same
//! machine with no copy of the stream ever materialized.
//!
//! Correctness rides on two already-proven properties: the runner's
//! per-(url, day) RNG reseeding makes the parallel measurement *set*
//! exactly the serial one, and the engine is order-independent under
//! multi-producer ingest — so the fused run's
//! [`churnlab_core::report::CanonicalReport`] is byte-identical to a
//! serial `Platform::run` feeding a single-threaded engine
//! (`crates/engine/tests/fused_campaign.rs` pins this across thread ×
//! shard × seed grids).

use crate::Engine;
use churnlab_bgp::RoutingSim;
use churnlab_platform::{CampaignObs, ParallelRun, Platform};

/// Run the full campaign across `threads` generator workers, each
/// feeding the engine through its own [`Engine::feeder`]. Returns the
/// platform-side stats and per-worker busy accounting; the engine is
/// left loaded — snapshot or finish it for results.
///
/// `threads == 0` means one worker per available core.
pub fn run_fused(
    platform: &Platform<'_>,
    sim: &RoutingSim<'_>,
    engine: &Engine<'_>,
    threads: usize,
) -> ParallelRun {
    run_fused_obs(platform, sim, engine, threads, None)
}

/// [`run_fused`] with `churnlab_campaign_*` counters attached.
pub fn run_fused_obs(
    platform: &Platform<'_>,
    sim: &RoutingSim<'_>,
    engine: &Engine<'_>,
    threads: usize,
    obs: Option<&CampaignObs>,
) -> ParallelRun {
    platform.run_parallel_obs(sim, threads, obs, |_worker| {
        let mut feeder = engine.feeder();
        move |m| feeder.ingest_owned(m)
    })
}
