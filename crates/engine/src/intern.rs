//! Shard-local AS-path interning.
//!
//! Path churn means the engine re-sees *few distinct paths, observed many
//! times* (the committed smoke bench: ~72% of per-cell observations are
//! duplicates). The [`PathTable`] exploits that: each distinct path is
//! hashed and copied **once per shard**, yielding a dense
//! [`PathId`] plus a precomputed flat slice into a single [`Asn`] arena
//! (CSR layout, mirroring `churnlab_sat::CompiledCnf`). Everything
//! downstream — per-instance dedup, clause storage, report cells — then
//! works on the `u32` id: the duplicate-dominated observe path drops from
//! O(path-len) hashing per instance cell to an O(1) integer probe.
//!
//! Id stability: ids are dense, assigned in first-intern order, and never
//! reassigned, so a [`PathSnapshot`] taken at report time remains a valid
//! resolver for every id issued before it — and earlier snapshots are
//! strict prefixes of later ones (see [`PathId`]'s guarantees).

use churnlab_core::obs::PathId;
use churnlab_topology::Asn;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// A fast multiplicative hasher (FxHash-style) for the engine's hot maps:
/// small integer keys ([`PathId`], [`Asn`]) and short `u32` sequences
/// (AS-path slices). Not DoS-resistant — fine for shard-local state keyed
/// by data the shard itself produced.
#[derive(Debug, Default, Clone)]
pub struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so the map's bucket-index truncation sees
        // well-mixed low bits even for tiny keys.
        let mut x = self.0;
        x ^= x >> 32;
        x = x.wrapping_mul(0xd6e8_feb8_6659_fd93);
        x ^= x >> 32;
        x
    }
}

/// `HashMap` with the engine's fast hasher.
pub type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the engine's fast hasher.
pub type FxSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Interner work counters (hit rate = how duplicate-dominated the stream
/// was at *measurement* granularity, before the instance fan-out).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InternStats {
    /// Distinct paths interned (arena entries).
    pub distinct_paths: u64,
    /// Intern calls answered from the table (duplicates at measurement
    /// granularity).
    pub hits: u64,
}

impl InternStats {
    /// Fold another counter set into this one (shard fan-in; the sums are
    /// per-shard tallies, so a path crossing shards counts once *per
    /// shard* it is distinct in).
    pub fn merge(&mut self, other: InternStats) {
        self.distinct_paths += other.distinct_paths;
        self.hits += other.hits;
    }

    /// Fraction of intern calls answered from the table.
    pub fn hit_rate(&self) -> f64 {
        let total = self.distinct_paths + self.hits;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Mirror these counters into `churnlab_stats_*` gauges on
    /// `registry` (absolute values — repeat-safe, later cuts overwrite).
    pub fn record_into(&self, registry: &churnlab_obs::Registry) {
        registry
            .gauge("churnlab_stats_distinct_paths", "distinct paths interned, summed over shards", &[])
            .set(self.distinct_paths.min(i64::MAX as u64) as i64);
        registry
            .gauge("churnlab_stats_intern_hits", "intern calls answered from the table", &[])
            .set(self.hits.min(i64::MAX as u64) as i64);
    }
}

/// The shard-local path interner: distinct AS paths stored once in a CSR
/// arena, addressed by dense [`PathId`]s.
#[derive(Debug, Default, Clone)]
pub struct PathTable {
    /// Path → id. Keyed by an owned copy but probed by slice
    /// (`Box<[Asn]>: Borrow<[Asn]>`), so the frequent duplicate intern
    /// hashes the path once and allocates nothing.
    ids: FxMap<Box<[Asn]>, PathId>,
    /// Concatenated paths (CSR values).
    arena: Vec<Asn>,
    /// Path `i` occupies `arena[offsets[i] .. offsets[i + 1]]`.
    offsets: Vec<u32>,
    /// Concatenated per-path *distinct-AS* lists (first-occurrence order)
    /// — the variable set each path contributes to an instance, so the
    /// fan-out never re-dedups ASes within a path.
    distinct_arena: Vec<Asn>,
    /// Distinct list `i` occupies
    /// `distinct_arena[distinct_offsets[i] .. distinct_offsets[i + 1]]`.
    distinct_offsets: Vec<u32>,
    /// Intern calls answered from the table.
    hits: u64,
    /// Last [`PathTable::snapshot_shared`] result, reused while the table
    /// has not grown since — a snapshot-heavy polling loop pays one arena
    /// clone per *table growth*, not one per report.
    snap_cache: Option<Arc<PathSnapshot>>,
}

impl PathTable {
    /// Fresh empty table.
    pub fn new() -> Self {
        PathTable {
            ids: FxMap::default(),
            arena: Vec::new(),
            offsets: vec![0],
            distinct_arena: Vec::new(),
            distinct_offsets: vec![0],
            hits: 0,
            snap_cache: None,
        }
    }

    /// Intern one path: one hash probe; a copy into the arena only the
    /// first time this exact path is seen.
    pub fn intern(&mut self, path: &[Asn]) -> PathId {
        if let Some(&id) = self.ids.get(path) {
            self.hits += 1;
            return id;
        }
        let id = PathId(self.offsets.len() as u32 - 1);
        self.arena.extend_from_slice(path);
        self.offsets.push(self.arena.len() as u32);
        // Distinct-AS sublist: paths are short, so a linear scan over the
        // part already appended beats hashing.
        let start = self.distinct_arena.len();
        for a in path {
            if !self.distinct_arena[start..].contains(a) {
                self.distinct_arena.push(*a);
            }
        }
        self.distinct_offsets.push(self.distinct_arena.len() as u32);
        self.ids.insert(path.into(), id);
        id
    }

    /// The interned path, vantage AS first.
    #[inline]
    pub fn path(&self, id: PathId) -> &[Asn] {
        let i = id.usize();
        &self.arena[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The path's distinct ASes, first-occurrence order.
    #[inline]
    pub fn distinct(&self, id: PathId) -> &[Asn] {
        let i = id.usize();
        &self.distinct_arena[self.distinct_offsets[i] as usize..self.distinct_offsets[i + 1] as usize]
    }

    /// Number of distinct paths interned.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if nothing was interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The table's work counters.
    pub fn stats(&self) -> InternStats {
        InternStats { distinct_paths: self.len() as u64, hits: self.hits }
    }

    /// A read-only resolver for every id issued so far, detached from the
    /// table (for crossing the shard boundary). Copies only the arena —
    /// one flat `Asn` buffer over *distinct* paths — never a
    /// per-observation `Vec<Vec<Asn>>`.
    pub fn snapshot(&self) -> PathSnapshot {
        PathSnapshot { arena: self.arena.clone(), offsets: self.offsets.clone() }
    }

    /// [`PathTable::snapshot`] behind an `Arc`, cached: returns the same
    /// allocation until the table grows again. Ids are dense and never
    /// reassigned, so a cached snapshot taken at the current length is
    /// exactly the snapshot a fresh clone would produce — repeated
    /// reports of a quiesced shard are allocation-free at this boundary.
    pub fn snapshot_shared(&mut self) -> Arc<PathSnapshot> {
        match &self.snap_cache {
            Some(s) if s.len() == self.len() => Arc::clone(s),
            _ => {
                let s = Arc::new(self.snapshot());
                self.snap_cache = Some(Arc::clone(&s));
                s
            }
        }
    }
}

impl PathTable {
    /// Serialize the table for a checkpoint: the CSR arena, offsets, and
    /// hit counter. The dedup map, distinct lists, and snapshot cache are
    /// all derivable, so they are rebuilt at decode time.
    pub(crate) fn encode(&self, e: &mut crate::ckpt::Enc) {
        e.u64(self.hits);
        e.u32s(&self.offsets);
        e.asns(&self.arena);
    }

    /// Rebuild a table by re-interning every stored path in id order —
    /// ids are dense and assigned in first-intern order, so path `i`
    /// regains id `i` and every `PathId` referenced elsewhere in the
    /// checkpoint stays valid.
    pub(crate) fn decode(d: &mut crate::ckpt::Dec) -> Result<PathTable, String> {
        let hits = d.u64()?;
        let offsets = d.u32s()?;
        let arena = d.asns()?;
        if offsets.first() != Some(&0) {
            return Err("path arena offsets must start at 0".to_string());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("path arena offsets must be monotone".to_string());
        }
        if offsets.last().copied().unwrap_or(0) as usize != arena.len() {
            return Err("path arena offsets do not cover the arena".to_string());
        }
        let mut t = PathTable::new();
        for i in 0..offsets.len() - 1 {
            let path = &arena[offsets[i] as usize..offsets[i + 1] as usize];
            let id = t.intern(path);
            if id.usize() != i {
                return Err(format!("duplicate path in arena at id {i}"));
            }
        }
        t.hits = hits;
        Ok(t)
    }
}

/// A detached id → path resolver (see [`PathTable::snapshot`]).
#[derive(Debug, Clone)]
pub struct PathSnapshot {
    arena: Vec<Asn>,
    offsets: Vec<u32>,
}

impl Default for PathSnapshot {
    fn default() -> Self {
        PathSnapshot { arena: Vec::new(), offsets: vec![0] }
    }
}

impl PathSnapshot {
    /// A snapshot resolving no ids — for reports that carry none, so a
    /// snapshot of an id-free report never clones an arena.
    pub fn empty() -> Self {
        PathSnapshot::default()
    }

    /// The path for an id issued before this snapshot was taken.
    #[inline]
    pub fn path(&self, id: PathId) -> &[Asn] {
        let i = id.usize();
        &self.arena[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of paths resolvable through this snapshot.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the snapshot resolves no ids.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asns(v: &[u32]) -> Vec<Asn> {
        v.iter().map(|x| Asn(*x)).collect()
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = PathTable::new();
        let a = t.intern(&asns(&[1, 2, 3]));
        let b = t.intern(&asns(&[4, 5]));
        let a2 = t.intern(&asns(&[1, 2, 3]));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!((a.0, b.0), (0, 1), "ids are dense, first-intern order");
        assert_eq!(t.len(), 2);
        assert_eq!(t.path(a), asns(&[1, 2, 3]).as_slice());
        assert_eq!(t.path(b), asns(&[4, 5]).as_slice());
        assert_eq!(t.stats(), InternStats { distinct_paths: 2, hits: 1 });
    }

    #[test]
    fn distinct_list_dedups_repeated_ases_in_order() {
        let mut t = PathTable::new();
        let id = t.intern(&asns(&[7, 3, 7, 9, 3]));
        assert_eq!(t.path(id), asns(&[7, 3, 7, 9, 3]).as_slice(), "full path kept verbatim");
        assert_eq!(t.distinct(id), asns(&[7, 3, 9]).as_slice(), "first-occurrence dedup");
    }

    #[test]
    fn prefix_paths_are_distinct_entries() {
        // CSR slicing must not confuse a path with its prefix.
        let mut t = PathTable::new();
        let long = t.intern(&asns(&[1, 2, 3]));
        let short = t.intern(&asns(&[1, 2]));
        assert_ne!(long, short);
        assert_eq!(t.path(short), asns(&[1, 2]).as_slice());
    }

    #[test]
    fn snapshot_resolves_all_prior_ids_and_stays_valid() {
        let mut t = PathTable::new();
        let a = t.intern(&asns(&[1, 2]));
        let snap1 = t.snapshot();
        let b = t.intern(&asns(&[3]));
        let snap2 = t.snapshot();
        assert_eq!(snap1.len(), 1);
        assert_eq!(snap1.path(a), t.path(a), "id stable across snapshots");
        assert_eq!(snap2.path(a), t.path(a));
        assert_eq!(snap2.path(b), t.path(b));
        assert_eq!(t.intern(&asns(&[1, 2])), a, "re-intern after snapshot keeps the id");
    }

    #[test]
    fn shared_snapshot_is_cached_until_growth() {
        let mut t = PathTable::new();
        let a = t.intern(&asns(&[1, 2]));
        let s1 = t.snapshot_shared();
        t.intern(&asns(&[1, 2])); // duplicate: no growth
        let s2 = t.snapshot_shared();
        assert!(Arc::ptr_eq(&s1, &s2), "unchanged table reuses the snapshot");
        let b = t.intern(&asns(&[9]));
        let s3 = t.snapshot_shared();
        assert!(!Arc::ptr_eq(&s1, &s3), "growth invalidates the cache");
        assert_eq!(s3.path(a), t.path(a));
        assert_eq!(s3.path(b), t.path(b));
        assert_eq!(s1.path(a), t.path(a), "old snapshot stays valid for old ids");
    }
}
