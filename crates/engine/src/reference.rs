//! The pre-interning incremental instance, retained verbatim.
//!
//! [`UninternedInstance`] is the engine's original per-instance state:
//! every `observe` call probes a `HashMap<Vec<Asn>, u8>` dedup index —
//! hashing the **full path once per instance cell** — and stores owned
//! `Vec<Asn>` copies for observations and positive clauses. The live
//! engine replaced it with the [`crate::PathTable`]-interned
//! [`crate::incremental::InstanceGroup`]; this copy is kept as
//!
//! * the **before** contender in the `path_intern_bench` regression gate
//!   (the dedup-probe speedup is measured against it in-process, so the
//!   gate is machine-relative), and
//! * a **differential oracle**: the property tests assert the interned
//!   group produces the same [`InstanceOutcome`] for every observation
//!   sequence.
//!
//! Do not "optimize" this module — its cost model *is* the baseline.

use crate::incremental::IncrementalStats;
use churnlab_core::analyze::InstanceOutcome;
use churnlab_core::instance::{InstanceKey, Observation};
use churnlab_sat::{CompiledCnf, Lit, SolutionCount, Solvability, SolverCtx, Var};
use churnlab_topology::Asn;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Per-AS backbone knowledge (see `crate::incremental` for semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    AlwaysTrue,
    AlwaysFalse,
    Both,
}

/// The memoized solve state.
#[derive(Debug, Clone)]
enum Memo {
    Trivial,
    Unsat,
    Solved { count: SolutionCount, fate: HashMap<Asn, Fate> },
}

/// Reusable solving scratch for the reference path: the old map-heavy
/// layout (`HashMap` AS↔var mappings), kept as-is so the baseline's cost
/// model is preserved.
#[derive(Debug, Default)]
pub struct ReferenceScratch {
    ctx: SolverCtx,
    cnf: CompiledCnf,
    var_of: HashMap<Asn, Var>,
    fixed: HashMap<Asn, bool>,
    free_vars: Vec<Asn>,
}

impl ReferenceScratch {
    /// Fresh scratch.
    pub fn new() -> Self {
        ReferenceScratch::default()
    }
}

const SEEN_CLEAN: u8 = 1;
const SEEN_CENSORED: u8 = 2;

/// One (URL × window × anomaly) instance kept incrementally solved, path
/// keyed — the original un-interned implementation.
#[derive(Debug, Clone)]
pub struct UninternedInstance {
    key: InstanceKey,
    seen: HashMap<Vec<Asn>, u8>,
    observations: Vec<Observation>,
    n_positive: usize,
    vars: Vec<Asn>,
    var_set: HashSet<Asn>,
    pos_clauses: Vec<Vec<Asn>>,
    neg_forced: HashSet<Asn>,
    memo: Memo,
}

fn cap_count(value: u128, cap: u64) -> SolutionCount {
    if value > u128::from(cap) {
        SolutionCount::AtLeast(cap)
    } else {
        SolutionCount::Exact(value as u64)
    }
}

fn scale_count(count: SolutionCount, factor: u128, cap: u64) -> SolutionCount {
    debug_assert!(factor >= 1);
    match count {
        SolutionCount::Exact(n) => cap_count(u128::from(n) * factor, cap),
        SolutionCount::AtLeast(_) => SolutionCount::AtLeast(cap),
    }
}

fn pow2(n: usize) -> u128 {
    if n >= 127 {
        u128::MAX
    } else {
        1u128 << n
    }
}

impl UninternedInstance {
    /// Fresh instance.
    pub fn new(key: InstanceKey) -> Self {
        UninternedInstance {
            key,
            seen: HashMap::new(),
            observations: Vec::new(),
            n_positive: 0,
            vars: Vec::new(),
            var_set: HashSet::new(),
            pos_clauses: Vec::new(),
            neg_forced: HashSet::new(),
            memo: Memo::Trivial,
        }
    }

    /// The instance identity.
    pub fn key(&self) -> InstanceKey {
        self.key
    }

    /// Distinct observations so far.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True if nothing observed.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Fold in one observation (original path-keyed dedup: one full-path
    /// hash per call, `path.to_vec()` copies on update).
    pub fn observe(
        &mut self,
        path: &[Asn],
        censored: bool,
        cap: u64,
        stats: &mut IncrementalStats,
        scratch: &mut ReferenceScratch,
    ) {
        let bit = if censored { SEEN_CENSORED } else { SEEN_CLEAN };
        match self.seen.get_mut(path) {
            Some(mask) if *mask & bit != 0 => {
                stats.duplicates += 1;
                return;
            }
            Some(mask) => *mask |= bit,
            None => {
                self.seen.insert(path.to_vec(), bit);
            }
        }
        self.observations.push(Observation { path: path.to_vec(), censored });
        stats.updates += 1;
        for a in path {
            if self.var_set.insert(*a) {
                self.vars.push(*a);
            }
        }
        if censored {
            self.n_positive += 1;
            self.pos_clauses.push(path.to_vec());
        } else {
            self.neg_forced.extend(path.iter().copied());
        }

        if matches!(self.memo, Memo::Unsat) {
            stats.unsat_skips += 1;
            return;
        }
        if censored {
            self.apply_positive(path, cap, stats, scratch);
        } else {
            self.apply_negative(path, cap, stats, scratch);
        }
    }

    fn apply_positive(
        &mut self,
        path: &[Asn],
        cap: u64,
        stats: &mut IncrementalStats,
        scratch: &mut ReferenceScratch,
    ) {
        match &mut self.memo {
            Memo::Unsat => unreachable!("handled by caller"),
            Memo::Trivial => {
                let candidates: BTreeSet<Asn> =
                    path.iter().filter(|a| !self.neg_forced.contains(a)).copied().collect();
                stats.direct_updates += 1;
                if candidates.is_empty() {
                    self.memo = Memo::Unsat;
                    return;
                }
                let mut fate: HashMap<Asn, Fate> =
                    self.vars.iter().map(|a| (*a, Fate::AlwaysFalse)).collect();
                if candidates.len() == 1 {
                    fate.insert(*candidates.iter().next().expect("non-empty"), Fate::AlwaysTrue);
                    self.memo = Memo::Solved { count: SolutionCount::Exact(1), fate };
                } else {
                    for a in &candidates {
                        fate.insert(*a, Fate::Both);
                    }
                    let count = cap_count(pow2(candidates.len()) - 1, cap);
                    self.memo = Memo::Solved { count, fate };
                }
            }
            Memo::Solved { count, fate } => {
                let fresh: BTreeSet<Asn> =
                    path.iter().filter(|a| !fate.contains_key(a)).copied().collect();
                let satisfied = path.iter().any(|a| fate.get(a) == Some(&Fate::AlwaysTrue));
                if satisfied {
                    stats.direct_updates += 1;
                    if !fresh.is_empty() {
                        *count = scale_count(*count, pow2(fresh.len()), cap);
                        for a in &fresh {
                            fate.insert(*a, Fate::Both);
                        }
                    }
                    return;
                }
                let undecided = path.iter().any(|a| fate.get(a) == Some(&Fate::Both));
                if undecided {
                    stats.resolves += 1;
                    self.resolve(cap, scratch);
                    return;
                }
                stats.direct_updates += 1;
                match fresh.len() {
                    0 => self.memo = Memo::Unsat,
                    1 => {
                        fate.insert(*fresh.iter().next().expect("one"), Fate::AlwaysTrue);
                    }
                    n => {
                        *count = scale_count(*count, pow2(n) - 1, cap);
                        for a in &fresh {
                            fate.insert(*a, Fate::Both);
                        }
                    }
                }
            }
        }
    }

    fn apply_negative(
        &mut self,
        path: &[Asn],
        cap: u64,
        stats: &mut IncrementalStats,
        scratch: &mut ReferenceScratch,
    ) {
        match &mut self.memo {
            Memo::Unsat => unreachable!("handled by caller"),
            Memo::Trivial => {
                stats.direct_updates += 1;
            }
            Memo::Solved { fate, .. } => {
                if path.iter().any(|a| fate.get(a) == Some(&Fate::AlwaysTrue)) {
                    stats.direct_updates += 1;
                    self.memo = Memo::Unsat;
                    return;
                }
                if path.iter().all(|a| !matches!(fate.get(a), Some(Fate::Both))) {
                    stats.direct_updates += 1;
                    for a in path {
                        fate.entry(*a).or_insert(Fate::AlwaysFalse);
                    }
                    return;
                }
                stats.resolves += 1;
                self.resolve(cap, scratch);
            }
        }
    }

    fn resolve(&mut self, cap: u64, scratch: &mut ReferenceScratch) {
        let fixed = &mut scratch.fixed;
        fixed.clear();
        for a in &self.neg_forced {
            fixed.insert(*a, false);
        }
        let mut fate = match std::mem::replace(&mut self.memo, Memo::Unsat) {
            Memo::Solved { fate, .. } => {
                for (a, f) in &fate {
                    let v = match f {
                        Fate::AlwaysTrue => true,
                        Fate::AlwaysFalse => false,
                        Fate::Both => continue,
                    };
                    if fixed.insert(*a, v) == Some(!v) {
                        return;
                    }
                }
                let mut fate = fate;
                fate.clear();
                fate
            }
            _ => HashMap::with_capacity(self.vars.len()),
        };
        loop {
            let mut changed = false;
            for clause in &self.pos_clauses {
                if clause.iter().any(|a| fixed.get(a) == Some(&true)) {
                    continue;
                }
                let mut first_free: Option<Asn> = None;
                let mut multi = false;
                for a in clause {
                    if fixed.contains_key(a) {
                        continue;
                    }
                    match first_free {
                        None => first_free = Some(*a),
                        Some(f) if f != *a => {
                            multi = true;
                            break;
                        }
                        Some(_) => {}
                    }
                }
                match first_free {
                    None => return,
                    Some(a) if !multi => {
                        fixed.insert(a, true);
                        changed = true;
                    }
                    Some(_) => {}
                }
            }
            if !changed {
                break;
            }
        }
        let var_of = &mut scratch.var_of;
        let free_vars = &mut scratch.free_vars;
        var_of.clear();
        free_vars.clear();
        for a in &self.vars {
            if !fixed.contains_key(a) {
                var_of.insert(*a, Var(free_vars.len() as u32));
                free_vars.push(*a);
            }
        }
        scratch.cnf.reset(free_vars.len());
        for clause in &self.pos_clauses {
            if clause.iter().any(|a| fixed.get(a) == Some(&true)) {
                continue;
            }
            scratch
                .cnf
                .push_clause(clause.iter().filter_map(|a| var_of.get(a)).map(|v| Lit::pos(*v)));
        }
        let result = scratch.ctx.census(&scratch.cnf, cap);
        let Some(backbone) = result.backbone else {
            return;
        };
        for (a, v) in fixed.iter() {
            fate.insert(*a, if *v { Fate::AlwaysTrue } else { Fate::AlwaysFalse });
        }
        for (i, a) in free_vars.iter().enumerate() {
            let f = match (backbone.ever_true[i], backbone.ever_false[i]) {
                (true, false) => Fate::AlwaysTrue,
                (false, true) => Fate::AlwaysFalse,
                _ => Fate::Both,
            };
            fate.insert(*a, f);
        }
        self.memo = Memo::Solved { count: result.count, fate };
    }

    /// The analysed outcome (see `crate::incremental` for the contract).
    pub fn outcome(&self) -> InstanceOutcome {
        let n_vars = self.vars.len();
        let (solvability, bucket, censors, potential, eliminated) = match &self.memo {
            Memo::Trivial => {
                let mut elim = self.vars.clone();
                elim.sort();
                (Solvability::Unique, 1u8, Vec::new(), Vec::new(), elim)
            }
            Memo::Unsat => (Solvability::Unsat, 0, Vec::new(), Vec::new(), Vec::new()),
            Memo::Solved { count, fate } => {
                let solvability = count.solvability();
                let mut censors = Vec::new();
                let mut potential = Vec::new();
                let mut eliminated = Vec::new();
                for (a, f) in fate {
                    match f {
                        Fate::AlwaysTrue => censors.push(*a),
                        Fate::AlwaysFalse => eliminated.push(*a),
                        Fate::Both => potential.push(*a),
                    }
                }
                censors.sort();
                potential.sort();
                eliminated.sort();
                (solvability, count.bucket(), censors, potential, eliminated)
            }
        };
        let eliminated_frac =
            if n_vars == 0 { 0.0 } else { eliminated.len() as f64 / n_vars as f64 };
        InstanceOutcome {
            key: self.key,
            n_vars,
            n_observations: self.observations.len(),
            n_positive: self.n_positive,
            solvability,
            bucket,
            censors,
            potential_censors: potential,
            eliminated,
            eliminated_frac,
        }
    }
}
