//! # churnlab-engine
//!
//! A sharded, order-independent, **incremental** tomography engine over
//! measurement streams — the production-shaped counterpart of the batch
//! [`churnlab_core::pipeline::Pipeline`].
//!
//! The batch pipeline depends on measurements arriving grouped by URL
//! (the platform runner's iteration order) and solves every
//! (URL × window × anomaly) CNF from scratch when a URL's buffer
//! flushes. That contract rules out exactly the regime a deployed
//! localization service lives in: many vantage feeds arriving
//! concurrently, interleaved across URLs, with reports wanted *before*
//! the stream ends. The engine removes both restrictions:
//!
//! * **Any order** — [`Engine::ingest`] accepts measurements in whatever
//!   order they arrive; instance state is keyed, not positional.
//! * **Sharded** — each *raw* measurement is routed by `hash(url_id)`
//!   to a shard worker over a bounded channel; shards own their
//!   instances outright (no locks on the hot path) and both **convert**
//!   (the §3.1 elimination rules — the most expensive per-measurement
//!   stage) and solve in parallel, so one ingesting thread drives N
//!   cores' worth of work.
//! * **Incremental** — every instance keeps a memoized
//!   unit-propagation/backbone state ([`IncrementalInstance`]), so a new
//!   observation is usually a constant-time state transition
//!   (early-unsat and already-decided instances short-circuit), and
//!   otherwise a census over the *reduced* formula — never a from-scratch
//!   AllSAT pass over a whole URL buffer.
//! * **Interned** — path churn means few distinct paths observed many
//!   times, so each shard interns every distinct AS path once into a
//!   [`PathTable`] (one hash per measurement) and the whole
//!   granularity×anomaly fan-out works on the dense
//!   [`churnlab_core::obs::PathId`]: dedup is an integer probe, clause
//!   literals live in one flat arena, and report cells carry ids that
//!   are resolved back to paths only at the merge boundary.
//!
//! [`Engine::snapshot`] / [`Engine::finish`] produce a
//! [`churnlab_core::pipeline::PipelineResults`], so reports, validation,
//! and the scenario-matrix harness work unchanged — and the
//! [`churnlab_core::report::CanonicalReport`] serialization is
//! **byte-identical** to the batch pipeline's over the same measurement
//! set, which the property tests assert over shuffled streams.
//!
//! ```
//! use churnlab_engine::{Engine, EngineConfig};
//! # use churnlab_bgp::{ChurnConfig, RoutingSim};
//! # use churnlab_censor::{CensorConfig, CensorshipScenario};
//! # use churnlab_core::pipeline::PipelineConfig;
//! # use churnlab_platform::{Platform, PlatformConfig, PlatformScale};
//! # use churnlab_topology::{generator, WorldConfig, WorldScale};
//! # let world = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 1));
//! # let ccfg = CensorConfig::scaled_for(world.topology.countries().len());
//! # let scenario = CensorshipScenario::generate_for_world(&world, &ccfg);
//! # let pcfg = PlatformConfig::preset(PlatformScale::Smoke, 1);
//! # let platform = Platform::new(&world, &scenario, pcfg.clone());
//! # let sim = RoutingSim::new(
//! #     &world.topology,
//! #     &ChurnConfig { total_days: pcfg.total_days, ..ChurnConfig::default() },
//! # );
//! let cfg = EngineConfig::new(PipelineConfig::paper(pcfg.total_days)).with_shards(2);
//! let engine = Engine::new(&platform, cfg);
//! platform.run(&sim, |m| engine.ingest_owned(m)); // any order would do
//! let results = engine.finish();
//! println!("identified {} censors", results.identified_censors().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
mod ckpt;
mod engine;
pub mod incremental;
pub mod intern;
mod obs;
pub mod reference;
mod shard;

pub use ckpt::RestoreError;
pub use engine::{
    CompactReport, Engine, EngineBusy, EngineConfig, EngineStats, Feeder, Restored, RetireStats,
};
pub use incremental::{IncrementalInstance, IncrementalStats, InstanceGroup, SolveScratch};
pub use intern::{InternStats, PathSnapshot, PathTable};
pub use obs::EngineObs;
// The schedstat on-CPU clock moved into `churnlab-obs`; re-exported so
// engine consumers keep one import path.
pub use churnlab_obs::thread_cpu_nanos;
