//! Shard-local state and the worker loop.
//!
//! Each shard owns the instances of its URL subset outright — no locks,
//! no sharing; cross-shard aggregation happens only when a report is
//! requested. A shard receives [`Msg::Obs`] for every converted
//! observation routed to it (any order) and answers [`Msg::Report`] with
//! a self-contained [`ShardReport`] the engine merges on the caller's
//! thread (which is where the topology lives — workers are `'static`).

use crate::incremental::{IncrementalInstance, IncrementalStats, SolveScratch};
use churnlab_core::analyze::{analyze_with, InstanceOutcome};
use churnlab_sat::SolverCtx;
use churnlab_core::batch::split_url_buffer;
use churnlab_core::instance::InstanceKey;
use churnlab_core::obs::ConvertedObs;
use churnlab_core::pipeline::{ChurnMode, PipelineConfig};
use churnlab_core::ChurnAccumulator;
use churnlab_bgp::TimeWindow;
use churnlab_platform::AnomalyType;
use churnlab_topology::Asn;
use std::collections::{HashMap, HashSet};
use std::sync::mpsc::{Receiver, SyncSender};

/// A message to a shard worker.
pub(crate) enum Msg {
    /// A batch of converted observations for this shard's URL subset
    /// (size 1 for direct [`crate::Engine::ingest`]; feeders chunk).
    Obs(Vec<ConvertedObs>),
    /// Produce a report of everything processed so far (a snapshot when
    /// the engine keeps running, the final answer at `finish`).
    Report(SyncSender<ShardReport>),
}

/// One analysed instance crossing the shard boundary: the outcome plus
/// the censored paths the merger's leakage analysis needs (attached only
/// when the instance pinned down a censor).
pub(crate) struct SolvedCell {
    pub outcome: InstanceOutcome,
    pub censored_paths: Vec<Vec<Asn>>,
}

/// Everything a shard contributes to a merged report.
pub(crate) struct ShardReport {
    pub cells: Vec<SolvedCell>,
    pub trivial: u64,
    pub churn: ChurnAccumulator,
    pub on_censored_path: HashSet<Asn>,
    pub stats: IncrementalStats,
    pub observations: u64,
}

/// Shard-local state.
pub(crate) struct ShardState {
    cfg: PipelineConfig,
    /// Incrementally solved instances (Normal churn mode).
    instances: HashMap<InstanceKey, IncrementalInstance>,
    /// Per-URL buffers for the Figure-4 ablation, where "first path" is
    /// only defined once the whole stream is known — processed (without
    /// consuming) at report time over the restored test order.
    deferred: HashMap<u32, Vec<ConvertedObs>>,
    churn: ChurnAccumulator,
    on_censored_path: HashSet<Asn>,
    stats: IncrementalStats,
    observations: u64,
    /// Worker-owned reusable solver state: every re-solve of every
    /// instance on this shard runs on one warm watched-literal context.
    scratch: SolveScratch,
}

impl ShardState {
    pub(crate) fn new(cfg: PipelineConfig) -> Self {
        ShardState {
            cfg,
            instances: HashMap::new(),
            deferred: HashMap::new(),
            churn: ChurnAccumulator::new(),
            on_censored_path: HashSet::new(),
            stats: IncrementalStats::default(),
            observations: 0,
            scratch: SolveScratch::new(),
        }
    }

    /// Fold one observation into the shard.
    pub(crate) fn ingest(&mut self, o: ConvertedObs) {
        self.observations += 1;
        self.churn.add(o.vp_asn, o.dest_asn, o.day, &o.path);
        if self.cfg.churn_mode == ChurnMode::FirstPathOnly {
            self.deferred.entry(o.url_id).or_default().push(o);
            return;
        }
        // Any censored observation lands in at least one analysed
        // instance (its own anomaly's), so the observability horizon can
        // accumulate here without waiting for the report.
        if !o.detected.is_empty() {
            self.on_censored_path.extend(o.path.iter().copied());
        }
        let cap = self.cfg.solve.count_cap;
        for &g in &self.cfg.granularities {
            let window = TimeWindow::of(o.day, g, self.cfg.total_days);
            for anomaly in AnomalyType::ALL {
                let key = InstanceKey { url_id: o.url_id, anomaly, window };
                self.instances
                    .entry(key)
                    .or_insert_with(|| IncrementalInstance::new(key))
                    .observe(
                        &o.path,
                        o.detected.contains(anomaly),
                        cap,
                        &mut self.stats,
                        &mut self.scratch,
                    );
            }
        }
    }

    /// Produce a report of everything processed so far. Non-destructive:
    /// the shard keeps ingesting afterwards.
    pub(crate) fn report(&self) -> ShardReport {
        let mut cells = Vec::new();
        let mut trivial = 0u64;
        let mut on_censored_path = self.on_censored_path.clone();
        match self.cfg.churn_mode {
            ChurnMode::Normal => {
                for inst in self.instances.values() {
                    if self.cfg.require_positive && !inst.has_positive() {
                        trivial += 1;
                        continue;
                    }
                    let outcome = inst.outcome();
                    let censored_paths = if outcome.censors.is_empty() {
                        Vec::new()
                    } else {
                        inst.censored_paths().map(<[Asn]>::to_vec).collect()
                    };
                    cells.push(SolvedCell { outcome, censored_paths });
                }
            }
            ChurnMode::FirstPathOnly => {
                // `report` is `&self`, so the shard's own scratch is out of
                // reach; one context for the whole report still keeps the
                // solver allocation count per-report, not per-instance.
                let mut ctx = SolverCtx::new();
                for (&url_id, obs) in &self.deferred {
                    let mut buf = obs.clone();
                    // Restore the runner's test order so "first distinct
                    // path" means what the batch pipeline means by it.
                    buf.sort_by_key(ConvertedObs::test_order);
                    split_url_buffer(
                        url_id,
                        buf,
                        ChurnMode::FirstPathOnly,
                        &self.cfg.granularities,
                        self.cfg.total_days,
                        |builder| {
                            if self.cfg.require_positive && !builder.has_positive() {
                                trivial += 1;
                                return;
                            }
                            let inst = builder.build().expect("non-empty builder");
                            let outcome = analyze_with(&inst, &self.cfg.solve, &mut ctx);
                            let mut censored_paths = Vec::new();
                            for ob in inst.observations.iter().filter(|o| o.censored) {
                                on_censored_path.extend(ob.path.iter().copied());
                                if !outcome.censors.is_empty() {
                                    censored_paths.push(ob.path.clone());
                                }
                            }
                            cells.push(SolvedCell { outcome, censored_paths });
                        },
                    );
                }
            }
        }
        ShardReport {
            cells,
            trivial,
            churn: self.churn.clone(),
            on_censored_path,
            stats: self.stats,
            observations: self.observations,
        }
    }
}

/// The worker loop: drain messages until every sender is gone.
pub(crate) fn run_worker(rx: Receiver<Msg>, cfg: PipelineConfig) {
    let mut state = ShardState::new(cfg);
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Obs(batch) => {
                for o in batch {
                    state.ingest(o);
                }
            }
            // A dropped reply channel means the requester gave up; the
            // shard itself is still healthy.
            Msg::Report(reply) => drop(reply.send(state.report())),
        }
    }
}
