//! Shard-local state and the worker loop.
//!
//! Each shard owns the instances of its URL subset outright — no locks,
//! no sharing; cross-shard aggregation happens only when a report is
//! requested. A shard receives [`Msg::Raw`]/[`Msg::Batch`] for every
//! measurement routed to it (any order) and answers [`Msg::Report`] with
//! a self-contained [`ShardReport`] the engine merges on the caller's
//! thread (which is where the topology lives — workers are `'static`).
//!
//! The shard is where **conversion** happens: routing needs only the
//! measurement's `url_id`, so the §3.1 elimination rules (per-hop
//! IP-to-AS trie walks over three traceroutes — the single most
//! expensive per-measurement stage) run on the shard's own thread
//! against a shared [`Ip2AsDb`]. One ingesting caller therefore drives
//! N shards' worth of conversion in parallel instead of converting
//! serially for all of them — the fix for the flat shard-scaling curve.
//! A side effect: conversion counters are shard state, so a report's
//! conversion accounting is exactly consistent with its cut.
//!
//! The shard is also where interning happens: every converted path is
//! resolved to a [`PathId`] against the shard-local [`PathTable`] —
//! **one hash per measurement** — and the granularity×anomaly fan-out
//! works on the id alone. Report cells carry ids too; the merger
//! resolves them back to AS paths through the report's [`PathSnapshot`]
//! only at the boundary.

use crate::incremental::{IncrementalStats, InstanceGroup, SolveScratch};
use crate::intern::{FxMap, FxSet, InternStats, PathSnapshot, PathTable};
use crate::obs::ShardObs;
use churnlab_bgp::TimeWindow;
use churnlab_core::analyze::{analyze_with, InstanceOutcome};
use churnlab_core::batch::{first_path_refs, for_each_instance};
use churnlab_core::convert::ConversionStats;
use churnlab_core::obs::{ConvertedObs, PathId};
use churnlab_core::pipeline::{ChurnMode, PipelineConfig};
use churnlab_core::ChurnAccumulator;
use churnlab_obs::{BusyTimer, Counter, Stopwatch};
use churnlab_platform::Measurement;
use churnlab_sat::CtxStats;
use churnlab_topology::{Asn, Ip2AsDb};
use std::collections::hash_map::Entry;
use std::collections::HashSet;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;

/// A message to a shard worker.
pub(crate) enum Msg {
    /// One raw measurement for this shard's URL subset (direct
    /// [`crate::Engine::ingest`] — carried inline: no per-measurement
    /// heap allocation on the send side).
    Raw(Measurement),
    /// A feeder's chunk of raw measurements.
    Batch(Vec<Measurement>),
    /// Produce a report of everything processed so far. `fin` marks the
    /// engine's final cut: journal window-closed/cell-solved events are
    /// emitted only then, so the event stream reconciles exactly with
    /// one report instead of double-counting across snapshots.
    Report {
        reply: SyncSender<ShardReport>,
        fin: bool,
    },
    /// Test instrumentation: panic the worker, so the engine's
    /// worker-death propagation can be exercised deterministically.
    Poison,
}

/// One analysed instance crossing the shard boundary: the outcome plus
/// the ids of the censored paths the merger's leakage analysis needs
/// (attached only when the instance pinned down a censor; resolved
/// against the owning [`ShardReport::paths`] snapshot).
pub(crate) struct SolvedCell {
    pub outcome: InstanceOutcome,
    pub censored_paths: Vec<PathId>,
}

/// Everything a shard contributes to a merged report.
pub(crate) struct ShardReport {
    pub cells: Vec<SolvedCell>,
    /// Resolver for every [`PathId`] in `cells` (one flat arena over the
    /// shard's *distinct* paths — the report never deep-copies a
    /// per-observation `Vec<Vec<Asn>>`). Shared: a quiesced shard hands
    /// out the same cached snapshot allocation report after report.
    pub paths: Arc<PathSnapshot>,
    pub trivial: u64,
    pub churn: ChurnAccumulator,
    pub on_censored_path: HashSet<Asn>,
    pub stats: IncrementalStats,
    pub intern: InternStats,
    /// Conversion accounting for every measurement routed here —
    /// exactly consistent with this report's cut.
    pub conversion: ConversionStats,
    /// Cumulative SAT-solver work counters of this shard's warm context.
    pub sat: CtxStats,
    pub observations: u64,
    /// Cumulative busy time of this worker (conversion + ingest +
    /// report building), in nanoseconds — the per-thread attribution the
    /// bench's scaling-efficiency model is built on.
    pub busy_nanos: u64,
}

/// One URL's deferred buffer for the Figure-4 ablation, where "first
/// path" is only defined once the whole stream is known. Kept sorted
/// lazily: appends in test order preserve sortedness for free, and a
/// report sorts at most once per out-of-order batch — repeated snapshots
/// never re-sort (or clone) an unchanged buffer.
struct DeferredBuf {
    obs: Vec<ConvertedObs>,
    sorted: bool,
}

impl DeferredBuf {
    fn push(&mut self, o: ConvertedObs) {
        if self.sorted {
            if let Some(last) = self.obs.last() {
                if last.test_order() > o.test_order() {
                    self.sorted = false;
                }
            }
        }
        self.obs.push(o);
    }

    /// Restore the runner's test order so "first distinct path" means
    /// what the batch pipeline means by it. No-op when already sorted.
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.obs.sort_by_key(ConvertedObs::test_order);
            self.sorted = true;
        }
    }
}

/// Shard-local state.
pub(crate) struct ShardState {
    cfg: PipelineConfig,
    /// The shard-local path interner: each distinct path hashed and
    /// copied once, everything downstream id-based.
    table: PathTable,
    /// Incrementally solved instance groups (Normal churn mode), one per
    /// (URL × window), each holding every anomaly cell.
    groups: FxMap<(u32, TimeWindow), InstanceGroup>,
    /// Per-URL buffers for the Figure-4 ablation, processed (without
    /// consuming) at report time over the restored test order.
    deferred: FxMap<u32, DeferredBuf>,
    churn: ChurnAccumulator,
    /// Ids of paths that carried at least one detected anomaly — the
    /// observability horizon, expanded to ASes only at report time.
    censored_path_ids: FxSet<PathId>,
    stats: IncrementalStats,
    conversion: ConversionStats,
    observations: u64,
    /// Worker-owned reusable solver state: every re-solve of every
    /// instance on this shard runs on one warm watched-literal context.
    scratch: SolveScratch,
    /// Observability handles, `None` in the stripped configuration (the
    /// overhead gate's baseline): one predictable branch per use, no
    /// atomic ops at all.
    obs: Option<ShardObs>,
}

impl ShardState {
    pub(crate) fn new(cfg: PipelineConfig, obs: Option<ShardObs>) -> Self {
        let mut scratch = SolveScratch::new();
        if let Some(o) = &obs {
            scratch.set_resolve_obs(o.resolve.clone());
        }
        ShardState {
            cfg,
            table: PathTable::new(),
            groups: FxMap::default(),
            deferred: FxMap::default(),
            churn: ChurnAccumulator::new(),
            censored_path_ids: FxSet::default(),
            stats: IncrementalStats::default(),
            conversion: ConversionStats::default(),
            observations: 0,
            scratch,
            obs,
        }
    }

    /// Convert one raw measurement (the §3.1 elimination rules) and fold
    /// the surviving observation in. This is the engine's conversion
    /// site: it runs on the shard's own thread, in parallel across
    /// shards, whatever the feeder count.
    pub(crate) fn ingest_raw(&mut self, m: &Measurement, db: &Ip2AsDb) {
        if let Some(o) = ConvertedObs::from_measurement(m, db, &mut self.conversion) {
            self.ingest(o);
        }
    }

    /// Fold one observation into the shard.
    pub(crate) fn ingest(&mut self, o: ConvertedObs) {
        self.observations += 1;
        if let Some(obs) = &self.obs {
            // The only per-measurement instrumentation: one relaxed
            // fetch_add on a thread-local counter slot.
            obs.observations.inc();
        }
        self.churn.add(o.vp_asn, o.dest_asn, o.day, &o.path);
        if self.cfg.churn_mode == ChurnMode::FirstPathOnly {
            self.deferred
                .entry(o.url_id)
                .or_insert_with(|| DeferredBuf { obs: Vec::new(), sorted: true })
                .push(o);
            return;
        }
        // One hash per measurement: everything below works on the id.
        let pid = self.table.intern(&o.path);
        // Any censored observation lands in at least one analysed
        // instance (its own anomaly's), so the observability horizon can
        // accumulate here without waiting for the report.
        if !o.detected.is_empty() {
            self.censored_path_ids.insert(pid);
        }
        let cap = self.cfg.solve.count_cap;
        for &g in &self.cfg.granularities {
            let window = TimeWindow::of(o.day, g, self.cfg.total_days);
            let group = match self.groups.entry((o.url_id, window)) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => {
                    if let Some(obs) = &self.obs {
                        obs.window_opened(o.url_id, window);
                    }
                    e.insert(InstanceGroup::new(o.url_id, window))
                }
            };
            group.observe(pid, &self.table, o.detected, cap, &mut self.stats, &mut self.scratch);
        }
    }

    /// Produce a report of everything processed so far. Non-destructive
    /// for the tomography state — the shard keeps ingesting afterwards;
    /// `&mut` only so deferred ablation buffers can be sorted in place
    /// (at most once per out-of-order batch) and the warm scratch solver
    /// reused. `fin` marks the engine's final cut: only then are journal
    /// window-closed / cell-solved events emitted (once per window, once
    /// per cell — so the journal reconciles exactly with this report).
    pub(crate) fn report(&mut self, fin: bool) -> ShardReport {
        let mut cells = Vec::new();
        let mut trivial = 0u64;
        let mut on_censored_path: HashSet<Asn> = HashSet::new();
        for &pid in &self.censored_path_ids {
            on_censored_path.extend(self.table.path(pid).iter().copied());
        }
        // Resolver for the ids in `cells`. Interning is an ingest-path
        // mechanism, so in Normal mode this is the shard table; the
        // deferred ablation mode never interns at ingest and instead
        // resolves report cells against a report-local table, keeping
        // the shard's `InternStats` an honest description of the
        // measurement stream (all zeros in that mode) rather than a
        // count of how many snapshots were taken.
        let paths = match self.cfg.churn_mode {
            ChurnMode::Normal => {
                for (&(url_id, window), group) in self.groups.iter() {
                    let mut group_reported = 0u64;
                    let mut group_trivial = 0u64;
                    for inst in group.cells() {
                        if self.cfg.require_positive && !inst.has_positive() {
                            trivial += 1;
                            group_trivial += 1;
                            continue;
                        }
                        let outcome = inst.outcome(group.vars());
                        if fin {
                            if let Some(obs) = &self.obs {
                                obs.cell_solved(&outcome);
                            }
                        }
                        let censored_paths = if outcome.censors.is_empty() {
                            Vec::new()
                        } else {
                            inst.censored_paths().collect()
                        };
                        cells.push(SolvedCell { outcome, censored_paths });
                        group_reported += 1;
                    }
                    if fin {
                        if let Some(obs) = &self.obs {
                            obs.window_closed(url_id, window, group_reported, group_trivial);
                        }
                    }
                }
                // No cell carries an id until some instance pins a
                // censor; until then a snapshot needs no arena clone —
                // the table only grows, so this is the common case for
                // frequent polling early in a stream. Once ids do cross,
                // the shared snapshot is cached per table growth, so a
                // quiesced shard resolves report after report from one
                // allocation.
                if cells.iter().all(|c| c.censored_paths.is_empty()) {
                    Arc::new(PathSnapshot::empty())
                } else {
                    self.table.snapshot_shared()
                }
            }
            ChurnMode::FirstPathOnly => {
                let mut report_table = PathTable::new();
                let ShardState { cfg, deferred, scratch, .. } = self;
                for (&url_id, buf) in deferred.iter_mut() {
                    buf.ensure_sorted();
                    // Non-destructive first-path filter over the sorted
                    // buffer: the kept observations are borrowed, never
                    // cloned, and the buffer survives for later (larger)
                    // snapshots.
                    let kept = first_path_refs(&buf.obs);
                    for_each_instance(
                        url_id,
                        &kept,
                        &cfg.granularities,
                        cfg.total_days,
                        |builder| {
                            if cfg.require_positive && !builder.has_positive() {
                                trivial += 1;
                                return;
                            }
                            let inst = builder.build().expect("non-empty builder");
                            let outcome = analyze_with(&inst, &cfg.solve, scratch.solver_ctx());
                            let mut censored_paths = Vec::new();
                            for ob in inst.observations.iter().filter(|o| o.censored) {
                                on_censored_path.extend(ob.path.iter().copied());
                                if !outcome.censors.is_empty() {
                                    censored_paths.push(report_table.intern(&ob.path));
                                }
                            }
                            cells.push(SolvedCell { outcome, censored_paths });
                        },
                    );
                }
                Arc::new(report_table.snapshot())
            }
        };
        ShardReport {
            cells,
            paths,
            trivial,
            churn: self.churn.clone(),
            on_censored_path,
            stats: self.stats,
            intern: self.table.stats(),
            conversion: self.conversion,
            sat: self.scratch.sat_stats(),
            observations: self.observations,
            busy_nanos: 0, // stamped by the worker loop
        }
    }
}

/// Phase-attribution handles the worker loop drives directly (cloned
/// out of the shard's [`ShardObs`] so the loop can time around `&mut
/// state` calls).
struct PhaseCounters {
    measurements: Counter,
    convert: Counter,
    intern: Counter,
}

/// The worker loop: drain messages until every sender is gone,
/// converting and solving on this thread and attributing the busy time
/// spent doing it (the scaling-efficiency model's raw data).
///
/// Busy accounting runs on [`BusyTimer`]: the thread's cumulative
/// on-CPU clock where `schedstat` exists (a blocked `recv` costs no
/// CPU, so the whole on-CPU time is the shard's busy time), accumulated
/// wall intervals around each message elsewhere (overstated under core
/// oversubscription, but better than nothing on non-Linux hosts).
pub(crate) fn run_worker(
    rx: Receiver<Msg>,
    cfg: PipelineConfig,
    db: Arc<Ip2AsDb>,
    obs: Option<ShardObs>,
) {
    let phase = obs.as_ref().map(|o| PhaseCounters {
        measurements: o.measurements.clone(),
        convert: o.phase_convert.clone(),
        intern: o.phase_intern.clone(),
    });
    let mut state = ShardState::new(cfg, obs);
    let mut busy = BusyTimer::detect();
    // Instrumented batches convert into this worker-lifetime buffer and
    // lap this worker-lifetime stopwatch, so the phase split below costs
    // no per-batch allocation and no per-batch schedstat open.
    let mut converted: Vec<ConvertedObs> = Vec::new();
    let mut sw = Stopwatch::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Raw(m) => busy.interval(|| {
                if let Some(p) = &phase {
                    p.measurements.inc();
                }
                state.ingest_raw(&m, &db);
            }),
            Msg::Batch(batch) => busy.interval(|| match &phase {
                None => {
                    for m in &batch {
                        state.ingest_raw(m, &db);
                    }
                }
                Some(p) => {
                    // Instrumented batches split conversion from the
                    // intern/solve fold with one chained stopwatch —
                    // three clock reads per chunk, not per measurement —
                    // staging conversions through the worker-lifetime
                    // buffer. Conversion order and ingest order both
                    // match the stripped path, so results stay
                    // byte-identical.
                    p.measurements.add(batch.len() as u64);
                    sw.restart();
                    converted.clear();
                    converted.extend(batch.iter().filter_map(|m| {
                        ConvertedObs::from_measurement(m, &db, &mut state.conversion)
                    }));
                    sw.lap(&p.convert);
                    for o in converted.drain(..) {
                        state.ingest(o);
                    }
                    sw.lap(&p.intern);
                }
            }),
            Msg::Report { reply, fin } => {
                let mut report = busy.interval(|| state.report(fin));
                report.busy_nanos = busy.busy_nanos();
                // A dropped reply channel means the requester gave up;
                // the shard itself is still healthy.
                drop(reply.send(report));
            }
            Msg::Poison => panic!("poisoned by test instrumentation"),
        }
    }
}
