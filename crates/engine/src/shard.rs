//! Shard-local state and the worker loop.
//!
//! Each shard owns the instances of its URL subset outright — no locks,
//! no sharing; cross-shard aggregation happens only when a report is
//! requested. A shard receives [`Msg::Raw`]/[`Msg::Batch`] for every
//! measurement routed to it (any order) and answers [`Msg::Report`] with
//! a self-contained [`ShardReport`] the engine merges on the caller's
//! thread (which is where the topology lives — workers are `'static`).
//!
//! The shard is where **conversion** happens: routing needs only the
//! measurement's `url_id`, so the §3.1 elimination rules (per-hop
//! IP-to-AS trie walks over three traceroutes — the single most
//! expensive per-measurement stage) run on the shard's own thread
//! against a shared [`Ip2AsDb`]. One ingesting caller therefore drives
//! N shards' worth of conversion in parallel instead of converting
//! serially for all of them — the fix for the flat shard-scaling curve.
//! A side effect: conversion counters are shard state, so a report's
//! conversion accounting is exactly consistent with its cut.
//!
//! The shard is also where interning happens: every converted path is
//! resolved to a [`PathId`] against the shard-local [`PathTable`] —
//! **one hash per measurement** — and the granularity×anomaly fan-out
//! works on the id alone. Report cells carry ids too; the merger
//! resolves them back to AS paths through the report's [`PathSnapshot`]
//! only at the boundary.
//!
//! **Window lifecycle.** The shard tracks a high-water day watermark.
//! With a lateness horizon configured, any (URL × window) group whose
//! window ended more than `horizon` days below the watermark is
//! **retired**: its cells are solved once, journal
//! `cell_solved`/`window_closed` events fire, the outcomes move to a
//! compact retired list, and the solver state is freed. Observations for
//! an already-retired window are counted and dropped — an observation is
//! never late for its *own* window (a window containing day `d` ends at
//! or after `d`), so only genuinely stale data is affected. Retired
//! outcomes stay part of every later report until the engine drains them
//! through [`Msg::Compact`], which is what bounds shard memory on an
//! unbounded stream.

use crate::ckpt::{anomaly_from, anomaly_tag, Dec, Enc};
use crate::incremental::{IncrementalStats, InstanceGroup, SolveScratch};
use crate::intern::{FxMap, FxSet, InternStats, PathSnapshot, PathTable};
use crate::obs::ShardObs;
use churnlab_bgp::TimeWindow;
use churnlab_core::analyze::{analyze_with, InstanceOutcome};
use churnlab_core::batch::{first_path_refs, for_each_instance};
use churnlab_core::convert::ConversionStats;
use churnlab_core::instance::InstanceKey;
use churnlab_core::obs::{ConvertedObs, PathId};
use churnlab_core::pipeline::{ChurnMode, PipelineConfig};
use churnlab_core::ChurnAccumulator;
use churnlab_obs::{BusyTimer, Counter, Stopwatch};
use churnlab_platform::Measurement;
use churnlab_sat::{CtxStats, Solvability};
use churnlab_topology::{Asn, Ip2AsDb};
use std::collections::hash_map::Entry;
use std::collections::HashSet;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;

/// A message to a shard worker.
pub(crate) enum Msg {
    /// One raw measurement for this shard's URL subset (direct
    /// [`crate::Engine::ingest`] — carried inline: no per-measurement
    /// heap allocation on the send side).
    Raw(Measurement),
    /// A feeder's chunk of raw measurements.
    Batch(Vec<Measurement>),
    /// Produce a report of everything processed so far. `fin` marks the
    /// engine's final cut: journal window-closed/cell-solved events are
    /// emitted only then (or earlier, at retirement), so the event
    /// stream reconciles exactly with one report instead of
    /// double-counting across snapshots.
    Report {
        reply: SyncSender<ShardReport>,
        fin: bool,
    },
    /// Drain the shard's retired outcomes (daemon memory reclamation).
    Compact { reply: SyncSender<CompactCut> },
    /// The engine folded churn windows closed below this global
    /// watermark into its retired tallies; the shard can free its
    /// matching partials.
    PruneChurn(u32),
    /// Serialize the shard's full state for a checkpoint.
    Checkpoint { reply: SyncSender<Vec<u8>> },
    /// Test instrumentation: panic the worker, so the engine's
    /// worker-death propagation can be exercised deterministically.
    #[cfg(feature = "test-instrumentation")]
    Poison,
}

/// One analysed instance crossing the shard boundary: the outcome plus
/// the ids of the censored paths the merger's leakage analysis needs
/// (attached only when the instance pinned down a censor; resolved
/// against the owning [`ShardReport::paths`] snapshot).
#[derive(Clone)]
pub(crate) struct SolvedCell {
    pub outcome: InstanceOutcome,
    pub censored_paths: Vec<PathId>,
}

/// Everything a shard contributes to a merged report.
pub(crate) struct ShardReport {
    pub cells: Vec<SolvedCell>,
    /// Resolver for every [`PathId`] in `cells` (one flat arena over the
    /// shard's *distinct* paths — the report never deep-copies a
    /// per-observation `Vec<Vec<Asn>>`). Shared: a quiesced shard hands
    /// out the same cached snapshot allocation report after report.
    pub paths: Arc<PathSnapshot>,
    pub trivial: u64,
    pub churn: ChurnAccumulator,
    pub on_censored_path: HashSet<Asn>,
    pub stats: IncrementalStats,
    pub intern: InternStats,
    /// Conversion accounting for every measurement routed here —
    /// exactly consistent with this report's cut.
    pub conversion: ConversionStats,
    /// Cumulative SAT-solver work counters of this shard's warm context
    /// (plus any work restored from a checkpoint).
    pub sat: CtxStats,
    pub observations: u64,
    /// Highest day observed by this shard, `None` until data arrives.
    /// The engine folds churn windows only below the *minimum* watermark
    /// across all shards.
    pub high_water: Option<u32>,
    /// (URL × window) groups retired under the lateness horizon.
    pub windows_retired: u64,
    /// Cells solved at retirement time.
    pub cells_retired: u64,
    /// Observations dropped because their window had already retired.
    pub late_dropped: u64,
    /// Cumulative busy time of this worker (conversion + ingest +
    /// report building), in nanoseconds — the per-thread attribution the
    /// bench's scaling-efficiency model is built on.
    pub busy_nanos: u64,
}

/// A shard's answer to [`Msg::Compact`]: ownership of its retired
/// outcomes (plus the aggregates the engine folds into its persistent
/// retired state) — after this cut the shard no longer holds them.
pub(crate) struct CompactCut {
    pub high_water: Option<u32>,
    /// Clone of the shard's churn accumulator, so the engine can fold
    /// globally-closed windows during the same cut.
    pub churn: ChurnAccumulator,
    pub cells: Vec<SolvedCell>,
    pub trivial: u64,
    /// Resolver for the ids in `cells`.
    pub paths: Arc<PathSnapshot>,
}

/// One URL's deferred buffer for the Figure-4 ablation, where "first
/// path" is only defined once the whole stream is known. Kept sorted
/// lazily: appends in test order preserve sortedness for free, and a
/// report sorts at most once per out-of-order batch — repeated snapshots
/// never re-sort (or clone) an unchanged buffer.
struct DeferredBuf {
    obs: Vec<ConvertedObs>,
    sorted: bool,
}

impl DeferredBuf {
    fn push(&mut self, o: ConvertedObs) {
        if self.sorted {
            if let Some(last) = self.obs.last() {
                if last.test_order() > o.test_order() {
                    self.sorted = false;
                }
            }
        }
        self.obs.push(o);
    }

    /// Restore the runner's test order so "first distinct path" means
    /// what the batch pipeline means by it. No-op when already sorted.
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.obs.sort_by_key(ConvertedObs::test_order);
            self.sorted = true;
        }
    }
}

/// Shard-local state.
pub(crate) struct ShardState {
    cfg: PipelineConfig,
    /// Lateness horizon in days: a window retires once the watermark
    /// passes `end_day + horizon`. `None` = groups live forever (the
    /// pre-lifecycle behavior, byte-identical results).
    horizon: Option<u32>,
    /// The shard-local path interner: each distinct path hashed and
    /// copied once, everything downstream id-based.
    table: PathTable,
    /// Incrementally solved instance groups (Normal churn mode), one per
    /// live (URL × window), each holding every anomaly cell.
    groups: FxMap<(u32, TimeWindow), InstanceGroup>,
    /// Per-URL buffers for the Figure-4 ablation, processed (without
    /// consuming) at report time over the restored test order.
    deferred: FxMap<u32, DeferredBuf>,
    churn: ChurnAccumulator,
    /// Ids of paths that carried at least one detected anomaly — the
    /// observability horizon, expanded to ASes only at report time.
    censored_path_ids: FxSet<PathId>,
    stats: IncrementalStats,
    conversion: ConversionStats,
    observations: u64,
    /// Highest day seen so far.
    high_water: Option<u32>,
    /// Outcomes of retired groups, held until the next report /
    /// [`ShardState::compact_cut`]. Path ids stay valid: the table never
    /// reassigns them.
    retired_cells: Vec<SolvedCell>,
    /// Trivial (no-positive) cells skipped at retirement, not yet
    /// drained by a compact cut.
    retired_trivial: u64,
    windows_retired: u64,
    cells_retired: u64,
    late_dropped: u64,
    /// SAT work counters restored from a checkpoint — the warm scratch
    /// context restarts at zero, so reports add this base back in.
    sat_base: CtxStats,
    /// Worker-owned reusable solver state: every re-solve of every
    /// instance on this shard runs on one warm watched-literal context.
    scratch: SolveScratch,
    /// Observability handles, `None` in the stripped configuration (the
    /// overhead gate's baseline): one predictable branch per use, no
    /// atomic ops at all.
    obs: Option<ShardObs>,
}

impl ShardState {
    pub(crate) fn new(cfg: PipelineConfig, horizon: Option<u32>, obs: Option<ShardObs>) -> Self {
        let mut scratch = SolveScratch::new();
        if let Some(o) = &obs {
            scratch.set_resolve_obs(o.resolve.clone());
        }
        // Both churn modes run the windowed accumulator so shard state is
        // checkpointable; the ablation simply never retires churn
        // windows (no horizon).
        let churn_horizon = match cfg.churn_mode {
            ChurnMode::Normal => horizon,
            ChurnMode::FirstPathOnly => None,
        };
        let churn = ChurnAccumulator::windowed(&cfg.granularities, cfg.total_days, churn_horizon);
        ShardState {
            horizon,
            table: PathTable::new(),
            groups: FxMap::default(),
            deferred: FxMap::default(),
            churn,
            censored_path_ids: FxSet::default(),
            stats: IncrementalStats::default(),
            conversion: ConversionStats::default(),
            observations: 0,
            high_water: None,
            retired_cells: Vec::new(),
            retired_trivial: 0,
            windows_retired: 0,
            cells_retired: 0,
            late_dropped: 0,
            sat_base: CtxStats::default(),
            scratch,
            obs,
            cfg,
        }
    }

    /// Convert one raw measurement (the §3.1 elimination rules) and fold
    /// the surviving observation in. This is the engine's conversion
    /// site: it runs on the shard's own thread, in parallel across
    /// shards, whatever the feeder count.
    pub(crate) fn ingest_raw(&mut self, m: &Measurement, db: &Ip2AsDb) {
        if let Some(o) = ConvertedObs::from_measurement(m, db, &mut self.conversion) {
            self.ingest(o);
        }
    }

    /// Fold one observation into the shard.
    pub(crate) fn ingest(&mut self, o: ConvertedObs) {
        self.observations += 1;
        if let Some(obs) = &self.obs {
            // The only per-measurement instrumentation: one relaxed
            // fetch_add on a thread-local counter slot.
            obs.observations.inc();
        }
        self.churn.add(o.vp_asn, o.dest_asn, o.day, &o.path);
        let advanced = self.high_water.is_none_or(|hw| o.day > hw);
        if advanced {
            self.high_water = Some(o.day);
        }
        if self.cfg.churn_mode == ChurnMode::FirstPathOnly {
            self.deferred
                .entry(o.url_id)
                .or_insert_with(|| DeferredBuf { obs: Vec::new(), sorted: true })
                .push(o);
            return;
        }
        // One hash per measurement: everything below works on the id.
        let pid = self.table.intern(&o.path);
        // Any censored observation lands in at least one analysed
        // instance (its own anomaly's), so the observability horizon can
        // accumulate here without waiting for the report.
        if !o.detected.is_empty() {
            self.censored_path_ids.insert(pid);
        }
        let cap = self.cfg.solve.count_cap;
        for &g in &self.cfg.granularities {
            let window = TimeWindow::of(o.day, g, self.cfg.total_days);
            if self.window_retired(window) {
                // The window already retired under the horizon: its
                // outcome is fixed and its state freed. Count and drop.
                self.late_dropped += 1;
                continue;
            }
            let group = match self.groups.entry((o.url_id, window)) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => {
                    if let Some(obs) = &self.obs {
                        obs.window_opened(o.url_id, window);
                    }
                    e.insert(InstanceGroup::new(o.url_id, window))
                }
            };
            group.observe(pid, &self.table, o.detected, cap, &mut self.stats, &mut self.scratch);
        }
        if advanced && self.horizon.is_some() {
            self.retire_closed();
        }
    }

    /// True when `window` closed below the watermark-minus-horizon line —
    /// i.e. it either has retired already or would retire immediately.
    fn window_retired(&self, window: TimeWindow) -> bool {
        let (Some(h), Some(hw)) = (self.horizon, self.high_water) else {
            return false;
        };
        window
            .end_day(self.cfg.total_days)
            .is_some_and(|end| u64::from(end) + u64::from(h) < u64::from(hw))
    }

    /// Retire every live group whose window fell behind the horizon:
    /// solve its cells once, emit the journal close, move the outcomes
    /// to the retired list, and free the solver state. Retirement order
    /// is sorted by (URL, window) so journal and retired-cell order
    /// never depend on hash-map iteration.
    fn retire_closed(&mut self) {
        let mut keys: Vec<(u32, TimeWindow)> = self
            .groups
            .keys()
            .filter(|&&(_, w)| self.window_retired(w))
            .copied()
            .collect();
        if keys.is_empty() {
            return;
        }
        keys.sort_unstable();
        for key in keys {
            let group = self.groups.remove(&key).expect("key just listed");
            self.retire_group(key.0, key.1, &group);
        }
    }

    /// Fold one removed group into the retired accumulators.
    fn retire_group(&mut self, url_id: u32, window: TimeWindow, group: &InstanceGroup) {
        let mut reported = 0u64;
        let mut trivial = 0u64;
        for inst in group.cells() {
            if self.cfg.require_positive && !inst.has_positive() {
                self.retired_trivial += 1;
                trivial += 1;
                continue;
            }
            let outcome = inst.outcome(group.vars());
            if let Some(obs) = &self.obs {
                obs.cell_solved(&outcome);
            }
            let censored_paths = if outcome.censors.is_empty() {
                Vec::new()
            } else {
                inst.censored_paths().collect()
            };
            self.retired_cells.push(SolvedCell { outcome, censored_paths });
            reported += 1;
            self.cells_retired += 1;
        }
        self.windows_retired += 1;
        if let Some(obs) = &self.obs {
            obs.window_closed(url_id, window, reported, trivial);
        }
    }

    /// Produce a report of everything processed so far. Non-destructive
    /// for the tomography state — the shard keeps ingesting afterwards;
    /// `&mut` only so deferred ablation buffers can be sorted in place
    /// (at most once per out-of-order batch) and the warm scratch solver
    /// reused. `fin` marks the engine's final cut: only then are journal
    /// window-closed / cell-solved events emitted for *live* groups
    /// (retired groups emitted theirs at retirement — once per window,
    /// once per cell, so the journal reconciles exactly with this
    /// report).
    pub(crate) fn report(&mut self, fin: bool) -> ShardReport {
        let mut cells = Vec::new();
        let mut trivial = self.retired_trivial;
        let mut on_censored_path: HashSet<Asn> = HashSet::new();
        for &pid in &self.censored_path_ids {
            on_censored_path.extend(self.table.path(pid).iter().copied());
        }
        // Resolver for the ids in `cells`. Interning is an ingest-path
        // mechanism, so in Normal mode this is the shard table; the
        // deferred ablation mode never interns at ingest and instead
        // resolves report cells against a report-local table, keeping
        // the shard's `InternStats` an honest description of the
        // measurement stream (all zeros in that mode) rather than a
        // count of how many snapshots were taken.
        let paths = match self.cfg.churn_mode {
            ChurnMode::Normal => {
                // Retired outcomes not yet drained by a compact cut are
                // part of every report; their ids stay resolvable
                // because the table never reassigns them.
                cells.extend(self.retired_cells.iter().cloned());
                for (&(url_id, window), group) in self.groups.iter() {
                    let mut group_reported = 0u64;
                    let mut group_trivial = 0u64;
                    for inst in group.cells() {
                        if self.cfg.require_positive && !inst.has_positive() {
                            trivial += 1;
                            group_trivial += 1;
                            continue;
                        }
                        let outcome = inst.outcome(group.vars());
                        if fin {
                            if let Some(obs) = &self.obs {
                                obs.cell_solved(&outcome);
                            }
                        }
                        let censored_paths = if outcome.censors.is_empty() {
                            Vec::new()
                        } else {
                            inst.censored_paths().collect()
                        };
                        cells.push(SolvedCell { outcome, censored_paths });
                        group_reported += 1;
                    }
                    if fin {
                        if let Some(obs) = &self.obs {
                            obs.window_closed(url_id, window, group_reported, group_trivial);
                        }
                    }
                }
                // No cell carries an id until some instance pins a
                // censor; until then a snapshot needs no arena clone —
                // the table only grows, so this is the common case for
                // frequent polling early in a stream. Once ids do cross,
                // the shared snapshot is cached per table growth, so a
                // quiesced shard resolves report after report from one
                // allocation.
                if cells.iter().all(|c| c.censored_paths.is_empty()) {
                    Arc::new(PathSnapshot::empty())
                } else {
                    self.table.snapshot_shared()
                }
            }
            ChurnMode::FirstPathOnly => {
                let mut report_table = PathTable::new();
                let ShardState { cfg, deferred, scratch, .. } = self;
                for (&url_id, buf) in deferred.iter_mut() {
                    buf.ensure_sorted();
                    // Non-destructive first-path filter over the sorted
                    // buffer: the kept observations are borrowed, never
                    // cloned, and the buffer survives for later (larger)
                    // snapshots.
                    let kept = first_path_refs(&buf.obs);
                    for_each_instance(
                        url_id,
                        &kept,
                        &cfg.granularities,
                        cfg.total_days,
                        |builder| {
                            if cfg.require_positive && !builder.has_positive() {
                                trivial += 1;
                                return;
                            }
                            let inst = builder.build().expect("non-empty builder");
                            let outcome = analyze_with(&inst, &cfg.solve, scratch.solver_ctx());
                            let mut censored_paths = Vec::new();
                            for ob in inst.observations.iter().filter(|o| o.censored) {
                                on_censored_path.extend(ob.path.iter().copied());
                                if !outcome.censors.is_empty() {
                                    censored_paths.push(report_table.intern(&ob.path));
                                }
                            }
                            cells.push(SolvedCell { outcome, censored_paths });
                        },
                    );
                }
                Arc::new(report_table.snapshot())
            }
        };
        ShardReport {
            cells,
            paths,
            trivial,
            churn: self.churn.clone(),
            on_censored_path,
            stats: self.stats,
            intern: self.table.stats(),
            conversion: self.conversion,
            sat: self.sat_base.merged(self.scratch.sat_stats()),
            observations: self.observations,
            high_water: self.high_water,
            windows_retired: self.windows_retired,
            cells_retired: self.cells_retired,
            late_dropped: self.late_dropped,
            busy_nanos: 0, // stamped by the worker loop
        }
    }

    /// Hand the retired outcomes (and the aggregates the engine folds
    /// into its persistent retired state) to the caller, freeing them
    /// shard-side. This is the memory-reclamation half of the window
    /// lifecycle; after this, reports no longer carry the drained cells.
    pub(crate) fn compact_cut(&mut self) -> CompactCut {
        let cells = std::mem::take(&mut self.retired_cells);
        let trivial = std::mem::take(&mut self.retired_trivial);
        let paths = if cells.iter().all(|c| c.censored_paths.is_empty()) {
            Arc::new(PathSnapshot::empty())
        } else {
            self.table.snapshot_shared()
        };
        CompactCut { high_water: self.high_water, churn: self.churn.clone(), cells, trivial, paths }
    }
}

// ---------------------------------------------------------------------
// Checkpoint encode/decode.

/// Serialize one analysed outcome (retired cells cross checkpoints).
fn encode_outcome(e: &mut Enc, o: &InstanceOutcome) {
    e.u32(o.key.url_id);
    e.u8(anomaly_tag(o.key.anomaly));
    e.window(o.key.window);
    e.u64(o.n_vars as u64);
    e.u64(o.n_observations as u64);
    e.u64(o.n_positive as u64);
    e.u8(match o.solvability {
        Solvability::Unsat => 0,
        Solvability::Unique => 1,
        Solvability::Multiple => 2,
    });
    e.u8(o.bucket);
    e.asns(&o.censors);
    e.asns(&o.potential_censors);
    e.asns(&o.eliminated);
    e.f64(o.eliminated_frac);
}

fn decode_outcome(d: &mut Dec) -> Result<InstanceOutcome, String> {
    let url_id = d.u32()?;
    let anomaly = anomaly_from(d.u8()?)?;
    let window = d.window()?;
    let n_vars = d.u64()? as usize;
    let n_observations = d.u64()? as usize;
    let n_positive = d.u64()? as usize;
    let solvability = match d.u8()? {
        0 => Solvability::Unsat,
        1 => Solvability::Unique,
        2 => Solvability::Multiple,
        t => return Err(format!("bad solvability tag {t}")),
    };
    let bucket = d.u8()?;
    let censors = d.asns()?;
    let potential_censors = d.asns()?;
    let eliminated = d.asns()?;
    let eliminated_frac = d.f64()?;
    Ok(InstanceOutcome {
        key: InstanceKey { url_id, anomaly, window },
        n_vars,
        n_observations,
        n_positive,
        solvability,
        bucket,
        censors,
        potential_censors,
        eliminated,
        eliminated_frac,
    })
}

fn encode_cell(e: &mut Enc, c: &SolvedCell) {
    encode_outcome(e, &c.outcome);
    let ids: Vec<u32> = c.censored_paths.iter().map(|p| p.0).collect();
    e.u32s(&ids);
}

fn decode_cell(d: &mut Dec, n_paths: usize) -> Result<SolvedCell, String> {
    let outcome = decode_outcome(d)?;
    let mut censored_paths = Vec::new();
    for id in d.u32s()? {
        if id as usize >= n_paths {
            return Err(format!("retired cell references unknown path {id}"));
        }
        censored_paths.push(PathId(id));
    }
    Ok(SolvedCell { outcome, censored_paths })
}

fn encode_converted(e: &mut Enc, o: &ConvertedObs) {
    e.u32(o.vp_id);
    e.u32(o.vp_asn.0);
    e.u32(o.url_id);
    e.u32(o.dest_asn.0);
    e.u32(o.day);
    e.u32(o.epoch);
    e.asns(&o.path);
    e.anomaly_set(o.detected);
}

fn decode_converted(d: &mut Dec) -> Result<ConvertedObs, String> {
    Ok(ConvertedObs {
        vp_id: d.u32()?,
        vp_asn: Asn(d.u32()?),
        url_id: d.u32()?,
        dest_asn: Asn(d.u32()?),
        day: d.u32()?,
        epoch: d.u32()?,
        path: d.asns()?,
        detected: d.anomaly_set()?,
    })
}

impl ShardState {
    /// Serialize the shard's full state. Every collection is written in
    /// sorted order, so encoding the same logical state twice yields
    /// identical bytes.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.u64(self.observations);
        e.u64(self.conversion.converted);
        for dcount in self.conversion.discarded {
            e.u64(dcount);
        }
        e.u64(self.stats.updates);
        e.u64(self.stats.duplicates);
        e.u64(self.stats.direct_updates);
        e.u64(self.stats.unsat_skips);
        e.u64(self.stats.resolves);
        let sat = self.sat_base.merged(self.scratch.sat_stats());
        e.u64(sat.propagations);
        e.u64(sat.backtracks);
        e.u64(sat.censuses);
        e.u64(sat.census_models);
        e.opt_u32(self.high_water);
        e.u64(self.windows_retired);
        e.u64(self.cells_retired);
        e.u64(self.late_dropped);
        e.u64(self.retired_trivial);
        self.table.encode(&mut e);
        let mut censored: Vec<u32> = self.censored_path_ids.iter().map(|p| p.0).collect();
        censored.sort_unstable();
        e.u32s(&censored);
        let (gs, total_days, horizon, entries, frontier, late) =
            self.churn.export_windowed().expect("shard churn is always windowed");
        e.u64(gs.len() as u64);
        for g in gs {
            e.u8(crate::ckpt::granularity_tag(*g));
        }
        e.u32(total_days);
        e.opt_u32(horizon);
        e.u64(entries.len() as u64);
        for entry in &entries {
            e.u8(crate::ckpt::granularity_tag(entry.granularity));
            e.u32(entry.vp.0);
            e.u32(entry.dest.0);
            e.u32(entry.window);
            e.u64s(&entry.hashes);
            e.u64(entry.count);
        }
        e.u32(frontier);
        e.u64(late);
        let mut keys: Vec<(u32, TimeWindow)> = self.groups.keys().copied().collect();
        keys.sort_unstable();
        e.u64(keys.len() as u64);
        for (url_id, window) in keys {
            e.u32(url_id);
            e.window(window);
            self.groups[&(url_id, window)].encode(&mut e);
        }
        e.u64(self.retired_cells.len() as u64);
        for cell in &self.retired_cells {
            encode_cell(&mut e, cell);
        }
        let mut urls: Vec<u32> = self.deferred.keys().copied().collect();
        urls.sort_unstable();
        e.u64(urls.len() as u64);
        for url in urls {
            let buf = &self.deferred[&url];
            e.u32(url);
            e.u8(u8::from(buf.sorted));
            e.u64(buf.obs.len() as u64);
            for o in &buf.obs {
                encode_converted(&mut e, o);
            }
        }
        e.buf
    }

    /// Rebuild a shard from its encoded form. `cfg`/`horizon`/`obs` come
    /// from the restoring engine (the checkpoint header already verified
    /// they match the checkpointing engine's). The restored `windows_open`
    /// gauge is seeded from the live group count *without* journal
    /// events: a restored journal narrates the post-restore stream only.
    pub(crate) fn decode(
        cfg: PipelineConfig,
        horizon: Option<u32>,
        obs: Option<ShardObs>,
        bytes: &[u8],
    ) -> Result<ShardState, String> {
        let mut d = Dec::new(bytes);
        let mut state = ShardState::new(cfg, horizon, obs);
        state.observations = d.u64()?;
        state.conversion.converted = d.u64()?;
        for dcount in &mut state.conversion.discarded {
            *dcount = d.u64()?;
        }
        state.stats.updates = d.u64()?;
        state.stats.duplicates = d.u64()?;
        state.stats.direct_updates = d.u64()?;
        state.stats.unsat_skips = d.u64()?;
        state.stats.resolves = d.u64()?;
        state.sat_base = CtxStats {
            propagations: d.u64()?,
            backtracks: d.u64()?,
            censuses: d.u64()?,
            census_models: d.u64()?,
        };
        state.high_water = d.opt_u32()?;
        state.windows_retired = d.u64()?;
        state.cells_retired = d.u64()?;
        state.late_dropped = d.u64()?;
        state.retired_trivial = d.u64()?;
        state.table = PathTable::decode(&mut d)?;
        let n_paths = state.table.len();
        for id in d.u32s()? {
            if id as usize >= n_paths {
                return Err(format!("censored path id {id} out of range"));
            }
            state.censored_path_ids.insert(PathId(id));
        }
        let n_gs = d.len()?;
        let mut gs = Vec::with_capacity(n_gs);
        for _ in 0..n_gs {
            gs.push(crate::ckpt::granularity_from(d.u8()?)?);
        }
        let total_days = d.u32()?;
        let churn_horizon = d.opt_u32()?;
        if gs != state.cfg.granularities || total_days != state.cfg.total_days {
            return Err("churn window config does not match the pipeline config".to_string());
        }
        let n_entries = d.len()?;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let granularity = crate::ckpt::granularity_from(d.u8()?)?;
            let vp = Asn(d.u32()?);
            let dest = Asn(d.u32()?);
            let window = d.u32()?;
            let hashes = d.u64s()?;
            let count = d.u64()?;
            entries.push(churnlab_core::ChurnWindowEntry {
                granularity,
                vp,
                dest,
                window,
                hashes,
                count,
            });
        }
        let frontier = d.u32()?;
        let late = d.u64()?;
        state.churn = ChurnAccumulator::import_windowed(
            &gs,
            total_days,
            churn_horizon,
            entries,
            frontier,
            late,
        );
        let n_groups = d.len()?;
        for _ in 0..n_groups {
            let url_id = d.u32()?;
            let window = d.window()?;
            let group = InstanceGroup::decode(url_id, window, n_paths, &mut d)?;
            if state.groups.insert((url_id, window), group).is_some() {
                return Err(format!("duplicate group ({url_id}, {window})"));
            }
        }
        let n_retired = d.len()?;
        for _ in 0..n_retired {
            state.retired_cells.push(decode_cell(&mut d, n_paths)?);
        }
        let n_urls = d.len()?;
        for _ in 0..n_urls {
            let url = d.u32()?;
            let sorted = match d.u8()? {
                0 => false,
                1 => true,
                t => return Err(format!("bad sorted flag {t}")),
            };
            let n_obs = d.len()?;
            let mut obs_vec = Vec::with_capacity(n_obs.min(1 << 20));
            for _ in 0..n_obs {
                obs_vec.push(decode_converted(&mut d)?);
            }
            if state.deferred.insert(url, DeferredBuf { obs: obs_vec, sorted }).is_some() {
                return Err(format!("duplicate deferred buffer for url {url}"));
            }
        }
        d.done()?;
        if let Some(o) = &state.obs {
            o.windows_open.add(state.groups.len() as i64);
        }
        Ok(state)
    }
}

/// Phase-attribution handles the worker loop drives directly (cloned
/// out of the shard's [`ShardObs`] so the loop can time around `&mut
/// state` calls).
struct PhaseCounters {
    measurements: Counter,
    convert: Counter,
    intern: Counter,
}

/// The worker loop: drain messages until every sender is gone,
/// converting and solving on this thread and attributing the busy time
/// spent doing it (the scaling-efficiency model's raw data). The state
/// is built (or checkpoint-decoded) on the spawning thread, so a
/// restored engine and a fresh one share one worker.
///
/// Busy accounting runs on [`BusyTimer`]: the thread's cumulative
/// on-CPU clock where `schedstat` exists (a blocked `recv` costs no
/// CPU, so the whole on-CPU time is the shard's busy time), accumulated
/// wall intervals around each message elsewhere (overstated under core
/// oversubscription, but better than nothing on non-Linux hosts).
pub(crate) fn run_worker(rx: Receiver<Msg>, mut state: ShardState, db: Arc<Ip2AsDb>) {
    let phase = state.obs.as_ref().map(|o| PhaseCounters {
        measurements: o.measurements.clone(),
        convert: o.phase_convert.clone(),
        intern: o.phase_intern.clone(),
    });
    let mut busy = BusyTimer::detect();
    // Instrumented batches convert into this worker-lifetime buffer and
    // lap this worker-lifetime stopwatch, so the phase split below costs
    // no per-batch allocation and no per-batch schedstat open.
    let mut converted: Vec<ConvertedObs> = Vec::new();
    let mut sw = Stopwatch::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Raw(m) => busy.interval(|| {
                if let Some(p) = &phase {
                    p.measurements.inc();
                }
                state.ingest_raw(&m, &db);
            }),
            Msg::Batch(batch) => busy.interval(|| match &phase {
                None => {
                    for m in &batch {
                        state.ingest_raw(m, &db);
                    }
                }
                Some(p) => {
                    // Instrumented batches split conversion from the
                    // intern/solve fold with one chained stopwatch —
                    // three clock reads per chunk, not per measurement —
                    // staging conversions through the worker-lifetime
                    // buffer. Conversion order and ingest order both
                    // match the stripped path, so results stay
                    // byte-identical.
                    p.measurements.add(batch.len() as u64);
                    sw.restart();
                    converted.clear();
                    converted.extend(batch.iter().filter_map(|m| {
                        ConvertedObs::from_measurement(m, &db, &mut state.conversion)
                    }));
                    sw.lap(&p.convert);
                    for o in converted.drain(..) {
                        state.ingest(o);
                    }
                    sw.lap(&p.intern);
                }
            }),
            Msg::Report { reply, fin } => {
                let mut report = busy.interval(|| state.report(fin));
                report.busy_nanos = busy.busy_nanos();
                // A dropped reply channel means the requester gave up;
                // the shard itself is still healthy.
                drop(reply.send(report));
            }
            Msg::Compact { reply } => {
                let cut = busy.interval(|| state.compact_cut());
                drop(reply.send(cut));
            }
            Msg::PruneChurn(min_hw) => busy.interval(|| state.churn.prune_closed(min_hw)),
            Msg::Checkpoint { reply } => {
                let blob = busy.interval(|| state.encode());
                drop(reply.send(blob));
            }
            #[cfg(feature = "test-instrumentation")]
            Msg::Poison => panic!("poisoned by test instrumentation"),
        }
    }
}
