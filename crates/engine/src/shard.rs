//! Shard-local state and the worker loop.
//!
//! Each shard owns the instances of its URL subset outright — no locks,
//! no sharing; cross-shard aggregation happens only when a report is
//! requested. A shard receives [`Msg::Raw`]/[`Msg::Batch`] for every
//! measurement routed to it (any order) and answers [`Msg::Report`] with
//! a self-contained [`ShardReport`] the engine merges on the caller's
//! thread (which is where the topology lives — workers are `'static`).
//!
//! The shard is where **conversion** happens: routing needs only the
//! measurement's `url_id`, so the §3.1 elimination rules (per-hop
//! IP-to-AS trie walks over three traceroutes — the single most
//! expensive per-measurement stage) run on the shard's own thread
//! against a shared [`Ip2AsDb`]. One ingesting caller therefore drives
//! N shards' worth of conversion in parallel instead of converting
//! serially for all of them — the fix for the flat shard-scaling curve.
//! A side effect: conversion counters are shard state, so a report's
//! conversion accounting is exactly consistent with its cut.
//!
//! The shard is also where interning happens: every converted path is
//! resolved to a [`PathId`] against the shard-local [`PathTable`] —
//! **one hash per measurement** — and the granularity×anomaly fan-out
//! works on the id alone. Report cells carry ids too; the merger
//! resolves them back to AS paths through the report's [`PathSnapshot`]
//! only at the boundary.

use crate::incremental::{IncrementalStats, InstanceGroup, SolveScratch};
use crate::intern::{FxMap, FxSet, InternStats, PathSnapshot, PathTable};
use churnlab_bgp::TimeWindow;
use churnlab_core::analyze::{analyze_with, InstanceOutcome};
use churnlab_core::batch::{first_path_refs, for_each_instance};
use churnlab_core::convert::ConversionStats;
use churnlab_core::obs::{ConvertedObs, PathId};
use churnlab_core::pipeline::{ChurnMode, PipelineConfig};
use churnlab_core::ChurnAccumulator;
use churnlab_platform::Measurement;
use churnlab_topology::{Asn, Ip2AsDb};
use std::collections::HashSet;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::Instant;

/// A message to a shard worker.
pub(crate) enum Msg {
    /// One raw measurement for this shard's URL subset (direct
    /// [`crate::Engine::ingest`] — carried inline: no per-measurement
    /// heap allocation on the send side).
    Raw(Measurement),
    /// A feeder's chunk of raw measurements.
    Batch(Vec<Measurement>),
    /// Produce a report of everything processed so far (a snapshot when
    /// the engine keeps running, the final answer at `finish`).
    Report(SyncSender<ShardReport>),
    /// Test instrumentation: panic the worker, so the engine's
    /// worker-death propagation can be exercised deterministically.
    Poison,
}

/// One analysed instance crossing the shard boundary: the outcome plus
/// the ids of the censored paths the merger's leakage analysis needs
/// (attached only when the instance pinned down a censor; resolved
/// against the owning [`ShardReport::paths`] snapshot).
pub(crate) struct SolvedCell {
    pub outcome: InstanceOutcome,
    pub censored_paths: Vec<PathId>,
}

/// Everything a shard contributes to a merged report.
pub(crate) struct ShardReport {
    pub cells: Vec<SolvedCell>,
    /// Resolver for every [`PathId`] in `cells` (one flat arena over the
    /// shard's *distinct* paths — the report never deep-copies a
    /// per-observation `Vec<Vec<Asn>>`). Shared: a quiesced shard hands
    /// out the same cached snapshot allocation report after report.
    pub paths: Arc<PathSnapshot>,
    pub trivial: u64,
    pub churn: ChurnAccumulator,
    pub on_censored_path: HashSet<Asn>,
    pub stats: IncrementalStats,
    pub intern: InternStats,
    /// Conversion accounting for every measurement routed here —
    /// exactly consistent with this report's cut.
    pub conversion: ConversionStats,
    pub observations: u64,
    /// Cumulative busy time of this worker (conversion + ingest +
    /// report building), in nanoseconds — the per-thread attribution the
    /// bench's scaling-efficiency model is built on.
    pub busy_nanos: u64,
}

/// One URL's deferred buffer for the Figure-4 ablation, where "first
/// path" is only defined once the whole stream is known. Kept sorted
/// lazily: appends in test order preserve sortedness for free, and a
/// report sorts at most once per out-of-order batch — repeated snapshots
/// never re-sort (or clone) an unchanged buffer.
struct DeferredBuf {
    obs: Vec<ConvertedObs>,
    sorted: bool,
}

impl DeferredBuf {
    fn push(&mut self, o: ConvertedObs) {
        if self.sorted {
            if let Some(last) = self.obs.last() {
                if last.test_order() > o.test_order() {
                    self.sorted = false;
                }
            }
        }
        self.obs.push(o);
    }

    /// Restore the runner's test order so "first distinct path" means
    /// what the batch pipeline means by it. No-op when already sorted.
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.obs.sort_by_key(ConvertedObs::test_order);
            self.sorted = true;
        }
    }
}

/// Shard-local state.
pub(crate) struct ShardState {
    cfg: PipelineConfig,
    /// The shard-local path interner: each distinct path hashed and
    /// copied once, everything downstream id-based.
    table: PathTable,
    /// Incrementally solved instance groups (Normal churn mode), one per
    /// (URL × window), each holding every anomaly cell.
    groups: FxMap<(u32, TimeWindow), InstanceGroup>,
    /// Per-URL buffers for the Figure-4 ablation, processed (without
    /// consuming) at report time over the restored test order.
    deferred: FxMap<u32, DeferredBuf>,
    churn: ChurnAccumulator,
    /// Ids of paths that carried at least one detected anomaly — the
    /// observability horizon, expanded to ASes only at report time.
    censored_path_ids: FxSet<PathId>,
    stats: IncrementalStats,
    conversion: ConversionStats,
    observations: u64,
    /// Worker-owned reusable solver state: every re-solve of every
    /// instance on this shard runs on one warm watched-literal context.
    scratch: SolveScratch,
}

impl ShardState {
    pub(crate) fn new(cfg: PipelineConfig) -> Self {
        ShardState {
            cfg,
            table: PathTable::new(),
            groups: FxMap::default(),
            deferred: FxMap::default(),
            churn: ChurnAccumulator::new(),
            censored_path_ids: FxSet::default(),
            stats: IncrementalStats::default(),
            conversion: ConversionStats::default(),
            observations: 0,
            scratch: SolveScratch::new(),
        }
    }

    /// Convert one raw measurement (the §3.1 elimination rules) and fold
    /// the surviving observation in. This is the engine's conversion
    /// site: it runs on the shard's own thread, in parallel across
    /// shards, whatever the feeder count.
    pub(crate) fn ingest_raw(&mut self, m: &Measurement, db: &Ip2AsDb) {
        if let Some(o) = ConvertedObs::from_measurement(m, db, &mut self.conversion) {
            self.ingest(o);
        }
    }

    /// Fold one observation into the shard.
    pub(crate) fn ingest(&mut self, o: ConvertedObs) {
        self.observations += 1;
        self.churn.add(o.vp_asn, o.dest_asn, o.day, &o.path);
        if self.cfg.churn_mode == ChurnMode::FirstPathOnly {
            self.deferred
                .entry(o.url_id)
                .or_insert_with(|| DeferredBuf { obs: Vec::new(), sorted: true })
                .push(o);
            return;
        }
        // One hash per measurement: everything below works on the id.
        let pid = self.table.intern(&o.path);
        // Any censored observation lands in at least one analysed
        // instance (its own anomaly's), so the observability horizon can
        // accumulate here without waiting for the report.
        if !o.detected.is_empty() {
            self.censored_path_ids.insert(pid);
        }
        let cap = self.cfg.solve.count_cap;
        for &g in &self.cfg.granularities {
            let window = TimeWindow::of(o.day, g, self.cfg.total_days);
            self.groups
                .entry((o.url_id, window))
                .or_insert_with(|| InstanceGroup::new(o.url_id, window))
                .observe(pid, &self.table, o.detected, cap, &mut self.stats, &mut self.scratch);
        }
    }

    /// Produce a report of everything processed so far. Non-destructive
    /// for the tomography state — the shard keeps ingesting afterwards;
    /// `&mut` only so deferred ablation buffers can be sorted in place
    /// (at most once per out-of-order batch) and the warm scratch solver
    /// reused.
    pub(crate) fn report(&mut self) -> ShardReport {
        let mut cells = Vec::new();
        let mut trivial = 0u64;
        let mut on_censored_path: HashSet<Asn> = HashSet::new();
        for &pid in &self.censored_path_ids {
            on_censored_path.extend(self.table.path(pid).iter().copied());
        }
        // Resolver for the ids in `cells`. Interning is an ingest-path
        // mechanism, so in Normal mode this is the shard table; the
        // deferred ablation mode never interns at ingest and instead
        // resolves report cells against a report-local table, keeping
        // the shard's `InternStats` an honest description of the
        // measurement stream (all zeros in that mode) rather than a
        // count of how many snapshots were taken.
        let paths = match self.cfg.churn_mode {
            ChurnMode::Normal => {
                for group in self.groups.values() {
                    for inst in group.cells() {
                        if self.cfg.require_positive && !inst.has_positive() {
                            trivial += 1;
                            continue;
                        }
                        let outcome = inst.outcome(group.vars());
                        let censored_paths = if outcome.censors.is_empty() {
                            Vec::new()
                        } else {
                            inst.censored_paths().collect()
                        };
                        cells.push(SolvedCell { outcome, censored_paths });
                    }
                }
                // No cell carries an id until some instance pins a
                // censor; until then a snapshot needs no arena clone —
                // the table only grows, so this is the common case for
                // frequent polling early in a stream. Once ids do cross,
                // the shared snapshot is cached per table growth, so a
                // quiesced shard resolves report after report from one
                // allocation.
                if cells.iter().all(|c| c.censored_paths.is_empty()) {
                    Arc::new(PathSnapshot::empty())
                } else {
                    self.table.snapshot_shared()
                }
            }
            ChurnMode::FirstPathOnly => {
                let mut report_table = PathTable::new();
                let ShardState { cfg, deferred, scratch, .. } = self;
                for (&url_id, buf) in deferred.iter_mut() {
                    buf.ensure_sorted();
                    // Non-destructive first-path filter over the sorted
                    // buffer: the kept observations are borrowed, never
                    // cloned, and the buffer survives for later (larger)
                    // snapshots.
                    let kept = first_path_refs(&buf.obs);
                    for_each_instance(
                        url_id,
                        &kept,
                        &cfg.granularities,
                        cfg.total_days,
                        |builder| {
                            if cfg.require_positive && !builder.has_positive() {
                                trivial += 1;
                                return;
                            }
                            let inst = builder.build().expect("non-empty builder");
                            let outcome = analyze_with(&inst, &cfg.solve, scratch.solver_ctx());
                            let mut censored_paths = Vec::new();
                            for ob in inst.observations.iter().filter(|o| o.censored) {
                                on_censored_path.extend(ob.path.iter().copied());
                                if !outcome.censors.is_empty() {
                                    censored_paths.push(report_table.intern(&ob.path));
                                }
                            }
                            cells.push(SolvedCell { outcome, censored_paths });
                        },
                    );
                }
                Arc::new(report_table.snapshot())
            }
        };
        ShardReport {
            cells,
            paths,
            trivial,
            churn: self.churn.clone(),
            on_censored_path,
            stats: self.stats,
            intern: self.table.stats(),
            conversion: self.conversion,
            observations: self.observations,
            busy_nanos: 0, // stamped by the worker loop
        }
    }
}

/// Cumulative on-CPU time of the calling thread, in nanoseconds
/// (Linux: `/proc/thread-self/schedstat` field 0). `None` where the
/// file is absent.
///
/// This — not wall time around each message — is what busy-time
/// attribution must be built on: when shards outnumber cores the OS
/// time-slices the workers, and a wall interval around "process one
/// batch" silently includes every other thread's turn on the core,
/// inflating each worker's apparent busy time to nearly the whole run.
/// On-CPU time is immune to descheduling, so the scaling-efficiency
/// model stays honest on machines of any core count.
pub(crate) fn thread_cpu_nanos() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    text.split_whitespace().next()?.parse().ok()
}

/// The worker loop: drain messages until every sender is gone,
/// converting and solving on this thread and attributing the busy time
/// spent doing it (the scaling-efficiency model's raw data).
pub(crate) fn run_worker(rx: Receiver<Msg>, cfg: PipelineConfig, db: Arc<Ip2AsDb>) {
    let mut state = ShardState::new(cfg);
    // Probe the CPU clock once: where it works, busy time is one file
    // read per report; otherwise fall back to wall intervals around each
    // message (overstated under core oversubscription, but better than
    // nothing on non-Linux hosts).
    let cpu_clock = thread_cpu_nanos().is_some();
    let mut wall_busy_nanos = 0u64;
    while let Ok(msg) = rx.recv() {
        let t0 = if cpu_clock { None } else { Some(Instant::now()) };
        match msg {
            Msg::Raw(m) => state.ingest_raw(&m, &db),
            Msg::Batch(batch) => {
                for m in &batch {
                    state.ingest_raw(m, &db);
                }
            }
            Msg::Report(reply) => {
                let mut report = state.report();
                if let Some(t0) = t0 {
                    wall_busy_nanos += t0.elapsed().as_nanos() as u64;
                }
                // The worker thread does nothing but process messages
                // (a blocked recv costs no CPU), so its whole on-CPU
                // time is the shard's busy time.
                report.busy_nanos = thread_cpu_nanos().unwrap_or(wall_busy_nanos);
                // A dropped reply channel means the requester gave up;
                // the shard itself is still healthy.
                drop(reply.send(report));
                continue;
            }
            Msg::Poison => panic!("poisoned by test instrumentation"),
        }
        if let Some(t0) = t0 {
            wall_busy_nanos += t0.elapsed().as_nanos() as u64;
        }
    }
}
