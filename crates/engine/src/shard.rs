//! Shard-local state and the worker loop.
//!
//! Each shard owns the instances of its URL subset outright — no locks,
//! no sharing; cross-shard aggregation happens only when a report is
//! requested. A shard receives [`Msg::Obs`] for every converted
//! observation routed to it (any order) and answers [`Msg::Report`] with
//! a self-contained [`ShardReport`] the engine merges on the caller's
//! thread (which is where the topology lives — workers are `'static`).
//!
//! The shard is where interning happens: every incoming path is resolved
//! to a [`PathId`] against the shard-local [`PathTable`] — **one hash
//! per measurement** — and the granularity×anomaly fan-out works on the
//! id alone. Report cells carry ids too; the merger resolves them back
//! to AS paths through the report's [`PathSnapshot`] only at the
//! boundary.

use crate::incremental::{IncrementalStats, InstanceGroup, SolveScratch};
use crate::intern::{FxMap, FxSet, InternStats, PathSnapshot, PathTable};
use churnlab_bgp::TimeWindow;
use churnlab_core::analyze::{analyze_with, InstanceOutcome};
use churnlab_core::batch::{first_path_refs, for_each_instance};
use churnlab_core::obs::{ConvertedObs, PathId};
use churnlab_core::pipeline::{ChurnMode, PipelineConfig};
use churnlab_core::ChurnAccumulator;
use churnlab_topology::Asn;
use std::collections::HashSet;
use std::sync::mpsc::{Receiver, SyncSender};

/// A message to a shard worker.
pub(crate) enum Msg {
    /// A batch of converted observations for this shard's URL subset
    /// (size 1 for direct [`crate::Engine::ingest`]; feeders chunk).
    Obs(Vec<ConvertedObs>),
    /// Produce a report of everything processed so far (a snapshot when
    /// the engine keeps running, the final answer at `finish`).
    Report(SyncSender<ShardReport>),
}

/// One analysed instance crossing the shard boundary: the outcome plus
/// the ids of the censored paths the merger's leakage analysis needs
/// (attached only when the instance pinned down a censor; resolved
/// against the owning [`ShardReport::paths`] snapshot).
pub(crate) struct SolvedCell {
    pub outcome: InstanceOutcome,
    pub censored_paths: Vec<PathId>,
}

/// Everything a shard contributes to a merged report.
pub(crate) struct ShardReport {
    pub cells: Vec<SolvedCell>,
    /// Resolver for every [`PathId`] in `cells` (one flat arena over the
    /// shard's *distinct* paths — the report never deep-copies a
    /// per-observation `Vec<Vec<Asn>>`).
    pub paths: PathSnapshot,
    pub trivial: u64,
    pub churn: ChurnAccumulator,
    pub on_censored_path: HashSet<Asn>,
    pub stats: IncrementalStats,
    pub intern: InternStats,
    pub observations: u64,
}

/// One URL's deferred buffer for the Figure-4 ablation, where "first
/// path" is only defined once the whole stream is known. Kept sorted
/// lazily: appends in test order preserve sortedness for free, and a
/// report sorts at most once per out-of-order batch — repeated snapshots
/// never re-sort (or clone) an unchanged buffer.
struct DeferredBuf {
    obs: Vec<ConvertedObs>,
    sorted: bool,
}

impl DeferredBuf {
    fn push(&mut self, o: ConvertedObs) {
        if self.sorted {
            if let Some(last) = self.obs.last() {
                if last.test_order() > o.test_order() {
                    self.sorted = false;
                }
            }
        }
        self.obs.push(o);
    }

    /// Restore the runner's test order so "first distinct path" means
    /// what the batch pipeline means by it. No-op when already sorted.
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.obs.sort_by_key(ConvertedObs::test_order);
            self.sorted = true;
        }
    }
}

/// Shard-local state.
pub(crate) struct ShardState {
    cfg: PipelineConfig,
    /// The shard-local path interner: each distinct path hashed and
    /// copied once, everything downstream id-based.
    table: PathTable,
    /// Incrementally solved instance groups (Normal churn mode), one per
    /// (URL × window), each holding every anomaly cell.
    groups: FxMap<(u32, TimeWindow), InstanceGroup>,
    /// Per-URL buffers for the Figure-4 ablation, processed (without
    /// consuming) at report time over the restored test order.
    deferred: FxMap<u32, DeferredBuf>,
    churn: ChurnAccumulator,
    /// Ids of paths that carried at least one detected anomaly — the
    /// observability horizon, expanded to ASes only at report time.
    censored_path_ids: FxSet<PathId>,
    stats: IncrementalStats,
    observations: u64,
    /// Worker-owned reusable solver state: every re-solve of every
    /// instance on this shard runs on one warm watched-literal context.
    scratch: SolveScratch,
}

impl ShardState {
    pub(crate) fn new(cfg: PipelineConfig) -> Self {
        ShardState {
            cfg,
            table: PathTable::new(),
            groups: FxMap::default(),
            deferred: FxMap::default(),
            churn: ChurnAccumulator::new(),
            censored_path_ids: FxSet::default(),
            stats: IncrementalStats::default(),
            observations: 0,
            scratch: SolveScratch::new(),
        }
    }

    /// Fold one observation into the shard.
    pub(crate) fn ingest(&mut self, o: ConvertedObs) {
        self.observations += 1;
        self.churn.add(o.vp_asn, o.dest_asn, o.day, &o.path);
        if self.cfg.churn_mode == ChurnMode::FirstPathOnly {
            self.deferred
                .entry(o.url_id)
                .or_insert_with(|| DeferredBuf { obs: Vec::new(), sorted: true })
                .push(o);
            return;
        }
        // One hash per measurement: everything below works on the id.
        let pid = self.table.intern(&o.path);
        // Any censored observation lands in at least one analysed
        // instance (its own anomaly's), so the observability horizon can
        // accumulate here without waiting for the report.
        if !o.detected.is_empty() {
            self.censored_path_ids.insert(pid);
        }
        let cap = self.cfg.solve.count_cap;
        for &g in &self.cfg.granularities {
            let window = TimeWindow::of(o.day, g, self.cfg.total_days);
            self.groups
                .entry((o.url_id, window))
                .or_insert_with(|| InstanceGroup::new(o.url_id, window))
                .observe(pid, &self.table, o.detected, cap, &mut self.stats, &mut self.scratch);
        }
    }

    /// Produce a report of everything processed so far. Non-destructive
    /// for the tomography state — the shard keeps ingesting afterwards;
    /// `&mut` only so deferred ablation buffers can be sorted in place
    /// (at most once per out-of-order batch) and the warm scratch solver
    /// reused.
    pub(crate) fn report(&mut self) -> ShardReport {
        let mut cells = Vec::new();
        let mut trivial = 0u64;
        let mut on_censored_path: HashSet<Asn> = HashSet::new();
        for &pid in &self.censored_path_ids {
            on_censored_path.extend(self.table.path(pid).iter().copied());
        }
        // Resolver for the ids in `cells`. Interning is an ingest-path
        // mechanism, so in Normal mode this is the shard table; the
        // deferred ablation mode never interns at ingest and instead
        // resolves report cells against a report-local table, keeping
        // the shard's `InternStats` an honest description of the
        // measurement stream (all zeros in that mode) rather than a
        // count of how many snapshots were taken.
        let paths = match self.cfg.churn_mode {
            ChurnMode::Normal => {
                for group in self.groups.values() {
                    for inst in group.cells() {
                        if self.cfg.require_positive && !inst.has_positive() {
                            trivial += 1;
                            continue;
                        }
                        let outcome = inst.outcome(group.vars());
                        let censored_paths = if outcome.censors.is_empty() {
                            Vec::new()
                        } else {
                            inst.censored_paths().collect()
                        };
                        cells.push(SolvedCell { outcome, censored_paths });
                    }
                }
                // No cell carries an id until some instance pins a
                // censor; until then a snapshot needs no arena clone —
                // the table only grows, so this is the common case for
                // frequent polling early in a stream.
                if cells.iter().all(|c| c.censored_paths.is_empty()) {
                    PathSnapshot::empty()
                } else {
                    self.table.snapshot()
                }
            }
            ChurnMode::FirstPathOnly => {
                let mut report_table = PathTable::new();
                let ShardState { cfg, deferred, scratch, .. } = self;
                for (&url_id, buf) in deferred.iter_mut() {
                    buf.ensure_sorted();
                    // Non-destructive first-path filter over the sorted
                    // buffer: the kept observations are borrowed, never
                    // cloned, and the buffer survives for later (larger)
                    // snapshots.
                    let kept = first_path_refs(&buf.obs);
                    for_each_instance(
                        url_id,
                        &kept,
                        &cfg.granularities,
                        cfg.total_days,
                        |builder| {
                            if cfg.require_positive && !builder.has_positive() {
                                trivial += 1;
                                return;
                            }
                            let inst = builder.build().expect("non-empty builder");
                            let outcome = analyze_with(&inst, &cfg.solve, scratch.solver_ctx());
                            let mut censored_paths = Vec::new();
                            for ob in inst.observations.iter().filter(|o| o.censored) {
                                on_censored_path.extend(ob.path.iter().copied());
                                if !outcome.censors.is_empty() {
                                    censored_paths.push(report_table.intern(&ob.path));
                                }
                            }
                            cells.push(SolvedCell { outcome, censored_paths });
                        },
                    );
                }
                report_table.snapshot()
            }
        };
        ShardReport {
            cells,
            paths,
            trivial,
            churn: self.churn.clone(),
            on_censored_path,
            stats: self.stats,
            intern: self.table.stats(),
            observations: self.observations,
        }
    }
}

/// The worker loop: drain messages until every sender is gone.
pub(crate) fn run_worker(rx: Receiver<Msg>, cfg: PipelineConfig) {
    let mut state = ShardState::new(cfg);
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Obs(batch) => {
                for o in batch {
                    state.ingest(o);
                }
            }
            // A dropped reply channel means the requester gave up; the
            // shard itself is still healthy.
            Msg::Report(reply) => drop(reply.send(state.report())),
        }
    }
}
