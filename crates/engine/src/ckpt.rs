//! Checkpoint codec: the versioned, length-prefixed little-endian binary
//! format the engine snapshots its full state into.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "CHRNCKPT" | version u32 | reserved u32
//! cursor u64 | user blob (len-prefixed)
//! pipeline-config JSON (len-prefixed) | shard count u32 | horizon opt<u32>
//! engine retired state (churn tallies + frontier + findings + trivial)
//! shard blob count u32 | per shard: blob (len-prefixed) + FNV-1a checksum u64
//! ```
//!
//! Every collection is written in a sorted order, so checkpointing the
//! same logical state twice produces byte-identical files. Decoding
//! validates lengths, enum tags, and per-shard checksums; any violation
//! surfaces as [`RestoreError::Corrupt`] rather than a panic.

use churnlab_bgp::{Granularity, TimeWindow};
use churnlab_core::accumulate::FindingsAccumulator;
use churnlab_core::pipeline::CensorFinding;
use churnlab_core::{ChurnTally, RetiredChurn};
use churnlab_platform::{AnomalySet, AnomalyType};
use churnlab_topology::Asn;
use std::collections::BTreeSet;

/// File magic, first eight bytes of every checkpoint.
pub(crate) const MAGIC: [u8; 8] = *b"CHRNCKPT";

/// Current format version. Bump on any layout change; restore refuses
/// versions it does not know.
pub(crate) const VERSION: u32 = 1;

/// An error restoring an engine from a checkpoint.
#[derive(Debug)]
pub enum RestoreError {
    /// Reading the checkpoint stream failed.
    Io(std::io::Error),
    /// The stream is not a well-formed checkpoint (bad magic, unknown
    /// version, truncated section, checksum mismatch, invalid tag).
    Corrupt(String),
    /// The checkpoint is well-formed but was taken by an engine with a
    /// different configuration (pipeline config, shard count, or window
    /// horizon) than the one restoring it.
    Mismatch(String),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Io(e) => write!(f, "checkpoint read failed: {e}"),
            RestoreError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            RestoreError::Mismatch(m) => write!(f, "checkpoint/config mismatch: {m}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// FNV-1a 64 over a byte slice (per-shard blob checksums).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encoder: appends little-endian primitives to a byte buffer.
#[derive(Debug, Default)]
pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    pub(crate) fn u32s(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        for x in v {
            self.u32(*x);
        }
    }

    pub(crate) fn u64s(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for x in v {
            self.u64(*x);
        }
    }

    pub(crate) fn asns(&mut self, v: &[Asn]) {
        self.u64(v.len() as u64);
        for a in v {
            self.u32(a.0);
        }
    }

    pub(crate) fn window(&mut self, w: TimeWindow) {
        self.u8(granularity_tag(w.granularity));
        self.u32(w.index);
    }

    pub(crate) fn anomaly_set(&mut self, set: AnomalySet) {
        let mut bits = 0u8;
        for (i, a) in AnomalyType::ALL.into_iter().enumerate() {
            if set.contains(a) {
                bits |= 1 << i;
            }
        }
        self.u8(bits);
    }
}

/// Decoder over a checkpoint byte slice; every read is bounds-checked.
#[derive(Debug)]
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn opt_u32(&mut self) -> Result<Option<u32>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            t => Err(format!("bad option tag {t}")),
        }
    }

    /// A length prefix used to size an upcoming collection read: bounded
    /// by the remaining bytes so a corrupt length cannot trigger an
    /// enormous allocation.
    pub(crate) fn len(&mut self) -> Result<usize, String> {
        let n = self.u64()?;
        if n > (self.buf.len() - self.pos) as u64 {
            return Err(format!("implausible collection length {n}"));
        }
        Ok(n as usize)
    }

    pub(crate) fn bytes(&mut self) -> Result<&'a [u8], String> {
        let n = self.len()?;
        self.take(n)
    }

    pub(crate) fn str(&mut self) -> Result<String, String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| "invalid UTF-8 string".to_string())
    }

    pub(crate) fn u32s(&mut self) -> Result<Vec<u32>, String> {
        let n = self.len()?;
        let mut v = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            v.push(self.u32()?);
        }
        Ok(v)
    }

    pub(crate) fn u64s(&mut self) -> Result<Vec<u64>, String> {
        let n = self.len()?;
        let mut v = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    pub(crate) fn asns(&mut self) -> Result<Vec<Asn>, String> {
        Ok(self.u32s()?.into_iter().map(Asn).collect())
    }

    pub(crate) fn window(&mut self) -> Result<TimeWindow, String> {
        let granularity = granularity_from(self.u8()?)?;
        let index = self.u32()?;
        Ok(TimeWindow { granularity, index })
    }

    pub(crate) fn anomaly_set(&mut self) -> Result<AnomalySet, String> {
        let bits = self.u8()?;
        if bits as usize >= 1 << AnomalyType::ALL.len() {
            return Err(format!("bad anomaly-set bits {bits:#x}"));
        }
        let mut set = AnomalySet::empty();
        for (i, a) in AnomalyType::ALL.into_iter().enumerate() {
            if bits & (1 << i) != 0 {
                set.insert(a);
            }
        }
        Ok(set)
    }

    /// True when the whole buffer has been consumed.
    pub(crate) fn done(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after checkpoint body", self.buf.len() - self.pos))
        }
    }
}

/// Granularity → stable wire tag (index in [`Granularity::ALL`]).
pub(crate) fn granularity_tag(g: Granularity) -> u8 {
    Granularity::ALL.iter().position(|x| *x == g).expect("known granularity") as u8
}

/// Wire tag → granularity.
pub(crate) fn granularity_from(tag: u8) -> Result<Granularity, String> {
    Granularity::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| format!("bad granularity tag {tag}"))
}

/// Anomaly type → stable wire tag (index in [`AnomalyType::ALL`]).
pub(crate) fn anomaly_tag(a: AnomalyType) -> u8 {
    AnomalyType::ALL.iter().position(|x| *x == a).expect("known anomaly") as u8
}

/// Wire tag → anomaly type.
pub(crate) fn anomaly_from(tag: u8) -> Result<AnomalyType, String> {
    AnomalyType::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| format!("bad anomaly tag {tag}"))
}

/// Encode retired churn tallies (sorted rows, so bytes are canonical).
pub(crate) fn encode_retired_churn(e: &mut Enc, r: &RetiredChurn) {
    let rows = r.entries_sorted();
    e.u64(rows.len() as u64);
    for (g, dest, tally) in rows {
        e.u8(granularity_tag(g));
        e.u32(dest.0);
        for b in tally.buckets {
            e.u64(b);
        }
        e.u64(tally.total);
    }
}

/// Decode retired churn tallies.
pub(crate) fn decode_retired_churn(d: &mut Dec) -> Result<RetiredChurn, String> {
    let n = d.len()?;
    let mut r = RetiredChurn::default();
    for _ in 0..n {
        let g = granularity_from(d.u8()?)?;
        let dest = Asn(d.u32()?);
        let mut buckets = [0u64; 5];
        for b in &mut buckets {
            *b = d.u64()?;
        }
        let total = d.u64()?;
        r.insert(g, dest, ChurnTally { buckets, total });
    }
    Ok(r)
}

/// Encode a findings accumulator (engine-held drained findings), every
/// map/set sorted.
pub(crate) fn encode_findings(e: &mut Enc, f: &FindingsAccumulator) {
    let mut censors: Vec<&CensorFinding> = f.censor_findings.values().collect();
    censors.sort_by_key(|c| c.asn);
    e.u64(censors.len() as u64);
    for c in censors {
        e.u32(c.asn.0);
        let mut bits = 0u8;
        for a in &c.anomalies {
            bits |= 1 << anomaly_tag(*a);
        }
        e.u8(bits);
        let urls: Vec<u32> = c.url_ids.iter().copied().collect();
        e.u32s(&urls);
        e.u64(c.n_instances);
    }
    let mut victims: Vec<(Asn, Vec<u32>)> = f
        .leakage
        .victims_by_censor
        .iter()
        .map(|(censor, set)| {
            let mut v: Vec<u32> = set.iter().map(|a| a.0).collect();
            v.sort_unstable();
            (*censor, v)
        })
        .collect();
    victims.sort_by_key(|(c, _)| *c);
    e.u64(victims.len() as u64);
    for (censor, v) in victims {
        e.u32(censor.0);
        e.u32s(&v);
    }
    let mut countries: Vec<(Asn, Vec<&String>)> = f
        .leakage
        .victim_countries_by_censor
        .iter()
        .map(|(censor, set)| {
            let mut v: Vec<&String> = set.iter().collect();
            v.sort();
            (*censor, v)
        })
        .collect();
    countries.sort_by_key(|(c, _)| *c);
    e.u64(countries.len() as u64);
    for (censor, v) in countries {
        e.u32(censor.0);
        e.u64(v.len() as u64);
        for s in v {
            e.str(s);
        }
    }
    let mut horizon: Vec<u32> = f.on_censored_path.iter().map(|a| a.0).collect();
    horizon.sort_unstable();
    e.u32s(&horizon);
}

/// Decode a findings accumulator.
pub(crate) fn decode_findings(d: &mut Dec) -> Result<FindingsAccumulator, String> {
    let mut f = FindingsAccumulator::new();
    let n = d.len()?;
    for _ in 0..n {
        let asn = Asn(d.u32()?);
        let bits = d.u8()?;
        let mut anomalies = BTreeSet::new();
        for (i, a) in AnomalyType::ALL.into_iter().enumerate() {
            if bits & (1 << i) != 0 {
                anomalies.insert(a);
            }
        }
        let url_ids: BTreeSet<u32> = d.u32s()?.into_iter().collect();
        let n_instances = d.u64()?;
        f.censor_findings.insert(asn, CensorFinding { asn, anomalies, url_ids, n_instances });
    }
    let n = d.len()?;
    for _ in 0..n {
        let censor = Asn(d.u32()?);
        let victims = d.u32s()?.into_iter().map(Asn).collect();
        f.leakage.victims_by_censor.insert(censor, victims);
    }
    let n = d.len()?;
    for _ in 0..n {
        let censor = Asn(d.u32()?);
        let m = d.len()?;
        let mut set = std::collections::HashSet::new();
        for _ in 0..m {
            set.insert(d.str()?);
        }
        f.leakage.victim_countries_by_censor.insert(censor, set);
    }
    f.on_censored_path = d.u32s()?.into_iter().map(Asn).collect();
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::default();
        e.u8(7);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 3);
        e.f64(0.125);
        e.opt_u32(None);
        e.opt_u32(Some(42));
        e.str("hello");
        e.u32s(&[1, 2, 3]);
        e.u64s(&[9]);
        e.window(TimeWindow { granularity: Granularity::Week, index: 5 });
        let mut set = AnomalySet::empty();
        set.insert(AnomalyType::Dns);
        e.anomaly_set(set);
        let mut d = Dec::new(&e.buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.f64().unwrap(), 0.125);
        assert_eq!(d.opt_u32().unwrap(), None);
        assert_eq!(d.opt_u32().unwrap(), Some(42));
        assert_eq!(d.str().unwrap(), "hello");
        assert_eq!(d.u32s().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.u64s().unwrap(), vec![9]);
        assert_eq!(
            d.window().unwrap(),
            TimeWindow { granularity: Granularity::Week, index: 5 }
        );
        let back = d.anomaly_set().unwrap();
        assert!(back.contains(AnomalyType::Dns));
        d.done().unwrap();
    }

    #[test]
    fn truncation_and_bad_tags_are_errors() {
        let mut e = Enc::default();
        e.u64(u64::MAX); // implausible collection length
        let mut d = Dec::new(&e.buf);
        assert!(d.len().is_err());
        let mut d = Dec::new(&[1, 2]);
        assert!(d.u32().is_err(), "truncated u32");
        assert!(granularity_from(9).is_err());
        assert!(anomaly_from(200).is_err());
        let mut d = Dec::new(&[0xff]);
        assert!(d.anomaly_set().is_err(), "out-of-range anomaly bits");
    }

    #[test]
    fn retired_churn_round_trips_canonically() {
        let mut r = RetiredChurn::default();
        r.record(Granularity::Day, Asn(9), 3);
        r.record(Granularity::Month, Asn(2), 1);
        r.record(Granularity::Day, Asn(9), 7);
        let mut e = Enc::default();
        encode_retired_churn(&mut e, &r);
        let mut d = Dec::new(&e.buf);
        let back = decode_retired_churn(&mut d).unwrap();
        d.done().unwrap();
        assert_eq!(back.entries_sorted(), r.entries_sorted());
        let mut e2 = Enc::default();
        encode_retired_churn(&mut e2, &back);
        assert_eq!(e.buf, e2.buf, "encoding is canonical");
    }
}
