//! Per-thread on-CPU time, via Linux `schedstat`.
//!
//! `/proc/thread-self/schedstat` field 0 is the calling thread's
//! cumulative on-CPU nanoseconds. This — not wall time around a piece of
//! work — is what busy-time attribution must be built on: when threads
//! outnumber cores the OS time-slices them, and a wall interval silently
//! includes every other thread's turn on the core, inflating each
//! worker's apparent busy time toward the whole run. On-CPU time is
//! immune to descheduling, so the engine's scaling-efficiency model
//! stays honest on machines of any core count.
//!
//! Hoisted out of `churnlab-engine`'s shard worker (which re-exports it
//! for compatibility) so every crate shares one clock and one tested
//! parse.

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide test override: when set, [`thread_cpu_nanos`] reports
/// the clock as unavailable, forcing every consumer down its wall-clock
/// fallback path — the only way to exercise the non-Linux /
/// schedstat-absent behavior deterministically on a Linux box.
static FORCE_WALL: AtomicBool = AtomicBool::new(false);

/// Force (or stop forcing) the wall-clock fallback for tests. Affects
/// the whole process: use from a dedicated integration-test binary, not
/// alongside unrelated concurrent tests that want the real clock.
pub fn force_wall_clock_for_tests(on: bool) {
    FORCE_WALL.store(on, Ordering::SeqCst);
}

/// Parse a `schedstat` line: the first whitespace-separated field is
/// cumulative on-CPU nanoseconds. `None` on anything malformed — a
/// malformed pseudo-file must degrade to the wall fallback, never panic
/// a shard worker.
pub fn parse_schedstat(text: &str) -> Option<u64> {
    text.split_whitespace().next()?.parse().ok()
}

/// Cumulative on-CPU time of the calling thread, in nanoseconds. `None`
/// where `/proc/thread-self/schedstat` is absent or unreadable (non-Linux
/// hosts), or while the test override forces the fallback.
pub fn thread_cpu_nanos() -> Option<u64> {
    if FORCE_WALL.load(Ordering::Relaxed) {
        return None;
    }
    let text = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    parse_schedstat(&text)
}

/// A reusable handle on the calling thread's on-CPU clock: the
/// schedstat pseudo-file opened once and re-read in place (`pread` at
/// offset 0 — the kernel regenerates a seq_file on every read from the
/// start), so each reading costs one syscall instead of the
/// open/read/close triple behind [`thread_cpu_nanos`]. That matters in
/// per-batch phase timers, where clock reads are the dominant
/// instrumentation cost.
///
/// `/proc/thread-self` resolves to the *opening* thread's entry at open
/// time, so a clock must stay on the thread that built it — keep it in
/// worker-local state, never in shared handles.
#[derive(Debug)]
pub struct CpuClock {
    file: Option<std::fs::File>,
}

impl CpuClock {
    /// Open the calling thread's schedstat, if it exists (and the test
    /// override isn't forcing the wall fallback).
    pub fn detect() -> CpuClock {
        if FORCE_WALL.load(Ordering::Relaxed) {
            return CpuClock { file: None };
        }
        CpuClock { file: std::fs::File::open("/proc/thread-self/schedstat").ok() }
    }

    /// Cumulative on-CPU nanoseconds of the owning thread; `None` where
    /// the clock is unavailable (or the test override is active).
    pub fn now(&mut self) -> Option<u64> {
        if FORCE_WALL.load(Ordering::Relaxed) {
            return None;
        }
        let file = self.file.as_ref()?;
        read_fresh(file)
    }
}

#[cfg(unix)]
fn read_fresh(file: &std::fs::File) -> Option<u64> {
    use std::os::unix::fs::FileExt;
    // 3 u64 fields + separators tops out well under 80 bytes.
    let mut buf = [0u8; 80];
    let n = file.read_at(&mut buf, 0).ok()?;
    parse_schedstat(std::str::from_utf8(&buf[..n]).ok()?)
}

#[cfg(not(unix))]
fn read_fresh(_file: &std::fs::File) -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_line() {
        assert_eq!(parse_schedstat("123456789 42 7\n"), Some(123456789));
        assert_eq!(parse_schedstat("0 0 0"), Some(0));
        // Leading whitespace is fine; only the first field matters.
        assert_eq!(parse_schedstat("  987 1 2"), Some(987));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(parse_schedstat(""), None);
        assert_eq!(parse_schedstat("   \n"), None);
        assert_eq!(parse_schedstat("not-a-number 1 2"), None);
        assert_eq!(parse_schedstat("-5 1 2"), None); // u64: no negatives
        assert_eq!(parse_schedstat("1.5 1 2"), None); // integer field
        assert_eq!(parse_schedstat("99999999999999999999999999 1 2"), None); // overflow
    }

    #[test]
    fn cpu_clock_rereads_fresh_values() {
        let mut clock = CpuClock::detect();
        let Some(first) = clock.now() else {
            return; // no schedstat on this host: nothing to assert
        };
        // Burn enough CPU that the tick-granular clock must advance,
        // then confirm the re-read (same fd, pread at 0) sees it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(60);
        let mut acc = 0u64;
        while std::time::Instant::now() < deadline {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(acc);
        let second = clock.now().expect("clock stays readable");
        assert!(
            second > first,
            "pread at 0 must regenerate schedstat: {first} then {second}"
        );
        // The handle agrees with the one-shot path (both only ever grow).
        let oneshot = thread_cpu_nanos().expect("one-shot clock readable");
        assert!(oneshot >= second, "one-shot read after: {oneshot} < {second}");
    }

    #[test]
    fn cpu_clock_honors_wall_override() {
        let mut live = CpuClock::detect();
        force_wall_clock_for_tests(true);
        assert_eq!(CpuClock::detect().now(), None, "detect under override");
        assert_eq!(live.now(), None, "override applies to open handles too");
        force_wall_clock_for_tests(false);
    }

    #[test]
    fn missing_file_falls_back_to_none() {
        // Simulate the file being absent via the test override: every
        // consumer must treat `None` as "use the wall clock".
        force_wall_clock_for_tests(true);
        assert_eq!(thread_cpu_nanos(), None);
        force_wall_clock_for_tests(false);
    }
}
