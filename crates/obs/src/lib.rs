//! `churnlab-obs` — hand-rolled observability for the streaming engine.
//!
//! Everything upstream of a report used to be invisible: the engine's
//! work counters surfaced only at `finish`, and the on-CPU accounting
//! lived as a private helper inside the shard worker. This crate turns
//! both into a first-class, dependency-free layer the whole workspace
//! shares:
//!
//! * [`metrics`] — a [`Registry`](metrics::Registry) of named counters,
//!   gauges, and log2-bucketed histograms. The observe path is built for
//!   the per-measurement hot loop: a counter increment is a single
//!   relaxed `fetch_add` on a cache-padded per-thread slot (no locks, no
//!   hashing — slots are aggregated only at scrape time).
//! * [`cpu`] — the `/proc/thread-self/schedstat` on-CPU clock, hoisted
//!   out of `churnlab-engine`'s shard worker, with the parse unit-tested
//!   and a process-wide test override forcing the wall-clock fallback.
//! * [`span`] — RAII phase timers ([`Span`](span::Span), chained
//!   [`Stopwatch`](span::Stopwatch)) attributing on-CPU nanoseconds to
//!   named phases (convert, intern, resolve, merge, feeder-parse), and
//!   the [`BusyTimer`](span::BusyTimer) busy-accounting abstraction the
//!   engine's scaling-efficiency model runs on.
//! * [`snapshot`] — a serializable point-in-time [`Snapshot`]
//!   (snapshot::Snapshot) of every registered series, with
//!   [`delta`](snapshot::Snapshot::delta)/rate computation between
//!   scrapes.
//! * [`prom`] — Prometheus text-format exposition over a snapshot
//!   (stable names, sorted series — golden-tested).
//! * [`journal`] — a JSONL event journal (window opened/closed, cell
//!   solved, worker panic, gate armed/skipped) that parses back into
//!   [`JournalEvent`](journal::JournalEvent)s, so a run's event stream
//!   can be reconciled against its final report.
//!
//! No external crates beyond the workspace `serde` shim; every
//! primitive is `std` atomics and `std::sync::Mutex` on cold paths only.

pub mod cpu;
pub mod journal;
pub mod metrics;
pub mod prom;
pub mod rss;
pub mod snapshot;
pub mod span;

pub use cpu::{force_wall_clock_for_tests, parse_schedstat, thread_cpu_nanos, CpuClock};
pub use rss::rss_bytes;
pub use journal::{parse_jsonl, Journal, JournalEvent, MemorySink};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use prom::render_prometheus;
pub use snapshot::{HistogramSample, Sample, SampleValue, Snapshot};
pub use span::{BusyTimer, Span, Stopwatch};
