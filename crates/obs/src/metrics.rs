//! The metrics registry: named counters, gauges, and log2 histograms.
//!
//! Built for the engine's per-measurement hot path. Registration (the
//! cold path) takes a `Mutex`; observation (the hot path) never does:
//!
//! * a [`Counter`] increment is one relaxed `fetch_add` on a
//!   cache-padded slot picked per thread — concurrent feeders and shard
//!   workers never contend on a line;
//! * a [`Gauge`] set is one relaxed `store`;
//! * a [`Histogram`] observation is two relaxed `fetch_add`s (its log2
//!   bucket plus the running sum).
//!
//! Slots are aggregated only at [`Registry::scrape`] time, so a scrape
//! sees a consistent-enough point-in-time [`Snapshot`] without ever
//! stalling a writer (per-series totals are exact; cross-series skew is
//! bounded by the scrape itself, which is fine for rates).
//!
//! Handles are cheap `Arc` clones. Registration is idempotent: asking
//! for an already-registered `(name, labels)` series returns a handle to
//! the same storage, so N shard workers can each "register" their own
//! labeled series without coordination. Re-registering a name as a
//! different kind panics — that is a bug in the instrumentation, not a
//! runtime condition.

use crate::snapshot::{HistogramSample, Sample, SampleValue, Snapshot};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-counter striping width. Wide enough that a dozen feeder threads
/// rarely share a slot, small enough that scrape-time aggregation stays
/// trivial.
const SLOTS: usize = 16;

/// Histogram bucket count: one per power-of-two magnitude of a `u64`
/// (bucket 0 holds the value 0, bucket `i` holds values with bit length
/// `i`, i.e. `[2^(i-1), 2^i)`), plus nothing else — `u64::MAX` lands in
/// bucket 64.
pub(crate) const BUCKETS: usize = 65;

/// The log2 bucket of a value.
#[inline]
pub(crate) fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// A cache-line-padded atomic, so striped slots never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Striped counter storage.
pub(crate) struct CounterCore {
    slots: [PaddedU64; SLOTS],
}

impl CounterCore {
    fn new() -> Self {
        CounterCore { slots: std::array::from_fn(|_| PaddedU64::default()) }
    }

    fn sum(&self) -> u64 {
        self.slots.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// The calling thread's stripe index: assigned round-robin on first use,
/// then cached in a thread-local — slot selection on the hot path is one
/// TLS read.
#[inline]
fn thread_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SLOTS;
    }
    SLOT.with(|s| *s)
}

/// A monotone counter handle. Clone freely; all clones share storage.
#[derive(Clone)]
pub struct Counter(Arc<CounterCore>);

impl Counter {
    /// Add one. One relaxed `fetch_add` on the calling thread's slot.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.slots[thread_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total (scrape-path: sums the slots).
    pub fn value(&self) -> u64 {
        self.0.sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

/// A settable gauge handle.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the gauge by a signed delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

/// Log2-bucketed histogram storage.
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }

    fn sample(&self) -> HistogramSample {
        let buckets: Vec<u64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().sum();
        HistogramSample { buckets, sum: self.sum.load(Ordering::Relaxed), count }
    }
}

/// A histogram handle: observations land in log2 buckets.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one observation: two relaxed `fetch_add`s.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Point-in-time sample (scrape path).
    pub fn sample(&self) -> HistogramSample {
        self.0.sample()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Histogram").field(&self.sample().count).finish()
    }
}

#[derive(Clone)]
enum Storage {
    Counter(Arc<CounterCore>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

impl Storage {
    fn kind(&self) -> &'static str {
        match self {
            Storage::Counter(_) => "counter",
            Storage::Gauge(_) => "gauge",
            Storage::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    storage: Storage,
}

struct Inner {
    start: Instant,
    entries: Mutex<Vec<Entry>>,
}

/// The metric registry. Cloning is cheap (an `Arc` bump); every clone is
/// a handle onto the same series set, so one registry can be shared by
/// shard workers, feeder threads, the merge path, and a scrape thread.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Registry { inner: Arc::new(Inner { start: Instant::now(), entries: Mutex::new(Vec::new()) }) }
    }

    /// Nanoseconds since the registry was created — the time base every
    /// [`Snapshot`] and journal event is stamped with.
    pub fn uptime_nanos(&self) -> u64 {
        self.inner.start.elapsed().as_nanos() as u64
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Storage,
    ) -> Storage {
        let labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        let mut entries = self.inner.entries.lock().unwrap_or_else(|e| e.into_inner());
        let fresh_kind = {
            // Same name must mean same kind, whatever the labels — the
            // exposition format forbids anything else.
            let same_name = entries.iter().find(|e| e.name == name);
            if let Some(e) = entries.iter().find(|e| e.name == name && e.labels == labels) {
                return e.storage.clone();
            }
            same_name.map(|e| e.storage.kind())
        };
        let storage = make();
        if let Some(kind) = fresh_kind {
            assert_eq!(
                kind,
                storage.kind(),
                "metric `{name}` registered as both {kind} and {}",
                storage.kind()
            );
        }
        entries.push(Entry {
            name: name.to_string(),
            labels,
            help: help.to_string(),
            storage: storage.clone(),
        });
        storage
    }

    /// Register (or look up) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, || Storage::Counter(Arc::new(CounterCore::new()))) {
            Storage::Counter(c) => Counter(c),
            other => panic!("metric `{name}` already registered as {}", other.kind()),
        }
    }

    /// Register (or look up) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, || Storage::Gauge(Arc::new(AtomicI64::new(0)))) {
            Storage::Gauge(g) => Gauge(g),
            other => panic!("metric `{name}` already registered as {}", other.kind()),
        }
    }

    /// Register (or look up) a log2-bucketed histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, labels, || Storage::Histogram(Arc::new(HistogramCore::new())))
        {
            Storage::Histogram(h) => Histogram(h),
            other => panic!("metric `{name}` already registered as {}", other.kind()),
        }
    }

    /// Scrape every registered series into a point-in-time [`Snapshot`],
    /// sorted by `(name, labels)` so two scrapes of the same registry
    /// enumerate series in the same stable order.
    pub fn scrape(&self) -> Snapshot {
        let entries = self.inner.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut samples: Vec<Sample> = entries
            .iter()
            .map(|e| Sample {
                name: e.name.clone(),
                labels: e.labels.clone(),
                help: e.help.clone(),
                value: match &e.storage {
                    Storage::Counter(c) => SampleValue::Counter(c.sum()),
                    Storage::Gauge(g) => SampleValue::Gauge(g.load(Ordering::Relaxed)),
                    Storage::Histogram(h) => SampleValue::Histogram(h.sample()),
                },
            })
            .collect();
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot { uptime_nanos: self.uptime_nanos(), samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("t_total", "test", &[]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn registration_is_idempotent_per_series() {
        let reg = Registry::new();
        let a = reg.counter("x_total", "test", &[("shard", "0")]);
        let b = reg.counter("x_total", "test", &[("shard", "0")]);
        let other = reg.counter("x_total", "test", &[("shard", "1")]);
        a.add(5);
        b.add(2);
        other.inc();
        assert_eq!(a.value(), 7);
        assert_eq!(other.value(), 1);
        // Two series under one name, three handles, two samples.
        assert_eq!(reg.scrape().samples.len(), 2);
    }

    #[test]
    #[should_panic(expected = "registered as both")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        let _ = reg.counter("y_total", "test", &[]);
        let _ = reg.gauge("y_total", "test", &[("a", "b")]);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = Registry::new();
        let g = reg.gauge("g", "test", &[]);
        g.set(41);
        g.add(1);
        assert_eq!(g.value(), 42);
        g.add(-50);
        assert_eq!(g.value(), -8);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);

        let reg = Registry::new();
        let h = reg.histogram("h", "test", &[]);
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        let s = h.sample();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1006);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[10], 1); // 1000
    }

    #[test]
    fn scrape_orders_series_stably() {
        let reg = Registry::new();
        reg.counter("b_total", "test", &[]).inc();
        reg.counter("a_total", "test", &[("shard", "1")]).inc();
        reg.counter("a_total", "test", &[("shard", "0")]).inc();
        let names: Vec<(String, Vec<(String, String)>)> =
            reg.scrape().samples.into_iter().map(|s| (s.name, s.labels)).collect();
        assert_eq!(names[0].0, "a_total");
        assert_eq!(names[0].1[0].1, "0");
        assert_eq!(names[1].1[0].1, "1");
        assert_eq!(names[2].0, "b_total");
    }
}
