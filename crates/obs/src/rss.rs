//! Process resident-set size, via Linux `/proc/self/statm`.
//!
//! The long-haul deployment story ("run forever") rests on a memory
//! claim: with window retirement on, the engine's working set plateaus
//! instead of growing with stream length. A claim like that needs a
//! first-party measurement the bench harness and CI gate can scrape —
//! the kernel's own resident-page count, not an allocator statistic that
//! misses fragmentation and arena overhead.
//!
//! `statm` field 1 is the process's resident pages; multiplying by the
//! page size gives bytes. The file is a single short line, so one read
//! per scrape tick is effectively free.

/// Current resident-set size in bytes, or `None` where `/proc` isn't
/// available (non-Linux). Consumers treat `None` as "don't export the
/// gauge", never as zero.
pub fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    parse_statm_rss_pages(&statm).map(|pages| pages * page_size())
}

/// Parse the resident-pages field (index 1) out of a `statm` line.
fn parse_statm_rss_pages(statm: &str) -> Option<u64> {
    statm.split_whitespace().nth(1)?.parse().ok()
}

/// The system page size in bytes. `statm` counts pages; sysconf is the
/// portable way to size them, but reading it needs libc — instead derive
/// it from `/proc/self/smaps_rollup`-free ground truth: `auxv` exports
/// `AT_PAGESZ`. Falls back to 4096 (every Linux target this project
/// builds for) if auxv is unreadable.
fn page_size() -> u64 {
    std::fs::read("/proc/self/auxv")
        .ok()
        .and_then(|auxv| {
            // auxv is (u64 key, u64 value) pairs, terminated by AT_NULL.
            const AT_PAGESZ: u64 = 6;
            auxv.chunks_exact(16).find_map(|pair| {
                let key = u64::from_ne_bytes(pair[..8].try_into().ok()?);
                let value = u64::from_ne_bytes(pair[8..].try_into().ok()?);
                (key == AT_PAGESZ).then_some(value)
            })
        })
        .filter(|&v| v > 0)
        .unwrap_or(4096)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statm_parse_takes_the_resident_field() {
        assert_eq!(parse_statm_rss_pages("12345 678 90 1 0 2 0\n"), Some(678));
        assert_eq!(parse_statm_rss_pages(""), None);
        assert_eq!(parse_statm_rss_pages("12345"), None);
        assert_eq!(parse_statm_rss_pages("x y"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_rss_is_plausible() {
        let rss = rss_bytes().expect("statm readable on Linux");
        // A running test binary is at least a megabyte and under a
        // terabyte resident.
        assert!(rss > 1 << 20, "implausibly small rss: {rss}");
        assert!(rss < 1 << 40, "implausibly large rss: {rss}");
    }
}
