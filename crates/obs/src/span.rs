//! Phase timers over the on-CPU clock.
//!
//! Three shapes, all feeding nanosecond [`Counter`]s:
//!
//! * [`Span`] — RAII: time from construction to drop, attributed to one
//!   phase counter. `Span::cpu` reads the schedstat clock twice (use at
//!   message/report granularity — a `/proc` read costs ~1µs, far too hot
//!   for per-measurement use); `Span::wall` reads `Instant` twice (cheap
//!   enough for rare-but-interesting events like a reduced-formula
//!   re-solve).
//! * [`Stopwatch`] — chained laps: one clock read per phase *boundary*
//!   instead of two per phase, for worker loops that run several phases
//!   back to back over one batch.
//! * [`BusyTimer`] — cumulative busy accounting for a whole worker
//!   thread: on-CPU time where schedstat exists, accumulated wall
//!   intervals elsewhere (overstated under core oversubscription, but
//!   better than nothing on non-Linux hosts). This is the abstraction
//!   `churnlab-engine`'s scaling-efficiency model runs on; the wall
//!   fallback is testable via
//!   [`crate::cpu::force_wall_clock_for_tests`].

use crate::cpu::{thread_cpu_nanos, CpuClock};
use crate::metrics::Counter;
use std::time::Instant;

/// RAII phase timer: attributes its lifetime to a counter on drop.
pub struct Span<'a> {
    counter: &'a Counter,
    wall0: Instant,
    /// `Some` = CPU mode (schedstat at construction); `None` = wall mode.
    cpu0: Option<u64>,
}

impl<'a> Span<'a> {
    /// On-CPU span (falls back to wall time where schedstat is absent).
    pub fn cpu(counter: &'a Counter) -> Span<'a> {
        Span { counter, wall0: Instant::now(), cpu0: thread_cpu_nanos() }
    }

    /// Wall-clock span.
    pub fn wall(counter: &'a Counter) -> Span<'a> {
        Span { counter, wall0: Instant::now(), cpu0: None }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let nanos = match self.cpu0.and_then(|c0| Some(thread_cpu_nanos()?.saturating_sub(c0))) {
            Some(cpu) => cpu,
            None => self.wall0.elapsed().as_nanos() as u64,
        };
        self.counter.add(nanos);
    }
}

/// Chained phase laps: `lap(counter)` attributes everything since the
/// previous boundary (construction, last lap, or last [`restart`]) to
/// `counter` — one clock read per boundary, through a held [`CpuClock`]
/// (one syscall, no open/close). CPU-mode when schedstat exists, wall
/// otherwise; the mode is probed once at construction.
///
/// Hot loops should build one stopwatch per worker thread and
/// [`restart`] it per batch, so the schedstat open happens once per
/// thread, not once per batch. The held clock binds the stopwatch to
/// its constructing thread — don't move one across threads.
///
/// [`restart`]: Stopwatch::restart
pub struct Stopwatch {
    clock: CpuClock,
    /// Last boundary's on-CPU reading, or `None` in wall mode.
    cpu_last: Option<u64>,
    wall_last: Instant,
}

impl Stopwatch {
    /// Start a stopwatch at the first boundary.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Stopwatch {
        let mut clock = CpuClock::detect();
        let cpu_last = clock.now();
        Stopwatch { clock, cpu_last, wall_last: Instant::now() }
    }

    /// Open a fresh boundary now, discarding any time since the last
    /// one — for reusing one stopwatch across loop iterations whose
    /// inter-iteration time (a blocked channel `recv`, other message
    /// arms) belongs to no phase.
    pub fn restart(&mut self) {
        if self.cpu_last.is_some() {
            self.cpu_last = self.clock.now();
        }
        self.wall_last = Instant::now();
    }

    /// Close the current phase into `counter` and open the next.
    pub fn lap(&mut self, counter: &Counter) {
        let nanos = match self.cpu_last {
            Some(c0) => match self.clock.now() {
                Some(c1) => {
                    self.cpu_last = Some(c1);
                    c1.saturating_sub(c0)
                }
                // Clock vanished mid-run (never observed in practice);
                // degrade to a wall interval rather than lose the lap.
                None => {
                    self.cpu_last = None;
                    self.wall_last.elapsed().as_nanos() as u64
                }
            },
            None => self.wall_last.elapsed().as_nanos() as u64,
        };
        self.wall_last = Instant::now();
        counter.add(nanos);
    }
}

/// Cumulative busy accounting for one worker thread.
///
/// In CPU mode, `busy_nanos` is simply the thread's cumulative on-CPU
/// time (a blocked `recv` costs no CPU, so a message-loop worker's whole
/// on-CPU time *is* its busy time). In wall mode, the caller brackets
/// each unit of work with [`BusyTimer::interval`] and the accumulated
/// intervals stand in — overstated when threads outnumber cores, but
/// monotone and usable.
#[derive(Debug)]
pub enum BusyTimer {
    /// Schedstat-backed: read the cumulative clock on demand.
    Cpu,
    /// Wall fallback: accumulate measured intervals.
    Wall {
        /// Total accumulated busy nanoseconds.
        accumulated: u64,
    },
}

impl BusyTimer {
    /// Probe the CPU clock once and pick the mode.
    pub fn detect() -> BusyTimer {
        if thread_cpu_nanos().is_some() {
            BusyTimer::Cpu
        } else {
            BusyTimer::Wall { accumulated: 0 }
        }
    }

    /// Run one unit of work, accumulating its wall interval in fallback
    /// mode (a no-op wrapper in CPU mode).
    pub fn interval<R>(&mut self, f: impl FnOnce() -> R) -> R {
        match self {
            BusyTimer::Cpu => f(),
            BusyTimer::Wall { accumulated } => {
                let t0 = Instant::now();
                let out = f();
                *accumulated += t0.elapsed().as_nanos() as u64;
                out
            }
        }
    }

    /// The thread's busy time so far, nanoseconds.
    pub fn busy_nanos(&self) -> u64 {
        match self {
            BusyTimer::Cpu => thread_cpu_nanos().unwrap_or(0),
            BusyTimer::Wall { accumulated } => *accumulated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn spin(mut n: u64) -> u64 {
        let mut acc = 0u64;
        while n > 0 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(n);
            n -= 1;
        }
        acc
    }

    #[test]
    fn span_attributes_time() {
        let reg = Registry::new();
        let c = reg.counter("phase_nanos_total", "test", &[]);
        {
            let _s = Span::wall(&c);
            std::hint::black_box(spin(100_000));
        }
        assert!(c.value() > 0, "a wall span over real work records time");
        let before = c.value();
        {
            let _s = Span::cpu(&c);
            std::hint::black_box(spin(100_000));
        }
        assert!(c.value() >= before, "cpu span never subtracts");
    }

    /// Spin for at least `ms` of wall time — long enough that even the
    /// tick-granular schedstat clock observably advances.
    fn spin_for_ms(ms: u64) {
        let deadline = Instant::now() + std::time::Duration::from_millis(ms);
        while Instant::now() < deadline {
            std::hint::black_box(spin(10_000));
        }
    }

    #[test]
    fn stopwatch_laps_split_phases() {
        let reg = Registry::new();
        let a = reg.counter("a_nanos_total", "test", &[]);
        let b = reg.counter("b_nanos_total", "test", &[]);
        let mut sw = Stopwatch::new();
        spin_for_ms(30);
        sw.lap(&a);
        spin_for_ms(30);
        sw.lap(&b);
        // Both phases saw real work; wall or cpu, both laps land.
        assert!(a.value() > 0, "first lap records time");
        assert!(b.value() > 0, "second lap records time");
    }

    #[test]
    fn stopwatch_restart_discards_elapsed_time() {
        let reg = Registry::new();
        let c = reg.counter("restart_nanos_total", "test", &[]);
        let mut sw = Stopwatch::new();
        spin_for_ms(80);
        sw.restart();
        sw.lap(&c);
        // The 80ms before the restart must not land in the lap; allow
        // generous slack for tick-granular clocks.
        assert!(
            c.value() < 40_000_000,
            "restart leaked pre-boundary time: {}ns",
            c.value()
        );
    }

    #[test]
    fn wall_busy_timer_accumulates_monotonically() {
        let mut t = BusyTimer::Wall { accumulated: 0 };
        let first = {
            t.interval(|| std::hint::black_box(spin(200_000)));
            t.busy_nanos()
        };
        assert!(first > 0);
        t.interval(|| std::hint::black_box(spin(200_000)));
        assert!(t.busy_nanos() >= first, "busy accounting is monotone");
    }
}
