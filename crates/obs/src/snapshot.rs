//! Point-in-time scrapes and the delta/rate arithmetic between them.
//!
//! A [`Snapshot`] is what [`crate::metrics::Registry::scrape`] returns:
//! every registered series with its current value, stamped with the
//! registry's uptime. Snapshots are plain serializable data — they are
//! the "one uniform stats JSON shape" the binaries emit instead of
//! hand-formatted blocks — and two snapshots of the same registry
//! compose: [`Snapshot::delta`] subtracts the earlier cumulative
//! counters/histograms out of the later ones (gauges keep their later
//! value), which is exactly what a periodic scraper needs to turn
//! cumulative series into per-interval rates.

use serde::{Deserialize, Serialize};

/// A histogram's scraped state: raw (non-cumulative) log2 bucket counts,
/// the running sum, and the total observation count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// `buckets[i]` counts observations with bit length `i` (bucket 0 is
    /// the value 0). Length is fixed at 65.
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Total observations (sum of the buckets).
    pub count: u64,
}

impl HistogramSample {
    /// Mean observed value, `None` when nothing was observed.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// One series' scraped value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SampleValue {
    /// Cumulative monotone count.
    Counter(u64),
    /// Instantaneous value.
    Gauge(i64),
    /// Bucketed distribution.
    Histogram(HistogramSample),
}

/// One series in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Metric name (Prometheus conventions: `snake_case`, counters end
    /// in `_total` or a unit suffix).
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Help text (one line).
    pub help: String,
    /// The value.
    pub value: SampleValue,
}

impl Sample {
    /// True when this sample names the same series as `(name, labels)`.
    fn is(&self, name: &str, labels: &[(&str, &str)]) -> bool {
        self.name == name
            && self.labels.len() == labels.len()
            && self.labels.iter().zip(labels).all(|((k, v), (lk, lv))| k == lk && v == lv)
    }
}

/// A point-in-time scrape of a registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Registry uptime at scrape time, nanoseconds.
    pub uptime_nanos: u64,
    /// Every registered series, sorted by `(name, labels)`.
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// The counter value of a named series, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.samples.iter().find(|s| s.is(name, labels)).and_then(|s| match &s.value {
            SampleValue::Counter(v) => Some(*v),
            _ => None,
        })
    }

    /// The gauge value of a named series, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.samples.iter().find(|s| s.is(name, labels)).and_then(|s| match &s.value {
            SampleValue::Gauge(v) => Some(*v),
            _ => None,
        })
    }

    /// Sum of a counter across every labeling of `name` (e.g. a
    /// per-shard series summed over shards).
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match &s.value {
                SampleValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Seconds between this snapshot and an earlier one of the same
    /// registry.
    pub fn elapsed_secs_since(&self, earlier: &Snapshot) -> f64 {
        self.uptime_nanos.saturating_sub(earlier.uptime_nanos) as f64 / 1e9
    }

    /// The per-interval view between two scrapes of one registry:
    /// counters and histogram buckets/sums become the increase since
    /// `earlier` (saturating — a series absent from `earlier` keeps its
    /// full value), gauges keep this snapshot's value. `uptime_nanos`
    /// becomes the interval length.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let samples = self
            .samples
            .iter()
            .map(|s| {
                let prev = earlier
                    .samples
                    .iter()
                    .find(|p| p.name == s.name && p.labels == s.labels);
                let value = match (&s.value, prev.map(|p| &p.value)) {
                    (SampleValue::Counter(v), Some(SampleValue::Counter(pv))) => {
                        SampleValue::Counter(v.saturating_sub(*pv))
                    }
                    (SampleValue::Histogram(h), Some(SampleValue::Histogram(ph))) => {
                        SampleValue::Histogram(HistogramSample {
                            buckets: h
                                .buckets
                                .iter()
                                .zip(&ph.buckets)
                                .map(|(a, b)| a.saturating_sub(*b))
                                .collect(),
                            sum: h.sum.saturating_sub(ph.sum),
                            count: h.count.saturating_sub(ph.count),
                        })
                    }
                    (v, _) => v.clone(),
                };
                Sample { name: s.name.clone(), labels: s.labels.clone(), help: s.help.clone(), value }
            })
            .collect();
        Snapshot {
            uptime_nanos: self.uptime_nanos.saturating_sub(earlier.uptime_nanos),
            samples,
        }
    }

    /// One flat JSON object over the snapshot: `"name{k=v,...}"` keys
    /// mapping counters and gauges to their numbers and histograms to
    /// `{"count":..,"sum":..}`. This is the uniform one-line stats shape
    /// the binaries print in place of hand-formatted blocks; keys come
    /// out in the snapshot's `(name, labels)` sort order, so the line is
    /// deterministic and diffable across runs.
    pub fn flat_json(&self) -> String {
        let mut out = String::from("{");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut key = s.name.clone();
            if !s.labels.is_empty() {
                key.push('{');
                for (j, (k, v)) in s.labels.iter().enumerate() {
                    if j > 0 {
                        key.push(',');
                    }
                    key.push_str(k);
                    key.push('=');
                    key.push_str(v);
                }
                key.push('}');
            }
            out.push_str(&serde_json::to_string(&key).expect("string serializes"));
            out.push(':');
            match &s.value {
                SampleValue::Counter(v) => out.push_str(&v.to_string()),
                SampleValue::Gauge(v) => out.push_str(&v.to_string()),
                SampleValue::Histogram(h) => {
                    out.push_str(&format!("{{\"count\":{},\"sum\":{}}}", h.count, h.sum));
                }
            }
        }
        out.push('}');
        out
    }

    /// A counter's rate over the interval since `earlier`, per second.
    pub fn rate(&self, earlier: &Snapshot, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let secs = self.elapsed_secs_since(earlier);
        if secs <= 0.0 {
            return None;
        }
        let now = self.counter(name, labels)?;
        let then = earlier.counter(name, labels).unwrap_or(0);
        Some(now.saturating_sub(then) as f64 / secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn delta_and_rate_between_scrapes() {
        let reg = Registry::new();
        let c = reg.counter("work_total", "test", &[]);
        let g = reg.gauge("depth", "test", &[]);
        let h = reg.histogram("sizes", "test", &[]);
        c.add(10);
        g.set(3);
        h.observe(4);
        let first = reg.scrape();
        c.add(32);
        g.set(7);
        h.observe(4);
        h.observe(100);
        let second = reg.scrape();

        let d = second.delta(&first);
        assert_eq!(d.counter("work_total", &[]), Some(32));
        // Gauges are instantaneous: the delta keeps the later value.
        assert_eq!(d.gauge("depth", &[]), Some(7));
        let hist = d.samples.iter().find(|s| s.name == "sizes").unwrap();
        match &hist.value {
            SampleValue::Histogram(hs) => {
                assert_eq!(hs.count, 2);
                assert_eq!(hs.sum, 104);
            }
            other => panic!("expected histogram, got {other:?}"),
        }

        let rate = second.rate(&first, "work_total", &[]).expect("clock advanced");
        assert!(rate > 0.0);
    }

    #[test]
    fn flat_json_is_deterministic_and_parseable() {
        let reg = Registry::new();
        reg.counter("work_total", "t", &[("shard", "1")]).add(5);
        reg.counter("work_total", "t", &[("shard", "0")]).add(3);
        reg.gauge("depth", "t", &[]).set(-2);
        reg.histogram("sizes", "t", &[]).observe(7);
        let line = reg.scrape().flat_json();
        assert_eq!(
            line,
            "{\"depth\":-2,\"sizes\":{\"count\":1,\"sum\":7},\
             \"work_total{shard=0}\":3,\"work_total{shard=1}\":5}"
        );
    }

    #[test]
    fn survives_json_round_trip() {
        let reg = Registry::new();
        reg.counter("a_total", "help a", &[("shard", "0")]).add(9);
        reg.gauge("b", "help b", &[]).set(-4);
        reg.histogram("c", "help c", &[]).observe(17);
        let snap = reg.scrape();
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: Snapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
    }
}
