//! Prometheus text exposition (version 0.0.4) over a [`Snapshot`].
//!
//! The renderer is deliberately boring: one `# HELP`/`# TYPE` pair per
//! metric name (emitted at its first series — the snapshot is already
//! sorted by name, so all of a name's series are contiguous), label
//! values escaped per the spec, histograms expanded into cumulative
//! `_bucket{le="..."}` series. Stability matters more than features
//! here — the output is golden-tested so dashboards can rely on names
//! and label shapes across versions.

use crate::snapshot::{HistogramSample, Sample, SampleValue, Snapshot};
use std::fmt::Write as _;

/// Render a snapshot in Prometheus text format.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut prev_name: Option<&str> = None;
    for s in &snap.samples {
        if prev_name != Some(s.name.as_str()) {
            let kind = match s.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", s.name, escape_help(&s.help));
            let _ = writeln!(out, "# TYPE {} {}", s.name, kind);
            prev_name = Some(s.name.as_str());
        }
        match &s.value {
            SampleValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {}", s.name, render_labels(&s.labels, None), v);
            }
            SampleValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", s.name, render_labels(&s.labels, None), v);
            }
            SampleValue::Histogram(h) => render_histogram(&mut out, s, h),
        }
    }
    out
}

/// Expand a log2 histogram into cumulative `le` buckets. Bucket `i`
/// holds values of bit length `i` (bucket 0 is the value 0), so its
/// inclusive upper bound is `2^i - 1`; emit buckets up to the highest
/// non-empty one, then `+Inf`.
fn render_histogram(out: &mut String, s: &Sample, h: &HistogramSample) {
    let highest = h.buckets.iter().rposition(|&c| c > 0);
    let mut cumulative = 0u64;
    if let Some(hi) = highest {
        for (i, &c) in h.buckets.iter().enumerate().take(hi + 1) {
            cumulative += c;
            let le = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                s.name,
                render_labels(&s.labels, Some(&le.to_string())),
                cumulative
            );
        }
    }
    let _ = writeln!(
        out,
        "{}_bucket{} {}",
        s.name,
        render_labels(&s.labels, Some("+Inf")),
        h.count
    );
    let _ = writeln!(out, "{}_sum{} {}", s.name, render_labels(&s.labels, None), h.sum);
    let _ = writeln!(out, "{}_count{} {}", s.name, render_labels(&s.labels, None), h.count);
}

/// `{k="v",...}` with an optional trailing `le` label; empty string for
/// no labels.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", k, escape_label(v));
        first = false;
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{}\"", le);
    }
    out.push('}');
    out
}

/// Label values escape backslash, double-quote, and newline.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Help text escapes backslash and newline (quotes are fine there).
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn renders_counters_and_gauges_with_labels() {
        let reg = Registry::new();
        reg.counter("churnlab_measurements_total", "measurements ingested", &[("shard", "0")])
            .add(7);
        reg.counter("churnlab_measurements_total", "measurements ingested", &[("shard", "1")])
            .add(5);
        reg.gauge("churnlab_windows_open", "open churn windows", &[]).set(3);
        let text = render_prometheus(&reg.scrape());
        assert!(text.contains("# TYPE churnlab_measurements_total counter"));
        assert!(text.contains("churnlab_measurements_total{shard=\"0\"} 7"));
        assert!(text.contains("churnlab_measurements_total{shard=\"1\"} 5"));
        assert!(text.contains("churnlab_windows_open 3"));
        // HELP/TYPE emitted once per name, not per series.
        assert_eq!(text.matches("# TYPE churnlab_measurements_total").count(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_powers_of_two() {
        let reg = Registry::new();
        let h = reg.histogram("churnlab_resolve_nanos", "re-solve latency", &[]);
        h.observe(0); // bucket 0, le=0
        h.observe(1); // bucket 1, le=1
        h.observe(6); // bucket 3, le=7
        let text = render_prometheus(&reg.scrape());
        assert!(text.contains("churnlab_resolve_nanos_bucket{le=\"0\"} 1"));
        assert!(text.contains("churnlab_resolve_nanos_bucket{le=\"1\"} 2"));
        assert!(text.contains("churnlab_resolve_nanos_bucket{le=\"3\"} 2"));
        assert!(text.contains("churnlab_resolve_nanos_bucket{le=\"7\"} 3"));
        assert!(text.contains("churnlab_resolve_nanos_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("churnlab_resolve_nanos_sum 7"));
        assert!(text.contains("churnlab_resolve_nanos_count 3"));
        // Buckets past the highest non-empty one are elided.
        assert!(!text.contains("le=\"15\""));
    }

    #[test]
    fn escapes_label_values() {
        let reg = Registry::new();
        reg.counter("c_total", "help", &[("path", "a\"b\\c\nd")]).inc();
        let text = render_prometheus(&reg.scrape());
        assert!(text.contains("c_total{path=\"a\\\"b\\\\c\\nd\"} 1"));
    }
}
