//! A JSONL event journal: the narrative the metrics can't tell.
//!
//! Counters say *how much*; the journal says *what happened, in order* —
//! a churn window opened, a cell was solved, a worker panicked, a CI
//! gate armed or was skipped. Each event is one JSON object on one line,
//! stamped with the journal's uptime, and parses back into a
//! [`JournalEvent`] so a run's event stream can be *reconciled* against
//! its final report (every window opened must close; cells solved must
//! sum to the report's instance count).
//!
//! Emission is best-effort by design: a full disk or broken pipe must
//! never take down a shard worker, so write errors are swallowed. The
//! writer sits behind a `Mutex` — events are rare (per window / per
//! report, never per measurement), so contention is a non-issue.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One journaled event, as written and as parsed back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEvent {
    /// Nanoseconds since the journal was opened.
    pub uptime_nanos: u64,
    /// Event name (`window_opened`, `cell_solved`, `worker_panic`,
    /// `gate_armed`, `gate_skipped`, `scrape`, ...).
    pub event: String,
    /// Numeric payload, in emission order.
    pub fields: Vec<(String, u64)>,
    /// String payload (gate names, panic messages), in emission order.
    pub tags: Vec<(String, String)>,
}

impl JournalEvent {
    /// A numeric field by name.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// A string field by name.
    pub fn tag(&self, name: &str) -> Option<&str> {
        self.tags.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

struct Inner {
    start: Instant,
    sink: Mutex<Box<dyn Write + Send>>,
}

/// A cloneable handle to one JSONL event stream.
#[derive(Clone)]
pub struct Journal {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Journal")
    }
}

impl Journal {
    /// Journal into any writer (a file, a pipe, a [`MemorySink`]).
    pub fn to_writer(w: impl Write + Send + 'static) -> Journal {
        Journal {
            inner: Arc::new(Inner { start: Instant::now(), sink: Mutex::new(Box::new(w)) }),
        }
    }

    /// Journal into a file at `path` (truncating).
    pub fn to_file(path: &std::path::Path) -> std::io::Result<Journal> {
        Ok(Journal::to_writer(std::io::BufWriter::new(std::fs::File::create(path)?)))
    }

    /// Emit an event with numeric fields.
    pub fn emit(&self, event: &str, fields: &[(&str, u64)]) {
        self.emit_tagged(event, fields, &[]);
    }

    /// Emit an event with numeric fields and string tags.
    pub fn emit_tagged(&self, event: &str, fields: &[(&str, u64)], tags: &[(&str, &str)]) {
        let ev = JournalEvent {
            uptime_nanos: self.inner.start.elapsed().as_nanos() as u64,
            event: event.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            tags: tags.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        };
        if let Ok(line) = serde_json::to_string(&ev) {
            let mut sink = self.inner.sink.lock().unwrap_or_else(|e| e.into_inner());
            // Best effort: a failed journal write must not fail the run.
            let _ = writeln!(sink, "{line}");
        }
    }

    /// Flush the underlying writer (call before reading the file back).
    pub fn flush(&self) {
        let mut sink = self.inner.sink.lock().unwrap_or_else(|e| e.into_inner());
        let _ = sink.flush();
    }
}

/// Parse a journal back from its JSONL text. Errors name the offending
/// line — a journal that doesn't parse is a bug, not an input problem.
pub fn parse_jsonl(text: &str) -> Result<Vec<JournalEvent>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| {
            serde_json::from_str(l).map_err(|e| format!("journal line {}: {e:?}", i + 1))
        })
        .collect()
}

/// An in-memory sink for tests: clone it, hand one clone to
/// [`Journal::to_writer`], read `contents()` from the other.
#[derive(Clone, Default)]
pub struct MemorySink {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl MemorySink {
    /// A fresh empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Everything written so far, as UTF-8.
    pub fn contents(&self) -> String {
        let buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        String::from_utf8_lossy(&buf).into_owned()
    }
}

impl Write for MemorySink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_jsonl() {
        let sink = MemorySink::new();
        let journal = Journal::to_writer(sink.clone());
        journal.emit("window_opened", &[("shard", 2), ("url_id", 17)]);
        journal.emit_tagged("worker_panic", &[("shard", 0)], &[("message", "boom")]);
        journal.emit("window_closed", &[("shard", 2), ("url_id", 17), ("cells", 3)]);
        journal.flush();

        let events = parse_jsonl(&sink.contents()).expect("journal parses back");
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].event, "window_opened");
        assert_eq!(events[0].field("url_id"), Some(17));
        assert_eq!(events[1].tag("message"), Some("boom"));
        assert_eq!(events[2].field("cells"), Some(3));
        // Uptime stamps never go backwards within one journal.
        assert!(events.windows(2).all(|w| w[0].uptime_nanos <= w[1].uptime_nanos));
    }

    #[test]
    fn parse_rejects_garbage_with_line_number() {
        let err = parse_jsonl("{\"uptime_nanos\":0,\"event\":\"a\",\"fields\":[],\"tags\":[]}\nnot json\n")
            .unwrap_err();
        assert!(err.contains("line 2"), "error names the line: {err}");
    }

    #[test]
    fn clones_share_one_stream() {
        let sink = MemorySink::new();
        let a = Journal::to_writer(sink.clone());
        let b = a.clone();
        a.emit("from_a", &[]);
        b.emit("from_b", &[]);
        a.flush();
        let events = parse_jsonl(&sink.contents()).unwrap();
        assert_eq!(events.len(), 2);
    }
}
