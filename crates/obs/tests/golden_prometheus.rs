//! Golden test: the Prometheus exposition format is a public interface.
//!
//! Dashboards and scrape configs key on metric names, label shapes, and
//! the `HELP`/`TYPE` framing. This test pins the exact rendered text for
//! a representative registry — if it fails, either fix the regression or
//! consciously update the golden string *and* the README's
//! "Observability" section together.

use churnlab_obs::{render_prometheus, Registry};

#[test]
fn exposition_format_is_stable() {
    let reg = Registry::new();
    reg.counter(
        "churnlab_measurements_total",
        "raw measurements ingested, per shard",
        &[("shard", "0")],
    )
    .add(1200);
    reg.counter(
        "churnlab_measurements_total",
        "raw measurements ingested, per shard",
        &[("shard", "1")],
    )
    .add(1100);
    reg.gauge("churnlab_windows_open", "churn windows currently open", &[]).set(5);
    let h = reg.histogram("churnlab_resolve_nanos", "incremental re-solve latency", &[]);
    h.observe(0);
    h.observe(3);
    h.observe(900);
    reg.counter(
        "churnlab_phase_nanos_total",
        "on-CPU nanoseconds by phase",
        &[("phase", "convert"), ("shard", "0")],
    )
    .add(42_000);

    let text = render_prometheus(&reg.scrape());

    let golden = "\
# HELP churnlab_measurements_total raw measurements ingested, per shard
# TYPE churnlab_measurements_total counter
churnlab_measurements_total{shard=\"0\"} 1200
churnlab_measurements_total{shard=\"1\"} 1100
# HELP churnlab_phase_nanos_total on-CPU nanoseconds by phase
# TYPE churnlab_phase_nanos_total counter
churnlab_phase_nanos_total{phase=\"convert\",shard=\"0\"} 42000
# HELP churnlab_resolve_nanos incremental re-solve latency
# TYPE churnlab_resolve_nanos histogram
churnlab_resolve_nanos_bucket{le=\"0\"} 1
churnlab_resolve_nanos_bucket{le=\"1\"} 1
churnlab_resolve_nanos_bucket{le=\"3\"} 2
churnlab_resolve_nanos_bucket{le=\"7\"} 2
churnlab_resolve_nanos_bucket{le=\"15\"} 2
churnlab_resolve_nanos_bucket{le=\"31\"} 2
churnlab_resolve_nanos_bucket{le=\"63\"} 2
churnlab_resolve_nanos_bucket{le=\"127\"} 2
churnlab_resolve_nanos_bucket{le=\"255\"} 2
churnlab_resolve_nanos_bucket{le=\"511\"} 2
churnlab_resolve_nanos_bucket{le=\"1023\"} 3
churnlab_resolve_nanos_bucket{le=\"+Inf\"} 3
churnlab_resolve_nanos_sum 903
churnlab_resolve_nanos_count 3
# HELP churnlab_windows_open churn windows currently open
# TYPE churnlab_windows_open gauge
churnlab_windows_open 5
";
    assert_eq!(
        text, golden,
        "Prometheus exposition drifted — metric names/label shapes are a public interface"
    );
}
