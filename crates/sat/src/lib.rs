//! # churnlab-sat
//!
//! A from-scratch boolean satisfiability toolkit sized for the paper's
//! workload.
//!
//! The paper feeds each (URL × time-window × anomaly) CNF to "an
//! off-the-shelf SAT solver" and needs three things back (§3.2):
//!
//! 1. **Solvability class** — no solution (policy change / measurement
//!    noise), exactly one (censors exactly identified), or multiple;
//! 2. for multiple solutions, **which variables are False in every
//!    solution** (definite non-censors — how the candidate set shrinks by
//!    95.2% on average, Figure 2);
//! 3. **solution counts** (Figure 4 buckets 0,1,2,3,4,5+).
//!
//! Modules:
//!
//! * [`cnf`] — literals, clauses, formulas, and DIMACS import/export
//!   (interoperates with real off-the-shelf solvers; see the
//!   `dimacs_export` example).
//! * [`compiled`] — [`CompiledCnf`]: flat CSR clause storage (one literal
//!   arena plus clause offsets), built once per instance and reusable as
//!   a builder without reallocating.
//! * [`ctx`] — [`SolverCtx`]: the reusable watched-literal solver
//!   context. Two-watched-literal unit propagation, trail-based undo,
//!   assumption push/pop, epoch-stamped branch scoring, and a census that
//!   harvests every enumerated model into the backbone. One context
//!   serves any number of instances with zero steady-state allocations.
//! * [`solver`] / [`enumerate`] — the historical one-shot API ([`solve`],
//!   [`census`], …), now thin cold-context wrappers over [`ctx`].
//! * [`reference`] — the original full-rescan solver core, retained as a
//!   differential-testing oracle and in-run performance baseline.
//! * [`brute`] — an exhaustive reference implementation used by the
//!   property tests to cross-check everything above.
//!
//! Instances here are small (tens of variables, hundreds of clauses) but
//! solved millions of times — every localization result funnels through
//! [`census`] — so the hot path is engineered: no recursion, no
//! per-decision allocation, saturating counters, and explicit handling of
//! empty formulas and tautological inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod cnf;
pub mod compiled;
pub mod ctx;
pub mod enumerate;
pub mod reference;
pub mod solver;

pub use cnf::{Clause, Cnf, DimacsError, Lit, Var};
pub use compiled::CompiledCnf;
pub use ctx::{CtxStats, SolverCtx};
pub use enumerate::{backbone, census, count_solutions, Backbone, SolutionCensus, SolutionCount};
pub use solver::{solve, solve_with};

/// Solvability classes the tomography pipeline distinguishes (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Solvability {
    /// No satisfying assignment: noise or a policy change inside the
    /// window.
    Unsat,
    /// Exactly one satisfying assignment: censors exactly identified.
    Unique,
    /// Two or more satisfying assignments: a set of potential censors.
    Multiple,
}

impl Solvability {
    /// Label used in figures ("0", "1", "2+").
    pub fn label(self) -> &'static str {
        match self {
            Solvability::Unsat => "0",
            Solvability::Unique => "1",
            Solvability::Multiple => "2+",
        }
    }
}

impl std::fmt::Display for Solvability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}
