//! Compiled CNF: flat CSR clause storage for the solving hot path.
//!
//! [`crate::cnf::Cnf`] stores one heap `Vec<Lit>` per clause — fine for
//! building and DIMACS interop, hostile to a solver that walks clauses
//! millions of times. [`CompiledCnf`] lays every literal out in a single
//! arena with clause-offset indices (compressed sparse row), so solving
//! touches two contiguous allocations total and clause access is a slice
//! into the arena.
//!
//! A `CompiledCnf` is also a *reusable builder*: [`CompiledCnf::reset`]
//! rewinds it without freeing, so a long-lived caller (the engine's shard
//! workers re-solving reduced formulas per observation) pushes clauses
//! into the same arenas forever and performs zero steady-state
//! allocations.

use crate::cnf::{Cnf, Lit};

/// A CNF compiled into flat CSR storage: one literal arena plus clause
/// offsets. Clauses are canonical (sorted, deduplicated, tautologies
/// dropped), matching [`Cnf::add_clause`] semantics exactly.
#[derive(Debug, Clone)]
pub struct CompiledCnf {
    n_vars: usize,
    /// All literals, clause after clause.
    lits: Vec<Lit>,
    /// Clause `i` occupies `lits[starts[i] as usize..starts[i + 1] as usize]`.
    starts: Vec<u32>,
    /// Canonicalization buffer reused across [`CompiledCnf::push_clause`].
    scratch: Vec<Lit>,
}

impl CompiledCnf {
    /// Empty compiled formula over zero variables (use [`reset`] or
    /// [`load_cnf`] to give it a shape).
    ///
    /// [`reset`]: CompiledCnf::reset
    /// [`load_cnf`]: CompiledCnf::load_cnf
    pub fn new() -> Self {
        CompiledCnf { n_vars: 0, lits: Vec::new(), starts: vec![0], scratch: Vec::new() }
    }

    /// Rewind to an empty formula over `n_vars` variables, keeping every
    /// allocation for reuse.
    pub fn reset(&mut self, n_vars: usize) {
        self.n_vars = n_vars;
        self.lits.clear();
        self.starts.clear();
        self.starts.push(0);
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of clauses.
    pub fn n_clauses(&self) -> usize {
        self.starts.len() - 1
    }

    /// The literal arena (clause after clause).
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Clause offsets into [`lits`](CompiledCnf::lits); length
    /// `n_clauses + 1`.
    pub fn starts(&self) -> &[u32] {
        &self.starts
    }

    /// Clause `i` as a slice of the arena.
    pub fn clause(&self, i: usize) -> &[Lit] {
        &self.lits[self.starts[i] as usize..self.starts[i + 1] as usize]
    }

    /// Add a clause, canonicalizing exactly like [`Cnf::add_clause`]:
    /// literals are sorted and deduplicated, tautologies (`x ∨ ¬x ∨ …`)
    /// are dropped. Panics if a literal references a variable outside the
    /// formula.
    pub fn push_clause(&mut self, clause: impl IntoIterator<Item = Lit>) {
        self.scratch.clear();
        self.scratch.extend(clause);
        for l in &self.scratch {
            assert!(l.var.usize() < self.n_vars, "literal {l:?} out of range");
        }
        self.scratch.sort();
        self.scratch.dedup();
        let tautology = self.scratch.windows(2).any(|w| w[0].var == w[1].var);
        if tautology {
            return;
        }
        self.lits.extend_from_slice(&self.scratch);
        self.starts.push(self.lits.len() as u32);
    }

    /// Add an already-canonical clause without re-sorting (used by
    /// [`load_cnf`](CompiledCnf::load_cnf); `Cnf` clauses are canonical by
    /// construction).
    fn push_canonical(&mut self, clause: &[Lit]) {
        debug_assert!(clause.windows(2).all(|w| w[0] < w[1]), "clause must be canonical");
        self.lits.extend_from_slice(clause);
        self.starts.push(self.lits.len() as u32);
    }

    /// Replace the contents with a compiled copy of `cnf`, reusing the
    /// arenas.
    pub fn load_cnf(&mut self, cnf: &Cnf) {
        self.reset(cnf.n_vars());
        self.lits.reserve(cnf.clauses().iter().map(Vec::len).sum());
        self.starts.reserve(cnf.n_clauses());
        for clause in cnf.clauses() {
            self.push_canonical(clause);
        }
    }

    /// Compile a [`Cnf`] into fresh CSR storage.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut c = CompiledCnf::new();
        c.load_cnf(cnf);
        c
    }
}

impl Default for CompiledCnf {
    fn default() -> Self {
        CompiledCnf::new()
    }
}

impl From<&Cnf> for CompiledCnf {
    fn from(cnf: &Cnf) -> Self {
        CompiledCnf::from_cnf(cnf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;

    #[test]
    fn csr_layout_roundtrips() {
        let mut f = Cnf::new(4);
        f.add_positive_clause([Var(0), Var(2)]);
        f.add_negative_facts([Var(1), Var(3)]);
        let c = CompiledCnf::from_cnf(&f);
        assert_eq!(c.n_vars(), 4);
        assert_eq!(c.n_clauses(), 3);
        assert_eq!(c.clause(0), &f.clauses()[0][..]);
        assert_eq!(c.clause(1), &[Lit::neg(Var(1))]);
        assert_eq!(c.clause(2), &[Lit::neg(Var(3))]);
        assert_eq!(c.lits().len(), 4);
        assert_eq!(c.starts(), &[0, 2, 3, 4]);
    }

    #[test]
    fn push_clause_canonicalizes_like_cnf() {
        let mut c = CompiledCnf::new();
        c.reset(3);
        // Duplicate literal merges.
        c.push_clause([Lit::pos(Var(1)), Lit::pos(Var(1)), Lit::pos(Var(0))]);
        assert_eq!(c.clause(0), &[Lit::pos(Var(0)), Lit::pos(Var(1))]);
        // Tautology drops.
        c.push_clause([Lit::pos(Var(2)), Lit::neg(Var(2))]);
        assert_eq!(c.n_clauses(), 1);
    }

    #[test]
    fn reset_reuses_without_leftovers() {
        let mut c = CompiledCnf::new();
        c.reset(2);
        c.push_clause([Lit::pos(Var(0)), Lit::pos(Var(1))]);
        c.reset(1);
        assert_eq!(c.n_clauses(), 0);
        assert_eq!(c.n_vars(), 1);
        c.push_clause([Lit::neg(Var(0))]);
        assert_eq!(c.clause(0), &[Lit::neg(Var(0))]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_literal_panics() {
        let mut c = CompiledCnf::new();
        c.reset(1);
        c.push_clause([Lit::pos(Var(5))]);
    }
}
