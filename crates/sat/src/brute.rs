//! Exhaustive reference implementations for cross-checking the solver.
//!
//! Only usable for small variable counts (≤ 24); the property tests pit
//! [`crate::solver`] and [`crate::enumerate`] against these.

use crate::cnf::Cnf;
use crate::enumerate::Backbone;

/// Exact model count by exhaustive evaluation. Panics above 24 variables.
pub fn count(cnf: &Cnf) -> u64 {
    let n = cnf.n_vars();
    assert!(n <= 24, "brute force limited to 24 vars, got {n}");
    let mut count = 0u64;
    let mut assignment = vec![false; n];
    for bits in 0..(1u64 << n) {
        for (i, a) in assignment.iter_mut().enumerate() {
            *a = bits >> i & 1 == 1;
        }
        if cnf.eval(&assignment) {
            count += 1;
        }
    }
    count
}

/// Exact backbone by exhaustive evaluation; `None` if unsatisfiable.
pub fn backbone(cnf: &Cnf) -> Option<Backbone> {
    let n = cnf.n_vars();
    assert!(n <= 24, "brute force limited to 24 vars, got {n}");
    let mut ever_true = vec![false; n];
    let mut ever_false = vec![false; n];
    let mut any = false;
    let mut assignment = vec![false; n];
    for bits in 0..(1u64 << n) {
        for (i, a) in assignment.iter_mut().enumerate() {
            *a = bits >> i & 1 == 1;
        }
        if cnf.eval(&assignment) {
            any = true;
            for (i, a) in assignment.iter().enumerate() {
                if *a {
                    ever_true[i] = true;
                } else {
                    ever_false[i] = true;
                }
            }
        }
    }
    any.then_some(Backbone { ever_true, ever_false })
}

/// All models, materialised (for debugging small instances).
pub fn models(cnf: &Cnf) -> Vec<Vec<bool>> {
    let n = cnf.n_vars();
    assert!(n <= 16, "model listing limited to 16 vars, got {n}");
    let mut out = Vec::new();
    for bits in 0..(1u64 << n) {
        let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        if cnf.eval(&a) {
            out.push(a);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Cnf, Var};

    #[test]
    fn count_empty() {
        assert_eq!(count(&Cnf::new(4)), 16);
    }

    #[test]
    fn count_simple() {
        let mut f = Cnf::new(2);
        f.add_positive_clause([Var(0), Var(1)]);
        assert_eq!(count(&f), 3);
        assert_eq!(models(&f).len(), 3);
    }

    #[test]
    fn backbone_simple() {
        let mut f = Cnf::new(2);
        f.add_positive_clause([Var(0)]);
        let b = backbone(&f).unwrap();
        assert_eq!(b.always_true(), vec![Var(0)]);
        assert!(b.always_false().is_empty());
    }
}
