//! Satisfiability entry points over the watched-literal core.
//!
//! [`solve`] and [`solve_with`] are the crate's historical one-shot API:
//! each call builds a cold [`SolverCtx`], compiles the formula, and
//! solves. Hot paths that solve many instances (or probe one instance
//! many times) should hold a [`SolverCtx`] and call it directly — the
//! context rewinds instead of reallocating, which is where the census
//! speedup comes from. The original full-rescan DPLL this API used to
//! run lives on in [`crate::reference`].

use crate::cnf::{Cnf, Lit};
use crate::ctx::SolverCtx;

/// Solve `cnf`; returns a complete satisfying assignment or `None`.
/// Variables not constrained by any clause are assigned `false`.
pub fn solve(cnf: &Cnf) -> Option<Vec<bool>> {
    solve_with(cnf, &[])
}

/// Solve under assumptions (forced literals). Used for backbone probing:
/// "is there a solution where X is true?".
pub fn solve_with(cnf: &Cnf, assumptions: &[Lit]) -> Option<Vec<bool>> {
    SolverCtx::new().solve_cnf(cnf, assumptions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Cnf, Lit, Var};

    #[test]
    fn empty_formula_sat() {
        let f = Cnf::new(3);
        let m = solve(&f).unwrap();
        assert_eq!(m, vec![false, false, false]);
    }

    #[test]
    fn unit_contradiction_unsat() {
        let mut f = Cnf::new(1);
        f.add_clause(vec![Lit::pos(Var(0))]);
        f.add_clause(vec![Lit::neg(Var(0))]);
        assert!(solve(&f).is_none());
    }

    #[test]
    fn paper_style_instance() {
        // Path X→Y→Z censored; paths X→Y and Y→Z clean ⇒ Z is the censor…
        // wait: clean X,Y leaves only Z. (X∨Y∨Z) ∧ ¬X ∧ ¬Y ⇒ Z.
        let mut f = Cnf::new(3);
        f.add_positive_clause([Var(0), Var(1), Var(2)]);
        f.add_negative_facts([Var(0), Var(1)]);
        let m = solve(&f).unwrap();
        assert_eq!(m, vec![false, false, true]);
    }

    #[test]
    fn assumptions_respected() {
        let mut f = Cnf::new(2);
        f.add_positive_clause([Var(0), Var(1)]);
        let m = solve_with(&f, &[Lit::neg(Var(0))]).unwrap();
        assert!(!m[0]);
        assert!(m[1]);
        // Assume both false: unsat.
        assert!(solve_with(&f, &[Lit::neg(Var(0)), Lit::neg(Var(1))]).is_none());
        // Contradictory assumptions.
        assert!(solve_with(&f, &[Lit::pos(Var(0)), Lit::neg(Var(0))]).is_none());
    }

    #[test]
    fn needs_real_backtracking() {
        // (a∨b) ∧ (¬a∨c) ∧ (¬b∨c) ∧ (¬c∨a) ∧ (¬c∨¬b): forces a=c=true, b=false.
        let mut f = Cnf::new(3);
        let (a, b, c) = (Var(0), Var(1), Var(2));
        f.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
        f.add_clause(vec![Lit::neg(a), Lit::pos(c)]);
        f.add_clause(vec![Lit::neg(b), Lit::pos(c)]);
        f.add_clause(vec![Lit::neg(c), Lit::pos(a)]);
        f.add_clause(vec![Lit::neg(c), Lit::neg(b)]);
        let m = solve(&f).unwrap();
        assert!(f.eval(&m));
        assert_eq!(m, vec![true, false, true]);
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        // Two pigeons, one hole: p0h0 ∧ p1h0 both needed but mutually
        // exclusive. vars: x0 = pigeon0 in hole, x1 = pigeon1 in hole.
        let mut f = Cnf::new(2);
        f.add_clause(vec![Lit::pos(Var(0))]);
        f.add_clause(vec![Lit::pos(Var(1))]);
        f.add_clause(vec![Lit::neg(Var(0)), Lit::neg(Var(1))]);
        assert!(solve(&f).is_none());
    }

    #[test]
    fn larger_random_instances_agree_with_eval() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            let n = rng.gen_range(1..12usize);
            let mut f = Cnf::new(n);
            for _ in 0..rng.gen_range(0..20usize) {
                let len = rng.gen_range(1..=3.min(n));
                let clause: Vec<Lit> = (0..len)
                    .map(|_| Lit {
                        var: Var(rng.gen_range(0..n as u32)),
                        positive: rng.gen_bool(0.5),
                    })
                    .collect();
                f.add_clause(clause);
            }
            if let Some(m) = solve(&f) {
                assert!(f.eval(&m), "solver returned a non-model");
            } else {
                // Cross-check with brute force.
                let mut found = false;
                for bits in 0..(1u32 << n) {
                    let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                    if f.eval(&a) {
                        found = true;
                        break;
                    }
                }
                assert!(!found, "solver claimed UNSAT on a satisfiable formula");
            }
        }
    }
}
