//! DPLL satisfiability with unit propagation and assumptions.
//!
//! Deliberately simple (the paper's instances are tiny: a CNF has one
//! variable per AS observed on the measured paths), but complete and
//! allocation-conscious: iterative propagation, explicit branch stack, no
//! recursion.

use crate::cnf::{Cnf, Lit, Var};

/// Result of unit propagation over a partial assignment.
enum Propagation {
    /// Assignment extended without conflict.
    Ok,
    /// A clause became empty: the branch is dead.
    Conflict,
}

/// Propagate unit clauses until fixpoint. `trail` records newly assigned
/// variables so the caller can undo.
fn propagate(cnf: &Cnf, assignment: &mut [Option<bool>], trail: &mut Vec<Var>) -> Propagation {
    loop {
        let mut changed = false;
        for clause in cnf.clauses() {
            let mut satisfied = false;
            let mut unassigned: Option<Lit> = None;
            let mut n_unassigned = 0;
            for l in clause {
                match l.eval(assignment) {
                    Some(true) => {
                        satisfied = true;
                        break;
                    }
                    Some(false) => {}
                    None => {
                        n_unassigned += 1;
                        unassigned = Some(*l);
                    }
                }
            }
            if satisfied {
                continue;
            }
            match n_unassigned {
                0 => return Propagation::Conflict,
                1 => {
                    let l = unassigned.expect("counted one unassigned literal");
                    assignment[l.var.usize()] = Some(l.positive);
                    trail.push(l.var);
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return Propagation::Ok;
        }
    }
}

/// Pick the unassigned variable occurring in the most unsatisfied clauses
/// (a cheap MOM-style heuristic); `None` when everything is assigned or
/// all clauses are satisfied.
fn pick_branch_var(cnf: &Cnf, assignment: &[Option<bool>]) -> Option<Var> {
    let mut counts: std::collections::HashMap<Var, usize> = std::collections::HashMap::new();
    for clause in cnf.clauses() {
        let satisfied = clause.iter().any(|l| l.eval(assignment) == Some(true));
        if satisfied {
            continue;
        }
        for l in clause {
            if l.eval(assignment).is_none() {
                *counts.entry(l.var).or_insert(0) += 1;
            }
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v)))
        .map(|(v, _)| v)
}

/// Solve `cnf`; returns a complete satisfying assignment or `None`.
/// Variables not constrained by any clause are assigned `false`.
pub fn solve(cnf: &Cnf) -> Option<Vec<bool>> {
    solve_with(cnf, &[])
}

/// Solve under assumptions (forced literals). Used for backbone probing:
/// "is there a solution where X is true?".
pub fn solve_with(cnf: &Cnf, assumptions: &[Lit]) -> Option<Vec<bool>> {
    let n = cnf.n_vars();
    let mut assignment: Vec<Option<bool>> = vec![None; n];
    for a in assumptions {
        match assignment[a.var.usize()] {
            Some(v) if v != a.positive => return None, // contradictory assumptions
            _ => assignment[a.var.usize()] = Some(a.positive),
        }
    }

    // Branch stack: (var, next_value_to_try, trail_len_before, tried_both)
    struct Frame {
        var: Var,
        tried_second: bool,
        trail_mark: usize,
    }
    let mut trail: Vec<Var> = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();

    // Initial propagation.
    if matches!(propagate(cnf, &mut assignment, &mut trail), Propagation::Conflict) {
        return None;
    }

    loop {
        match pick_branch_var(cnf, &assignment) {
            None => {
                // All clauses satisfied; complete the assignment.
                let out: Vec<bool> = assignment.iter().map(|v| v.unwrap_or(false)).collect();
                debug_assert!(cnf.eval(&out));
                return Some(out);
            }
            Some(var) => {
                // Branch: try `true` first (positive clauses dominate our
                // instances, so true-first finds models fast).
                let mark = trail.len();
                assignment[var.usize()] = Some(true);
                trail.push(var);
                stack.push(Frame { var, tried_second: false, trail_mark: mark });
                loop {
                    if matches!(propagate(cnf, &mut assignment, &mut trail), Propagation::Ok) {
                        break; // descend further
                    }
                    // Conflict: backtrack.
                    loop {
                        match stack.pop() {
                            None => return None,
                            Some(f) => {
                                // Undo everything after this frame's mark.
                                while trail.len() > f.trail_mark {
                                    let v = trail.pop().expect("trail bounded by mark");
                                    assignment[v.usize()] = None;
                                }
                                if !f.tried_second {
                                    assignment[f.var.usize()] = Some(false);
                                    trail.push(f.var);
                                    stack.push(Frame {
                                        var: f.var,
                                        tried_second: true,
                                        trail_mark: f.trail_mark,
                                    });
                                    break;
                                }
                                // Both polarities failed here; pop further.
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Cnf, Lit, Var};

    #[test]
    fn empty_formula_sat() {
        let f = Cnf::new(3);
        let m = solve(&f).unwrap();
        assert_eq!(m, vec![false, false, false]);
    }

    #[test]
    fn unit_contradiction_unsat() {
        let mut f = Cnf::new(1);
        f.add_clause(vec![Lit::pos(Var(0))]);
        f.add_clause(vec![Lit::neg(Var(0))]);
        assert!(solve(&f).is_none());
    }

    #[test]
    fn paper_style_instance() {
        // Path X→Y→Z censored; paths X→Y and Y→Z clean ⇒ Z is the censor…
        // wait: clean X,Y leaves only Z. (X∨Y∨Z) ∧ ¬X ∧ ¬Y ⇒ Z.
        let mut f = Cnf::new(3);
        f.add_positive_clause([Var(0), Var(1), Var(2)]);
        f.add_negative_facts([Var(0), Var(1)]);
        let m = solve(&f).unwrap();
        assert_eq!(m, vec![false, false, true]);
    }

    #[test]
    fn assumptions_respected() {
        let mut f = Cnf::new(2);
        f.add_positive_clause([Var(0), Var(1)]);
        let m = solve_with(&f, &[Lit::neg(Var(0))]).unwrap();
        assert!(!m[0]);
        assert!(m[1]);
        // Assume both false: unsat.
        assert!(solve_with(&f, &[Lit::neg(Var(0)), Lit::neg(Var(1))]).is_none());
        // Contradictory assumptions.
        assert!(solve_with(&f, &[Lit::pos(Var(0)), Lit::neg(Var(0))]).is_none());
    }

    #[test]
    fn needs_real_backtracking() {
        // (a∨b) ∧ (¬a∨c) ∧ (¬b∨c) ∧ (¬c∨a) ∧ (¬c∨¬b): forces a=c=true, b=false.
        let mut f = Cnf::new(3);
        let (a, b, c) = (Var(0), Var(1), Var(2));
        f.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
        f.add_clause(vec![Lit::neg(a), Lit::pos(c)]);
        f.add_clause(vec![Lit::neg(b), Lit::pos(c)]);
        f.add_clause(vec![Lit::neg(c), Lit::pos(a)]);
        f.add_clause(vec![Lit::neg(c), Lit::neg(b)]);
        let m = solve(&f).unwrap();
        assert!(f.eval(&m));
        assert_eq!(m, vec![true, false, true]);
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        // Two pigeons, one hole: p0h0 ∧ p1h0 both needed but mutually
        // exclusive. vars: x0 = pigeon0 in hole, x1 = pigeon1 in hole.
        let mut f = Cnf::new(2);
        f.add_clause(vec![Lit::pos(Var(0))]);
        f.add_clause(vec![Lit::pos(Var(1))]);
        f.add_clause(vec![Lit::neg(Var(0)), Lit::neg(Var(1))]);
        assert!(solve(&f).is_none());
    }

    #[test]
    fn larger_random_instances_agree_with_eval() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            let n = rng.gen_range(1..12usize);
            let mut f = Cnf::new(n);
            for _ in 0..rng.gen_range(0..20usize) {
                let len = rng.gen_range(1..=3.min(n));
                let clause: Vec<Lit> = (0..len)
                    .map(|_| Lit {
                        var: Var(rng.gen_range(0..n as u32)),
                        positive: rng.gen_bool(0.5),
                    })
                    .collect();
                f.add_clause(clause);
            }
            if let Some(m) = solve(&f) {
                assert!(f.eval(&m), "solver returned a non-model");
            } else {
                // Cross-check with brute force.
                let mut found = false;
                for bits in 0..(1u32 << n) {
                    let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                    if f.eval(&a) {
                        found = true;
                        break;
                    }
                }
                assert!(!found, "solver claimed UNSAT on a satisfiable formula");
            }
        }
    }
}
