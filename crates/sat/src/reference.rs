//! The pre-watched-literal solver core, retained as a reference.
//!
//! These are the original full-rescan implementations that shipped before
//! [`crate::ctx::SolverCtx`]: unit propagation re-evaluates every clause
//! per fixpoint pass, the enumerator clones the assignment at every DFS
//! node, and the branch heuristic builds a `HashMap` per decision. They
//! are kept — unoptimized on purpose — for two jobs:
//!
//! 1. **Differential testing**: the property tests drive the
//!    watched-literal core against these on instances too large for
//!    [`crate::brute`]'s exhaustive evaluation.
//! 2. **Performance baseline**: `sat_core_bench` and the Criterion
//!    `sat_bench` report the new core's speedup as a ratio against these,
//!    so the number is measured in one run instead of across commits.
//!
//! One deliberate divergence from the historical code: the enumeration
//! cap is exact at the boundary (a formula with exactly `cap` models
//! reports `Exact(cap)`), matching the fixed semantics of the new core.
//! The historical version misreported that case as `AtLeast(cap)`.

use crate::cnf::{Cnf, Lit, Var};
use crate::enumerate::{Backbone, SolutionCensus, SolutionCount};

/// Result of unit propagation over a partial assignment.
enum Propagation {
    /// Assignment extended without conflict.
    Ok,
    /// A clause became empty: the branch is dead.
    Conflict,
}

/// Propagate unit clauses until fixpoint by rescanning every clause.
fn propagate(cnf: &Cnf, assignment: &mut [Option<bool>], trail: &mut Vec<Var>) -> Propagation {
    loop {
        let mut changed = false;
        for clause in cnf.clauses() {
            let mut satisfied = false;
            let mut unassigned: Option<Lit> = None;
            let mut n_unassigned = 0;
            for l in clause {
                match l.eval(assignment) {
                    Some(true) => {
                        satisfied = true;
                        break;
                    }
                    Some(false) => {}
                    None => {
                        n_unassigned += 1;
                        unassigned = Some(*l);
                    }
                }
            }
            if satisfied {
                continue;
            }
            match n_unassigned {
                0 => return Propagation::Conflict,
                1 => {
                    let l = unassigned.expect("counted one unassigned literal");
                    assignment[l.var.usize()] = Some(l.positive);
                    trail.push(l.var);
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return Propagation::Ok;
        }
    }
}

/// The unassigned variable occurring in the most unsatisfied clauses,
/// built with a per-call `HashMap`.
fn pick_branch_var(cnf: &Cnf, assignment: &[Option<bool>]) -> Option<Var> {
    let mut counts: std::collections::HashMap<Var, usize> = std::collections::HashMap::new();
    for clause in cnf.clauses() {
        let satisfied = clause.iter().any(|l| l.eval(assignment) == Some(true));
        if satisfied {
            continue;
        }
        for l in clause {
            if l.eval(assignment).is_none() {
                *counts.entry(l.var).or_insert(0) += 1;
            }
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v)))
        .map(|(v, _)| v)
}

/// Reference DPLL solve under assumptions; see [`crate::solver::solve_with`].
pub fn solve_with(cnf: &Cnf, assumptions: &[Lit]) -> Option<Vec<bool>> {
    let n = cnf.n_vars();
    let mut assignment: Vec<Option<bool>> = vec![None; n];
    for a in assumptions {
        match assignment[a.var.usize()] {
            Some(v) if v != a.positive => return None, // contradictory assumptions
            _ => assignment[a.var.usize()] = Some(a.positive),
        }
    }

    struct Frame {
        var: Var,
        tried_second: bool,
        trail_mark: usize,
    }
    let mut trail: Vec<Var> = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();

    if matches!(propagate(cnf, &mut assignment, &mut trail), Propagation::Conflict) {
        return None;
    }

    loop {
        match pick_branch_var(cnf, &assignment) {
            None => {
                let out: Vec<bool> = assignment.iter().map(|v| v.unwrap_or(false)).collect();
                debug_assert!(cnf.eval(&out));
                return Some(out);
            }
            Some(var) => {
                let mark = trail.len();
                assignment[var.usize()] = Some(true);
                trail.push(var);
                stack.push(Frame { var, tried_second: false, trail_mark: mark });
                loop {
                    if matches!(propagate(cnf, &mut assignment, &mut trail), Propagation::Ok) {
                        break;
                    }
                    loop {
                        match stack.pop() {
                            None => return None,
                            Some(f) => {
                                while trail.len() > f.trail_mark {
                                    let v = trail.pop().expect("trail bounded by mark");
                                    assignment[v.usize()] = None;
                                }
                                if !f.tried_second {
                                    assignment[f.var.usize()] = Some(false);
                                    trail.push(f.var);
                                    stack.push(Frame {
                                        var: f.var,
                                        tried_second: true,
                                        trail_mark: f.trail_mark,
                                    });
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Reference solve without assumptions.
pub fn solve(cnf: &Cnf) -> Option<Vec<bool>> {
    solve_with(cnf, &[])
}

/// Recursive snapshot-cloning enumeration core (cap exact at the
/// boundary: exploration continues past `count == cap` until one more
/// model proves truncation).
fn enumerate_rec(
    cnf: &Cnf,
    assignment: &mut Vec<Option<bool>>,
    count: &mut u64,
    cap: u64,
    capped: &mut bool,
) {
    if *capped {
        return;
    }
    let snapshot = assignment.clone();
    loop {
        let mut changed = false;
        for clause in cnf.clauses() {
            let mut satisfied = false;
            let mut unassigned: Option<Lit> = None;
            let mut n_un = 0;
            for l in clause {
                match l.eval(assignment) {
                    Some(true) => {
                        satisfied = true;
                        break;
                    }
                    Some(false) => {}
                    None => {
                        n_un += 1;
                        unassigned = Some(*l);
                    }
                }
            }
            if satisfied {
                continue;
            }
            match n_un {
                0 => {
                    *assignment = snapshot;
                    return; // conflict
                }
                1 => {
                    let l = unassigned.expect("single unassigned literal");
                    assignment[l.var.usize()] = Some(l.positive);
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    let branch_var = {
        let mut v: Option<Var> = None;
        'outer: for clause in cnf.clauses() {
            if clause.iter().any(|l| l.eval(assignment) == Some(true)) {
                continue;
            }
            for l in clause {
                if l.eval(assignment).is_none() {
                    v = Some(l.var);
                    break 'outer;
                }
            }
        }
        v
    };

    match branch_var {
        None => {
            let free = assignment.iter().filter(|a| a.is_none()).count() as u32;
            let block = 1u64.checked_shl(free).unwrap_or(u64::MAX);
            *count = count.saturating_add(block);
            if *count > cap {
                *count = cap;
                *capped = true;
            }
        }
        Some(v) => {
            for value in [true, false] {
                assignment[v.usize()] = Some(value);
                enumerate_rec(cnf, assignment, count, cap, capped);
                if *capped {
                    break;
                }
            }
        }
    }
    *assignment = snapshot;
}

/// Reference capped model count; see [`crate::enumerate::count_solutions`].
pub fn count_solutions(cnf: &Cnf, cap: u64) -> SolutionCount {
    assert!(cap >= 2, "a cap below 2 cannot distinguish unique from multiple");
    let n = cnf.n_vars();
    let mut assignment: Vec<Option<bool>> = vec![None; n];
    let mut count: u64 = 0;
    let mut capped = false;
    enumerate_rec(cnf, &mut assignment, &mut count, cap, &mut capped);
    if capped {
        SolutionCount::AtLeast(count)
    } else {
        SolutionCount::Exact(count)
    }
}

/// Reference exact backbone via per-variable assumption probes on cold
/// solver runs; see [`crate::enumerate::backbone`].
pub fn backbone(cnf: &Cnf) -> Option<Backbone> {
    let base = solve(cnf)?;
    let n = cnf.n_vars();
    let mut ever_true = vec![false; n];
    let mut ever_false = vec![false; n];
    for (i, v) in base.iter().enumerate() {
        if *v {
            ever_true[i] = true;
        } else {
            ever_false[i] = true;
        }
    }
    for i in 0..n {
        if !ever_true[i] && solve_with(cnf, &[Lit::pos(Var(i as u32))]).is_some() {
            ever_true[i] = true;
        }
        if !ever_false[i] && solve_with(cnf, &[Lit::neg(Var(i as u32))]).is_some() {
            ever_false[i] = true;
        }
    }
    Some(Backbone { ever_true, ever_false })
}

/// Reference census: capped count plus exact probe-based backbone; see
/// [`crate::enumerate::census`].
pub fn census(cnf: &Cnf, cap: u64) -> SolutionCensus {
    let count = count_solutions(cnf, cap);
    let backbone = backbone(cnf);
    let unique_model = if count == SolutionCount::Exact(1) {
        backbone.as_ref().map(|b| b.ever_true.clone())
    } else {
        None
    };
    SolutionCensus { count, unique_model, backbone }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Solvability;

    #[test]
    fn reference_cap_boundary_is_exact() {
        let f = Cnf::new(2); // exactly 4 models
        assert_eq!(count_solutions(&f, 4), SolutionCount::Exact(4));
        assert_eq!(count_solutions(&f, 3), SolutionCount::AtLeast(3));
    }

    #[test]
    fn reference_census_smoke() {
        let mut f = Cnf::new(3);
        f.add_positive_clause([Var(0), Var(1), Var(2)]);
        f.add_negative_facts([Var(0), Var(1)]);
        let c = census(&f, 10);
        assert_eq!(c.solvability(), Solvability::Unique);
        assert_eq!(c.unique_model, Some(vec![false, false, true]));
    }
}
