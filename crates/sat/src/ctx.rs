//! The reusable watched-literal solver context.
//!
//! [`SolverCtx`] owns every piece of mutable solver state — assignment,
//! trail, watch lists, occurrence lists, clause-satisfaction counters,
//! branch-heuristic scratch, and model-harvest buffers — as flat vectors
//! that are *rewound, never freed*. One context serves an unbounded
//! stream of instances: [`SolverCtx::attach`] re-shapes the buffers for
//! the next [`CompiledCnf`] in O(formula size) with zero steady-state
//! allocations, and every query on the attached formula (solve, probe,
//! enumerate, census) shares the warm structures.
//!
//! Core mechanics:
//!
//! * **Two-watched-literal unit propagation** — each clause of length ≥ 2
//!   watches two literals; only the watch lists of a literal that just
//!   became false are visited, replacing the old propagate-by-rescanning-
//!   every-clause fixpoint. Watches are backtrack-stable, so they persist
//!   across the thousands of assume/undo cycles a census performs.
//! * **Trail-based undo** — assignments are recorded on a trail with
//!   decision-level marks; backtracking pops the trail instead of
//!   snapshotting the assignment (the old enumerator cloned the full
//!   assignment vector at every node).
//! * **Assumption push/pop** — backbone probes push one assumption level
//!   on the warm context and pop it afterwards, so all ≤ 2n probes of a
//!   census reuse one propagated root state.
//! * **Clause-satisfaction counters** — per-clause counts of currently
//!   true literals (maintained from per-literal occurrence lists) give an
//!   O(1) "all clauses satisfied" test, which lets both the model search
//!   and the block-counting enumerator stop early and count `2^free`
//!   completions in bulk.
//! * **Epoch-stamped branch scoring** — the MOM-style branch heuristic
//!   scores variables in flat arrays invalidated by bumping an epoch,
//!   replacing the per-decision `HashMap` the old solver built.
//!
//! The enumeration cap is *exact at the boundary*: a formula with exactly
//! `cap` models reports `Exact(cap)`; `AtLeast(cap)` is returned only
//! when a `cap + 1`-th model provably exists.

use crate::cnf::{Cnf, Lit, Var};
use crate::compiled::CompiledCnf;
use crate::enumerate::{Backbone, SolutionCensus, SolutionCount};
use serde::{Deserialize, Serialize};

/// Cumulative work counters for one [`SolverCtx`] across its whole
/// lifetime (they survive [`SolverCtx::attach`], unlike the rest of the
/// context state). Plain `u64` bumps on paths that already mutate the
/// context — no atomics — so keeping them costs nothing measurable;
/// observability layers read them out via [`SolverCtx::stats`] and
/// publish deltas.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtxStats {
    /// Trail entries processed by unit propagation.
    pub propagations: u64,
    /// Decision levels undone (flips, probe pops, root rewinds).
    pub backtracks: u64,
    /// Census queries answered.
    pub censuses: u64,
    /// Models counted across all censuses (capped counts contribute the
    /// cap, and block-counted leaves contribute their whole `2^free`).
    pub census_models: u64,
}

impl CtxStats {
    /// Field-wise sum, for merging per-shard solver stats.
    pub fn merged(self, other: CtxStats) -> CtxStats {
        CtxStats {
            propagations: self.propagations + other.propagations,
            backtracks: self.backtracks + other.backtracks,
            censuses: self.censuses + other.censuses,
            census_models: self.census_models + other.census_models,
        }
    }
}

/// Dense index of a literal: `var * 2 + positive`.
#[inline]
fn code(l: Lit) -> usize {
    l.var.usize() * 2 + l.positive as usize
}

/// One branch decision in the DFS stacks (search and enumeration).
#[derive(Debug, Clone, Copy)]
struct Frame {
    var: Var,
    tried_second: bool,
}

/// A reusable solver context (see the module docs). Construct once, reuse
/// for any number of formulas; all per-instance state is rewound by
/// [`SolverCtx::attach`].
#[derive(Debug, Default)]
pub struct SolverCtx {
    n_vars: usize,
    n_clauses: usize,
    /// Context-owned copy of the clause arena. Watched literals are kept
    /// at positions 0 and 1 of each clause slice by swapping in place,
    /// which is why the context copies the arena instead of borrowing it.
    lits: Vec<Lit>,
    starts: Vec<u32>,
    /// Partial assignment (`None` = unassigned).
    assign: Vec<Option<bool>>,
    /// Assigned variables in assignment order.
    trail: Vec<Var>,
    /// Decision-level marks: `trail_lim[d]` is the trail length before
    /// level `d + 1`'s first assignment. Level 0 (root units) has no mark.
    trail_lim: Vec<u32>,
    /// Next trail position to propagate.
    prop_head: usize,
    /// `watches[code(l)]`: clauses currently watching literal `l`.
    watches: Vec<Vec<u32>>,
    /// Occurrence CSR: clauses containing literal `l` (exact polarity)
    /// are `occ[occ_starts[code(l)]..occ_starts[code(l) + 1]]`.
    occ: Vec<u32>,
    occ_starts: Vec<u32>,
    /// Per-clause count of currently-true literals.
    nsat: Vec<u32>,
    /// Clauses with `nsat == 0`; zero means every clause is satisfied.
    n_unsat: usize,
    /// Branch-heuristic scratch: `score[v]` is valid iff `stamp[v] == epoch`.
    score: Vec<u32>,
    stamp: Vec<u64>,
    epoch: u64,
    /// Shared DFS stack for search and enumeration.
    frames: Vec<Frame>,
    /// Model-harvest accumulators for backbone extraction.
    ever_true: Vec<bool>,
    ever_false: Vec<bool>,
    /// Compile target for the `*_cnf` convenience entry points, borrowed
    /// out via `mem::take` while the solve runs.
    compiled_scratch: CompiledCnf,
    /// Lifetime work counters (not rewound by `attach`).
    stats: CtxStats,
}

impl SolverCtx {
    /// Fresh, empty context.
    pub fn new() -> Self {
        SolverCtx::default()
    }

    /// Cumulative work counters over this context's lifetime.
    pub fn stats(&self) -> CtxStats {
        self.stats
    }

    /// Rewind the context onto `cnf`: copy the clause arena, rebuild
    /// occurrence and watch lists, enqueue root units, and propagate to
    /// the root fixpoint. Returns `false` when the formula is already
    /// unsatisfiable at the root (empty clause or conflicting units).
    pub fn attach(&mut self, cnf: &CompiledCnf) -> bool {
        self.n_vars = cnf.n_vars();
        self.n_clauses = cnf.n_clauses();
        self.lits.clear();
        self.lits.extend_from_slice(cnf.lits());
        self.starts.clear();
        self.starts.extend_from_slice(cnf.starts());
        self.assign.clear();
        self.assign.resize(self.n_vars, None);
        let n_codes = self.n_vars * 2;
        for w in self.watches.iter_mut().take(n_codes) {
            w.clear();
        }
        if self.watches.len() < n_codes {
            self.watches.resize_with(n_codes, Vec::new);
        }
        self.nsat.clear();
        self.nsat.resize(self.n_clauses, 0);
        self.n_unsat = self.n_clauses;
        self.trail.clear();
        self.trail_lim.clear();
        self.prop_head = 0;
        self.score.clear();
        self.score.resize(self.n_vars, 0);
        self.stamp.clear();
        self.stamp.resize(self.n_vars, 0);
        self.epoch = 0;
        self.frames.clear();
        self.ever_true.clear();
        self.ever_true.resize(self.n_vars, false);
        self.ever_false.clear();
        self.ever_false.resize(self.n_vars, false);

        // Occurrence CSR by counting sort: count codes, prefix-sum, fill
        // using `occ_starts` itself as the moving cursor, then shift back.
        self.occ_starts.clear();
        self.occ_starts.resize(n_codes + 1, 0);
        for l in &self.lits {
            self.occ_starts[code(*l) + 1] += 1;
        }
        for c in 0..n_codes {
            self.occ_starts[c + 1] += self.occ_starts[c];
        }
        self.occ.clear();
        self.occ.resize(self.lits.len(), 0);
        for ci in 0..self.n_clauses {
            let (s, e) = (self.starts[ci] as usize, self.starts[ci + 1] as usize);
            for k in s..e {
                let c = code(self.lits[k]);
                self.occ[self.occ_starts[c] as usize] = ci as u32;
                self.occ_starts[c] += 1;
            }
        }
        for c in (1..=n_codes).rev() {
            self.occ_starts[c] = self.occ_starts[c - 1];
        }
        if n_codes > 0 {
            self.occ_starts[0] = 0;
        }

        // Watches for clauses of length ≥ 2; length-0 clauses are a root
        // conflict, length-1 clauses enqueue as root units below.
        let mut has_empty = false;
        for ci in 0..self.n_clauses {
            let (s, e) = (self.starts[ci] as usize, self.starts[ci + 1] as usize);
            match e - s {
                0 => has_empty = true,
                1 => {}
                _ => {
                    self.watches[code(self.lits[s])].push(ci as u32);
                    self.watches[code(self.lits[s + 1])].push(ci as u32);
                }
            }
        }
        if has_empty {
            return false;
        }
        for ci in 0..self.n_clauses {
            let (s, e) = (self.starts[ci] as usize, self.starts[ci + 1] as usize);
            if e - s == 1 {
                let unit = self.lits[s];
                if !self.enqueue(unit) {
                    return false;
                }
            }
        }
        self.propagate()
    }

    /// Literal value under the current partial assignment.
    #[inline]
    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var.usize()].map(|v| v == l.positive)
    }

    /// Assign `l`, recording it on the trail and updating the clause
    /// satisfaction counters. Returns `false` on contradiction with the
    /// existing assignment (no state change in that case).
    fn enqueue(&mut self, l: Lit) -> bool {
        let vi = l.var.usize();
        match self.assign[vi] {
            Some(v) => v == l.positive,
            None => {
                self.assign[vi] = Some(l.positive);
                self.trail.push(l.var);
                let c = code(l);
                let (s, e) = (self.occ_starts[c] as usize, self.occ_starts[c + 1] as usize);
                for k in s..e {
                    let ci = self.occ[k] as usize;
                    self.nsat[ci] += 1;
                    if self.nsat[ci] == 1 {
                        self.n_unsat -= 1;
                    }
                }
                true
            }
        }
    }

    /// Open a new decision level.
    #[inline]
    fn push_level(&mut self) {
        self.trail_lim.push(self.trail.len() as u32);
    }

    /// Undo the topmost decision level: pop the trail to its mark,
    /// unassigning and reversing the satisfaction counters.
    fn backtrack_level(&mut self) {
        self.stats.backtracks += 1;
        let mark = self.trail_lim.pop().expect("a decision level to backtrack") as usize;
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail bounded by mark");
            let vi = v.usize();
            let val = self.assign[vi].take().expect("trail entries are assigned");
            let c = code(Lit { var: v, positive: val });
            let (s, e) = (self.occ_starts[c] as usize, self.occ_starts[c + 1] as usize);
            for k in s..e {
                let ci = self.occ[k] as usize;
                self.nsat[ci] -= 1;
                if self.nsat[ci] == 0 {
                    self.n_unsat += 1;
                }
            }
        }
        self.prop_head = self.trail.len();
    }

    /// Pop every decision level (back to the propagated root state).
    fn backtrack_to_root(&mut self) {
        while !self.trail_lim.is_empty() {
            self.backtrack_level();
        }
        self.frames.clear();
    }

    /// Two-watched-literal unit propagation from the trail head to
    /// fixpoint. Returns `false` on conflict (the trail keeps every
    /// assignment made so far, so a level pop undoes them).
    fn propagate(&mut self) -> bool {
        while self.prop_head < self.trail.len() {
            self.stats.propagations += 1;
            let v = self.trail[self.prop_head];
            self.prop_head += 1;
            let val = self.assign[v.usize()].expect("trail entries are assigned");
            // The literal that just became false; visit only its watchers.
            let fcode = code(Lit { var: v, positive: !val });
            let mut ws = std::mem::take(&mut self.watches[fcode]);
            let mut keep = 0usize;
            let mut conflict = false;
            let mut i = 0usize;
            while i < ws.len() {
                let ci = ws[i] as usize;
                i += 1;
                let s = self.starts[ci] as usize;
                // Normalize: position s+1 holds the falsified watch.
                if code(self.lits[s]) == fcode {
                    self.lits.swap(s, s + 1);
                }
                let first = self.lits[s];
                if self.value(first) == Some(true) {
                    // Clause satisfied by its other watch; keep watching.
                    ws[keep] = ci as u32;
                    keep += 1;
                    continue;
                }
                let e = self.starts[ci + 1] as usize;
                let mut moved = false;
                for k in s + 2..e {
                    if self.value(self.lits[k]) != Some(false) {
                        // Relocate the watch to a non-false literal.
                        self.lits.swap(s + 1, k);
                        self.watches[code(self.lits[s + 1])].push(ci as u32);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Every non-watched literal is false: `first` is unit (or
                // the clause conflicts). Keep the watch either way.
                ws[keep] = ci as u32;
                keep += 1;
                if !self.enqueue(first) {
                    conflict = true;
                    break;
                }
            }
            if conflict {
                // Preserve the unvisited tail of the watch list.
                while i < ws.len() {
                    ws[keep] = ws[i];
                    keep += 1;
                    i += 1;
                }
                ws.truncate(keep);
                self.watches[fcode] = ws;
                return false;
            }
            ws.truncate(keep);
            self.watches[fcode] = ws;
        }
        true
    }

    /// Flip the deepest unflipped decision to its second phase (undoing
    /// deeper levels), or pop everything and return `false` when the DFS
    /// is exhausted.
    fn flip_or_pop(&mut self) -> bool {
        loop {
            match self.frames.pop() {
                None => return false,
                Some(f) => {
                    self.backtrack_level();
                    if !f.tried_second {
                        self.frames.push(Frame { var: f.var, tried_second: true });
                        self.push_level();
                        let ok = self.enqueue(Lit::neg(f.var));
                        debug_assert!(ok, "flipped decision var cannot be assigned");
                        return true;
                    }
                }
            }
        }
    }

    /// MOM-style branch pick: the unassigned variable occurring in the
    /// most unsatisfied clauses, smallest variable on ties — identical to
    /// the old solver's heuristic, minus its per-decision `HashMap`.
    fn pick_branch(&mut self) -> Var {
        self.epoch += 1;
        let mut best: Option<(u32, Var)> = None;
        for ci in 0..self.n_clauses {
            if self.nsat[ci] != 0 {
                continue;
            }
            let (s, e) = (self.starts[ci] as usize, self.starts[ci + 1] as usize);
            for k in s..e {
                let l = self.lits[k];
                let vi = l.var.usize();
                if self.assign[vi].is_some() {
                    continue;
                }
                if self.stamp[vi] != self.epoch {
                    self.stamp[vi] = self.epoch;
                    self.score[vi] = 0;
                }
                self.score[vi] += 1;
                let c = self.score[vi];
                best = match best {
                    Some((bc, bv)) if bc > c || (bc == c && bv < l.var) => Some((bc, bv)),
                    _ => Some((c, l.var)),
                };
            }
        }
        best.expect("an unsatisfied clause always holds an unassigned literal").1
    }

    /// DPLL model search from the current (propagated, conflict-free)
    /// state. Returns `true` with the satisfying state left in place, or
    /// `false` with every decision level above the entry level popped.
    fn search(&mut self) -> bool {
        self.frames.clear();
        loop {
            while !self.propagate() {
                if !self.flip_or_pop() {
                    return false;
                }
            }
            if self.n_unsat == 0 {
                return true;
            }
            let v = self.pick_branch();
            self.frames.push(Frame { var: v, tried_second: false });
            self.push_level();
            let ok = self.enqueue(Lit::pos(v));
            debug_assert!(ok, "branch var was unassigned");
        }
    }

    /// Record the current satisfied state into the harvest accumulators.
    /// Unassigned variables stand for both polarities: with every clause
    /// satisfied, any completion of the free variables is a model.
    fn harvest(&mut self) {
        for vi in 0..self.n_vars {
            match self.assign[vi] {
                Some(true) => self.ever_true[vi] = true,
                Some(false) => self.ever_false[vi] = true,
                None => {
                    self.ever_true[vi] = true;
                    self.ever_false[vi] = true;
                }
            }
        }
    }

    /// One assumption probe on the warm context: push a level, assume
    /// `l`, search; harvest the model if satisfiable. Pops back to the
    /// root either way.
    fn probe(&mut self, l: Lit) -> bool {
        self.push_level();
        let sat = self.enqueue(l) && self.search();
        if sat {
            self.harvest();
        }
        self.backtrack_to_root();
        sat
    }

    /// Complete the harvest flags into an exact backbone with assumption
    /// probes, skipping every (variable, polarity) already witnessed by a
    /// harvested model. Each satisfiable probe harvests its whole model,
    /// often settling several later probes for free.
    fn probe_backbone(&mut self) {
        for vi in 0..self.n_vars {
            if !self.ever_true[vi] {
                self.probe(Lit::pos(Var(vi as u32)));
            }
            if !self.ever_false[vi] {
                self.probe(Lit::neg(Var(vi as u32)));
            }
        }
    }

    /// Block-counting AllSAT with a cap over the attached formula (root
    /// state must be propagated and conflict-free). Each leaf with every
    /// clause satisfied contributes `2^free` models at once and is
    /// harvested for the backbone. Returns `(count, capped)` and leaves
    /// the context at the root; `capped` is set only when a `cap + 1`-th
    /// model was proven to exist, so a count of exactly `cap` stays
    /// exact.
    fn enumerate(&mut self, cap: u64) -> (u64, bool) {
        self.frames.clear();
        let mut count = 0u64;
        loop {
            while !self.propagate() {
                if !self.flip_or_pop() {
                    return (count, false);
                }
            }
            if self.n_unsat == 0 {
                let free = (self.n_vars - self.trail.len()) as u32;
                let block = 1u64.checked_shl(free).unwrap_or(u64::MAX);
                self.harvest();
                count = count.saturating_add(block);
                if count > cap {
                    self.backtrack_to_root();
                    return (cap, true);
                }
                if !self.flip_or_pop() {
                    return (count, false);
                }
                continue;
            }
            // Branch on the first unassigned literal of the first
            // unsatisfied clause (clause order), true phase first —
            // mirroring the reference enumerator's DFS shape.
            let v = self.pick_enum_var();
            self.frames.push(Frame { var: v, tried_second: false });
            self.push_level();
            let ok = self.enqueue(Lit::pos(v));
            debug_assert!(ok, "enumeration branch var was unassigned");
        }
    }

    /// First unassigned literal of the first unsatisfied clause.
    fn pick_enum_var(&self) -> Var {
        for ci in 0..self.n_clauses {
            if self.nsat[ci] != 0 {
                continue;
            }
            let (s, e) = (self.starts[ci] as usize, self.starts[ci + 1] as usize);
            for k in s..e {
                let l = self.lits[k];
                if self.assign[l.var.usize()].is_none() {
                    return l.var;
                }
            }
        }
        unreachable!("n_unsat > 0 requires an unsatisfied clause with an unassigned literal")
    }

    /// Complete assignment from the current satisfied state; unassigned
    /// (unconstrained) variables default to `false`.
    fn extract_model(&self) -> Vec<bool> {
        self.assign.iter().map(|v| v.unwrap_or(false)).collect()
    }

    /// Solve `cnf` under `assumptions` (forced literals); a complete
    /// satisfying assignment or `None`. Equivalent to
    /// [`crate::solver::solve_with`] on the uncompiled formula.
    pub fn solve(&mut self, cnf: &CompiledCnf, assumptions: &[Lit]) -> Option<Vec<bool>> {
        if !self.attach(cnf) {
            return None;
        }
        if !assumptions.is_empty() {
            self.push_level();
            for &a in assumptions {
                if !self.enqueue(a) {
                    return None;
                }
            }
        }
        if self.search() {
            let m = self.extract_model();
            debug_assert!(m.len() == self.n_vars);
            Some(m)
        } else {
            None
        }
    }

    /// Count satisfying assignments of `cnf` up to `cap` (≥ 2). The
    /// count is exact whenever it is at or below the cap.
    pub fn count_solutions(&mut self, cnf: &CompiledCnf, cap: u64) -> SolutionCount {
        assert!(cap >= 2, "a cap below 2 cannot distinguish unique from multiple");
        if !self.attach(cnf) {
            return SolutionCount::Exact(0);
        }
        let (count, capped) = self.enumerate(cap);
        if capped {
            SolutionCount::AtLeast(count)
        } else {
            SolutionCount::Exact(count)
        }
    }

    /// Exact backbone of `cnf` (`None` when unsatisfiable): one model
    /// search seeds the harvest, assumption probes on the warm context
    /// settle the rest.
    pub fn backbone(&mut self, cnf: &CompiledCnf) -> Option<Backbone> {
        if !self.attach(cnf) {
            return None;
        }
        if !self.search() {
            return None;
        }
        self.harvest();
        self.backtrack_to_root();
        self.probe_backbone();
        Some(Backbone { ever_true: self.ever_true.clone(), ever_false: self.ever_false.clone() })
    }

    /// The full census — (possibly capped) model count, unique model,
    /// exact backbone — in one attach: the count's enumeration harvests
    /// *every* model it visits into the backbone, and only polarities no
    /// enumerated model witnessed fall back to assumption probes (none at
    /// all when enumeration completed uncapped, since it then visited the
    /// whole model set). Result-identical to [`crate::enumerate::census`].
    pub fn census(&mut self, cnf: &CompiledCnf, cap: u64) -> SolutionCensus {
        assert!(cap >= 2, "a cap below 2 cannot distinguish unique from multiple");
        self.stats.censuses += 1;
        let unsat = SolutionCensus {
            count: SolutionCount::Exact(0),
            unique_model: None,
            backbone: None,
        };
        if !self.attach(cnf) {
            return unsat;
        }
        let (count, capped) = self.enumerate(cap);
        self.stats.census_models += count;
        if count == 0 {
            return unsat;
        }
        if capped {
            // Enumeration stopped early: its harvest is a sound partial
            // backbone; probe only the unwitnessed polarities.
            self.probe_backbone();
        }
        let backbone =
            Backbone { ever_true: self.ever_true.clone(), ever_false: self.ever_false.clone() };
        let count =
            if capped { SolutionCount::AtLeast(count) } else { SolutionCount::Exact(count) };
        let unique_model = if count == SolutionCount::Exact(1) {
            // The backbone of a single-model formula IS the model.
            Some(backbone.ever_true.clone())
        } else {
            None
        };
        SolutionCensus { count, unique_model, backbone: Some(backbone) }
    }

    /// [`SolverCtx::census`] over an uncompiled [`Cnf`], compiling into a
    /// context-owned scratch [`CompiledCnf`] (no allocation in steady
    /// state).
    pub fn census_cnf(&mut self, cnf: &Cnf, cap: u64) -> SolutionCensus {
        let mut compiled = std::mem::take(&mut self.compiled_scratch);
        compiled.load_cnf(cnf);
        let out = self.census(&compiled, cap);
        self.compiled_scratch = compiled;
        out
    }

    /// [`SolverCtx::solve`] over an uncompiled [`Cnf`] via the scratch
    /// compile target.
    pub fn solve_cnf(&mut self, cnf: &Cnf, assumptions: &[Lit]) -> Option<Vec<bool>> {
        let mut compiled = std::mem::take(&mut self.compiled_scratch);
        compiled.load_cnf(cnf);
        let out = self.solve(&compiled, assumptions);
        self.compiled_scratch = compiled;
        out
    }

    /// [`SolverCtx::count_solutions`] over an uncompiled [`Cnf`] via the
    /// scratch compile target.
    pub fn count_solutions_cnf(&mut self, cnf: &Cnf, cap: u64) -> SolutionCount {
        let mut compiled = std::mem::take(&mut self.compiled_scratch);
        compiled.load_cnf(cnf);
        let out = self.count_solutions(&compiled, cap);
        self.compiled_scratch = compiled;
        out
    }

    /// [`SolverCtx::backbone`] over an uncompiled [`Cnf`] via the scratch
    /// compile target.
    pub fn backbone_cnf(&mut self, cnf: &Cnf) -> Option<Backbone> {
        let mut compiled = std::mem::take(&mut self.compiled_scratch);
        compiled.load_cnf(cnf);
        let out = self.backbone(&compiled);
        self.compiled_scratch = compiled;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Cnf, Lit, Var};
    use crate::Solvability;

    fn compiled(f: &Cnf) -> CompiledCnf {
        CompiledCnf::from_cnf(f)
    }

    #[test]
    fn empty_formula_sat_all_false() {
        let f = Cnf::new(3);
        let mut ctx = SolverCtx::new();
        assert_eq!(ctx.solve(&compiled(&f), &[]), Some(vec![false, false, false]));
    }

    #[test]
    fn unit_contradiction_unsat() {
        let mut f = Cnf::new(1);
        f.add_clause(vec![Lit::pos(Var(0))]);
        f.add_clause(vec![Lit::neg(Var(0))]);
        let mut ctx = SolverCtx::new();
        assert!(ctx.solve(&compiled(&f), &[]).is_none());
        assert_eq!(ctx.count_solutions(&compiled(&f), 4), SolutionCount::Exact(0));
        assert!(ctx.backbone(&compiled(&f)).is_none());
    }

    #[test]
    fn assumption_push_pop_reuses_root() {
        let mut f = Cnf::new(2);
        f.add_positive_clause([Var(0), Var(1)]);
        let c = compiled(&f);
        let mut ctx = SolverCtx::new();
        let m = ctx.solve(&c, &[Lit::neg(Var(0))]).unwrap();
        assert!(!m[0] && m[1]);
        assert!(ctx.solve(&c, &[Lit::neg(Var(0)), Lit::neg(Var(1))]).is_none());
        assert!(ctx.solve(&c, &[Lit::pos(Var(0)), Lit::neg(Var(0))]).is_none());
        // The same context stays reusable after contradictory assumptions.
        assert!(ctx.solve(&c, &[]).is_some());
    }

    #[test]
    fn census_matches_paper_example() {
        let mut f = Cnf::new(3);
        f.add_positive_clause([Var(0), Var(1), Var(2)]);
        f.add_negative_facts([Var(0), Var(1)]);
        let mut ctx = SolverCtx::new();
        let c = ctx.census(&compiled(&f), 10);
        assert_eq!(c.count, SolutionCount::Exact(1));
        assert_eq!(c.unique_model, Some(vec![false, false, true]));
        assert_eq!(c.solvability(), Solvability::Unique);
        let b = c.backbone.unwrap();
        assert_eq!(b.always_true(), vec![Var(2)]);
        assert_eq!(b.always_false(), vec![Var(0), Var(1)]);
    }

    #[test]
    fn cap_boundary_is_exact() {
        // Free 2-var formula: exactly 4 models.
        let f = Cnf::new(2);
        let mut ctx = SolverCtx::new();
        assert_eq!(ctx.count_solutions(&compiled(&f), 4), SolutionCount::Exact(4));
        assert_eq!(ctx.count_solutions(&compiled(&f), 3), SolutionCount::AtLeast(3));
        // 2^3 - 1 = 7 models at cap 7: exact; at cap 6: capped.
        let mut g = Cnf::new(3);
        g.add_positive_clause([Var(0), Var(1), Var(2)]);
        assert_eq!(ctx.count_solutions(&compiled(&g), 7), SolutionCount::Exact(7));
        assert_eq!(ctx.count_solutions(&compiled(&g), 6), SolutionCount::AtLeast(6));
    }

    #[test]
    fn context_reuse_across_many_instances() {
        let mut ctx = SolverCtx::new();
        for n in 1..8usize {
            let mut f = Cnf::new(n);
            f.add_positive_clause((0..n).map(|i| Var(i as u32)));
            let c = ctx.census(&compiled(&f), 1 << 10);
            assert_eq!(c.count, SolutionCount::Exact((1u64 << n) - 1), "n = {n}");
            let b = c.backbone.unwrap();
            assert!(b.ever_true.iter().all(|t| *t));
        }
    }

    #[test]
    fn stats_accumulate_across_instances() {
        let mut ctx = SolverCtx::new();
        assert_eq!(ctx.stats(), CtxStats::default());
        let mut f = Cnf::new(3);
        f.add_positive_clause([Var(0), Var(1), Var(2)]);
        let c = ctx.census(&compiled(&f), 10);
        assert_eq!(c.count, SolutionCount::Exact(7));
        let first = ctx.stats();
        assert_eq!(first.censuses, 1);
        assert_eq!(first.census_models, 7);
        assert!(first.propagations > 0, "enumeration propagates");
        assert!(first.backtracks > 0, "enumeration backtracks");
        // Counters are lifetime-cumulative: a second census adds on top.
        ctx.census(&compiled(&f), 10);
        let second = ctx.stats();
        assert_eq!(second.censuses, 2);
        assert_eq!(second.census_models, 14);
        assert!(second.propagations >= first.propagations);
        // And merge field-wise.
        let m = first.merged(second);
        assert_eq!(m.censuses, 3);
        assert_eq!(m.census_models, 21);
    }

    #[test]
    fn needs_real_backtracking() {
        let mut f = Cnf::new(3);
        let (a, b, c) = (Var(0), Var(1), Var(2));
        f.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
        f.add_clause(vec![Lit::neg(a), Lit::pos(c)]);
        f.add_clause(vec![Lit::neg(b), Lit::pos(c)]);
        f.add_clause(vec![Lit::neg(c), Lit::pos(a)]);
        f.add_clause(vec![Lit::neg(c), Lit::neg(b)]);
        let mut ctx = SolverCtx::new();
        let m = ctx.solve(&compiled(&f), &[]).unwrap();
        assert!(f.eval(&m));
        assert_eq!(m, vec![true, false, true]);
    }
}
