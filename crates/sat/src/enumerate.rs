//! Solution counting, AllSAT with a cap, and backbone extraction.
//!
//! The tomography pipeline needs (§3.2):
//!
//! * the number of satisfying assignments, bucketed as 0 / 1 / 2 / … / 5+
//!   (Figures 1 and 4) — [`count_solutions`] enumerates with a cap,
//!   counting blocks of free variables in bulk (`2^k` completions at
//!   once) so the cap is reached quickly even on wide instances;
//! * the unique model when there is exactly one — carried by
//!   [`SolutionCensus`];
//! * the set of variables that are **false in every** solution — the
//!   "definite non-censors" that shrink the candidate set (Figure 2).
//!   [`backbone`] computes this *exactly* with assumption probes rather
//!   than relying on possibly-capped enumeration.
//!
//! These free functions are one-shot conveniences over a cold
//! [`SolverCtx`]; hot paths should hold a context of their own and call
//! [`SolverCtx::census`] directly so watch lists, trails, and scratch
//! buffers are reused across instances (see the crate docs).

use crate::cnf::{Cnf, Var};
use crate::ctx::SolverCtx;
use crate::Solvability;
use serde::{Deserialize, Serialize};

/// A (possibly capped) count of satisfying assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolutionCount {
    /// The exact model count.
    Exact(u64),
    /// Enumeration stopped at the cap; the true count is `>` this.
    AtLeast(u64),
}

impl SolutionCount {
    /// Lower bound on the count.
    pub fn lower_bound(self) -> u64 {
        match self {
            SolutionCount::Exact(n) | SolutionCount::AtLeast(n) => n,
        }
    }

    /// The figure bucket: 0, 1, 2, 3, 4 map to themselves; ≥5 becomes 5.
    pub fn bucket(self) -> u8 {
        self.lower_bound().min(5) as u8
    }

    /// Solvability classification.
    pub fn solvability(self) -> Solvability {
        match self.lower_bound() {
            0 => Solvability::Unsat,
            1 => Solvability::Unique,
            _ => Solvability::Multiple,
        }
    }
}

/// Count satisfying assignments up to `cap` (≥ 2). Counting is exact
/// whenever the result is **at or below** the cap: a formula with exactly
/// `cap` models reports `Exact(cap)`, and `AtLeast(cap)` is returned only
/// when a `cap + 1`-th model provably exists.
pub fn count_solutions(cnf: &Cnf, cap: u64) -> SolutionCount {
    SolverCtx::new().count_solutions_cnf(cnf, cap)
}

/// Exact ever-true / ever-false sets, computed with assumption probes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Backbone {
    /// `ever_true[v]`: some model assigns `v = true` (a *potential censor*).
    pub ever_true: Vec<bool>,
    /// `ever_false[v]`: some model assigns `v = false`.
    pub ever_false: Vec<bool>,
}

impl Backbone {
    /// Variables true in *every* model (censors, when the instance is
    /// satisfiable).
    pub fn always_true(&self) -> Vec<Var> {
        self.ever_true
            .iter()
            .zip(&self.ever_false)
            .enumerate()
            .filter(|(_, (t, f))| **t && !**f)
            .map(|(i, _)| Var(i as u32))
            .collect()
    }

    /// Variables false in *every* model (definite non-censors).
    pub fn always_false(&self) -> Vec<Var> {
        self.ever_true
            .iter()
            .zip(&self.ever_false)
            .enumerate()
            .filter(|(_, (t, f))| !**t && **f)
            .map(|(i, _)| Var(i as u32))
            .collect()
    }
}

/// Compute the backbone (exact, at most one probe per variable per
/// polarity — probes already witnessed by a discovered model are
/// skipped). Returns `None` when the formula is unsatisfiable.
pub fn backbone(cnf: &Cnf) -> Option<Backbone> {
    SolverCtx::new().backbone_cnf(cnf)
}

/// The full census the tomography pipeline consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolutionCensus {
    /// Model count (possibly capped).
    pub count: SolutionCount,
    /// The unique model, when `count == Exact(1)`.
    pub unique_model: Option<Vec<bool>>,
    /// Exact backbone (`None` iff unsatisfiable).
    pub backbone: Option<Backbone>,
}

impl SolutionCensus {
    /// Solvability classification.
    pub fn solvability(&self) -> Solvability {
        self.count.solvability()
    }
}

/// Compute the census: count (capped), unique model, and exact backbone.
///
/// The paper's §3.1 example, end to end: the AS path X→Y→Z saw DNS
/// censorship — clause (X ∨ Y ∨ Z) = T — while a second test over X→Y
/// came back clean, which contributes unit negations ¬X ∧ ¬Y:
///
/// ```
/// use churnlab_sat::{census, Cnf, Solvability, Var};
///
/// let (x, y, z) = (Var(0), Var(1), Var(2));
/// let mut cnf = Cnf::new(3);
/// cnf.add_positive_clause([x, y, z]); // censored path
/// cnf.add_negative_facts([x, y]);     // clean path
///
/// let result = census(&cnf, 64);
/// assert_eq!(result.solvability(), Solvability::Unique);
/// // The single model names Z — and only Z — as the censor.
/// assert_eq!(result.unique_model.unwrap(), vec![false, false, true]);
/// ```
pub fn census(cnf: &Cnf, cap: u64) -> SolutionCensus {
    SolverCtx::new().census_cnf(cnf, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::cnf::Lit;
    use proptest::prelude::*;

    #[test]
    fn empty_formula_counts_all_assignments() {
        let f = Cnf::new(3);
        assert_eq!(count_solutions(&f, 100), SolutionCount::Exact(8));
    }

    #[test]
    fn unsat_counts_zero() {
        let mut f = Cnf::new(1);
        f.add_clause(vec![Lit::pos(Var(0))]);
        f.add_clause(vec![Lit::neg(Var(0))]);
        assert_eq!(count_solutions(&f, 10), SolutionCount::Exact(0));
        assert!(backbone(&f).is_none());
        let c = census(&f, 10);
        assert_eq!(c.solvability(), Solvability::Unsat);
        assert!(c.unique_model.is_none());
    }

    #[test]
    fn forced_model_counts_one() {
        let mut f = Cnf::new(3);
        f.add_positive_clause([Var(0), Var(1), Var(2)]);
        f.add_negative_facts([Var(0), Var(1)]);
        let c = census(&f, 10);
        assert_eq!(c.count, SolutionCount::Exact(1));
        assert_eq!(c.unique_model, Some(vec![false, false, true]));
        assert_eq!(c.solvability(), Solvability::Unique);
        let b = c.backbone.unwrap();
        assert_eq!(b.always_true(), vec![Var(2)]);
        assert_eq!(b.always_false(), vec![Var(0), Var(1)]);
    }

    #[test]
    fn single_positive_clause_counts_2n_minus_1() {
        let mut f = Cnf::new(3);
        f.add_positive_clause([Var(0), Var(1), Var(2)]);
        assert_eq!(count_solutions(&f, 100), SolutionCount::Exact(7));
        let b = backbone(&f).unwrap();
        assert!(b.ever_true.iter().all(|t| *t), "every var can censor");
        assert!(b.always_false().is_empty());
        assert!(b.always_true().is_empty());
    }

    #[test]
    fn cap_reported_as_lower_bound() {
        let f = Cnf::new(20); // 2^20 models
        let c = count_solutions(&f, 64);
        assert_eq!(c, SolutionCount::AtLeast(64));
        assert_eq!(c.bucket(), 5);
        assert_eq!(c.solvability(), Solvability::Multiple);
    }

    /// Regression for the cap-boundary bug: a model count of exactly
    /// `cap` used to be misreported as `AtLeast(cap)` because re-entering
    /// the enumerator with `count == cap` set the capped flag even though
    /// no model was ever dropped. The count is exact at the boundary and
    /// capped one past it.
    #[test]
    fn count_equal_to_cap_is_exact() {
        // Free formula over 3 vars: exactly 8 models.
        let f = Cnf::new(3);
        assert_eq!(count_solutions(&f, 8), SolutionCount::Exact(8));
        assert_eq!(count_solutions(&f, 7), SolutionCount::AtLeast(7));
        assert_eq!(count_solutions(&f, 9), SolutionCount::Exact(8));
        // Constrained instance: (v0∨v1∨v2) has exactly 7 models.
        let mut g = Cnf::new(3);
        g.add_positive_clause([Var(0), Var(1), Var(2)]);
        assert_eq!(count_solutions(&g, 7), SolutionCount::Exact(7));
        assert_eq!(count_solutions(&g, 6), SolutionCount::AtLeast(6));
        // The census agrees, and its solvability stays Multiple.
        let c = census(&g, 7);
        assert_eq!(c.count, SolutionCount::Exact(7));
        assert_eq!(c.solvability(), Solvability::Multiple);
    }

    #[test]
    fn buckets() {
        assert_eq!(SolutionCount::Exact(0).bucket(), 0);
        assert_eq!(SolutionCount::Exact(1).bucket(), 1);
        assert_eq!(SolutionCount::Exact(4).bucket(), 4);
        assert_eq!(SolutionCount::Exact(9).bucket(), 5);
        assert_eq!(SolutionCount::AtLeast(64).bucket(), 5);
    }

    #[test]
    fn elimination_semantics_match_paper() {
        // Two censored paths sharing AS 1, plus a clean path over AS 0:
        // (0∨1) ∧ (1∨2) ∧ ¬0 ⇒ 1 is forced true, 2 free: models are
        // {1}, {1,2} → count 2, ever_true = {1, 2}, always_false = {0}.
        let mut f = Cnf::new(3);
        f.add_positive_clause([Var(0), Var(1)]);
        f.add_positive_clause([Var(1), Var(2)]);
        f.add_negative_facts([Var(0)]);
        let c = census(&f, 100);
        assert_eq!(c.count, SolutionCount::Exact(2));
        let b = c.backbone.unwrap();
        assert_eq!(b.always_false(), vec![Var(0)]);
        assert_eq!(b.always_true(), vec![Var(1)]);
        assert!(b.ever_true[2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_count_matches_brute_force(
            n in 1usize..10,
            clauses in proptest::collection::vec(
                proptest::collection::vec((0u32..10, any::<bool>()), 1..4),
                0..12,
            ),
        ) {
            let mut f = Cnf::new(n);
            for c in clauses {
                let lits: Vec<Lit> = c
                    .into_iter()
                    .map(|(v, p)| Lit { var: Var(v % n as u32), positive: p })
                    .collect();
                f.add_clause(lits);
            }
            let expected = brute::count(&f);
            prop_assert_eq!(count_solutions(&f, 1u64 << 12), SolutionCount::Exact(expected));
            // Backbone agreement.
            match (backbone(&f), brute::backbone(&f)) {
                (None, None) => {}
                (Some(b), Some(bb)) => {
                    prop_assert_eq!(b.ever_true, bb.ever_true);
                    prop_assert_eq!(b.ever_false, bb.ever_false);
                }
                (a, b) => prop_assert!(false, "backbone disagreement: {:?} vs {:?}", a.is_some(), b.is_some()),
            }
        }

        #[test]
        fn prop_unique_model_is_a_model(
            n in 1usize..8,
            clauses in proptest::collection::vec(
                proptest::collection::vec((0u32..8, any::<bool>()), 1..3),
                0..10,
            ),
        ) {
            let mut f = Cnf::new(n);
            for c in clauses {
                let lits: Vec<Lit> = c
                    .into_iter()
                    .map(|(v, p)| Lit { var: Var(v % n as u32), positive: p })
                    .collect();
                f.add_clause(lits);
            }
            let c = census(&f, 64);
            if let Some(m) = &c.unique_model {
                prop_assert!(f.eval(m));
                prop_assert_eq!(c.count, SolutionCount::Exact(1));
            }
        }
    }
}
