//! CNF formulas: variables, literals, clauses, DIMACS interop.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A propositional variable, 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Var(pub u32);

impl Var {
    /// Index for array access.
    #[inline]
    pub fn usize(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Lit {
    /// The variable.
    pub var: Var,
    /// True for the positive literal `x`, false for `¬x`.
    pub positive: bool,
}

impl Lit {
    /// Positive literal of `var`.
    pub fn pos(var: Var) -> Lit {
        Lit { var, positive: true }
    }

    /// Negative literal of `var`.
    pub fn neg(var: Var) -> Lit {
        Lit { var, positive: false }
    }

    /// The opposite literal.
    pub fn negated(self) -> Lit {
        Lit { var: self.var, positive: !self.positive }
    }

    /// Evaluate under a (partial) assignment; `None` if unassigned.
    pub fn eval(self, assignment: &[Option<bool>]) -> Option<bool> {
        assignment[self.var.usize()].map(|v| v == self.positive)
    }
}

/// A disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF formula: conjunction of clauses over `n_vars` variables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cnf {
    n_vars: usize,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// Empty formula (trivially satisfiable) over `n_vars` variables.
    pub fn new(n_vars: usize) -> Self {
        Cnf { n_vars, clauses: Vec::new() }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of clauses.
    pub fn n_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Add a clause. Panics if a literal references a variable outside the
    /// formula; deduplicates repeated literals inside the clause.
    /// Tautological clauses (x ∨ ¬x ∨ …) are dropped.
    pub fn add_clause(&mut self, mut clause: Clause) {
        for l in &clause {
            assert!(l.var.usize() < self.n_vars, "literal {:?} out of range", l);
        }
        // Clauses of length ≤ 1 are canonical already: skip the
        // sort/dedup/tautology sweep (unit negations dominate tomography
        // instances, so this is the common case).
        if clause.len() > 1 {
            clause.sort();
            clause.dedup();
            if clause.windows(2).any(|w| w[0].var == w[1].var) {
                return; // tautology
            }
        }
        self.clauses.push(clause);
    }

    /// Add the positive clause `(v1 ∨ v2 ∨ …)` — a measurement that
    /// *observed* the anomaly on a path (§3.1).
    pub fn add_positive_clause(&mut self, vars: impl IntoIterator<Item = Var>) {
        self.add_clause(vars.into_iter().map(Lit::pos).collect());
    }

    /// Add unit negative clauses `¬v1, ¬v2, …` — a clean measurement
    /// asserts every AS on the path is not the censor. Unit clauses need
    /// no canonicalization, so this pushes them directly (reserving from
    /// the iterator's size hint) instead of paying [`Cnf::add_clause`]'s
    /// sort/dedup path per AS.
    pub fn add_negative_facts(&mut self, vars: impl IntoIterator<Item = Var>) {
        let vars = vars.into_iter();
        self.clauses.reserve(vars.size_hint().0);
        for v in vars {
            assert!(v.usize() < self.n_vars, "variable {:?} out of range", v);
            self.clauses.push(vec![Lit::neg(v)]);
        }
    }

    /// Evaluate the formula under a complete assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.n_vars);
        self.clauses.iter().all(|c| {
            c.iter().any(|l| assignment[l.var.usize()] == l.positive)
        })
    }

    /// Export in DIMACS CNF format (1-based, negatives as `-v`).
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.n_vars, self.clauses.len());
        for c in &self.clauses {
            for l in c {
                let v = l.var.0 as i64 + 1;
                let _ = write!(out, "{} ", if l.positive { v } else { -v });
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Parse DIMACS CNF (accepts `c` comment lines and whitespace).
    pub fn from_dimacs(text: &str) -> Result<Cnf, DimacsError> {
        let mut cnf: Option<Cnf> = None;
        let mut declared_clauses = 0usize;
        let mut current: Clause = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if line.starts_with('p') {
                if cnf.is_some() {
                    return Err(DimacsError::new(lineno, "duplicate problem line"));
                }
                let parts: Vec<&str> = line.split_whitespace().collect();
                if parts.len() != 4 || parts[1] != "cnf" {
                    return Err(DimacsError::new(lineno, "malformed problem line"));
                }
                let n_vars: usize =
                    parts[2].parse().map_err(|_| DimacsError::new(lineno, "bad var count"))?;
                declared_clauses =
                    parts[3].parse().map_err(|_| DimacsError::new(lineno, "bad clause count"))?;
                cnf = Some(Cnf::new(n_vars));
                continue;
            }
            let cnf_ref = cnf.as_mut().ok_or(DimacsError::new(lineno, "clause before p line"))?;
            for tok in line.split_whitespace() {
                let v: i64 = tok.parse().map_err(|_| DimacsError::new(lineno, "bad literal"))?;
                if v == 0 {
                    cnf_ref.add_clause(std::mem::take(&mut current));
                } else {
                    let var = v.unsigned_abs() as usize - 1;
                    if var >= cnf_ref.n_vars {
                        return Err(DimacsError::new(lineno, "literal out of range"));
                    }
                    current.push(Lit { var: Var(var as u32), positive: v > 0 });
                }
            }
        }
        let cnf = cnf.ok_or(DimacsError::new(0, "missing problem line"))?;
        if !current.is_empty() {
            return Err(DimacsError::new(0, "unterminated final clause"));
        }
        // Clause-count mismatches are tolerated (tautologies get dropped on
        // insert), but wildly missing clauses indicate truncation.
        if cnf.n_clauses() > declared_clauses {
            return Err(DimacsError::new(0, "more clauses than declared"));
        }
        Ok(cnf)
    }
}

/// DIMACS parse error with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    /// 0-based line number (0 also used for end-of-input errors).
    pub line: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl DimacsError {
    fn new(line: usize, message: &'static str) -> Self {
        DimacsError { line, message }
    }
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dimacs parse error at line {}: {}", self.line + 1, self.message)
    }
}

impl std::error::Error for DimacsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_eval() {
        let mut f = Cnf::new(3);
        f.add_positive_clause([Var(0), Var(1), Var(2)]);
        f.add_negative_facts([Var(1)]);
        assert!(f.eval(&[true, false, false]));
        assert!(f.eval(&[false, false, true]));
        assert!(!f.eval(&[false, false, false]));
        assert!(!f.eval(&[true, true, false])); // violates ¬v1
    }

    #[test]
    fn tautologies_dropped_duplicates_merged() {
        let mut f = Cnf::new(2);
        f.add_clause(vec![Lit::pos(Var(0)), Lit::neg(Var(0))]);
        assert_eq!(f.n_clauses(), 0, "tautology must be dropped");
        f.add_clause(vec![Lit::pos(Var(1)), Lit::pos(Var(1))]);
        assert_eq!(f.clauses()[0].len(), 1, "duplicate literal must merge");
    }

    #[test]
    #[should_panic]
    fn out_of_range_literal_panics() {
        let mut f = Cnf::new(1);
        f.add_positive_clause([Var(5)]);
    }

    #[test]
    fn dimacs_roundtrip() {
        let mut f = Cnf::new(4);
        f.add_positive_clause([Var(0), Var(2)]);
        f.add_negative_facts([Var(1), Var(3)]);
        let text = f.to_dimacs();
        let back = Cnf::from_dimacs(&text).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn dimacs_parses_comments_and_whitespace() {
        let text = "c a comment\nc another\np cnf 2 2\n 1  2 0\n-1 0\n";
        let f = Cnf::from_dimacs(text).unwrap();
        assert_eq!(f.n_vars(), 2);
        assert_eq!(f.n_clauses(), 2);
    }

    #[test]
    fn dimacs_rejects_malformed() {
        assert!(Cnf::from_dimacs("").is_err());
        assert!(Cnf::from_dimacs("p cnf x 1\n1 0\n").is_err());
        assert!(Cnf::from_dimacs("1 0\np cnf 1 1\n").is_err());
        assert!(Cnf::from_dimacs("p cnf 1 1\n2 0\n").is_err());
        assert!(Cnf::from_dimacs("p cnf 1 1\n1\n").is_err());
        assert!(Cnf::from_dimacs("p cnf 2 1\n1 0\n2 0\n").is_err());
    }

    #[test]
    fn literal_negation() {
        let l = Lit::pos(Var(3));
        assert_eq!(l.negated(), Lit::neg(Var(3)));
        assert_eq!(l.negated().negated(), l);
    }

    #[test]
    fn literal_eval_partial() {
        let a = vec![Some(true), None];
        assert_eq!(Lit::pos(Var(0)).eval(&a), Some(true));
        assert_eq!(Lit::neg(Var(0)).eval(&a), Some(false));
        assert_eq!(Lit::pos(Var(1)).eval(&a), None);
    }
}
