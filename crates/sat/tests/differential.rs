//! Differential tests: the watched-literal core vs the exhaustive brute
//! force, vs the retained full-rescan reference core, and warm vs cold
//! contexts.
//!
//! Three oracles at three scales:
//!
//! * `brute` (exhaustive evaluation) pins exact counts and backbones up
//!   to 14 variables;
//! * `reference` (the old-style census) cross-checks larger instances —
//!   up to 20 variables, mixed clause lengths, small caps so the capped
//!   paths are exercised;
//! * a warm reused [`SolverCtx`] must serialize byte-identical census
//!   results to a cold one on every instance.

use churnlab_sat::{
    brute, census, reference, solve_with, Cnf, CompiledCnf, Lit, SolutionCensus, SolverCtx, Var,
};
use proptest::prelude::*;

/// Random CNF over `n` variables from proptest-generated raw clauses.
fn build_cnf(n: usize, clauses: Vec<Vec<(u32, bool)>>) -> Cnf {
    let mut f = Cnf::new(n);
    for c in clauses {
        let lits: Vec<Lit> =
            c.into_iter().map(|(v, p)| Lit { var: Var(v % n as u32), positive: p }).collect();
        f.add_clause(lits);
    }
    f
}

/// Tomography-shaped instance: positive path clauses plus unit negations,
/// the exact clause mix the pipeline emits.
fn build_tomography(n: usize, paths: Vec<(Vec<u32>, bool)>) -> Cnf {
    let mut f = Cnf::new(n);
    for (path, censored) in paths {
        let vars = path.into_iter().map(|v| Var(v % n as u32));
        if censored {
            f.add_positive_clause(vars);
        } else {
            f.add_negative_facts(vars);
        }
    }
    f
}

fn raw_clauses(
    max_var: u32,
    max_len: usize,
    max_clauses: usize,
) -> impl Strategy<Value = Vec<Vec<(u32, bool)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..max_var, any::<bool>()), 1..max_len),
        0..max_clauses,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Against brute force (exhaustive evaluation): counts and backbones
    /// on general mixed-polarity formulas up to 14 variables.
    #[test]
    fn prop_census_matches_brute(
        n in 1usize..14,
        clauses in raw_clauses(14, 5, 16),
    ) {
        let f = build_cnf(n, clauses);
        let expected_count = brute::count(&f);
        let c = census(&f, 1 << 15);
        prop_assert_eq!(c.count.lower_bound(), expected_count);
        match (c.backbone, brute::backbone(&f)) {
            (None, None) => {}
            (Some(b), Some(bb)) => {
                prop_assert_eq!(b.ever_true, bb.ever_true);
                prop_assert_eq!(b.ever_false, bb.ever_false);
            }
            (a, b) => prop_assert!(
                false,
                "backbone disagreement: got {:?}, brute {:?}",
                a.is_some(),
                b.is_some()
            ),
        }
    }

    /// Against the old-style census on larger instances (n up to 20,
    /// mixed clause lengths) with a small cap, so both the exact and the
    /// capped reporting paths are compared.
    #[test]
    fn prop_census_matches_reference(
        n in 1usize..21,
        clauses in raw_clauses(21, 6, 24),
        cap in 2u64..40,
    ) {
        let f = build_cnf(n, clauses);
        prop_assert_eq!(census(&f, cap), reference::census(&f, cap));
    }

    /// Same comparison on tomography-shaped instances (the production
    /// clause mix: positive paths + unit negations).
    #[test]
    fn prop_tomography_census_matches_reference(
        n in 2usize..21,
        paths in proptest::collection::vec(
            (proptest::collection::vec(0u32..21, 1..7), any::<bool>()),
            1..14,
        ),
        cap in 2u64..65,
    ) {
        let f = build_tomography(n, paths);
        prop_assert_eq!(census(&f, cap), reference::census(&f, cap));
    }

    /// Assumption stacks: solving under random assumption sets agrees
    /// with the reference on satisfiability, and every model returned
    /// satisfies both the formula and the assumptions.
    #[test]
    fn prop_assumption_solving_matches_reference(
        n in 1usize..16,
        clauses in raw_clauses(16, 5, 18),
        assumptions in proptest::collection::vec((0u32..16, any::<bool>()), 0..6),
    ) {
        let f = build_cnf(n, clauses);
        let assumptions: Vec<Lit> = assumptions
            .into_iter()
            .map(|(v, p)| Lit { var: Var(v % n as u32), positive: p })
            .collect();
        let new = solve_with(&f, &assumptions);
        let old = reference::solve_with(&f, &assumptions);
        prop_assert_eq!(new.is_some(), old.is_some(), "sat/unsat disagreement");
        if let Some(m) = new {
            prop_assert!(f.eval(&m), "returned a non-model");
            for a in &assumptions {
                prop_assert_eq!(m[a.var.usize()], a.positive, "assumption violated");
            }
        }
    }

    /// A warm, reused context returns byte-identical censuses to a cold
    /// one — across a whole sequence of differently-shaped instances on
    /// the same context, with assumption probes and enumerations between.
    #[test]
    fn prop_warm_context_byte_identical_to_cold(
        instances in proptest::collection::vec(
            (2usize..18, raw_clauses(18, 5, 16), 2u64..50),
            1..6,
        ),
    ) {
        let mut warm = SolverCtx::new();
        for (n, clauses, cap) in instances {
            let f = build_cnf(n, clauses);
            let compiled = CompiledCnf::from_cnf(&f);
            let from_warm: SolutionCensus = warm.census(&compiled, cap);
            let from_cold: SolutionCensus = SolverCtx::new().census(&compiled, cap);
            let warm_bytes = serde_json::to_string(&from_warm).expect("census serializes");
            let cold_bytes = serde_json::to_string(&from_cold).expect("census serializes");
            prop_assert_eq!(warm_bytes, cold_bytes, "warm/cold census bytes differ");
        }
    }
}

/// Deterministic warm-vs-cold check on the paper's canonical instances
/// (kept non-property so a failure names the exact instance).
#[test]
fn warm_context_byte_identical_on_canonical_instances() {
    let mut warm = SolverCtx::new();
    let mut instances: Vec<Cnf> = Vec::new();
    // §3.1: censored X→Y→Z, clean X→Y ⇒ unique model {Z}.
    let mut a = Cnf::new(3);
    a.add_positive_clause([Var(0), Var(1), Var(2)]);
    a.add_negative_facts([Var(0), Var(1)]);
    instances.push(a);
    // Contradiction (policy change): unsat.
    let mut b = Cnf::new(2);
    b.add_positive_clause([Var(0), Var(1)]);
    b.add_negative_facts([Var(0), Var(1)]);
    instances.push(b);
    // No clean paths: 2^3 - 1 models, all potential censors.
    let mut c = Cnf::new(3);
    c.add_positive_clause([Var(0), Var(1), Var(2)]);
    instances.push(c);
    // Wide instance that hits the cap.
    let mut d = Cnf::new(30);
    d.add_positive_clause((0..30).map(Var));
    instances.push(d);
    for (i, f) in instances.iter().enumerate() {
        let compiled = CompiledCnf::from_cnf(f);
        let w = serde_json::to_string(&warm.census(&compiled, 64)).unwrap();
        let cold = serde_json::to_string(&SolverCtx::new().census(&compiled, 64)).unwrap();
        assert_eq!(w, cold, "instance {i}: warm census must be byte-identical to cold");
    }
}

/// The reference core keeps the fixed cap-boundary semantics too, so the
/// differential tests compare like for like.
#[test]
fn reference_and_new_agree_at_cap_boundary() {
    let mut g = Cnf::new(3);
    g.add_positive_clause([Var(0), Var(1), Var(2)]); // exactly 7 models
    for cap in [2u64, 6, 7, 8, 64] {
        assert_eq!(census(&g, cap), reference::census(&g, cap), "cap {cap}");
    }
}
