//! Solving and solution analysis (§3.2).

use crate::instance::{InstanceKey, TomographyInstance};
use churnlab_sat::{Solvability, SolverCtx, Var};
use churnlab_topology::Asn;
use serde::{Deserialize, Serialize};

/// Solving configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolveConfig {
    /// Enumeration cap for solution counting (Figure 4's histogram only
    /// needs buckets up to 5+, so a small cap suffices; backbones are
    /// computed exactly regardless).
    pub count_cap: u64,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig { count_cap: 64 }
    }
}

/// The analysed outcome of one CNF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceOutcome {
    /// Which CNF this is.
    pub key: InstanceKey,
    /// Distinct ASes in the CNF.
    pub n_vars: usize,
    /// Distinct observations (clauses before negative expansion).
    pub n_observations: usize,
    /// Positive (censored) observations.
    pub n_positive: usize,
    /// Solvability class (0 / 1 / 2+).
    pub solvability: Solvability,
    /// Solution-count bucket (0,1,2,3,4 exact; 5 = five or more).
    pub bucket: u8,
    /// Censoring ASes — True in *every* model (the whole model for unique
    /// solutions; the backbone's definite variables otherwise).
    pub censors: Vec<Asn>,
    /// Potential censors — True in some models but not all (multiple
    /// solutions only).
    pub potential_censors: Vec<Asn>,
    /// Definite non-censors — False in every model.
    pub eliminated: Vec<Asn>,
    /// Fraction of the CNF's ASes eliminated as definite non-censors
    /// (Figure 2's statistic; meaningful for 2+-solution CNFs).
    pub eliminated_frac: f64,
}

/// Solve one instance and analyse its solutions per the paper's rules,
/// with one refinement: unique ⇒ True variables are *censors*; multiple ⇒
/// variables True in *every* model (backbone-definite) are still
/// *censors*, variables True in some models but not all are *potential
/// censors*, and variables False in all models are eliminated; unsat ⇒
/// noise or policy change.
pub fn analyze(inst: &TomographyInstance, cfg: &SolveConfig) -> InstanceOutcome {
    analyze_with(inst, cfg, &mut SolverCtx::new())
}

/// [`analyze`] on a caller-owned [`SolverCtx`]: the solver's watch lists,
/// trail, and scratch buffers are rewound instead of reallocated, so a
/// loop analysing many instances (the pipeline's flush, the engine's
/// shard workers) performs no solver allocations in steady state.
pub fn analyze_with(
    inst: &TomographyInstance,
    cfg: &SolveConfig,
    ctx: &mut SolverCtx,
) -> InstanceOutcome {
    let result = ctx.census_cnf(&inst.cnf, cfg.count_cap);
    let solvability = result.solvability();
    let mut censors = Vec::new();
    let mut potential = Vec::new();
    let mut eliminated = Vec::new();
    match (&result.backbone, solvability) {
        (Some(b), Solvability::Unique) => {
            for v in b.always_true() {
                censors.push(inst.asn(v));
            }
            for v in b.always_false() {
                eliminated.push(inst.asn(v));
            }
        }
        (Some(b), Solvability::Multiple) => {
            // Even with 2+ models, a variable True in *every* model is a
            // definite censor: the observations alone pin it down, and the
            // ambiguity is confined to other ASes (typically ones an
            // alternate churned path introduced without clean-path
            // coverage). Extracting these keeps identification monotone in
            // added observations — more churn can never un-identify a
            // censor — which raw unique-model counting does not guarantee.
            for v in b.always_true() {
                censors.push(inst.asn(v));
            }
            for (i, t) in b.ever_true.iter().enumerate() {
                let asn = inst.asn(Var(i as u32));
                if *t {
                    if b.ever_false[i] {
                        potential.push(asn);
                    }
                } else {
                    eliminated.push(asn);
                }
            }
        }
        _ => {}
    }
    censors.sort();
    potential.sort();
    eliminated.sort();
    let eliminated_frac = if inst.n_vars() == 0 {
        0.0
    } else {
        eliminated.len() as f64 / inst.n_vars() as f64
    };
    InstanceOutcome {
        key: inst.key,
        n_vars: inst.n_vars(),
        n_observations: inst.observations.len(),
        n_positive: inst.n_positive(),
        solvability,
        bucket: result.count.bucket(),
        censors,
        potential_censors: potential,
        eliminated,
        eliminated_frac,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use churnlab_bgp::{Granularity, TimeWindow};
    use churnlab_platform::AnomalyType;

    fn key() -> InstanceKey {
        InstanceKey {
            url_id: 0,
            anomaly: AnomalyType::Reset,
            window: TimeWindow::of(0, Granularity::Day, 365),
        }
    }

    fn asns(v: &[u32]) -> Vec<Asn> {
        v.iter().map(|x| Asn(*x)).collect()
    }

    #[test]
    fn unique_solution_names_the_censor() {
        let mut b = InstanceBuilder::new(key());
        b.observe(&asns(&[1, 2, 3]), true);
        b.observe(&asns(&[1, 2]), false);
        let out = analyze(&b.build().unwrap(), &SolveConfig::default());
        assert_eq!(out.solvability, Solvability::Unique);
        assert_eq!(out.censors, vec![Asn(3)]);
        assert_eq!(out.eliminated, vec![Asn(1), Asn(2)]);
        assert_eq!(out.bucket, 1);
        assert!(out.potential_censors.is_empty());
    }

    #[test]
    fn multiple_solutions_give_potential_censors_and_reduction() {
        // Censored [1,2,3,4]; clean [1,2] ⇒ 3 or 4 (or both) censor:
        // potential = {3,4}, eliminated = {1,2} (50%).
        let mut b = InstanceBuilder::new(key());
        b.observe(&asns(&[1, 2, 3, 4]), true);
        b.observe(&asns(&[1, 2]), false);
        let out = analyze(&b.build().unwrap(), &SolveConfig::default());
        assert_eq!(out.solvability, Solvability::Multiple);
        assert_eq!(out.potential_censors, vec![Asn(3), Asn(4)]);
        assert_eq!(out.eliminated, vec![Asn(1), Asn(2)]);
        assert!((out.eliminated_frac - 0.5).abs() < 1e-9);
        assert_eq!(out.bucket, 3); // models: {3}, {4}, {3,4}
        assert!(out.censors.is_empty());
    }

    #[test]
    fn contradiction_is_unsat() {
        let mut b = InstanceBuilder::new(key());
        b.observe(&asns(&[5, 6]), true);
        b.observe(&asns(&[5, 6]), false);
        let out = analyze(&b.build().unwrap(), &SolveConfig::default());
        assert_eq!(out.solvability, Solvability::Unsat);
        assert_eq!(out.bucket, 0);
        assert!(out.censors.is_empty());
        assert!(out.potential_censors.is_empty());
        assert_eq!(out.eliminated_frac, 0.0);
    }

    #[test]
    fn no_elimination_when_no_clean_paths() {
        // A lone censored path: every AS stays a potential censor — the
        // "20% of multi-solution CNFs eliminate nothing" case.
        let mut b = InstanceBuilder::new(key());
        b.observe(&asns(&[1, 2, 3]), true);
        let out = analyze(&b.build().unwrap(), &SolveConfig::default());
        assert_eq!(out.solvability, Solvability::Multiple);
        assert_eq!(out.eliminated_frac, 0.0);
        assert_eq!(out.potential_censors.len(), 3);
        assert_eq!(out.bucket, 5); // 7 models
    }

    #[test]
    fn churn_pins_down_shared_censor() {
        // Two different censored paths share only AS 9; one clean path
        // clears everything else — the paper's core mechanism.
        let mut b = InstanceBuilder::new(key());
        b.observe(&asns(&[1, 9, 3]), true);
        b.observe(&asns(&[2, 9, 4]), true);
        b.observe(&asns(&[1, 2, 3, 4]), false);
        let out = analyze(&b.build().unwrap(), &SolveConfig::default());
        assert_eq!(out.solvability, Solvability::Unique);
        assert_eq!(out.censors, vec![Asn(9)]);
    }
}
