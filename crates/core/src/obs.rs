//! The converted observation — the unit of work shared by the batch
//! [`crate::pipeline::Pipeline`] and the sharded `churnlab-engine`.
//!
//! A [`ConvertedObs`] is a [`churnlab_platform::Measurement`] that survived
//! the §3.1 elimination rules: the traceroutes collapsed to a single
//! AS-level path. It carries everything any downstream consumer needs —
//! clause formulation (`path` + `detected`), churn accounting
//! (`vp_asn`/`dest_asn`/`day`), and the total test order
//! (`day`/`vp_id`/`epoch`) that the Figure-4 first-path ablation keys on.

use churnlab_platform::{AnomalySet, Measurement};
use churnlab_topology::{Asn, Ip2AsDb};
use serde::{Deserialize, Serialize};

use crate::convert::{convert_measurement, ConversionStats};

/// Dense identifier of an interned AS path.
///
/// Path churn means the tomography grind re-sees *few distinct paths,
/// observed many times*; consumers that intern each distinct path once
/// (`churnlab-engine`'s shard-local `PathTable`) hand out a `PathId` and
/// do all downstream bookkeeping — dedup, clause storage, report cells —
/// on this `u32` instead of re-hashing the path per instance cell.
///
/// Stability guarantees, relied on across snapshot boundaries:
///
/// * ids are assigned densely from `0` in first-intern order and **never
///   reassigned** — a `PathId` resolved at one snapshot still names the
///   same path at every later snapshot of the same table;
/// * the id is only meaningful against the table (or table snapshot)
///   that issued it — ids from different shards are unrelated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PathId(pub u32);

impl PathId {
    /// The id as a usize index (dense ids double as vector indices).
    #[inline]
    pub fn usize(self) -> usize {
        self.0 as usize
    }
}

/// One converted (AS-level) observation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvertedObs {
    /// Vantage point identifier (tie-breaker inside a testing day).
    pub vp_id: u32,
    /// Vantage point AS as registered (clause + churn source key).
    pub vp_asn: Asn,
    /// URL under test.
    pub url_id: u32,
    /// Destination (hosting) AS (churn pair key).
    pub dest_asn: Asn,
    /// Simulation day of the test.
    pub day: u32,
    /// Routing epoch the test ran in.
    pub epoch: u32,
    /// The converted AS-level path, vantage AS first.
    pub path: Vec<Asn>,
    /// Anomalies detected on this test.
    pub detected: AnomalySet,
}

impl ConvertedObs {
    /// Convert a measurement, recording the outcome in `stats`. Returns
    /// `None` when one of the paper's four elimination rules discards the
    /// test.
    pub fn from_measurement(
        m: &Measurement,
        db: &Ip2AsDb,
        stats: &mut ConversionStats,
    ) -> Option<ConvertedObs> {
        let path = convert_measurement(m, db, stats)?;
        Some(ConvertedObs {
            vp_id: m.vp_id,
            vp_asn: m.vp_asn,
            url_id: m.url_id,
            dest_asn: m.dest_asn,
            day: m.day,
            epoch: m.epoch,
            path,
            detected: m.detected,
        })
    }

    /// The total order in which the platform runner performs tests within
    /// one URL: testing day, then vantage index, then routing epoch. The
    /// first-path ablation's notion of "first distinct path" is defined
    /// against this order, so an order-independent consumer can restore it
    /// by sorting.
    pub fn test_order(&self) -> (u32, u32, u32) {
        (self.day, self.vp_id, self.epoch)
    }
}
