//! Clause formulation and tomography instances (§3.1).
//!
//! One [`TomographyInstance`] corresponds to one CNF: a single URL, a
//! single anomaly type, a single time window. Every converted AS-level
//! path becomes a clause over per-AS boolean variables — asserted True
//! (the disjunction must hold: *someone* on the path censored) when the
//! anomaly was observed, or False (unit negations: nobody on the path
//! censored) when it wasn't.
//!
//! Repeated identical observations are deduplicated — they add no logical
//! content — but *contradictory* observations (the same path both True and
//! False inside one window) are kept, making the CNF unsatisfiable exactly
//! as the paper describes for policy changes and noise.

use churnlab_bgp::TimeWindow;
use churnlab_platform::AnomalyType;
use churnlab_sat::{Cnf, Var};
use churnlab_topology::Asn;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identity of one CNF. The derived ordering (URL, then anomaly, then
/// window) is the canonical report order shared by the batch pipeline and
/// the sharded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceKey {
    /// The URL under test.
    pub url_id: u32,
    /// The anomaly type this CNF localizes.
    pub anomaly: AnomalyType,
    /// The time window.
    pub window: TimeWindow,
}

/// One path observation: the ordered AS path and whether the anomaly was
/// observed on it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Observation {
    /// AS path from vantage point to destination.
    pub path: Vec<Asn>,
    /// True if the anomaly was detected.
    pub censored: bool,
}

/// Builder accumulating observations into an instance.
///
/// The paper's §3.1 formulation, runnable:
///
/// ```
/// use churnlab_bgp::{Granularity, TimeWindow};
/// use churnlab_core::instance::{InstanceBuilder, InstanceKey};
/// use churnlab_platform::AnomalyType;
/// use churnlab_sat::{census, Solvability};
/// use churnlab_topology::Asn;
///
/// let key = InstanceKey {
///     url_id: 0,
///     anomaly: AnomalyType::Dns,
///     window: TimeWindow::of(0, Granularity::Day, 365),
/// };
/// let mut b = InstanceBuilder::new(key);
/// // Censored path X→Y→Z, then churn moves the route: X→Y→W is clean.
/// b.observe(&[Asn(1), Asn(2), Asn(3)], true);
/// b.observe(&[Asn(1), Asn(2), Asn(4)], false);
/// let inst = b.build().unwrap();
/// let result = census(&inst.cnf, 64);
/// assert_eq!(result.solvability(), Solvability::Unique);
/// ```
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    key: InstanceKey,
    /// Dedup index: path → polarity bitmask (bit 0 = clean seen, bit 1 =
    /// censored seen). Keyed by owned path but probed by slice, so the
    /// frequent duplicate observation hashes once and allocates nothing.
    seen: HashMap<Vec<Asn>, u8>,
    observations: Vec<Observation>,
}

impl InstanceBuilder {
    /// Start an instance.
    pub fn new(key: InstanceKey) -> Self {
        InstanceBuilder { key, seen: HashMap::new(), observations: Vec::new() }
    }

    /// The instance identity being built.
    pub fn key(&self) -> InstanceKey {
        self.key
    }

    /// Add one observation (deduplicated on (path, truth)).
    pub fn observe(&mut self, path: &[Asn], censored: bool) {
        let bit = if censored { 2u8 } else { 1 };
        match self.seen.get_mut(path) {
            Some(mask) if *mask & bit != 0 => return,
            Some(mask) => *mask |= bit,
            None => {
                self.seen.insert(path.to_vec(), bit);
            }
        }
        self.observations.push(Observation { path: path.to_vec(), censored });
    }

    /// Number of distinct observations so far.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True if nothing observed.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// True if at least one censored (positive) observation exists.
    pub fn has_positive(&self) -> bool {
        self.observations.iter().any(|o| o.censored)
    }

    /// Finalise into a [`TomographyInstance`]. Returns `None` for an empty
    /// builder.
    pub fn build(self) -> Option<TomographyInstance> {
        if self.observations.is_empty() {
            return None;
        }
        // Stable variable numbering: first appearance order.
        let mut var_of: HashMap<Asn, Var> = HashMap::new();
        let mut asn_of: Vec<Asn> = Vec::new();
        for obs in &self.observations {
            for asn in &obs.path {
                var_of.entry(*asn).or_insert_with(|| {
                    let v = Var(asn_of.len() as u32);
                    asn_of.push(*asn);
                    v
                });
            }
        }
        let mut cnf = Cnf::new(asn_of.len());
        for obs in &self.observations {
            let vars = obs.path.iter().map(|a| var_of[a]);
            if obs.censored {
                cnf.add_positive_clause(vars);
            } else {
                // Dedup is at observation level; identical unit negations
                // from overlapping clean paths are merged by Cnf itself? No
                // — Cnf keeps duplicates across add calls; that is harmless
                // for solving but wasteful, so filter here.
                cnf.add_negative_facts(vars);
            }
        }
        Some(TomographyInstance { key: self.key, asn_of, var_of, cnf, observations: self.observations })
    }
}

/// A finalised CNF instance with its AS↔variable mapping and the ordered
/// path observations (kept for leakage analysis, which needs *positions*).
#[derive(Debug, Clone)]
pub struct TomographyInstance {
    /// Instance identity.
    pub key: InstanceKey,
    /// Variable index → ASN.
    pub asn_of: Vec<Asn>,
    /// ASN → variable.
    pub var_of: HashMap<Asn, Var>,
    /// The CNF.
    pub cnf: Cnf,
    /// The distinct observations the CNF was built from.
    pub observations: Vec<Observation>,
}

impl TomographyInstance {
    /// Number of variables (distinct ASes observed).
    pub fn n_vars(&self) -> usize {
        self.asn_of.len()
    }

    /// Number of positive (censored) observations.
    pub fn n_positive(&self) -> usize {
        self.observations.iter().filter(|o| o.censored).count()
    }

    /// Number of negative (clean) observations.
    pub fn n_negative(&self) -> usize {
        self.observations.len() - self.n_positive()
    }

    /// The ASN for a variable.
    pub fn asn(&self, v: Var) -> Asn {
        self.asn_of[v.usize()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_bgp::Granularity;
    use churnlab_sat::{census, Solvability};

    fn key() -> InstanceKey {
        InstanceKey {
            url_id: 7,
            anomaly: AnomalyType::Dns,
            window: TimeWindow::of(3, Granularity::Day, 365),
        }
    }

    fn asns(v: &[u32]) -> Vec<Asn> {
        v.iter().map(|x| Asn(*x)).collect()
    }

    #[test]
    fn paper_example_exact_identification() {
        // (X∨Y∨Z)=T with clean observations of X→Y via another URL path…
        // here: censored path [1,2,3]; clean path [1,2,4] ⇒ 3 censors.
        let mut b = InstanceBuilder::new(key());
        b.observe(&asns(&[1, 2, 3]), true);
        b.observe(&asns(&[1, 2, 4]), false);
        let inst = b.build().unwrap();
        assert_eq!(inst.n_vars(), 4);
        assert_eq!(inst.n_positive(), 1);
        assert_eq!(inst.n_negative(), 1);
        let c = census(&inst.cnf, 64);
        assert_eq!(c.solvability(), Solvability::Unique);
        let model = c.unique_model.unwrap();
        let censors: Vec<Asn> = model
            .iter()
            .enumerate()
            .filter(|(_, t)| **t)
            .map(|(i, _)| inst.asn(Var(i as u32)))
            .collect();
        assert_eq!(censors, vec![Asn(3)]);
    }

    #[test]
    fn policy_change_yields_unsat() {
        // Same path censored AND clean inside one window (§3.1's example).
        let mut b = InstanceBuilder::new(key());
        b.observe(&asns(&[1, 2, 3]), true);
        b.observe(&asns(&[1, 2, 3]), false);
        let inst = b.build().unwrap();
        assert_eq!(census(&inst.cnf, 64).solvability(), Solvability::Unsat);
    }

    #[test]
    fn no_churn_yields_many_solutions() {
        // Only one (censored) path: any non-empty subset of its ASes works.
        let mut b = InstanceBuilder::new(key());
        b.observe(&asns(&[1, 2, 3]), true);
        let inst = b.build().unwrap();
        let c = census(&inst.cnf, 64);
        assert_eq!(c.solvability(), Solvability::Multiple);
        assert_eq!(c.count.lower_bound(), 7); // 2^3 - 1
    }

    #[test]
    fn duplicates_deduplicated_contradictions_kept() {
        let mut b = InstanceBuilder::new(key());
        b.observe(&asns(&[1, 2]), true);
        b.observe(&asns(&[1, 2]), true);
        b.observe(&asns(&[1, 2]), false);
        assert_eq!(b.len(), 2, "identical observations dedup; contradiction kept");
    }

    #[test]
    fn empty_builder_builds_none() {
        assert!(InstanceBuilder::new(key()).build().is_none());
    }

    #[test]
    fn var_mapping_roundtrips() {
        let mut b = InstanceBuilder::new(key());
        b.observe(&asns(&[10, 20, 30]), true);
        let inst = b.build().unwrap();
        for (asn, var) in &inst.var_of {
            assert_eq!(inst.asn(*var), *asn);
        }
    }

    #[test]
    fn has_positive_tracks() {
        let mut b = InstanceBuilder::new(key());
        b.observe(&asns(&[1, 2]), false);
        assert!(!b.has_positive());
        b.observe(&asns(&[1, 3]), true);
        assert!(b.has_positive());
    }
}
