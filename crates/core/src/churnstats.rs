//! Measured path-churn accounting (Figure 3), memory-bounded for
//! paper-scale runs.
//!
//! Accumulates one compact record per converted measurement — the
//! (vantage point, destination) pair, the day, and a 64-bit hash of the
//! AS-level path — then computes the distinct-path distributions per
//! day/week/month/year window, plus the per-destination-class breakdown
//! the paper uses to note that churn does not differ by destination type.

use churnlab_bgp::stats::DistinctPathDist;
use churnlab_bgp::{Granularity, TimeWindow};
use churnlab_topology::{AsClass, Asn, Topology};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One compact path observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Sample {
    day: u32,
    path_hash: u64,
}

/// Streaming accumulator of per-pair path observations. Pairs are keyed
/// by the *vantage AS* — the source field the paper's measurement records
/// carry (§3.1: "the vantage point AS"). Exits of one multi-country VPN
/// provider share a registered AS while routing from entirely different
/// places, so an org's (AS, destination) pair legitimately observes
/// several distinct AS-level paths per window; that exit diversity is part
/// of the path diversity the paper's Figure 3 measures and Figure 4
/// removes.
#[derive(Debug, Clone, Default)]
pub struct ChurnAccumulator {
    per_pair: HashMap<(Asn, Asn), Vec<Sample>>,
}

/// Hash an AS path (FNV-1a over ASNs — stable across runs).
pub fn path_hash(path: &[Asn]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for a in path {
        for b in a.0.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

impl ChurnAccumulator {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one converted measurement (`vp` = the vantage AS as
    /// registered, i.e. [`churnlab_platform::Measurement::vp_asn`]).
    pub fn add(&mut self, vp: Asn, dest: Asn, day: u32, path: &[Asn]) {
        self.per_pair
            .entry((vp, dest))
            .or_default()
            .push(Sample { day, path_hash: path_hash(path) });
    }

    /// Number of (vantage, destination) pairs observed.
    pub fn n_pairs(&self) -> usize {
        self.per_pair.len()
    }

    /// Merge another accumulator into this one (shard fan-in). URL-keyed
    /// sharding splits a (vantage, destination) pair's samples across
    /// shards; the per-window distinct-path sets and observation counts
    /// are unions/sums, so concatenating sample lists reproduces exactly
    /// what single-stream accumulation would have recorded.
    pub fn merge(&mut self, other: ChurnAccumulator) {
        for (pair, samples) in other.per_pair {
            self.per_pair.entry(pair).or_default().extend(samples);
        }
    }

    /// Distinct-path distributions at the given granularities. A (pair,
    /// window) combo participates only when observed at least twice
    /// (churn is unobservable from a single measurement).
    pub fn distributions(
        &self,
        granularities: &[Granularity],
        total_days: u32,
    ) -> Vec<DistinctPathDist> {
        self.distributions_filtered(granularities, total_days, |_| true)
    }

    /// Like [`ChurnAccumulator::distributions`], restricted to pairs whose
    /// destination satisfies `keep` (used for the by-destination-class
    /// breakdown).
    pub fn distributions_filtered(
        &self,
        granularities: &[Granularity],
        total_days: u32,
        keep: impl Fn(Asn) -> bool,
    ) -> Vec<DistinctPathDist> {
        granularities
            .iter()
            .map(|&g| {
                let mut buckets = [0u64; 5];
                let mut total = 0u64;
                for ((_, dest), samples) in &self.per_pair {
                    if !keep(*dest) {
                        continue;
                    }
                    let mut windows: HashMap<TimeWindow, (HashSet<u64>, u32)> = HashMap::new();
                    for s in samples {
                        let w = TimeWindow::of(s.day, g, total_days);
                        let e = windows.entry(w).or_default();
                        e.0.insert(s.path_hash);
                        e.1 += 1;
                    }
                    for (paths, n_obs) in windows.values() {
                        if *n_obs < 2 {
                            continue;
                        }
                        buckets[paths.len().min(5) - 1] += 1;
                        total += 1;
                    }
                }
                DistinctPathDist { granularity: g, buckets, total }
            })
            .collect()
    }

    /// Per-destination-class churn fractions at one granularity — the
    /// paper's check that content/enterprise/transit destinations churn
    /// alike.
    pub fn churn_by_dest_class(
        &self,
        topo: &Topology,
        granularity: Granularity,
        total_days: u32,
    ) -> Vec<(AsClass, f64)> {
        AsClass::ALL
            .iter()
            .map(|&class| {
                let d = self.distributions_filtered(&[granularity], total_days, |dest| {
                    topo.info_by_asn(dest).map(|i| i.class == class).unwrap_or(false)
                });
                (class, d[0].churn_fraction())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asns(v: &[u32]) -> Vec<Asn> {
        v.iter().map(|x| Asn(*x)).collect()
    }

    #[test]
    fn hash_distinguishes_paths() {
        assert_eq!(path_hash(&asns(&[1, 2, 3])), path_hash(&asns(&[1, 2, 3])));
        assert_ne!(path_hash(&asns(&[1, 2, 3])), path_hash(&asns(&[1, 3, 2])));
        assert_ne!(path_hash(&asns(&[1, 2])), path_hash(&asns(&[1, 2, 3])));
    }

    #[test]
    fn stable_pair_no_churn() {
        let mut acc = ChurnAccumulator::new();
        for d in 0..20 {
            acc.add(Asn(1), Asn(2), d, &asns(&[1, 5, 2]));
            acc.add(Asn(1), Asn(2), d, &asns(&[1, 5, 2]));
        }
        let dist = acc.distributions(&[Granularity::Day, Granularity::Year], 365);
        assert_eq!(dist[0].churn_fraction(), 0.0);
        assert_eq!(dist[1].churn_fraction(), 0.0);
    }

    #[test]
    fn churny_pair_counts() {
        let mut acc = ChurnAccumulator::new();
        acc.add(Asn(1), Asn(2), 0, &asns(&[1, 5, 2]));
        acc.add(Asn(1), Asn(2), 0, &asns(&[1, 6, 2]));
        let dist = acc.distributions(&[Granularity::Day], 365);
        assert_eq!(dist[0].buckets, [0, 1, 0, 0, 0]);
        assert_eq!(dist[0].churn_fraction(), 1.0);
    }

    #[test]
    fn single_observation_windows_skipped() {
        let mut acc = ChurnAccumulator::new();
        acc.add(Asn(1), Asn(2), 0, &asns(&[1, 2]));
        acc.add(Asn(1), Asn(2), 100, &asns(&[1, 9, 2]));
        let dist = acc.distributions(&[Granularity::Day, Granularity::Year], 365);
        assert_eq!(dist[0].total, 0, "day windows each saw one observation");
        assert_eq!(dist[1].buckets, [0, 1, 0, 0, 0], "year window sees both");
    }

    #[test]
    fn n_pairs_counts_pairs() {
        let mut acc = ChurnAccumulator::new();
        acc.add(Asn(1), Asn(2), 0, &asns(&[1, 2]));
        acc.add(Asn(1), Asn(3), 0, &asns(&[1, 3]));
        acc.add(Asn(1), Asn(2), 1, &asns(&[1, 2]));
        assert_eq!(acc.n_pairs(), 2);
    }
}
