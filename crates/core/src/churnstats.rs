//! Measured path-churn accounting (Figure 3), memory-bounded for
//! paper-scale runs — and, in windowed mode, for *unbounded* runs.
//!
//! Two storage modes share one accumulator type:
//!
//! - **Legacy** ([`ChurnAccumulator::new`]): one compact record per
//!   converted measurement — the (vantage point, destination) pair, the
//!   day, and a 64-bit hash of the AS-level path. Any granularity can be
//!   queried after the fact. This is what the batch pipeline uses; memory
//!   is proportional to the measurement count.
//! - **Windowed** ([`ChurnAccumulator::windowed`]): granularities are
//!   fixed up front and each observation folds straight into its
//!   per-(granularity × pair × window) partial — a distinct-hash set plus
//!   an observation count. Closed windows can then be *retired*: their
//!   partials collapse into per-(granularity × destination) bucket
//!   tallies ([`RetiredChurn`]) and the hashes are freed, so a
//!   run-forever engine holds only the windows still inside its lateness
//!   horizon. Distributions computed from partials + retired tallies are
//!   exactly what the legacy mode would report from the full sample set,
//!   because a window is only folded once it can receive no further
//!   observation.

use churnlab_bgp::stats::DistinctPathDist;
use churnlab_bgp::{Granularity, TimeWindow};
use churnlab_topology::{AsClass, Asn, Topology};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One compact path observation (legacy mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Sample {
    day: u32,
    path_hash: u64,
}

/// Distinct-path evidence for one still-open (granularity × pair ×
/// window) combo. Windows see few distinct paths (the paper's Figure 3
/// tops out at 5+), so a linear-scan `Vec` beats a `HashSet` here.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct WindowAgg {
    hashes: Vec<u64>,
    count: u64,
}

/// Folded distinct-path tallies of one (granularity, destination) cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnTally {
    /// Combos by distinct-path count (1, 2, 3, 4, 5+).
    pub buckets: [u64; 5],
    /// Total combos folded (with ≥2 observations).
    pub total: u64,
}

/// Bucket tallies of retired (pair × window) combos, grouped by
/// (granularity, destination AS) so the per-destination-class breakdowns
/// stay exact after the underlying hash sets are gone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetiredChurn {
    per_dest: HashMap<(Granularity, Asn), ChurnTally>,
}

impl RetiredChurn {
    /// True when nothing has been retired.
    pub fn is_empty(&self) -> bool {
        self.per_dest.is_empty()
    }

    /// Fold one closed combo with `n_paths` distinct paths.
    pub fn record(&mut self, granularity: Granularity, dest: Asn, n_paths: usize) {
        let t = self.per_dest.entry((granularity, dest)).or_default();
        t.buckets[n_paths.min(5) - 1] += 1;
        t.total += 1;
    }

    /// Sum another retired store into this one.
    pub fn merge(&mut self, other: &RetiredChurn) {
        for (&key, tally) in &other.per_dest {
            let t = self.per_dest.entry(key).or_default();
            for (a, b) in t.buckets.iter_mut().zip(tally.buckets) {
                *a += b;
            }
            t.total += tally.total;
        }
    }

    /// Sorted `(granularity, dest, tally)` rows (checkpoint encoding).
    pub fn entries_sorted(&self) -> Vec<(Granularity, Asn, ChurnTally)> {
        let mut v: Vec<_> =
            self.per_dest.iter().map(|(&(g, d), &t)| (g, d, t)).collect();
        v.sort_by_key(|&(g, d, _)| (g, d));
        v
    }

    /// Insert one row verbatim (checkpoint decoding). Sums if the cell
    /// already exists.
    pub fn insert(&mut self, granularity: Granularity, dest: Asn, tally: ChurnTally) {
        let t = self.per_dest.entry((granularity, dest)).or_default();
        for (a, b) in t.buckets.iter_mut().zip(tally.buckets) {
            *a += b;
        }
        t.total += tally.total;
    }
}

/// Windowed-mode state: live partials plus the retirement frontier.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Windowed {
    granularities: Vec<Granularity>,
    total_days: u32,
    /// Lateness horizon in days; `None` disables folding entirely.
    horizon: Option<u32>,
    /// Live (granularity, (vp, dest), window index) partials.
    partials: HashMap<(Granularity, (Asn, Asn), u32), WindowAgg>,
    /// Fold frontier: every window whose `end_day + horizon` is below
    /// this watermark has been folded (or pruned) and takes no further
    /// observations.
    folded_min_hw: u32,
    /// Tallies of folded combos (engine-side merged accumulators only;
    /// shard-local accumulators prune instead of folding).
    retired: RetiredChurn,
    /// Observations that arrived for an already-folded window and were
    /// dropped (per granularity: one measurement can be late for its day
    /// window yet land in its still-open month window).
    late_dropped: u64,
}

impl Windowed {
    /// Whether `window` of `g` is behind the fold frontier.
    fn folded(&self, g: Granularity, window: u32) -> bool {
        let Some(h) = self.horizon else { return false };
        match (TimeWindow { granularity: g, index: window }).end_day(self.total_days) {
            Some(end) => (end as u64) + (h as u64) < self.folded_min_hw as u64,
            None => false,
        }
    }
}

/// Streaming accumulator of per-pair path observations. Pairs are keyed
/// by the *vantage AS* — the source field the paper's measurement records
/// carry (§3.1: "the vantage point AS"). Exits of one multi-country VPN
/// provider share a registered AS while routing from entirely different
/// places, so an org's (AS, destination) pair legitimately observes
/// several distinct AS-level paths per window; that exit diversity is part
/// of the path diversity the paper's Figure 3 measures and Figure 4
/// removes.
#[derive(Debug, Clone, Default)]
pub struct ChurnAccumulator {
    per_pair: HashMap<(Asn, Asn), Vec<Sample>>,
    windows: Option<Windowed>,
}

/// Hash an AS path (FNV-1a over ASNs — stable across runs).
pub fn path_hash(path: &[Asn]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for a in path {
        for b in a.0.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// One windowed-mode partial, flattened for checkpoint encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnWindowEntry {
    /// CNF granularity of the window.
    pub granularity: Granularity,
    /// Vantage AS.
    pub vp: Asn,
    /// Destination AS.
    pub dest: Asn,
    /// Window index within the period.
    pub window: u32,
    /// Distinct path hashes seen (insertion order preserved).
    pub hashes: Vec<u64>,
    /// Observation count.
    pub count: u64,
}

impl ChurnAccumulator {
    /// Fresh legacy-mode accumulator (per-sample storage, arbitrary
    /// granularities queryable later).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh windowed-mode accumulator: observations fold straight into
    /// per-(granularity × pair × window) partials. Only the listed
    /// granularities can be queried afterwards. `horizon` (days) arms
    /// retirement: once a watermark passes `window end + horizon`, the
    /// window's partials may be folded ([`ChurnAccumulator::fold_closed`])
    /// or pruned ([`ChurnAccumulator::prune_closed`]) and later
    /// observations for it are dropped as late.
    pub fn windowed(granularities: &[Granularity], total_days: u32, horizon: Option<u32>) -> Self {
        ChurnAccumulator {
            per_pair: HashMap::new(),
            windows: Some(Windowed {
                granularities: granularities.to_vec(),
                total_days,
                horizon,
                partials: HashMap::new(),
                folded_min_hw: 0,
                retired: RetiredChurn::default(),
                late_dropped: 0,
            }),
        }
    }

    /// Record one converted measurement (`vp` = the vantage AS as
    /// registered, i.e. [`churnlab_platform::Measurement::vp_asn`]).
    pub fn add(&mut self, vp: Asn, dest: Asn, day: u32, path: &[Asn]) {
        let h = path_hash(path);
        match &mut self.windows {
            None => {
                self.per_pair.entry((vp, dest)).or_default().push(Sample { day, path_hash: h });
            }
            Some(w) => {
                for i in 0..w.granularities.len() {
                    let g = w.granularities[i];
                    let ix = TimeWindow::of(day, g, w.total_days).index;
                    if w.folded(g, ix) {
                        w.late_dropped += 1;
                        continue;
                    }
                    let e = w.partials.entry((g, (vp, dest), ix)).or_default();
                    if !e.hashes.contains(&h) {
                        e.hashes.push(h);
                    }
                    e.count += 1;
                }
            }
        }
    }

    /// Number of (vantage, destination) pairs with live evidence. In
    /// windowed mode, pairs whose every window has been retired no longer
    /// count (their identity was folded away by design).
    pub fn n_pairs(&self) -> usize {
        match &self.windows {
            None => self.per_pair.len(),
            Some(w) => {
                let pairs: HashSet<(Asn, Asn)> =
                    w.partials.keys().map(|&(_, pair, _)| pair).collect();
                pairs.len()
            }
        }
    }

    /// Observations dropped because their window was already folded
    /// (windowed mode; always 0 in legacy mode).
    pub fn late_dropped(&self) -> u64 {
        self.windows.as_ref().map_or(0, |w| w.late_dropped)
    }

    /// Merge another accumulator into this one (shard fan-in). URL-keyed
    /// sharding splits a (vantage, destination) pair's samples across
    /// shards; per-window distinct-path sets and observation counts are
    /// unions/sums, so merging partials (or concatenating sample lists)
    /// reproduces exactly what single-stream accumulation would have
    /// recorded. An empty legacy accumulator (the `Default`) adopts the
    /// other side's mode; otherwise modes and window configs must match.
    pub fn merge(&mut self, other: ChurnAccumulator) {
        if self.windows.is_none() && self.per_pair.is_empty() && other.windows.is_some() {
            *self = other;
            return;
        }
        match (&mut self.windows, other.windows) {
            (None, None) => {
                for (pair, samples) in other.per_pair {
                    self.per_pair.entry(pair).or_default().extend(samples);
                }
            }
            (Some(a), Some(b)) => {
                assert!(
                    a.granularities == b.granularities
                        && a.total_days == b.total_days
                        && a.horizon == b.horizon,
                    "ChurnAccumulator::merge: mismatched window configs",
                );
                for (key, agg) in b.partials {
                    let e = a.partials.entry(key).or_default();
                    for h in agg.hashes {
                        if !e.hashes.contains(&h) {
                            e.hashes.push(h);
                        }
                    }
                    e.count += agg.count;
                }
                a.folded_min_hw = a.folded_min_hw.max(b.folded_min_hw);
                a.retired.merge(&b.retired);
                a.late_dropped += b.late_dropped;
            }
            _ => panic!("ChurnAccumulator::merge: cannot merge legacy and windowed modes"),
        }
    }

    /// Adopt previously folded tallies and their frontier (the engine
    /// re-injects its persistent retired store into each merged cut so
    /// reports keep covering folded windows). Windowed mode only.
    pub fn adopt_retired(&mut self, retired: &RetiredChurn, folded_min_hw: u32) {
        let w = self.windows.as_mut().expect("adopt_retired requires windowed mode");
        w.retired.merge(retired);
        w.folded_min_hw = w.folded_min_hw.max(folded_min_hw);
    }

    /// Fold every combo whose window closed below the `min_hw` watermark
    /// (strictly: `end_day + horizon < min_hw`) into the retired tallies,
    /// freeing its hashes, and advance the fold frontier. The caller must
    /// guarantee the folded windows are *complete* — every observation
    /// that will ever legally count for them has been merged in — which
    /// is exactly what a minimum over all shard watermarks at a
    /// consistent cut guarantees. No-op without a horizon. Windowed mode
    /// only.
    pub fn fold_closed(&mut self, min_hw: u32) {
        let w = self.windows.as_mut().expect("fold_closed requires windowed mode");
        let Some(h) = w.horizon else { return };
        let total_days = w.total_days;
        let pre_frontier = w.folded_min_hw;
        let end_of = |g: Granularity, ix: u32| {
            (TimeWindow { granularity: g, index: ix }).end_day(total_days)
        };
        let closes = |g: Granularity, ix: u32| {
            end_of(g, ix).is_some_and(|end| (end as u64) + (h as u64) < min_hw as u64)
        };
        let keys: Vec<_> =
            w.partials.keys().filter(|&&(g, _, ix)| closes(g, ix)).copied().collect();
        for key in keys {
            let agg = w.partials.remove(&key).expect("key just listed");
            let (g, (_, dest), ix) = key;
            // A window already behind the adopted frontier was folded by
            // an earlier cut; these partials are a stale copy (a report
            // collected before its shard pruned) and must be discarded,
            // not folded twice.
            let stale = end_of(g, ix)
                .is_some_and(|end| (end as u64) + (h as u64) < pre_frontier as u64);
            // The ≥2-observations rule is final here: the window is
            // closed, so a combo that never reached two observations
            // never will.
            if !stale && agg.count >= 2 {
                w.retired.record(g, dest, agg.hashes.len());
            }
        }
        w.folded_min_hw = w.folded_min_hw.max(min_hw);
    }

    /// Like [`ChurnAccumulator::fold_closed`] but *discards* the closed
    /// partials instead of folding them — the shard-side half of the
    /// protocol: the engine folds the merged (global) partials once, then
    /// tells every shard to drop its local copies and late-drop anything
    /// below the frontier. Windowed mode only.
    pub fn prune_closed(&mut self, min_hw: u32) {
        let w = self.windows.as_mut().expect("prune_closed requires windowed mode");
        let Some(h) = w.horizon else { return };
        let total_days = w.total_days;
        w.partials.retain(|&(g, _, ix), _| {
            (TimeWindow { granularity: g, index: ix })
                .end_day(total_days)
                .is_none_or(|end| (end as u64) + (h as u64) >= min_hw as u64)
        });
        w.folded_min_hw = w.folded_min_hw.max(min_hw);
    }

    /// The folded tallies and fold frontier (engine checkpoint state).
    /// Windowed mode only.
    pub fn retired_state(&self) -> (&RetiredChurn, u32) {
        let w = self.windows.as_ref().expect("retired_state requires windowed mode");
        (&w.retired, w.folded_min_hw)
    }

    /// Dump windowed-mode state as sorted rows for checkpoint encoding:
    /// `(config granularities, total_days, horizon, partials, frontier,
    /// late count)`. `None` in legacy mode. The retired store is *not*
    /// included — shard accumulators never hold one (see
    /// [`ChurnAccumulator::prune_closed`]).
    #[allow(clippy::type_complexity)]
    pub fn export_windowed(
        &self,
    ) -> Option<(&[Granularity], u32, Option<u32>, Vec<ChurnWindowEntry>, u32, u64)> {
        let w = self.windows.as_ref()?;
        let mut entries: Vec<ChurnWindowEntry> = w
            .partials
            .iter()
            .map(|(&(g, (vp, dest), window), agg)| ChurnWindowEntry {
                granularity: g,
                vp,
                dest,
                window,
                hashes: agg.hashes.clone(),
                count: agg.count,
            })
            .collect();
        entries.sort_by_key(|e| (e.granularity, e.vp, e.dest, e.window));
        Some((&w.granularities, w.total_days, w.horizon, entries, w.folded_min_hw, w.late_dropped))
    }

    /// Rebuild a windowed accumulator from exported rows (checkpoint
    /// decoding). Inverse of [`ChurnAccumulator::export_windowed`].
    pub fn import_windowed(
        granularities: &[Granularity],
        total_days: u32,
        horizon: Option<u32>,
        entries: Vec<ChurnWindowEntry>,
        folded_min_hw: u32,
        late_dropped: u64,
    ) -> Self {
        let mut acc = Self::windowed(granularities, total_days, horizon);
        let w = acc.windows.as_mut().expect("just built windowed");
        for e in entries {
            let prev = w.partials.insert(
                (e.granularity, (e.vp, e.dest), e.window),
                WindowAgg { hashes: e.hashes, count: e.count },
            );
            assert!(prev.is_none(), "duplicate churn window entry in checkpoint");
        }
        w.folded_min_hw = folded_min_hw;
        w.late_dropped = late_dropped;
        acc
    }

    /// Distinct-path distributions at the given granularities. A (pair,
    /// window) combo participates only when observed at least twice
    /// (churn is unobservable from a single measurement). In windowed
    /// mode every queried granularity must be one the accumulator was
    /// built with.
    pub fn distributions(
        &self,
        granularities: &[Granularity],
        total_days: u32,
    ) -> Vec<DistinctPathDist> {
        self.distributions_filtered(granularities, total_days, |_| true)
    }

    /// Like [`ChurnAccumulator::distributions`], restricted to pairs whose
    /// destination satisfies `keep` (used for the by-destination-class
    /// breakdown).
    pub fn distributions_filtered(
        &self,
        granularities: &[Granularity],
        total_days: u32,
        keep: impl Fn(Asn) -> bool,
    ) -> Vec<DistinctPathDist> {
        match &self.windows {
            None => self.distributions_legacy(granularities, total_days, keep),
            Some(w) => granularities
                .iter()
                .map(|&g| {
                    assert!(
                        w.granularities.contains(&g),
                        "granularity {g} not configured on this windowed churn accumulator",
                    );
                    let mut buckets = [0u64; 5];
                    let mut total = 0u64;
                    for (&(pg, (_, dest), _), agg) in &w.partials {
                        if pg != g || agg.count < 2 || !keep(dest) {
                            continue;
                        }
                        buckets[agg.hashes.len().min(5) - 1] += 1;
                        total += 1;
                    }
                    for (&(rg, dest), tally) in &w.retired.per_dest {
                        if rg != g || !keep(dest) {
                            continue;
                        }
                        for (a, b) in buckets.iter_mut().zip(tally.buckets) {
                            *a += b;
                        }
                        total += tally.total;
                    }
                    DistinctPathDist { granularity: g, buckets, total }
                })
                .collect(),
        }
    }

    fn distributions_legacy(
        &self,
        granularities: &[Granularity],
        total_days: u32,
        keep: impl Fn(Asn) -> bool,
    ) -> Vec<DistinctPathDist> {
        granularities
            .iter()
            .map(|&g| {
                let mut buckets = [0u64; 5];
                let mut total = 0u64;
                for ((_, dest), samples) in &self.per_pair {
                    if !keep(*dest) {
                        continue;
                    }
                    let mut windows: HashMap<TimeWindow, (HashSet<u64>, u32)> = HashMap::new();
                    for s in samples {
                        let w = TimeWindow::of(s.day, g, total_days);
                        let e = windows.entry(w).or_default();
                        e.0.insert(s.path_hash);
                        e.1 += 1;
                    }
                    for (paths, n_obs) in windows.values() {
                        if *n_obs < 2 {
                            continue;
                        }
                        buckets[paths.len().min(5) - 1] += 1;
                        total += 1;
                    }
                }
                DistinctPathDist { granularity: g, buckets, total }
            })
            .collect()
    }

    /// Per-destination-class churn fractions at one granularity — the
    /// paper's check that content/enterprise/transit destinations churn
    /// alike.
    pub fn churn_by_dest_class(
        &self,
        topo: &Topology,
        granularity: Granularity,
        total_days: u32,
    ) -> Vec<(AsClass, f64)> {
        AsClass::ALL
            .iter()
            .map(|&class| {
                let d = self.distributions_filtered(&[granularity], total_days, |dest| {
                    topo.info_by_asn(dest).map(|i| i.class == class).unwrap_or(false)
                });
                (class, d[0].churn_fraction())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asns(v: &[u32]) -> Vec<Asn> {
        v.iter().map(|x| Asn(*x)).collect()
    }

    #[test]
    fn hash_distinguishes_paths() {
        assert_eq!(path_hash(&asns(&[1, 2, 3])), path_hash(&asns(&[1, 2, 3])));
        assert_ne!(path_hash(&asns(&[1, 2, 3])), path_hash(&asns(&[1, 3, 2])));
        assert_ne!(path_hash(&asns(&[1, 2])), path_hash(&asns(&[1, 2, 3])));
    }

    #[test]
    fn stable_pair_no_churn() {
        let mut acc = ChurnAccumulator::new();
        for d in 0..20 {
            acc.add(Asn(1), Asn(2), d, &asns(&[1, 5, 2]));
            acc.add(Asn(1), Asn(2), d, &asns(&[1, 5, 2]));
        }
        let dist = acc.distributions(&[Granularity::Day, Granularity::Year], 365);
        assert_eq!(dist[0].churn_fraction(), 0.0);
        assert_eq!(dist[1].churn_fraction(), 0.0);
    }

    #[test]
    fn churny_pair_counts() {
        let mut acc = ChurnAccumulator::new();
        acc.add(Asn(1), Asn(2), 0, &asns(&[1, 5, 2]));
        acc.add(Asn(1), Asn(2), 0, &asns(&[1, 6, 2]));
        let dist = acc.distributions(&[Granularity::Day], 365);
        assert_eq!(dist[0].buckets, [0, 1, 0, 0, 0]);
        assert_eq!(dist[0].churn_fraction(), 1.0);
    }

    #[test]
    fn single_observation_windows_skipped() {
        let mut acc = ChurnAccumulator::new();
        acc.add(Asn(1), Asn(2), 0, &asns(&[1, 2]));
        acc.add(Asn(1), Asn(2), 100, &asns(&[1, 9, 2]));
        let dist = acc.distributions(&[Granularity::Day, Granularity::Year], 365);
        assert_eq!(dist[0].total, 0, "day windows each saw one observation");
        assert_eq!(dist[1].buckets, [0, 1, 0, 0, 0], "year window sees both");
    }

    #[test]
    fn n_pairs_counts_pairs() {
        let mut acc = ChurnAccumulator::new();
        acc.add(Asn(1), Asn(2), 0, &asns(&[1, 2]));
        acc.add(Asn(1), Asn(3), 0, &asns(&[1, 3]));
        acc.add(Asn(1), Asn(2), 1, &asns(&[1, 2]));
        assert_eq!(acc.n_pairs(), 2);
    }

    /// A deterministic pseudo-random workload shared by the equivalence
    /// tests below.
    fn workload() -> Vec<(Asn, Asn, u32, Vec<Asn>)> {
        let mut out = Vec::new();
        let mut state = 0x9e37_79b9_u64;
        let mut next = move |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _ in 0..600 {
            let vp = Asn(1 + next(4) as u32);
            let dest = Asn(100 + next(5) as u32);
            let day = next(60) as u32;
            let path = asns(&[vp.0, 10 + next(3) as u32, dest.0]);
            out.push((vp, dest, day, path));
        }
        out
    }

    #[test]
    fn windowed_matches_legacy_exactly() {
        let gs = Granularity::ALL;
        let mut legacy = ChurnAccumulator::new();
        let mut windowed = ChurnAccumulator::windowed(&gs, 60, None);
        for (vp, dest, day, path) in workload() {
            legacy.add(vp, dest, day, &path);
            windowed.add(vp, dest, day, &path);
        }
        assert_eq!(legacy.distributions(&gs, 60), windowed.distributions(&gs, 60));
        assert_eq!(legacy.n_pairs(), windowed.n_pairs());
        // Filtered views agree too.
        let f = |d: Asn| d.0.is_multiple_of(2);
        assert_eq!(
            legacy.distributions_filtered(&gs, 60, f),
            windowed.distributions_filtered(&gs, 60, f),
        );
    }

    #[test]
    fn folding_preserves_distributions() {
        let gs = Granularity::ALL;
        let mut plain = ChurnAccumulator::windowed(&gs, 60, Some(3));
        let mut folding = ChurnAccumulator::windowed(&gs, 60, Some(3));
        let mut work = workload();
        work.sort_by_key(|&(_, _, day, _)| day);
        let mut hw = 0;
        for (vp, dest, day, path) in work {
            hw = hw.max(day);
            plain.add(vp, dest, day, &path);
            folding.add(vp, dest, day, &path);
            // Fold aggressively at every watermark advance: closed
            // windows collapse into retired tallies mid-stream.
            folding.fold_closed(hw);
        }
        assert!(
            !folding.retired_state().0.is_empty(),
            "the workload must actually close windows",
        );
        assert_eq!(plain.distributions(&gs, 60), folding.distributions(&gs, 60));
        assert_eq!(plain.late_dropped(), 0, "in-order feed has no late observations");
    }

    #[test]
    fn fold_then_prune_round_trip_via_merge() {
        // Engine protocol in miniature: two shards accumulate, the merge
        // folds, shards prune, more data arrives, a second merge adopts
        // the first fold's tallies — totals must match a single
        // uninterrupted accumulator.
        let gs = [Granularity::Day, Granularity::Month, Granularity::Year];
        let horizon = Some(2);
        let mut reference = ChurnAccumulator::windowed(&gs, 60, horizon);
        let mut shard = [
            ChurnAccumulator::windowed(&gs, 60, horizon),
            ChurnAccumulator::windowed(&gs, 60, horizon),
        ];
        let mut work = workload();
        work.sort_by_key(|&(_, _, day, _)| day);
        let (early, late): (Vec<_>, Vec<_>) = work.into_iter().partition(|&(_, _, d, _)| d < 30);
        for (vp, dest, day, path) in &early {
            reference.add(*vp, *dest, *day, path);
            shard[(dest.0 % 2) as usize].add(*vp, *dest, *day, path);
        }
        // First cut: merge, fold at the global watermark, prune shards.
        let min_hw = 29;
        let mut merged = ChurnAccumulator::default();
        merged.merge(shard[0].clone());
        merged.merge(shard[1].clone());
        merged.fold_closed(min_hw);
        let (retired, frontier) = {
            let (r, f) = merged.retired_state();
            (r.clone(), f)
        };
        assert!(!retired.is_empty());
        shard[0].prune_closed(min_hw);
        shard[1].prune_closed(min_hw);
        // Second half of the stream.
        for (vp, dest, day, path) in &late {
            reference.add(*vp, *dest, *day, path);
            shard[(dest.0 % 2) as usize].add(*vp, *dest, *day, path);
        }
        // Second cut re-adopts the persistent tallies.
        let mut merged = ChurnAccumulator::default();
        merged.merge(shard[0].clone());
        merged.merge(shard[1].clone());
        merged.adopt_retired(&retired, frontier);
        merged.fold_closed(59);
        assert_eq!(reference.distributions(&gs, 60), merged.distributions(&gs, 60));
    }

    #[test]
    fn stale_partials_are_not_folded_twice() {
        // Two overlapping cuts: the second one's reports predate the
        // shards' prune and still carry partials the first cut already
        // folded. Adopting the frontier must make the second fold drop
        // them instead of double-counting.
        let gs = [Granularity::Day];
        let horizon = Some(1);
        let mut shard = ChurnAccumulator::windowed(&gs, 60, horizon);
        shard.add(Asn(1), Asn(2), 0, &asns(&[1, 2]));
        shard.add(Asn(1), Asn(2), 0, &asns(&[1, 9, 2]));
        shard.add(Asn(1), Asn(2), 10, &asns(&[1, 2]));
        // Cut A folds day 0 at watermark 10.
        let mut cut_a = ChurnAccumulator::default();
        cut_a.merge(shard.clone());
        cut_a.fold_closed(10);
        let (retired, frontier) = {
            let (r, f) = cut_a.retired_state();
            (r.clone(), f)
        };
        assert_eq!(cut_a.distributions(&gs, 60)[0].buckets, [0, 1, 0, 0, 0]);
        // Cut B was collected before the shard pruned: same stale
        // partials, plus the adopted tallies from cut A.
        let mut cut_b = ChurnAccumulator::default();
        cut_b.merge(shard.clone());
        cut_b.adopt_retired(&retired, frontier);
        cut_b.fold_closed(10);
        assert_eq!(
            cut_b.distributions(&gs, 60),
            cut_a.distributions(&gs, 60),
            "stale partials must be dropped, not re-folded",
        );
    }

    #[test]
    fn late_observations_dropped_per_granularity() {
        let gs = [Granularity::Day, Granularity::Year];
        let mut acc = ChurnAccumulator::windowed(&gs, 60, Some(1));
        acc.add(Asn(1), Asn(2), 10, &asns(&[1, 2]));
        acc.prune_closed(10);
        // Day 3's day-window (end 3, +1 < 10) is folded; its year window
        // is still open — exactly one of the two granularities drops it.
        acc.add(Asn(1), Asn(2), 3, &asns(&[1, 7, 2]));
        assert_eq!(acc.late_dropped(), 1);
        let dist = acc.distributions(&gs, 60);
        assert_eq!(dist[0].total, 0, "late day-window observation dropped");
        assert_eq!(dist[1].buckets, [0, 1, 0, 0, 0], "year window kept both");
    }

    #[test]
    fn export_import_round_trip() {
        let gs = Granularity::ALL;
        let mut acc = ChurnAccumulator::windowed(&gs, 60, Some(3));
        for (vp, dest, day, path) in workload() {
            acc.add(vp, dest, day, &path);
        }
        acc.prune_closed(20);
        let (g, days, h, entries, frontier, late) = acc.export_windowed().expect("windowed");
        let back =
            ChurnAccumulator::import_windowed(g, days, h, entries.clone(), frontier, late);
        assert_eq!(acc.distributions(&gs, 60), back.distributions(&gs, 60));
        assert_eq!(acc.late_dropped(), back.late_dropped());
        let (_, _, _, entries2, frontier2, _) = back.export_windowed().expect("windowed");
        assert_eq!(entries, entries2, "export is canonical");
        assert_eq!(frontier, frontier2);
    }

    #[test]
    #[should_panic(expected = "not configured")]
    fn windowed_rejects_unconfigured_granularity() {
        let acc = ChurnAccumulator::windowed(&[Granularity::Day], 60, None);
        acc.distributions(&[Granularity::Week], 60);
    }

    #[test]
    #[should_panic(expected = "legacy and windowed")]
    fn mixed_mode_merge_rejected() {
        let mut legacy = ChurnAccumulator::new();
        legacy.add(Asn(1), Asn(2), 0, &asns(&[1, 2]));
        legacy.merge(ChurnAccumulator::windowed(&[Granularity::Day], 60, None));
    }
}
