//! Batch clause formulation for one URL's observation buffer — the §3.1
//! splitting logic shared by the streaming [`crate::pipeline::Pipeline`]
//! and the sharded `churnlab-engine` (which uses it for the deferred
//! Figure-4 first-path ablation, where "first" is only defined once the
//! whole stream is known).

use crate::instance::{InstanceBuilder, InstanceKey};
use crate::obs::ConvertedObs;
use crate::pipeline::ChurnMode;
use churnlab_bgp::{Granularity, TimeWindow};
use churnlab_platform::AnomalyType;
use churnlab_topology::Asn;
use std::collections::HashMap;

/// Apply the [`ChurnMode::FirstPathOnly`] ablation filter in place: keep
/// only observations over each *vantage AS*'s first distinct path to this
/// URL. `buffer` must be in test order ([`ConvertedObs::test_order`]) —
/// keying by the record's source field (the vantage AS, like the paper's
/// records) means a multi-exit provider's whole footprint collapses onto
/// whichever exit's path was seen first, removing exactly the AS-level
/// path diversity the paper's Figure 4 removes.
pub fn first_path_filter(buffer: &mut Vec<ConvertedObs>) {
    let mut first: HashMap<Asn, Vec<Asn>> = HashMap::new();
    buffer.retain(|o| {
        let entry = first.entry(o.vp_asn).or_insert_with(|| o.path.clone());
        *entry == o.path
    });
}

/// Non-destructive [`first_path_filter`]: return references to the kept
/// observations instead of mutating the buffer. `buffer` must be in test
/// order, exactly as for the in-place variant. Used by snapshot paths
/// (the engine's deferred Figure-4 buffers) that must keep the buffer
/// intact for later, larger snapshots.
pub fn first_path_refs(buffer: &[ConvertedObs]) -> Vec<&ConvertedObs> {
    let mut first: HashMap<Asn, &[Asn]> = HashMap::new();
    buffer
        .iter()
        .filter(|o| *first.entry(o.vp_asn).or_insert_with(|| o.path.as_slice()) == o.path)
        .collect()
}

/// Split one URL's (already churn-filtered) observation buffer into
/// instances — one per (granularity window × anomaly type) — and hand each
/// non-empty builder to `emit`, in the pipeline's deterministic order:
/// granularities in `granularities` order, windows sorted, anomalies in
/// [`AnomalyType::ALL`] order. Generic over owned (`&[ConvertedObs]`) and
/// borrowed (`&[&ConvertedObs]`) buffers so snapshot paths need not clone.
pub fn for_each_instance<T: std::borrow::Borrow<ConvertedObs>>(
    url_id: u32,
    buffer: &[T],
    granularities: &[Granularity],
    total_days: u32,
    mut emit: impl FnMut(InstanceBuilder),
) {
    for &g in granularities {
        // Group observation indices by window.
        let mut windows: HashMap<TimeWindow, Vec<usize>> = HashMap::new();
        for (i, o) in buffer.iter().enumerate() {
            windows.entry(TimeWindow::of(o.borrow().day, g, total_days)).or_default().push(i);
        }
        let mut window_keys: Vec<TimeWindow> = windows.keys().copied().collect();
        window_keys.sort();
        for w in window_keys {
            let members = &windows[&w];
            for anomaly in AnomalyType::ALL {
                let key = InstanceKey { url_id, anomaly, window: w };
                let mut builder = InstanceBuilder::new(key);
                for &i in members {
                    let o = buffer[i].borrow();
                    builder.observe(&o.path, o.detected.contains(anomaly));
                }
                if builder.is_empty() {
                    continue;
                }
                emit(builder);
            }
        }
    }
}

/// Convenience: apply the churn-mode filter, then split into instances.
/// In [`ChurnMode::FirstPathOnly`], `buffer` must be in test order (see
/// [`first_path_filter`]).
pub fn split_url_buffer(
    url_id: u32,
    mut buffer: Vec<ConvertedObs>,
    churn_mode: ChurnMode,
    granularities: &[Granularity],
    total_days: u32,
    emit: impl FnMut(InstanceBuilder),
) {
    if churn_mode == ChurnMode::FirstPathOnly {
        first_path_filter(&mut buffer);
    }
    for_each_instance(url_id, &buffer, granularities, total_days, emit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_platform::AnomalySet;

    fn obs(vp_asn: u32, day: u32, path: &[u32]) -> ConvertedObs {
        ConvertedObs {
            vp_id: vp_asn,
            vp_asn: Asn(vp_asn),
            url_id: 0,
            dest_asn: Asn(*path.last().unwrap()),
            day,
            epoch: day,
            path: path.iter().map(|a| Asn(*a)).collect(),
            detected: AnomalySet::empty(),
        }
    }

    #[test]
    fn first_path_filter_keeps_only_first_distinct_path() {
        let mut buf = vec![
            obs(1, 0, &[1, 5, 9]),
            obs(1, 1, &[1, 6, 9]), // churned away: dropped
            obs(1, 2, &[1, 5, 9]), // back on the first path: kept
            obs(2, 0, &[2, 6, 9]), // other vantage: its own first path
        ];
        first_path_filter(&mut buf);
        assert_eq!(buf.len(), 3);
        assert!(buf.iter().all(|o| o.vp_asn != Asn(1) || o.path[1] == Asn(5)));
    }

    #[test]
    fn first_path_refs_agrees_with_in_place_filter() {
        let buf = vec![
            obs(1, 0, &[1, 5, 9]),
            obs(1, 1, &[1, 6, 9]),
            obs(1, 2, &[1, 5, 9]),
            obs(2, 0, &[2, 6, 9]),
        ];
        let kept: Vec<ConvertedObs> = first_path_refs(&buf).into_iter().cloned().collect();
        let mut in_place = buf.clone();
        first_path_filter(&mut in_place);
        assert_eq!(kept, in_place, "ref filter must keep exactly what the in-place one keeps");
    }

    #[test]
    fn instances_emitted_in_deterministic_order() {
        let buf = vec![obs(1, 0, &[1, 9]), obs(1, 40, &[1, 9])];
        let mut keys = Vec::new();
        for_each_instance(7, &buf, &[Granularity::Day, Granularity::Year], 60, |b| {
            keys.push(b.key());
        });
        // 2 day windows + 1 year window, each × 5 anomaly types.
        assert_eq!(keys.len(), 15);
        assert!(keys.windows(2).all(|w| w[0] < w[1] || w[0].window != w[1].window));
        assert!(keys.iter().all(|k| k.url_id == 7));
    }
}
