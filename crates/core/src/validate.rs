//! Ground-truth validation — the check the paper could not run.
//!
//! Because churnlab's substrate is simulated, the true censor set is
//! known. We score the localization's *identified censors* (unique-solution
//! CNFs) against it:
//!
//! * **precision** — identified ∧ true / identified;
//! * **recall** — identified ∧ true / true;
//! * **observable recall** — recall against only those true censors that
//!   had a chance of being caught (they appeared on at least one censored
//!   AS path in the dataset); a censor nobody routed through is invisible
//!   to any tomography method.

use churnlab_censor::CensorshipScenario;
use churnlab_topology::Asn;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Validation scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// ASes identified as censors by unique-solution CNFs.
    pub identified: usize,
    /// Identified ASes that truly censor.
    pub true_positives: usize,
    /// Identified ASes that do not censor (noise artifacts).
    pub false_positives: usize,
    /// Ground-truth censors in the scenario.
    pub true_censors: usize,
    /// Ground-truth censors that appeared on ≥1 censored path.
    pub observable_censors: usize,
    /// Precision over identified.
    pub precision: f64,
    /// Recall over all true censors.
    pub recall: f64,
    /// Recall over observable censors only.
    pub observable_recall: f64,
}

/// Score `identified` against the scenario's ground truth.
///
/// `on_censored_path` is the set of ASes that appeared on at least one
/// positive (censored) observation — the observability horizon.
///
/// `project` maps ground-truth node ASNs to their *registered* (public)
/// ASNs ([`churnlab_topology::GeneratedWorld::public_asn`]): localization
/// operates on registry-derived AS paths, so a censoring hosting-org PoP
/// is correctly identified when the org's public ASN is named. Pass the
/// identity function for worlds without hosting orgs.
pub fn validate(
    identified: &HashSet<Asn>,
    scenario: &CensorshipScenario,
    on_censored_path: &HashSet<Asn>,
    project: impl Fn(Asn) -> Asn,
) -> ValidationReport {
    let truth: HashSet<Asn> = scenario.censoring_asns().into_iter().map(project).collect();
    let tp = identified.intersection(&truth).count();
    let fp = identified.len() - tp;
    let observable: HashSet<Asn> =
        truth.intersection(on_censored_path).copied().collect();
    let tp_observable = identified.intersection(&observable).count();
    let frac = |num: usize, den: usize| if den == 0 { 1.0 } else { num as f64 / den as f64 };
    ValidationReport {
        identified: identified.len(),
        true_positives: tp,
        false_positives: fp,
        true_censors: truth.len(),
        observable_censors: observable.len(),
        precision: frac(tp, identified.len()),
        recall: frac(tp, truth.len()),
        observable_recall: frac(tp_observable, observable.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_censor::CensorConfig;
    use churnlab_topology::{generator, WorldConfig, WorldScale};

    #[test]
    fn scoring_math() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Small, 3));
        let cfg = CensorConfig::scaled_for(w.topology.countries().len());
        let scenario = CensorshipScenario::generate(&w.topology, &cfg);
        let truth = scenario.censoring_asns();
        assert!(truth.len() >= 4);

        // Identify two true censors and one innocent AS; two of the true
        // censors are observable.
        let identified: HashSet<Asn> =
            [truth[0], truth[1], Asn(999_999_999)].into_iter().collect();
        let observable: HashSet<Asn> = [truth[0], truth[1]].into_iter().collect();
        let r = validate(&identified, &scenario, &observable, |a| a);
        assert_eq!(r.identified, 3);
        assert_eq!(r.true_positives, 2);
        assert_eq!(r.false_positives, 1);
        assert_eq!(r.observable_censors, 2);
        assert!((r.precision - 2.0 / 3.0).abs() < 1e-9);
        assert!((r.recall - 2.0 / truth.len() as f64).abs() < 1e-9);
        assert_eq!(r.observable_recall, 1.0);
    }

    #[test]
    fn empty_identification() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 3));
        let cfg = CensorConfig::scaled_for(w.topology.countries().len());
        let scenario = CensorshipScenario::generate(&w.topology, &cfg);
        let r = validate(&HashSet::new(), &scenario, &HashSet::new(), |a| a);
        assert_eq!(r.identified, 0);
        assert_eq!(r.precision, 1.0, "vacuous precision");
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.observable_recall, 1.0, "no observable censors to miss");
    }
}
