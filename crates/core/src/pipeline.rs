//! The streaming tomography pipeline: measurements in, localization out.
//!
//! Consumes the platform's measurement stream (which arrives grouped by
//! URL — the runner's documented iteration order), converts traceroutes to
//! AS paths, splits observations into (URL × window × anomaly) CNFs at
//! every configured granularity, solves and analyses each, and accumulates
//! censor findings, leakage, churn statistics, and per-instance outcomes
//! for the figures.
//!
//! [`ChurnMode::FirstPathOnly`] reproduces Figure 4's counterfactual: only
//! measurements taken over the *first observed distinct path* of each
//! (vantage, URL) pair enter the CNFs, demonstrating how solvability
//! collapses without path churn.

use crate::accumulate::FindingsAccumulator;
use crate::analyze::{analyze_with, InstanceOutcome, SolveConfig};
use crate::batch::split_url_buffer;
use crate::churnstats::ChurnAccumulator;
use crate::convert::ConversionStats;
use crate::leakage::LeakageReport;
use crate::obs::ConvertedObs;
use churnlab_bgp::Granularity;
use churnlab_platform::{AnomalyType, Measurement, Platform};
use churnlab_sat::{Solvability, SolverCtx};
use churnlab_topology::Asn;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Whether to exploit path churn (the paper's approach) or suppress it
/// (Figure 4's ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnMode {
    /// Use every converted measurement.
    Normal,
    /// Keep only measurements whose path equals the first distinct path
    /// observed for that (vantage, URL) pair.
    FirstPathOnly,
}

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// CNF granularities to build (paper: day, week, month, year).
    pub granularities: Vec<Granularity>,
    /// Solver settings.
    pub solve: SolveConfig,
    /// Only analyse CNFs containing at least one censored observation
    /// (CNFs without one have the trivial all-False unique solution and
    /// are counted separately).
    pub require_positive: bool,
    /// Churn mode (Figure 4 ablation switch).
    pub churn_mode: ChurnMode,
    /// Days in the measurement period (window bucketing).
    pub total_days: u32,
}

impl PipelineConfig {
    /// Paper defaults over a period length.
    pub fn paper(total_days: u32) -> Self {
        PipelineConfig {
            granularities: Granularity::ALL.to_vec(),
            solve: SolveConfig::default(),
            require_positive: true,
            churn_mode: ChurnMode::Normal,
            total_days,
        }
    }
}

/// How one censoring AS was identified.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CensorFinding {
    /// The AS.
    pub asn: Asn,
    /// Anomaly types through which it was identified.
    pub anomalies: BTreeSet<AnomalyType>,
    /// URL categories it was seen censoring (via the instance's URL).
    pub url_ids: BTreeSet<u32>,
    /// Number of instances naming it as a definite (backbone) censor.
    pub n_instances: u64,
}

/// The full pipeline output.
#[derive(Debug)]
pub struct PipelineResults {
    /// Per-instance outcomes (interesting instances only).
    pub outcomes: Vec<InstanceOutcome>,
    /// Traceroute-conversion statistics (elimination rules).
    pub conversion: ConversionStats,
    /// Identified censors: backbone-definite in at least one CNF (every
    /// unique-solution CNF qualifies, plus multi-solution CNFs whose
    /// models all agree on the censor).
    pub censor_findings: HashMap<Asn, CensorFinding>,
    /// Leakage analysis (CNFs with definite censors).
    pub leakage: LeakageReport,
    /// Path-churn accumulator (Figure 3 inputs).
    pub churn: ChurnAccumulator,
    /// CNFs skipped because they had no censored observation.
    pub trivial_instances: u64,
    /// ASes seen on at least one censored path (observability horizon).
    pub on_censored_path: HashSet<Asn>,
    /// The configuration used.
    pub config: PipelineConfig,
}

impl PipelineResults {
    /// Identified censoring ASNs, sorted.
    pub fn identified_censors(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.censor_findings.keys().copied().collect();
        v.sort();
        v
    }

    /// Fractions of CNFs with 0 / 1 / 2+ solutions at one granularity
    /// (Figure 1a's bars); `None` filters nothing.
    pub fn solvability_fractions(
        &self,
        granularity: Option<Granularity>,
        anomaly: Option<AnomalyType>,
    ) -> [f64; 3] {
        let mut counts = [0u64; 3];
        for o in &self.outcomes {
            if let Some(g) = granularity {
                if o.key.window.granularity != g {
                    continue;
                }
            }
            if let Some(a) = anomaly {
                if o.key.anomaly != a {
                    continue;
                }
            }
            let i = match o.solvability {
                Solvability::Unsat => 0,
                Solvability::Unique => 1,
                Solvability::Multiple => 2,
            };
            counts[i] += 1;
        }
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return [0.0; 3];
        }
        [
            counts[0] as f64 / total as f64,
            counts[1] as f64 / total as f64,
            counts[2] as f64 / total as f64,
        ]
    }

    /// Solution-count bucket fractions (0,1,2,3,4,5+) at one granularity —
    /// Figure 4's histogram.
    pub fn bucket_fractions(&self, granularity: Option<Granularity>) -> [f64; 6] {
        let mut counts = [0u64; 6];
        for o in &self.outcomes {
            if let Some(g) = granularity {
                if o.key.window.granularity != g {
                    continue;
                }
            }
            counts[o.bucket.min(5) as usize] += 1;
        }
        let total: u64 = counts.iter().sum();
        let mut out = [0.0; 6];
        if total > 0 {
            for (i, c) in counts.iter().enumerate() {
                out[i] = *c as f64 / total as f64;
            }
        }
        out
    }

    /// Candidate-set reduction values for 2+-solution CNFs (Figure 2's
    /// CDF input), sorted ascending.
    pub fn reduction_values(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.solvability == Solvability::Multiple)
            .map(|o| o.eliminated_frac)
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("fractions are finite"));
        v
    }

    /// Mean candidate-set reduction over 2+-solution CNFs (the paper's
    /// 95.2% headline).
    pub fn mean_reduction(&self) -> Option<f64> {
        let v = self.reduction_values();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }
}

/// The streaming pipeline.
pub struct Pipeline<'p> {
    db: &'p churnlab_topology::Ip2AsDb,
    topo: &'p churnlab_topology::Topology,
    cfg: PipelineConfig,
    conversion: ConversionStats,
    churn: ChurnAccumulator,
    current_url: Option<u32>,
    flushed: HashSet<u32>,
    buffer: Vec<ConvertedObs>,
    outcomes: Vec<InstanceOutcome>,
    acc: FindingsAccumulator,
    trivial: u64,
    /// Reusable solver context: every flushed instance is analysed on the
    /// same warm watch lists and scratch buffers.
    ctx: SolverCtx,
}

impl<'p> Pipeline<'p> {
    /// New pipeline over a platform (the usual entry point: interpret the
    /// platform's measurements with the platform's own degraded IP-to-AS
    /// view).
    pub fn new(platform: &'p Platform<'p>, cfg: PipelineConfig) -> Self {
        Self::with_context(
            platform.measured_ip2as(),
            &platform.world().topology,
            cfg,
        )
    }

    /// New pipeline over externally supplied context: an IP-to-AS database
    /// to interpret traceroutes with, and a topology for country lookups
    /// in the leakage analysis. This is the entry point for measurement
    /// records imported from *other* platforms (the paper: "our approach
    /// carries over to other measurement databases such as those generated
    /// by the OONI and the M-Lab platforms") — see `churnlab-interop`.
    pub fn with_context(
        db: &'p churnlab_topology::Ip2AsDb,
        topo: &'p churnlab_topology::Topology,
        cfg: PipelineConfig,
    ) -> Self {
        Pipeline {
            db,
            topo,
            cfg,
            conversion: ConversionStats::default(),
            churn: ChurnAccumulator::new(),
            current_url: None,
            flushed: HashSet::new(),
            buffer: Vec::new(),
            outcomes: Vec::new(),
            acc: FindingsAccumulator::new(),
            trivial: 0,
            ctx: SolverCtx::new(),
        }
    }

    /// Ingest one measurement. Measurements must arrive grouped by URL
    /// (the platform runner's order).
    ///
    /// # Panics
    ///
    /// Panics when the grouping contract is violated — a URL whose buffer
    /// was already flushed appears again. Silently continuing would build
    /// duplicate [`crate::instance::InstanceKey`]s from a partial buffer
    /// and corrupt every downstream statistic; order-independent feeds
    /// belong on `churnlab_engine::Engine`, which has no such contract.
    pub fn ingest(&mut self, m: &Measurement) {
        if self.current_url != Some(m.url_id) {
            assert!(
                !self.flushed.contains(&m.url_id),
                "Pipeline::ingest: URL {} re-encountered after its buffer was flushed — \
                 the measurement stream is not grouped by URL. The batch Pipeline requires \
                 the platform runner's URL-grouped order; feed unordered or concurrent \
                 streams to churnlab_engine::Engine instead.",
                m.url_id,
            );
            self.flush_url();
            if let Some(done) = self.current_url.replace(m.url_id) {
                self.flushed.insert(done);
            }
        }
        if let Some(obs) = ConvertedObs::from_measurement(m, self.db, &mut self.conversion) {
            self.churn.add(obs.vp_asn, obs.dest_asn, obs.day, &obs.path);
            self.buffer.push(obs);
        }
    }

    /// Finish: flush the last URL and assemble results.
    pub fn finish(mut self) -> PipelineResults {
        self.flush_url();
        let FindingsAccumulator { censor_findings, leakage, on_censored_path } = self.acc;
        PipelineResults {
            outcomes: self.outcomes,
            conversion: self.conversion,
            censor_findings,
            leakage,
            churn: self.churn,
            trivial_instances: self.trivial,
            on_censored_path,
            config: self.cfg,
        }
    }

    fn flush_url(&mut self) {
        let url_id = match self.current_url {
            Some(u) if !self.buffer.is_empty() => u,
            _ => {
                self.buffer.clear();
                return;
            }
        };
        let buffer = std::mem::take(&mut self.buffer);
        // Disjoint field borrows: the instance loop below reads the config
        // while mutating the accumulators, so borrow fields individually
        // instead of cloning the granularity list per flush.
        let Pipeline { cfg, topo, outcomes, acc, trivial, ctx, .. } = self;
        split_url_buffer(url_id, buffer, cfg.churn_mode, &cfg.granularities, cfg.total_days, |builder| {
            if cfg.require_positive && !builder.has_positive() {
                *trivial += 1;
                return;
            }
            let inst = builder.build().expect("non-empty builder");
            let outcome = analyze_with(&inst, &cfg.solve, ctx);
            acc.record_instance(&inst, &outcome, topo);
            outcomes.push(outcome);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_bgp::{ChurnConfig, RoutingSim};
    use churnlab_censor::CensorConfig;
    use churnlab_platform::{NoiseConfig, PlatformConfig, PlatformScale};
    use churnlab_topology::{generator, WorldConfig, WorldScale};

    /// End-to-end noise-free smoke: every identified censor is real.
    #[test]
    fn noise_free_identification_is_precise() {
        let world = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 31));
        let mut ccfg = CensorConfig::scaled_for(world.topology.countries().len());
        ccfg.total_days = 60;
        ccfg.policy_change_prob = 0.0;
        let scenario = churnlab_censor::CensorshipScenario::generate_for_world(&world, &ccfg);
        let mut pcfg = PlatformConfig::preset(PlatformScale::Smoke, 8);
        pcfg.noise = NoiseConfig::none();
        let platform = Platform::new(&world, &scenario, pcfg.clone());
        let sim = RoutingSim::new(
            &world.topology,
            &ChurnConfig { total_days: pcfg.total_days, ..ChurnConfig::default() },
        );
        let mut pipeline = Pipeline::new(&platform, PipelineConfig::paper(pcfg.total_days));
        let stats = platform.run(&sim, |m| pipeline.ingest(&m));
        let results = pipeline.finish();

        assert!(stats.total_anomalies() > 0, "scenario produced no anomalies");
        assert!(
            !results.outcomes.is_empty(),
            "no interesting CNFs despite anomalies"
        );
        // Noise-free: every identified censor must be a true censor.
        // Ground truth is projected to registered ASNs: naming a hosting
        // org's public ASN is correct when any of its PoPs censor.
        let truth: std::collections::HashSet<churnlab_topology::Asn> = scenario
            .censoring_asns()
            .iter()
            .map(|a| world.public_asn(*a))
            .collect();
        for asn in results.identified_censors() {
            assert!(
                truth.contains(&asn),
                "{asn} identified but innocent (noise-free run!)"
            );
        }
        // And identification should find at least one censor.
        assert!(
            !results.censor_findings.is_empty(),
            "no censors identified in a noise-free world"
        );
    }

    #[test]
    fn first_path_only_reduces_solvability() {
        let world = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 31));
        let mut ccfg = CensorConfig::scaled_for(world.topology.countries().len());
        ccfg.total_days = 60;
        ccfg.policy_change_prob = 0.0;
        let scenario = churnlab_censor::CensorshipScenario::generate_for_world(&world, &ccfg);
        let mut pcfg = PlatformConfig::preset(PlatformScale::Smoke, 8);
        pcfg.noise = NoiseConfig::none();
        let platform = Platform::new(&world, &scenario, pcfg.clone());
        let sim = RoutingSim::new(
            &world.topology,
            &ChurnConfig { total_days: pcfg.total_days, ..ChurnConfig::default() },
        );

        let run = |mode: ChurnMode| {
            let mut cfg = PipelineConfig::paper(pcfg.total_days);
            cfg.churn_mode = mode;
            let mut pipeline = Pipeline::new(&platform, cfg);
            platform.run(&sim, |m| pipeline.ingest(&m));
            pipeline.finish()
        };
        let with_churn = run(ChurnMode::Normal);
        let without = run(ChurnMode::FirstPathOnly);
        // Compare localization power (CNFs pinning a definite censor),
        // which is monotone in observations, rather than the raw
        // unique-model fraction, which churn can legitimately lower by
        // introducing not-yet-exonerated ASes on alternate paths.
        let localized =
            |r: &PipelineResults| r.outcomes.iter().filter(|o| !o.censors.is_empty()).count();
        assert!(
            localized(&with_churn) > localized(&without),
            "churn must localize more CNFs: with={} without={}",
            localized(&with_churn),
            localized(&without)
        );
    }

    /// The latent ordering bug fails loudly now: re-encountering a
    /// flushed URL must abort instead of silently building duplicate
    /// instance keys from a partial buffer.
    #[test]
    #[should_panic(expected = "not grouped by URL")]
    fn ungrouped_stream_panics() {
        let world = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 31));
        let ccfg = CensorConfig::scaled_for(world.topology.countries().len());
        let scenario = churnlab_censor::CensorshipScenario::generate_for_world(&world, &ccfg);
        let pcfg = PlatformConfig::preset(PlatformScale::Smoke, 8);
        let platform = Platform::new(&world, &scenario, pcfg.clone());
        let sim = RoutingSim::new(
            &world.topology,
            &ChurnConfig { total_days: pcfg.total_days, ..ChurnConfig::default() },
        );
        let (ms, _) = platform.run_collect(&sim);
        let mut pipeline = Pipeline::new(&platform, PipelineConfig::paper(pcfg.total_days));
        // Interleave two URLs: A, B, A — the third ingest revisits a
        // flushed URL and must panic.
        let a = ms.iter().find(|m| m.url_id == 0).expect("url 0 measured");
        let b = ms.iter().find(|m| m.url_id == 1).expect("url 1 measured");
        pipeline.ingest(a);
        pipeline.ingest(b);
        pipeline.ingest(a);
    }

    #[test]
    fn conversion_stats_accumulate() {
        let world = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 31));
        let ccfg = CensorConfig::scaled_for(world.topology.countries().len());
        let scenario = churnlab_censor::CensorshipScenario::generate_for_world(&world, &ccfg);
        let pcfg = PlatformConfig::preset(PlatformScale::Smoke, 8);
        let platform = Platform::new(&world, &scenario, pcfg.clone());
        let sim = RoutingSim::new(
            &world.topology,
            &ChurnConfig { total_days: pcfg.total_days, ..ChurnConfig::default() },
        );
        let mut pipeline = Pipeline::new(&platform, PipelineConfig::paper(pcfg.total_days));
        let stats = platform.run(&sim, |m| pipeline.ingest(&m));
        let results = pipeline.finish();
        assert_eq!(
            results.conversion.converted + results.conversion.total_discarded(),
            stats.measurements,
            "every measurement must be converted or discarded"
        );
        // With realistic noise, some discards happen.
        assert!(results.conversion.total_discarded() > 0);
        assert!(results.conversion.conversion_rate() > 0.5);
    }
}
