//! # churnlab-core
//!
//! The paper's contribution: **localizing censorship via boolean network
//! tomography over path churn** (Cho et al., CoNExT 2017).
//!
//! Pipeline (§3):
//!
//! 1. [`convert`] — IP-level traceroutes → AS-level paths via the
//!    (possibly stale) IP-to-AS database, discarding inconclusive tests
//!    under the paper's four elimination rules.
//! 2. [`instance`] — clause formulation: each AS-level path becomes a
//!    boolean clause over per-AS literals, True if the measurement
//!    observed the anomaly, False otherwise; one CNF per
//!    (URL × time-window × anomaly-type).
//! 3. [`churnstats`] — distinct-path accounting per (vantage, URL) pair
//!    and window (Figure 3), computed from the *measured* paths.
//! 4. [`analyze`] — solving and solution analysis: Unsat / Unique /
//!    Multiple classification, censor extraction from unique models,
//!    potential-censor sets and candidate-set reduction from backbones
//!    (Figures 1, 2, 4).
//! 5. [`leakage`] — §3.3's censorship-leakage identification: upstream,
//!    False-assigned, foreign ASes on censored paths inherit the censor's
//!    policy (Tables 3, Figure 5).
//! 6. [`report`] — Table-2/3-style report rendering.
//! 7. [`validate`] — ground-truth precision/recall (possible only because
//!    our substrate is simulated; the paper could not do this).
//! 8. [`pipeline`] — the streaming orchestrator gluing 1–7 together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulate;
pub mod analyze;
pub mod batch;
pub mod churnstats;
pub mod convert;
pub mod instance;
pub mod leakage;
pub mod obs;
pub mod pipeline;
pub mod report;
pub mod validate;

pub use accumulate::FindingsAccumulator;
pub use analyze::{InstanceOutcome, SolveConfig};
pub use churnstats::{ChurnAccumulator, ChurnTally, ChurnWindowEntry, RetiredChurn};
pub use convert::{convert_measurement, ConversionStats, DiscardReason};
pub use instance::{InstanceBuilder, InstanceKey, TomographyInstance};
pub use leakage::{CountryFlow, LeakageReport};
pub use obs::{ConvertedObs, PathId};
pub use pipeline::{CensorFinding, ChurnMode, Pipeline, PipelineConfig, PipelineResults};
pub use report::{CanonicalReport, CensorshipReport};
pub use validate::ValidationReport;
