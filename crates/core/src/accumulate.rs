//! Censor-finding and leakage accumulation, shared by the batch
//! [`crate::pipeline::Pipeline`] and the sharded `churnlab-engine`.
//!
//! Both consumers produce a stream of analysed instances; what they do
//! with each outcome is identical — fold backbone-definite censors into
//! per-AS findings, feed censor-bearing instances to the §3.3 leakage
//! analysis, and track the observability horizon. This type is that fold,
//! factored out so the two paths cannot drift.

use crate::analyze::InstanceOutcome;
use crate::instance::TomographyInstance;
use crate::leakage::LeakageReport;
use crate::pipeline::CensorFinding;
use churnlab_topology::{Asn, Topology};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Accumulates censor findings, leakage, and the observability horizon
/// over a stream of analysed instances.
#[derive(Debug, Clone, Default)]
pub struct FindingsAccumulator {
    /// Identified censors: backbone-definite in at least one CNF.
    pub censor_findings: HashMap<Asn, CensorFinding>,
    /// Leakage analysis over censor-bearing instances.
    pub leakage: LeakageReport,
    /// ASes seen on at least one censored path of an analysed instance.
    pub on_censored_path: HashSet<Asn>,
}

impl FindingsAccumulator {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one analysed instance given its outcome and the censored
    /// AS-level paths it was built from (deduplicated observation order;
    /// the set matters, not the order).
    pub fn record<'a>(
        &mut self,
        outcome: &InstanceOutcome,
        censored_paths: impl IntoIterator<Item = &'a [Asn]> + Clone,
        topo: &Topology,
    ) {
        for path in censored_paths.clone() {
            self.on_censored_path.extend(path.iter().copied());
        }
        // Definite censors (backbone-true) count whether the CNF has one
        // model or several — see `analyze`.
        if outcome.censors.is_empty() {
            return;
        }
        for asn in &outcome.censors {
            let f = self.censor_findings.entry(*asn).or_insert_with(|| CensorFinding {
                asn: *asn,
                anomalies: BTreeSet::new(),
                url_ids: BTreeSet::new(),
                n_instances: 0,
            });
            f.anomalies.insert(outcome.key.anomaly);
            f.url_ids.insert(outcome.key.url_id);
            f.n_instances += 1;
        }
        self.leakage.ingest_paths(censored_paths, outcome, topo);
    }

    /// Fold in one analysed instance straight from its
    /// [`TomographyInstance`].
    pub fn record_instance(
        &mut self,
        inst: &TomographyInstance,
        outcome: &InstanceOutcome,
        topo: &Topology,
    ) {
        let censored: Vec<&[Asn]> = inst
            .observations
            .iter()
            .filter(|o| o.censored)
            .map(|o| o.path.as_slice())
            .collect();
        self.record(outcome, censored, topo);
    }

    /// Merge another accumulator into this one (shard fan-in).
    pub fn merge(&mut self, other: FindingsAccumulator) {
        for (asn, f) in other.censor_findings {
            match self.censor_findings.entry(asn) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(f);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let mine = e.get_mut();
                    mine.anomalies.extend(f.anomalies);
                    mine.url_ids.extend(f.url_ids);
                    mine.n_instances += f.n_instances;
                }
            }
        }
        self.leakage.merge(other.leakage);
        self.on_censored_path.extend(other.on_censored_path);
    }
}
