//! Traceroute → AS-level path conversion with the paper's elimination
//! rules (§3.1).
//!
//! A test is discarded when:
//!
//! 1. IP-to-AS mapping was not possible for the IPs observed;
//! 2. traceroutes were not possible due to errors;
//! 3. AS inference was not possible — a non-responsive (or unmappable)
//!    hop run is flanked by *different* ASes on the two sides;
//! 4. the test's three traceroutes convert to more than one distinct
//!    AS-level path.
//!
//! The vantage point's own AS is known to the platform operator (it is in
//! the record) and anchors the front of every converted path.

use churnlab_platform::{Measurement, TracerouteRecord};
use churnlab_topology::{Asn, Ip2AsDb};
use serde::{Deserialize, Serialize};

/// Why a test was discarded (maps 1:1 to the paper's four rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiscardReason {
    /// Rule 1: no IP in the traceroute could be mapped.
    MappingImpossible,
    /// Rule 2: the traceroute run errored (failed or truncated), or the
    /// test could not run at all.
    TracerouteError,
    /// Rule 3: a non-responsive/unmappable run flanked by different ASes.
    InferenceAmbiguous,
    /// Rule 4: the three traceroutes yielded >1 distinct AS-level path.
    MultipleAsPaths,
}

impl DiscardReason {
    /// Stable label for stats output.
    pub fn label(self) -> &'static str {
        match self {
            DiscardReason::MappingImpossible => "rule1-mapping",
            DiscardReason::TracerouteError => "rule2-error",
            DiscardReason::InferenceAmbiguous => "rule3-inference",
            DiscardReason::MultipleAsPaths => "rule4-multipath",
        }
    }
}

/// Conversion counters, accumulated across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConversionStats {
    /// Tests successfully converted.
    pub converted: u64,
    /// Tests discarded, by rule.
    pub discarded: [u64; 4],
}

impl ConversionStats {
    /// Record a discard.
    pub fn discard(&mut self, r: DiscardReason) {
        let i = match r {
            DiscardReason::MappingImpossible => 0,
            DiscardReason::TracerouteError => 1,
            DiscardReason::InferenceAmbiguous => 2,
            DiscardReason::MultipleAsPaths => 3,
        };
        self.discarded[i] += 1;
    }

    /// Fold another counter set into this one (shard fan-in).
    pub fn merge(&mut self, other: ConversionStats) {
        self.converted += other.converted;
        for (d, o) in self.discarded.iter_mut().zip(other.discarded) {
            *d += o;
        }
    }

    /// Total discards.
    pub fn total_discarded(&self) -> u64 {
        self.discarded.iter().sum()
    }

    /// Fraction of tests converted.
    pub fn conversion_rate(&self) -> f64 {
        let total = self.converted + self.total_discarded();
        if total == 0 {
            0.0
        } else {
            self.converted as f64 / total as f64
        }
    }
}

/// Convert a single traceroute to an AS-level path.
fn convert_one(
    tr: &TracerouteRecord,
    vp_asn: Asn,
    db: &Ip2AsDb,
) -> Result<Vec<Asn>, DiscardReason> {
    if tr.error.is_some() || tr.hops.is_empty() {
        return Err(DiscardReason::TracerouteError);
    }
    // Map each hop; non-responsive and unmappable hops both become None.
    let mapped: Vec<Option<Asn>> = tr
        .hops
        .iter()
        .map(|h| h.and_then(|ip| db.lookup(ip)))
        .collect();
    if mapped.iter().all(|m| m.is_none()) {
        return Err(DiscardReason::MappingImpossible);
    }
    // The final hop is the destination server; if it can't be identified
    // the path's endpoint is unknown (inference impossible).
    if mapped.last().expect("non-empty").is_none() {
        return Err(DiscardReason::InferenceAmbiguous);
    }
    // Collapse into an AS sequence anchored at the vantage AS, checking
    // that every None-run is flanked by the same AS on both sides.
    let mut path = vec![vp_asn];
    let mut pending_gap = false;
    for m in &mapped {
        match m {
            None => pending_gap = true,
            Some(asn) => {
                let last = *path.last().expect("anchored at vp");
                if *asn == last {
                    pending_gap = false; // gap inside one AS: absorbed
                } else {
                    if pending_gap {
                        // Unknown hops between two different ASes: cannot
                        // infer who owns them.
                        return Err(DiscardReason::InferenceAmbiguous);
                    }
                    path.push(*asn);
                }
            }
        }
    }
    Ok(path)
}

/// Convert a full measurement (three traceroutes) under the paper's rules.
pub fn convert_measurement(
    m: &Measurement,
    db: &Ip2AsDb,
    stats: &mut ConversionStats,
) -> Option<Vec<Asn>> {
    if m.failed {
        stats.discard(DiscardReason::TracerouteError);
        return None;
    }
    let mut paths: Vec<Vec<Asn>> = Vec::with_capacity(3);
    let mut first_err: Option<DiscardReason> = None;
    for tr in &m.traceroutes {
        match convert_one(tr, m.vp_asn, db) {
            Ok(p) => paths.push(p),
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if paths.is_empty() {
        stats.discard(first_err.unwrap_or(DiscardReason::TracerouteError));
        return None;
    }
    paths.sort();
    paths.dedup();
    if paths.len() > 1 {
        stats.discard(DiscardReason::MultipleAsPaths);
        return None;
    }
    stats.converted += 1;
    paths.pop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_platform::AnomalySet;
    use churnlab_topology::Ipv4Prefix;

    fn db() -> Ip2AsDb {
        Ip2AsDb::from_entries([
            (Ipv4Prefix::from_octets(1, 0, 0, 0, 8).unwrap(), Asn(10)),
            (Ipv4Prefix::from_octets(2, 0, 0, 0, 8).unwrap(), Asn(20)),
            (Ipv4Prefix::from_octets(3, 0, 0, 0, 8).unwrap(), Asn(30)),
        ])
        .unwrap()
    }

    fn ip(top: u8, low: u8) -> u32 {
        u32::from_be_bytes([top, 0, 0, low])
    }

    fn tr(hops: Vec<Option<u32>>) -> TracerouteRecord {
        TracerouteRecord { hops, error: None }
    }

    fn measurement(trs: Vec<TracerouteRecord>) -> Measurement {
        Measurement {
            vp_id: 0,
            vp_asn: Asn(10),
            url_id: 0,
            dest_asn: Asn(30),
            day: 0,
            epoch: 0,
            detected: AnomalySet::empty(),
            traceroutes: trs,
            failed: false,
        }
    }

    #[test]
    fn clean_conversion() {
        let m = measurement(vec![
            tr(vec![Some(ip(1, 1)), Some(ip(2, 1)), Some(ip(2, 2)), Some(ip(3, 1))]);
            3
        ]);
        let mut stats = ConversionStats::default();
        let path = convert_measurement(&m, &db(), &mut stats).unwrap();
        assert_eq!(path, vec![Asn(10), Asn(20), Asn(30)]);
        assert_eq!(stats.converted, 1);
        assert_eq!(stats.total_discarded(), 0);
    }

    #[test]
    fn gap_inside_one_as_absorbed() {
        // 1.x (AS10), *, 2.x 2.y (AS20), *, 2.z (AS20 again), 3.x (AS30):
        // the second gap is flanked by AS20 on both sides — absorbed.
        let m = measurement(vec![
            tr(vec![
                Some(ip(1, 1)),
                Some(ip(2, 1)),
                None,
                Some(ip(2, 3)),
                Some(ip(3, 1)),
            ]);
            3
        ]);
        let mut stats = ConversionStats::default();
        let path = convert_measurement(&m, &db(), &mut stats).unwrap();
        assert_eq!(path, vec![Asn(10), Asn(20), Asn(30)]);
    }

    #[test]
    fn rule1_no_mappable_hops() {
        let m = measurement(vec![tr(vec![Some(ip(9, 1)), Some(ip(9, 2))]); 3]);
        let mut stats = ConversionStats::default();
        assert!(convert_measurement(&m, &db(), &mut stats).is_none());
        assert_eq!(stats.discarded[0], 1, "rule 1 must fire");
    }

    #[test]
    fn rule2_traceroute_errors() {
        let m = measurement(vec![TracerouteRecord::failed(); 3]);
        let mut stats = ConversionStats::default();
        assert!(convert_measurement(&m, &db(), &mut stats).is_none());
        assert_eq!(stats.discarded[1], 1, "rule 2 must fire");
        // A failed test (no route) is also rule 2.
        let mut m2 = measurement(vec![]);
        m2.failed = true;
        assert!(convert_measurement(&m2, &db(), &mut stats).is_none());
        assert_eq!(stats.discarded[1], 2);
    }

    #[test]
    fn rule3_gap_between_different_ases() {
        // AS10, *, AS30 — the unknown hop could be AS10, AS30, or neither.
        let m = measurement(vec![tr(vec![Some(ip(1, 1)), None, Some(ip(3, 1))]); 3]);
        let mut stats = ConversionStats::default();
        assert!(convert_measurement(&m, &db(), &mut stats).is_none());
        assert_eq!(stats.discarded[2], 1, "rule 3 must fire");
    }

    #[test]
    fn rule3_unmapped_hop_between_ases() {
        // A responsive hop whose prefix is missing from the (stale) DB acts
        // like a non-responsive hop.
        let m = measurement(vec![tr(vec![Some(ip(1, 1)), Some(ip(9, 9)), Some(ip(3, 1))]); 3]);
        let mut stats = ConversionStats::default();
        assert!(convert_measurement(&m, &db(), &mut stats).is_none());
        assert_eq!(stats.discarded[2], 1);
    }

    #[test]
    fn rule3_unknown_destination() {
        let m = measurement(vec![tr(vec![Some(ip(1, 1)), Some(ip(2, 1)), None]); 3]);
        let mut stats = ConversionStats::default();
        assert!(convert_measurement(&m, &db(), &mut stats).is_none());
        assert_eq!(stats.discarded[2], 1);
    }

    #[test]
    fn rule4_divergent_traceroutes() {
        let m = measurement(vec![
            tr(vec![Some(ip(1, 1)), Some(ip(2, 1)), Some(ip(3, 1))]),
            tr(vec![Some(ip(1, 1)), Some(ip(2, 1)), Some(ip(3, 1))]),
            tr(vec![Some(ip(1, 1)), Some(ip(3, 1))]), // different path
        ]);
        let mut stats = ConversionStats::default();
        assert!(convert_measurement(&m, &db(), &mut stats).is_none());
        assert_eq!(stats.discarded[3], 1, "rule 4 must fire");
    }

    #[test]
    fn one_good_traceroute_suffices() {
        let m = measurement(vec![
            TracerouteRecord::failed(),
            tr(vec![Some(ip(1, 1)), Some(ip(2, 1)), Some(ip(3, 1))]),
            TracerouteRecord::failed(),
        ]);
        let mut stats = ConversionStats::default();
        let path = convert_measurement(&m, &db(), &mut stats).unwrap();
        assert_eq!(path, vec![Asn(10), Asn(20), Asn(30)]);
    }

    #[test]
    fn leading_hop_in_foreign_as_extends_path() {
        // First mapped hop is AS20 (vantage egress already outside AS10):
        // the path is anchored at the vantage AS.
        let m = measurement(vec![tr(vec![Some(ip(2, 1)), Some(ip(3, 1))]); 3]);
        let mut stats = ConversionStats::default();
        let path = convert_measurement(&m, &db(), &mut stats).unwrap();
        assert_eq!(path, vec![Asn(10), Asn(20), Asn(30)]);
    }

    #[test]
    fn conversion_rate_math() {
        let mut s = ConversionStats { converted: 3, ..Default::default() };
        s.discard(DiscardReason::MappingImpossible);
        assert!((s.conversion_rate() - 0.75).abs() < 1e-9);
        assert_eq!(ConversionStats::default().conversion_rate(), 0.0);
    }
}
