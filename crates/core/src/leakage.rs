//! Censorship-leakage identification (§3.3).
//!
//! "In order to prevent leakage of censorship, censorship policies need to
//! be implemented in ASes that are either stubs or provide transit
//! services only for ASes within the region." The analysis: over AS-level
//! paths from CNFs with at least one **backbone-definite censor** (a
//! variable True in every model — every unique-solution CNF qualifies),
//! an AS that (1) is assigned False in every model, (2) sits *upstream*
//! of an identified censor (closer to the vantage point), and (3) is
//! registered in a different country than the censor, is a **victim of
//! censorship leakage** — its traffic inherited a foreign censor's policy
//! by transiting it.

use crate::analyze::InstanceOutcome;
use crate::instance::TomographyInstance;
use churnlab_topology::geo::CountryCode;
use churnlab_topology::{Asn, Topology};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One country-level leak edge for Figure 5.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountryFlow {
    /// Country of the censoring AS (source of the leak).
    pub from: String,
    /// Country of the victim AS.
    pub to: String,
    /// Number of (censor AS, victim AS) pairs on this edge.
    pub weight: u64,
}

/// Aggregated leakage findings.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LeakageReport {
    /// Per censor: the set of victim ASes.
    pub victims_by_censor: HashMap<Asn, HashSet<Asn>>,
    /// Per censor: the set of victim countries.
    pub victim_countries_by_censor: HashMap<Asn, HashSet<String>>,
}

impl LeakageReport {
    /// Fresh empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one solved instance with at least one definite (backbone)
    /// censor — callers must filter, mirroring the paper.
    ///
    /// For every censored (positive) path, every AS strictly before a
    /// censor on that path, assigned False in every model, and registered
    /// in a different country, is recorded as that censor's victim.
    pub fn ingest(
        &mut self,
        inst: &TomographyInstance,
        outcome: &InstanceOutcome,
        topo: &Topology,
    ) {
        let censored: Vec<&[Asn]> =
            inst.observations.iter().filter(|o| o.censored).map(|o| o.path.as_slice()).collect();
        self.ingest_paths(censored, outcome, topo);
    }

    /// [`LeakageReport::ingest`] over bare censored paths — the form the
    /// sharded engine uses, where the full [`TomographyInstance`] never
    /// crosses the shard boundary.
    pub fn ingest_paths<'a>(
        &mut self,
        censored_paths: impl IntoIterator<Item = &'a [Asn]>,
        outcome: &InstanceOutcome,
        topo: &Topology,
    ) {
        debug_assert_ne!(outcome.solvability, churnlab_sat::Solvability::Unsat);
        let censors: HashSet<Asn> = outcome.censors.iter().copied().collect();
        if censors.is_empty() {
            return;
        }
        // "Assigned False": in multi-solution CNFs only the definitely
        // eliminated ASes qualify (in unique-solution CNFs that is every
        // non-censor, so this matches the original unique-only behavior).
        let exonerated: HashSet<Asn> = outcome.eliminated.iter().copied().collect();
        for path in censored_paths {
            for (ci, censor) in path.iter().enumerate() {
                if !censors.contains(censor) {
                    continue;
                }
                let censor_country = match topo.info_by_asn(*censor) {
                    Some(i) => i.country,
                    None => continue,
                };
                for upstream in &path[..ci] {
                    if !exonerated.contains(upstream) {
                        continue; // only False-assigned ASes are victims
                    }
                    let up_country = match topo.info_by_asn(*upstream) {
                        Some(i) => i.country,
                        None => continue,
                    };
                    // Leakage to other ASes counts regardless of country;
                    // cross-country leaks are tracked separately.
                    self.victims_by_censor.entry(*censor).or_default().insert(*upstream);
                    if up_country != censor_country {
                        self.victim_countries_by_censor
                            .entry(*censor)
                            .or_default()
                            .insert(up_country.as_str().to_string());
                    }
                }
            }
        }
    }

    /// Merge another report into this one (shard fan-in: victim sets
    /// union, which is exactly what ingesting the shards' instances into
    /// one report would have produced).
    pub fn merge(&mut self, other: LeakageReport) {
        for (censor, victims) in other.victims_by_censor {
            self.victims_by_censor.entry(censor).or_default().extend(victims);
        }
        for (censor, countries) in other.victim_countries_by_censor {
            self.victim_countries_by_censor.entry(censor).or_default().extend(countries);
        }
    }

    /// Censors leaking to at least one other AS.
    pub fn censors_leaking_to_ases(&self) -> usize {
        self.victims_by_censor.values().filter(|v| !v.is_empty()).count()
    }

    /// Censors leaking to at least one other country.
    pub fn censors_leaking_to_countries(&self) -> usize {
        self.victim_countries_by_censor.values().filter(|v| !v.is_empty()).count()
    }

    /// Table-3 rows: censors ranked by cross-country leak counts —
    /// (asn, #victim ASes, #victim countries), sorted descending.
    pub fn top_leakers(&self, n: usize) -> Vec<(Asn, usize, usize)> {
        let mut rows: Vec<(Asn, usize, usize)> = self
            .victims_by_censor
            .iter()
            .map(|(asn, vs)| {
                let countries =
                    self.victim_countries_by_censor.get(asn).map(|c| c.len()).unwrap_or(0);
                (*asn, vs.len(), countries)
            })
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(b.2.cmp(&a.2)).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Figure-5 country flow edges: (censor country → victim country,
    /// weight), cross-country only, sorted by weight descending.
    pub fn country_flow(&self, topo: &Topology) -> Vec<CountryFlow> {
        let mut edges: HashMap<(CountryCode, String), u64> = HashMap::new();
        for (censor, victims) in &self.victims_by_censor {
            let from = match topo.info_by_asn(*censor) {
                Some(i) => i.country,
                None => continue,
            };
            for v in victims {
                if let Some(vi) = topo.info_by_asn(*v) {
                    if vi.country != from {
                        *edges.entry((from, vi.country.as_str().to_string())).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut out: Vec<CountryFlow> = edges
            .into_iter()
            .map(|((f, t), w)| CountryFlow { from: f.as_str().to_string(), to: t, weight: w })
            .collect();
        out.sort_by(|a, b| b.weight.cmp(&a.weight).then(a.from.cmp(&b.from)).then(a.to.cmp(&b.to)));
        out
    }

    /// Fraction of cross-country leak edges that stay within the censor's
    /// geographic region — the paper's "most leakage is regional"
    /// observation (Figure 5).
    pub fn regional_fraction(&self, topo: &Topology) -> Option<f64> {
        let flows = self.country_flow(topo);
        if flows.is_empty() {
            return None;
        }
        let region_of = |code: &str| {
            topo.countries()
                .iter()
                .find(|c| c.code.as_str() == code)
                .map(|c| c.region)
        };
        let mut total = 0u64;
        let mut regional = 0u64;
        for f in &flows {
            total += f.weight;
            if let (Some(a), Some(b)) = (region_of(&f.from), region_of(&f.to)) {
                if a == b {
                    regional += f.weight;
                }
            }
        }
        Some(regional as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, SolveConfig};
    use crate::instance::{InstanceBuilder, InstanceKey};
    use churnlab_bgp::{Granularity, TimeWindow};
    use churnlab_platform::AnomalyType;
    use churnlab_topology::asys::{AsClass, AsInfo, AsRole};
    use churnlab_topology::geo::countries;
    use churnlab_topology::Topology;

    /// Topology: AS1 (DE), AS2 (PL, censor), AS3 (DE), AS4 (PL).
    fn topo() -> Topology {
        let mut t = Topology::new(countries(40));
        for (asn, cc) in [(1u32, "DE"), (2, "PL"), (3, "DE"), (4, "PL")] {
            t.add_as(AsInfo {
                asn: Asn(asn),
                name: format!("AS{asn}"),
                country: CountryCode::new(cc),
                class: AsClass::TransitAccess,
                role: AsRole::NationalTransit,
            })
            .unwrap();
        }
        t
    }

    fn key() -> InstanceKey {
        InstanceKey {
            url_id: 0,
            anomaly: AnomalyType::Block,
            window: TimeWindow::of(0, Granularity::Day, 365),
        }
    }

    fn asns(v: &[u32]) -> Vec<Asn> {
        v.iter().map(|x| Asn(*x)).collect()
    }

    #[test]
    fn upstream_foreign_as_is_victim() {
        // Path 1(DE) → 2(PL-censor) → 4(PL): censored. Clean path [1, 3]
        // clears 1 ⇒ unique solution censor = {2}… wait, 4 is downstream of
        // 2 and untested otherwise: clean [1,3] only clears 1 and 3. Add
        // clean [4] to clear 4.
        let mut b = InstanceBuilder::new(key());
        b.observe(&asns(&[1, 2, 4]), true);
        b.observe(&asns(&[1, 3]), false);
        b.observe(&asns(&[4]), false);
        let inst = b.build().unwrap();
        let out = analyze(&inst, &SolveConfig::default());
        assert_eq!(out.censors, vec![Asn(2)]);
        let t = topo();
        let mut report = LeakageReport::new();
        report.ingest(&inst, &out, &t);
        // AS1 (DE) is upstream of censor AS2 (PL) and foreign: victim.
        assert!(report.victims_by_censor[&Asn(2)].contains(&Asn(1)));
        // AS4 is downstream: not a victim.
        assert!(!report.victims_by_censor[&Asn(2)].contains(&Asn(4)));
        assert_eq!(report.censors_leaking_to_ases(), 1);
        assert_eq!(report.censors_leaking_to_countries(), 1);
        let flows = report.country_flow(&t);
        assert_eq!(flows.len(), 1);
        assert_eq!((flows[0].from.as_str(), flows[0].to.as_str()), ("PL", "DE"));
    }

    #[test]
    fn same_country_upstream_counts_as_as_leak_not_country_leak() {
        // Path 4(PL) → 2(PL-censor) → 3: upstream AS4 is same-country.
        let mut b = InstanceBuilder::new(key());
        b.observe(&asns(&[4, 2, 3]), true);
        b.observe(&asns(&[4, 3]), false);
        let inst = b.build().unwrap();
        let out = analyze(&inst, &SolveConfig::default());
        assert_eq!(out.censors, vec![Asn(2)]);
        let t = topo();
        let mut report = LeakageReport::new();
        report.ingest(&inst, &out, &t);
        assert_eq!(report.censors_leaking_to_ases(), 1, "AS-level leak recorded");
        assert_eq!(report.censors_leaking_to_countries(), 0, "no country crossed");
    }

    #[test]
    fn top_leakers_ranked() {
        let mut report = LeakageReport::new();
        report.victims_by_censor.insert(Asn(2), [Asn(1), Asn(3), Asn(4)].into_iter().collect());
        report
            .victim_countries_by_censor
            .insert(Asn(2), ["DE".to_string()].into_iter().collect());
        report.victims_by_censor.insert(Asn(9), [Asn(1)].into_iter().collect());
        let top = report.top_leakers(5);
        assert_eq!(top[0], (Asn(2), 3, 1));
        assert_eq!(top[1], (Asn(9), 1, 0));
    }

    #[test]
    fn regional_fraction_computed() {
        let t = topo();
        let mut report = LeakageReport::new();
        // PL → DE: both Europe (PL is EasternEurope, DE WesternEurope — so
        // NOT same region under our taxonomy; regional fraction 0).
        report.victims_by_censor.insert(Asn(2), [Asn(1)].into_iter().collect());
        let f = report.regional_fraction(&t).unwrap();
        assert_eq!(f, 0.0);
        assert!(LeakageReport::new().regional_fraction(&t).is_none());
    }
}
