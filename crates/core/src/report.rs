//! Report rendering: the paper's Tables 2 and 3 and the Figure-5 flow
//! summary, from pipeline results — plus the [`CanonicalReport`], the
//! order-independent serialized form used to prove that the sharded
//! engine and the batch pipeline compute the same thing.

use crate::analyze::InstanceOutcome;
use crate::convert::ConversionStats;
use crate::leakage::CountryFlow;
use crate::pipeline::{CensorFinding, PipelineConfig, PipelineResults};
use churnlab_bgp::stats::DistinctPathDist;
use churnlab_platform::AnomalyType;
use churnlab_topology::{Asn, Topology};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One Table-2 row: a country and its identified censoring ASes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionRow {
    /// Country code.
    pub country: String,
    /// Identified censoring ASes there.
    pub ases: Vec<Asn>,
    /// Union of anomaly types across those ASes ("All" when all five).
    pub anomalies: Vec<String>,
}

/// The assembled censorship report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CensorshipReport {
    /// Total identified censoring ASes.
    pub n_censors: usize,
    /// Number of countries hosting them.
    pub n_countries: usize,
    /// Table-2 rows, sorted by descending AS count.
    pub regions: Vec<RegionRow>,
    /// Table-3 rows: (asn, country, leaked ASes, leaked countries).
    pub top_leakers: Vec<(Asn, String, usize, usize)>,
    /// Censors leaking to other ASes.
    pub leaking_to_ases: usize,
    /// Censors leaking to other countries.
    pub leaking_to_countries: usize,
    /// Figure-5 country-level flow edges.
    pub country_flow: Vec<CountryFlow>,
    /// Fraction of leak weight staying within the censor's region.
    pub regional_leak_fraction: Option<f64>,
}

impl CensorshipReport {
    /// Assemble from pipeline results.
    pub fn assemble(results: &PipelineResults, topo: &Topology) -> Self {
        // Group identified censors by country.
        let mut by_country: BTreeMap<String, (Vec<Asn>, BTreeSet<AnomalyType>)> = BTreeMap::new();
        for (asn, finding) in &results.censor_findings {
            let country = topo
                .info_by_asn(*asn)
                .map(|i| i.country.as_str().to_string())
                .unwrap_or_else(|| "??".to_string());
            let e = by_country.entry(country).or_default();
            e.0.push(*asn);
            e.1.extend(finding.anomalies.iter().copied());
        }
        let mut regions: Vec<RegionRow> = by_country
            .into_iter()
            .map(|(country, (mut ases, anomalies))| {
                ases.sort();
                let labels = if anomalies.len() == AnomalyType::ALL.len() {
                    vec!["All".to_string()]
                } else {
                    anomalies.iter().map(|a| a.label().to_string()).collect()
                };
                RegionRow { country, ases, anomalies: labels }
            })
            .collect();
        regions.sort_by(|a, b| b.ases.len().cmp(&a.ases.len()).then(a.country.cmp(&b.country)));

        let top = results
            .leakage
            .top_leakers(10)
            .into_iter()
            .map(|(asn, n_as, n_c)| {
                let country = topo
                    .info_by_asn(asn)
                    .map(|i| i.country.as_str().to_string())
                    .unwrap_or_else(|| "??".to_string());
                (asn, country, n_as, n_c)
            })
            .collect();

        CensorshipReport {
            n_censors: results.censor_findings.len(),
            n_countries: regions.len(),
            regions,
            top_leakers: top,
            leaking_to_ases: results.leakage.censors_leaking_to_ases(),
            leaking_to_countries: results.leakage.censors_leaking_to_countries(),
            country_flow: results.leakage.country_flow(topo),
            regional_leak_fraction: results.leakage.regional_fraction(topo),
        }
    }

    /// Render the Table-2 analogue.
    pub fn render_table2(&self, max_rows: usize) -> String {
        let mut out = String::from("Region | Censoring ASes | Anomalies\n");
        out.push_str("-------|----------------|----------\n");
        for row in self.regions.iter().take(max_rows) {
            let ases: Vec<String> = row.ases.iter().map(|a| a.to_string()).collect();
            out.push_str(&format!(
                "{:<6} | {} | {}\n",
                row.country,
                ases.join(", "),
                row.anomalies.join(", ")
            ));
        }
        out
    }

    /// Render the Table-3 analogue.
    pub fn render_table3(&self, max_rows: usize) -> String {
        let mut out = String::from("AS | Region | Leaks(AS) | Leaks(Country)\n");
        out.push_str("---|--------|-----------|---------------\n");
        for (asn, country, n_as, n_c) in self.top_leakers.iter().take(max_rows) {
            out.push_str(&format!("{asn} | {country} | {n_as} | {n_c}\n"));
        }
        out
    }

    /// Render the Figure-5 flow summary (country edges, top `max_rows`).
    pub fn render_flow(&self, max_rows: usize) -> String {
        let mut out = String::from("Censor country -> victim country (weight)\n");
        for f in self.country_flow.iter().take(max_rows) {
            out.push_str(&format!("{} -> {} ({})\n", f.from, f.to, f.weight));
        }
        if let Some(r) = self.regional_leak_fraction {
            out.push_str(&format!("regional leak fraction: {:.0}%\n", 100.0 * r));
        }
        out
    }
}

/// A fully deterministic, order-independent projection of
/// [`PipelineResults`]: every collection is sorted, hash maps become
/// sorted vectors, and the churn accumulator is replaced by its derived
/// distributions. Two results computed from the same measurement *set* —
/// in any ingestion order, batch or sharded — serialize to byte-identical
/// JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CanonicalReport {
    /// The pipeline configuration used.
    pub config: PipelineConfig,
    /// Conversion counters.
    pub conversion: ConversionStats,
    /// CNFs skipped for lacking a censored observation.
    pub trivial_instances: u64,
    /// Per-instance outcomes, sorted by [`crate::instance::InstanceKey`].
    pub outcomes: Vec<InstanceOutcome>,
    /// Censor findings, sorted by ASN.
    pub censor_findings: Vec<CensorFinding>,
    /// Observability horizon, sorted.
    pub on_censored_path: Vec<Asn>,
    /// Leakage: per censor (sorted), the sorted victim AS list.
    pub leak_victims: Vec<(Asn, Vec<Asn>)>,
    /// Leakage: per censor (sorted), the sorted victim country list.
    pub leak_victim_countries: Vec<(Asn, Vec<String>)>,
    /// Distinct-path distributions at the configured granularities.
    pub churn: Vec<DistinctPathDist>,
}

impl CanonicalReport {
    /// The canonical JSON serialization: deterministic field order, every
    /// collection pre-sorted — two reports over the same measurement set
    /// are byte-identical here whatever the ingestion order or sharding.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("canonical report serializes")
    }

    /// FNV-1a 64 digest of [`CanonicalReport::to_json`] — a compact
    /// equality token for logs and bench reports (byte-identical JSON ⇔
    /// equal digests, modulo the usual 64-bit collision caveat).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_json().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

impl PipelineResults {
    /// Project into the canonical order-independent form.
    pub fn canonical_report(&self) -> CanonicalReport {
        let mut outcomes = self.outcomes.clone();
        outcomes.sort_by_key(|o| o.key);
        let mut censor_findings: Vec<CensorFinding> =
            self.censor_findings.values().cloned().collect();
        censor_findings.sort_by_key(|f| f.asn);
        let mut on_censored_path: Vec<Asn> = self.on_censored_path.iter().copied().collect();
        on_censored_path.sort();
        let mut leak_victims: Vec<(Asn, Vec<Asn>)> = self
            .leakage
            .victims_by_censor
            .iter()
            .map(|(censor, victims)| {
                let mut v: Vec<Asn> = victims.iter().copied().collect();
                v.sort();
                (*censor, v)
            })
            .collect();
        leak_victims.sort_by_key(|(c, _)| *c);
        let mut leak_victim_countries: Vec<(Asn, Vec<String>)> = self
            .leakage
            .victim_countries_by_censor
            .iter()
            .map(|(censor, countries)| {
                let mut v: Vec<String> = countries.iter().cloned().collect();
                v.sort();
                (*censor, v)
            })
            .collect();
        leak_victim_countries.sort_by_key(|(c, _)| *c);
        CanonicalReport {
            config: self.config.clone(),
            conversion: self.conversion,
            trivial_instances: self.trivial_instances,
            outcomes,
            censor_findings,
            on_censored_path,
            leak_victims,
            leak_victim_countries,
            churn: self.churn.distributions(&self.config.granularities, self.config.total_days),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churnstats::ChurnAccumulator;
    use crate::leakage::LeakageReport;
    use churnlab_topology::{generator, WorldConfig, WorldScale};
    use std::collections::{BTreeSet, HashMap, HashSet};

    fn fake_results(topo_censor: Asn) -> PipelineResults {
        let mut censor_findings = HashMap::new();
        censor_findings.insert(
            topo_censor,
            CensorFinding {
                asn: topo_censor,
                anomalies: AnomalyType::ALL.iter().copied().collect::<BTreeSet<_>>(),
                url_ids: BTreeSet::new(),
                n_instances: 3,
            },
        );
        PipelineResults {
            outcomes: vec![],
            conversion: ConversionStats::default(),
            censor_findings,
            leakage: LeakageReport::new(),
            churn: ChurnAccumulator::new(),
            trivial_instances: 0,
            on_censored_path: HashSet::new(),
            config: PipelineConfig::paper(365),
        }
    }

    #[test]
    fn assemble_and_render() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 2));
        let censor = w.asns()[3];
        let results = fake_results(censor);
        let report = CensorshipReport::assemble(&results, &w.topology);
        assert_eq!(report.n_censors, 1);
        assert_eq!(report.n_countries, 1);
        assert_eq!(report.regions[0].anomalies, vec!["All"]);
        let t2 = report.render_table2(10);
        assert!(t2.contains(&censor.to_string()));
        assert!(t2.contains("All"));
        let t3 = report.render_table3(10);
        assert!(t3.contains("Leaks"));
        let flow = report.render_flow(10);
        assert!(flow.contains("victim"));
    }

    #[test]
    fn partial_anomaly_sets_listed_individually() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 2));
        let censor = w.asns()[3];
        let mut results = fake_results(censor);
        results.censor_findings.get_mut(&censor).unwrap().anomalies =
            [AnomalyType::Block, AnomalyType::Ttl].into_iter().collect();
        let report = CensorshipReport::assemble(&results, &w.topology);
        assert_eq!(report.regions[0].anomalies, vec!["ttl".to_string(), "block".to_string()]);
    }
}
