//! The churn event process: link up/down timelines and traffic-engineering
//! shifts.
//!
//! Real-world path churn has two big sources the paper's data reflects:
//! **link-level events** (failures, maintenance — routes around the dead
//! link) and **policy/TE shifts** (hot-potato changes, load moves between
//! equal-preference routes). We model both:
//!
//! * each link runs a two-state (up/down) Markov chain discretised to
//!   routing epochs, with rates from its
//!   [`churnlab_topology::LinkStability`] profile — heterogeneous across
//!   links, so a few flappy edges produce most events (heavy tail);
//! * each AS occasionally re-rolls its tiebreak salt, changing which of
//!   several equally-preferred routes it forwards on.
//!
//! Timelines are materialised once (deterministically from the seed) as
//! sorted transition lists, so state queries are `O(log events)`.

use crate::time::{Epoch, EpochMapper};
use churnlab_topology::{LinkId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the churn process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Seed for the event process (independent of the topology seed).
    pub seed: u64,
    /// Routing epochs per day (default 6: 4-hour slots).
    pub epochs_per_day: u32,
    /// Days simulated.
    pub total_days: u32,
    /// Per-day probability that a *calm* AS re-rolls its equal-cost
    /// tiebreak salt (TE shift).
    pub te_shift_per_day: f64,
    /// Fraction of ASes that are "wobbly": their intra-domain state churns
    /// frequently (hot-potato flaps, aggressive TE). Heterogeneity here is
    /// what gives Figure 3 its shape — a quarter of pairs churn daily while
    /// a third stay stable all year.
    pub wobbly_frac: f64,
    /// Per-day TE shift rate for wobbly ASes.
    pub wobbly_te_per_day: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            seed: 0xC4A2,
            epochs_per_day: 6,
            total_days: crate::time::DEFAULT_TOTAL_DAYS,
            te_shift_per_day: 0.01,
            wobbly_frac: 0.12,
            wobbly_te_per_day: 6.0,
        }
    }
}

impl ChurnConfig {
    /// A frozen network: no link events, no TE shifts (the Figure-4
    /// counterfactual is produced differently — by filtering measurements —
    /// but a frozen timeline is useful for tests and ablations).
    pub fn frozen(total_days: u32) -> Self {
        ChurnConfig {
            seed: 0,
            epochs_per_day: 6,
            total_days,
            te_shift_per_day: 0.0,
            wobbly_frac: 0.0,
            wobbly_te_per_day: 0.0,
        }
    }
}

/// Sorted transition epochs for one binary timeline. State flips at each
/// listed epoch; `initial` is the state before the first transition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct FlipTimeline {
    initial: bool,
    flips: Vec<Epoch>,
}

impl FlipTimeline {
    fn state_at(&self, epoch: Epoch) -> bool {
        // Number of flips at or before `epoch`.
        let n = self.flips.partition_point(|&e| e <= epoch);
        self.initial ^ (n % 2 == 1)
    }

    fn version_at(&self, epoch: Epoch) -> u32 {
        self.flips.partition_point(|&e| e <= epoch) as u32
    }
}

/// Materialised churn timelines for a topology.
#[derive(Debug, Clone)]
pub struct ChurnTimeline {
    cfg: ChurnConfig,
    mapper: EpochMapper,
    links: Vec<FlipTimeline>,
    te: Vec<FlipTimeline>,
    total_epochs: u32,
}

impl ChurnTimeline {
    /// Build timelines for every link and AS in `topo`.
    pub fn build(topo: &Topology, cfg: &ChurnConfig) -> Self {
        let mapper = EpochMapper::new(cfg.epochs_per_day);
        let total_epochs = mapper.total_epochs(cfg.total_days);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let links = topo
            .links()
            .iter()
            .map(|l| {
                let p_fail = (l.stability.flap_rate / f64::from(cfg.epochs_per_day)).min(1.0);
                let p_recover =
                    (l.stability.recovery_rate() / f64::from(cfg.epochs_per_day)).min(1.0);
                Self::sample_two_state(total_epochs, p_fail, p_recover, &mut rng)
            })
            .collect();
        let te = (0..topo.n_ases())
            .map(|_| {
                let rate = if rng.gen_bool(cfg.wobbly_frac.clamp(0.0, 1.0)) {
                    cfg.wobbly_te_per_day
                } else {
                    cfg.te_shift_per_day
                };
                let p = (rate / f64::from(cfg.epochs_per_day)).min(1.0);
                Self::sample_events(total_epochs, p, &mut rng)
            })
            .collect();
        ChurnTimeline { cfg: cfg.clone(), mapper, links, te, total_epochs }
    }

    /// Sample a two-state chain (starts up) via geometric jumps.
    fn sample_two_state(
        total: u32,
        p_fail: f64,
        p_recover: f64,
        rng: &mut StdRng,
    ) -> FlipTimeline {
        let mut flips = Vec::new();
        if p_fail <= 0.0 {
            return FlipTimeline { initial: true, flips };
        }
        let mut t = 0u64;
        let mut up = true;
        loop {
            let p = if up { p_fail } else { p_recover.max(1e-6) };
            // Geometric(p) holding time, at least 1 epoch.
            let u: f64 = rng.gen::<f64>().max(1e-12);
            let hold = (u.ln() / (1.0 - p).max(1e-12).ln()).ceil().max(1.0) as u64;
            t += hold;
            if t >= u64::from(total) {
                break;
            }
            flips.push(t as Epoch);
            up = !up;
        }
        FlipTimeline { initial: true, flips }
    }

    /// Sample a pure event process (every event flips the version).
    fn sample_events(total: u32, p: f64, rng: &mut StdRng) -> FlipTimeline {
        let mut flips = Vec::new();
        if p > 0.0 {
            let mut t = 0u64;
            loop {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                let hold = (u.ln() / (1.0 - p).max(1e-12).ln()).ceil().max(1.0) as u64;
                t += hold;
                if t >= u64::from(total) {
                    break;
                }
                flips.push(t as Epoch);
            }
        }
        FlipTimeline { initial: true, flips }
    }

    /// Is `link` usable at `epoch`?
    pub fn link_up(&self, link: LinkId, epoch: Epoch) -> bool {
        self.links[link.0 as usize].state_at(epoch)
    }

    /// Tiebreak salt for an AS at `epoch` (changes at TE-shift events).
    pub fn te_salt(&self, as_index: usize, epoch: Epoch) -> u64 {
        let version = self.te[as_index].version_at(epoch);
        crate::mix64(self.cfg.seed ^ ((as_index as u64) << 32) ^ u64::from(version))
    }

    /// The epoch mapper.
    pub fn mapper(&self) -> EpochMapper {
        self.mapper
    }

    /// Total epochs simulated.
    pub fn total_epochs(&self) -> u32 {
        self.total_epochs
    }

    /// The config used to build this timeline.
    pub fn config(&self) -> &ChurnConfig {
        &self.cfg
    }

    /// Count of link-state transitions over the whole period (diagnostics).
    pub fn total_link_events(&self) -> usize {
        self.links.iter().map(|l| l.flips.len()).sum()
    }

    /// Count of TE shift events over the whole period (diagnostics).
    pub fn total_te_events(&self) -> usize {
        self.te.iter().map(|l| l.flips.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_topology::{generator, WorldConfig, WorldScale};

    fn world() -> churnlab_topology::GeneratedWorld {
        generator::generate(&WorldConfig::preset(WorldScale::Smoke, 3))
    }

    #[test]
    fn frozen_config_has_no_events() {
        let w = world();
        let mut cfg = ChurnConfig::frozen(30);
        cfg.seed = 1;
        // Zero out stability: frozen() alone doesn't change link profiles,
        // so rebuild the world with churn_scale 0 for a truly event-free run.
        let mut wc = WorldConfig::preset(WorldScale::Smoke, 3);
        wc.churn_scale = 0.0;
        let w0 = generator::generate(&wc);
        let t = ChurnTimeline::build(&w0.topology, &cfg);
        // Tier-1 clique links keep a tiny epsilon flap rate; everything else
        // is zero, so events should be extremely rare (usually none).
        assert!(t.total_link_events() <= 2, "events: {}", t.total_link_events());
        assert_eq!(t.total_te_events(), 0);
        let _ = w;
    }

    #[test]
    fn default_config_produces_events() {
        let w = world();
        let t = ChurnTimeline::build(&w.topology, &ChurnConfig::default());
        assert!(t.total_link_events() > 0, "expected some link churn");
        assert!(t.total_te_events() > 0, "expected some TE churn");
    }

    #[test]
    fn timelines_deterministic() {
        let w = world();
        let a = ChurnTimeline::build(&w.topology, &ChurnConfig::default());
        let b = ChurnTimeline::build(&w.topology, &ChurnConfig::default());
        assert_eq!(a.total_link_events(), b.total_link_events());
        for l in 0..w.topology.n_links() {
            for e in [0u32, 100, 1000, 2000] {
                assert_eq!(a.link_up(LinkId(l as u32), e), b.link_up(LinkId(l as u32), e));
            }
        }
    }

    #[test]
    fn links_start_up() {
        let w = world();
        let t = ChurnTimeline::build(&w.topology, &ChurnConfig::default());
        for l in 0..w.topology.n_links() {
            assert!(t.link_up(LinkId(l as u32), 0), "link {l} must start up");
        }
    }

    #[test]
    fn flip_timeline_semantics() {
        let tl = FlipTimeline { initial: true, flips: vec![5, 10, 12] };
        assert!(tl.state_at(0));
        assert!(tl.state_at(4));
        assert!(!tl.state_at(5));
        assert!(!tl.state_at(9));
        assert!(tl.state_at(10));
        assert!(!tl.state_at(12));
        assert!(!tl.state_at(100));
        assert_eq!(tl.version_at(0), 0);
        assert_eq!(tl.version_at(5), 1);
        assert_eq!(tl.version_at(11), 2);
        assert_eq!(tl.version_at(99), 3);
    }

    #[test]
    fn te_salt_changes_only_at_events() {
        let w = world();
        let t = ChurnTimeline::build(&w.topology, &ChurnConfig::default());
        // Find an AS with at least one TE event.
        let idx = (0..w.topology.n_ases())
            .find(|&i| !t.te[i].flips.is_empty())
            .expect("some AS has TE events");
        let first_event = t.te[idx].flips[0];
        assert_eq!(t.te_salt(idx, 0), t.te_salt(idx, first_event - 1));
        assert_ne!(t.te_salt(idx, first_event - 1), t.te_salt(idx, first_event));
    }

    #[test]
    fn higher_flap_rate_more_events() {
        // Build two worlds differing only in churn scale.
        let mut lo_cfg = WorldConfig::preset(WorldScale::Smoke, 3);
        lo_cfg.churn_scale = 0.2;
        let mut hi_cfg = WorldConfig::preset(WorldScale::Smoke, 3);
        hi_cfg.churn_scale = 5.0;
        let lo = ChurnTimeline::build(&generator::generate(&lo_cfg).topology, &ChurnConfig::default());
        let hi = ChurnTimeline::build(&generator::generate(&hi_cfg).topology, &ChurnConfig::default());
        assert!(
            hi.total_link_events() > lo.total_link_events() * 2,
            "hi {} vs lo {}",
            hi.total_link_events(),
            lo.total_link_events()
        );
    }
}
