//! Per-destination route computation under Gao–Rexford policy.
//!
//! For one destination AS `d` and one snapshot of link state, computes
//! every AS's selected route to `d` via the standard three-stage
//! valley-free propagation:
//!
//! 1. **customer routes** — BFS from `d` along customer→provider edges
//!    (routes learned from customers propagate everywhere, including
//!    further up);
//! 2. **peer routes** — one peering hop off any AS holding a customer
//!    route (peer-learned routes are only exported to customers, so at
//!    most one peer edge appears, and only at the top of the path);
//! 3. **provider routes** — Dijkstra descending customer edges, where each
//!    AS advertises its *selected* route (class preference first: an AS
//!    with a customer route advertises that one even when a shorter
//!    provider route exists).
//!
//! Selection: customer > peer > provider, then shortest AS path, then a
//! **salted tiebreak** over the next-hop ASN. The salt comes from the
//! churn timeline's TE-shift process, so equal-cost choices drift over
//! time exactly like hot-potato routing does.

use crate::policy::RouteClass;
use churnlab_topology::graph::EdgeKind;
use churnlab_topology::{AsIdx, Asn, LinkId, Topology};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const INF: u16 = u16::MAX;

/// The route an AS selected toward the tree's destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectedRoute {
    /// How the route was learned.
    pub class: RouteClass,
    /// Shortest valley-free AS-path length (a lower bound; the actual
    /// forwarding path through preference-selected providers may be
    /// longer — see [`RouteTree::path_from`]).
    pub len: u16,
    /// Next hop (`None` only at the destination).
    pub next: Option<AsIdx>,
}

/// All selected routes toward one destination under one link-state/salt
/// snapshot.
#[derive(Debug, Clone)]
pub struct RouteTree {
    /// The destination AS.
    pub dest: AsIdx,
    routes: Vec<Option<SelectedRoute>>,
}

impl RouteTree {
    /// Compute the tree.
    ///
    /// * `link_up(link)` — live link state (from the churn timeline).
    /// * `salt(as_index)` — per-AS tiebreak salt (from the TE process).
    pub fn compute(
        topo: &Topology,
        dest: AsIdx,
        link_up: &dyn Fn(LinkId) -> bool,
        salt: &dyn Fn(usize) -> u64,
    ) -> RouteTree {
        let n = topo.n_ases();
        let d = dest.usize();

        // --- Stage 1: customer routes (BFS up). -------------------------
        let mut cust = vec![INF; n];
        cust[d] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(d);
        while let Some(x) = queue.pop_front() {
            for adj in topo.neighbors(AsIdx(x as u32)) {
                if adj.kind != EdgeKind::ToProvider || !link_up(adj.link) {
                    continue;
                }
                let p = adj.peer.usize();
                if cust[p] == INF {
                    cust[p] = cust[x] + 1;
                    queue.push_back(p);
                }
            }
        }

        // --- Stage 2: peer routes (one peering hop). ---------------------
        let mut peer = vec![INF; n];
        for (x, px) in peer.iter_mut().enumerate() {
            for adj in topo.neighbors(AsIdx(x as u32)) {
                if adj.kind != EdgeKind::ToPeer || !link_up(adj.link) {
                    continue;
                }
                let y = adj.peer.usize();
                if cust[y] != INF {
                    *px = (*px).min(cust[y] + 1);
                }
            }
        }
        peer[d] = INF; // the destination doesn't route to itself via a peer

        // Base (pre-provider) advertised length per node.
        let base_len = |x: usize, cust: &[u16], peer: &[u16]| -> u16 {
            if cust[x] != INF {
                cust[x]
            } else {
                peer[x]
            }
        };

        // --- Stage 3: provider routes (Dijkstra down). --------------------
        let mut prov = vec![INF; n];
        let mut adv = vec![INF; n];
        let mut heap: BinaryHeap<Reverse<(u16, usize)>> = BinaryHeap::new();
        for (x, ax) in adv.iter_mut().enumerate() {
            let b = base_len(x, &cust, &peer);
            if b != INF {
                *ax = b;
                heap.push(Reverse((b, x)));
            }
        }
        while let Some(Reverse((dist, x))) = heap.pop() {
            if dist > adv[x] {
                continue; // stale entry
            }
            for adj in topo.neighbors(AsIdx(x as u32)) {
                if adj.kind != EdgeKind::ToCustomer || !link_up(adj.link) {
                    continue;
                }
                let c = adj.peer.usize();
                let cand = dist.saturating_add(1);
                if cand < prov[c] {
                    prov[c] = cand;
                    // Class preference: a node with any base route keeps
                    // advertising it; only base-less nodes advertise
                    // provider routes onward.
                    if base_len(c, &cust, &peer) == INF && cand < adv[c] {
                        adv[c] = cand;
                        heap.push(Reverse((cand, c)));
                    }
                }
            }
        }

        // --- Selection + tiebroken next hops. ------------------------------
        let mut routes: Vec<Option<SelectedRoute>> = vec![None; n];
        for x in 0..n {
            let (class, len) = if cust[x] != INF {
                (RouteClass::Customer, cust[x])
            } else if peer[x] != INF {
                (RouteClass::Peer, peer[x])
            } else if prov[x] != INF {
                (RouteClass::Provider, prov[x])
            } else {
                continue; // unreachable under this link state
            };
            if x == d {
                routes[x] = Some(SelectedRoute { class: RouteClass::Customer, len: 0, next: None });
                continue;
            }
            // Candidate next hops. Within the customer and peer classes,
            // selection follows shortest AS path (intra-class economics are
            // equal, so length decides). Among *providers*, real networks
            // choose by local preference — a multihomed stub prefers one
            // upstream wholesale and re-prefers under traffic engineering —
            // so every provider holding any route is a candidate and the
            // salted hash decides. This is what lets TE shifts move a
            // stub's egress (and with it, the whole tail of the path),
            // producing the egress-level churn the paper observes.
            let want = len.saturating_sub(1);
            let mut best: Option<(u64, AsIdx)> = None;
            for adj in topo.neighbors(AsIdx(x as u32)) {
                if !link_up(adj.link) {
                    continue;
                }
                let yi = adj.peer.usize();
                let matches = match class {
                    RouteClass::Customer => adj.kind == EdgeKind::ToCustomer && cust[yi] == want,
                    RouteClass::Peer => adj.kind == EdgeKind::ToPeer && cust[yi] == want,
                    RouteClass::Provider => {
                        adj.kind == EdgeKind::ToProvider && adv[yi] != INF
                    }
                };
                if matches {
                    let key = crate::mix64(salt(x) ^ u64::from(topo.asn(adj.peer).0));
                    if best.map(|(k, _)| key < k).unwrap_or(true) {
                        best = Some((key, adj.peer));
                    }
                }
            }
            let next = best.map(|(_, y)| y).expect("finite length implies a candidate");
            // `len` is the shortest valley-free length (a lower bound);
            // the forwarding path through a preference-selected provider
            // may be longer. `path_from` reports the real path.
            routes[x] = Some(SelectedRoute { class, len, next: Some(next) });
        }
        RouteTree { dest, routes }
    }

    /// The selected route at `src`, if `src` can reach the destination.
    pub fn route(&self, src: AsIdx) -> Option<&SelectedRoute> {
        self.routes[src.usize()].as_ref()
    }

    /// The AS-level forwarding path from `src` to the destination,
    /// inclusive of both ends. `None` if unreachable.
    pub fn path_from(&self, src: AsIdx) -> Option<Vec<AsIdx>> {
        let mut path = vec![src];
        let mut cur = src;
        let mut guard = 0;
        while cur != self.dest {
            let r = self.routes[cur.usize()].as_ref()?;
            let next = r.next?;
            path.push(next);
            cur = next;
            guard += 1;
            if guard > self.routes.len() {
                unreachable!(
                    "forwarding loop: the up-phase follows the acyclic provider \
                     DAG and the down-phase strictly decreases customer length"
                );
            }
        }
        Some(path)
    }

    /// Same as [`RouteTree::path_from`], returned as ASNs.
    pub fn asn_path_from(&self, topo: &Topology, src: AsIdx) -> Option<Vec<Asn>> {
        self.path_from(src)
            .map(|p| p.into_iter().map(|i| topo.asn(i)).collect())
    }

    /// Number of ASes that can reach the destination.
    pub fn reachable_count(&self) -> usize {
        self.routes.iter().filter(|r| r.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_topology::asys::{AsClass, AsInfo, AsRole};
    use churnlab_topology::geo::{countries, CountryCode};
    use churnlab_topology::links::{Link, LinkStability};
    use churnlab_topology::{generator, WorldConfig, WorldScale};

    fn mk(asn: u32, role: AsRole) -> AsInfo {
        AsInfo {
            asn: Asn(asn),
            name: format!("AS{asn}"),
            country: CountryCode::new("US"),
            class: AsClass::TransitAccess,
            role,
        }
    }

    /// Diamond: stub 5 multihomed to nationals 2 and 3, both under tier-1 1;
    /// destination stub 6 under national 3. Also national 2 peers with 3.
    fn diamond() -> Topology {
        let mut t = Topology::new(countries(3));
        t.add_as(mk(1, AsRole::Tier1)).unwrap();
        t.add_as(mk(2, AsRole::NationalTransit)).unwrap();
        t.add_as(mk(3, AsRole::NationalTransit)).unwrap();
        t.add_as(mk(5, AsRole::Stub)).unwrap();
        t.add_as(mk(6, AsRole::Stub)).unwrap();
        let s = LinkStability::stable;
        t.add_link(Link::transit(Asn(2), Asn(1), s())).unwrap();
        t.add_link(Link::transit(Asn(3), Asn(1), s())).unwrap();
        t.add_link(Link::transit(Asn(5), Asn(2), s())).unwrap();
        t.add_link(Link::transit(Asn(5), Asn(3), s())).unwrap();
        t.add_link(Link::transit(Asn(6), Asn(3), s())).unwrap();
        t.add_link(Link::peering(Asn(2), Asn(3), s())).unwrap();
        t
    }

    fn all_up(_: LinkId) -> bool {
        true
    }

    fn no_salt(_: usize) -> u64 {
        0
    }

    #[test]
    fn provider_selection_is_preference_based() {
        let t = diamond();
        let dest = t.idx(Asn(6)).unwrap();
        let src = t.idx(Asn(5)).unwrap();
        // Among providers, local preference (the salt) decides — both of
        // 5's uplinks are legitimate egresses, and across salts both must
        // appear; every resulting path ends at 6 without loops.
        let mut firsts = std::collections::HashSet::new();
        for sv in 0..16u64 {
            let salt = move |x: usize| crate::mix64(sv ^ (x as u64) << 8);
            let tree = RouteTree::compute(&t, dest, &all_up, &salt);
            let path = tree.asn_path_from(&t, src).unwrap();
            assert_eq!(*path.last().unwrap(), Asn(6));
            let mut seen = std::collections::HashSet::new();
            assert!(path.iter().all(|a| seen.insert(*a)), "loop in {path:?}");
            firsts.insert(path[1]);
        }
        assert!(
            firsts.contains(&Asn(2)) && firsts.contains(&Asn(3)),
            "both egresses should be exercised across salts: {firsts:?}"
        );
    }

    #[test]
    fn customer_route_preferred_over_shorter_paths() {
        // Destination = tier-1's customer cone: from AS 3's perspective,
        // reaching 6 is a customer route; from 2, it must be peer (2–3) or
        // up through 1 — peer preferred over provider by class even though
        // both are length 2 here.
        let t = diamond();
        let dest = t.idx(Asn(6)).unwrap();
        let tree = RouteTree::compute(&t, dest, &all_up, &no_salt);
        let r2 = tree.route(t.idx(Asn(2)).unwrap()).unwrap();
        assert_eq!(r2.class, RouteClass::Peer, "peer (2-3-6) must beat provider (2-1-3-6)");
        assert_eq!(r2.len, 2);
        let r1 = tree.route(t.idx(Asn(1)).unwrap()).unwrap();
        assert_eq!(r1.class, RouteClass::Customer, "1 reaches 6 down its customer cone");
    }

    #[test]
    fn dest_route_is_zero_len() {
        let t = diamond();
        let dest = t.idx(Asn(6)).unwrap();
        let tree = RouteTree::compute(&t, dest, &all_up, &no_salt);
        let r = tree.route(dest).unwrap();
        assert_eq!(r.len, 0);
        assert!(r.next.is_none());
        assert_eq!(tree.path_from(dest).unwrap(), vec![dest]);
    }

    #[test]
    fn link_failure_reroutes() {
        let t = diamond();
        let dest = t.idx(Asn(6)).unwrap();
        let src = t.idx(Asn(5)).unwrap();
        // Find the 5→3 link and kill it.
        let dead: Vec<LinkId> = t
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.key() == (Asn(3), Asn(5)))
            .map(|(i, _)| LinkId(i as u32))
            .collect();
        assert_eq!(dead.len(), 1);
        let down = dead[0];
        let link_up = move |l: LinkId| l != down;
        let tree = RouteTree::compute(&t, dest, &link_up, &no_salt);
        let path = tree.asn_path_from(&t, src).unwrap();
        // Must route around: 5 → 2 → 3 → 6 (peer at the top).
        assert_eq!(path, vec![Asn(5), Asn(2), Asn(3), Asn(6)]);
    }

    #[test]
    fn total_isolation_returns_none() {
        let t = diamond();
        let dest = t.idx(Asn(6)).unwrap();
        let src = t.idx(Asn(5)).unwrap();
        // Kill both of 5's uplinks.
        let dead: Vec<LinkId> = t
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.a == Asn(5) || l.b == Asn(5))
            .map(|(i, _)| LinkId(i as u32))
            .collect();
        let link_up = move |l: LinkId| !dead.contains(&l);
        let tree = RouteTree::compute(&t, dest, &link_up, &no_salt);
        assert!(tree.path_from(src).is_none());
        assert!(tree.route(src).is_none());
    }

    #[test]
    fn salt_flips_equal_cost_choice() {
        // Make 5 dual-homed to 2 and 3 with equal-length routes to dest 7
        // hosted under tier-1 1: 5→2→1→? … need symmetric shape. Add dest
        // under 1 directly.
        let mut t = diamond();
        t.add_as(mk(7, AsRole::Stub)).unwrap();
        t.add_link(Link::transit(Asn(7), Asn(1), LinkStability::stable())).unwrap();
        let dest = t.idx(Asn(7)).unwrap();
        let src = t.idx(Asn(5)).unwrap();
        // 5→2→1→7 and 5→3→1→7 are both provider routes of length 3.
        let mut seen = std::collections::HashSet::new();
        for s in 0..32u64 {
            let salt = move |x: usize| crate::mix64(s ^ x as u64);
            let tree = RouteTree::compute(&t, dest, &all_up, &salt);
            let path = tree.asn_path_from(&t, src).unwrap();
            assert_eq!(path.len(), 4);
            seen.insert(path[1]);
        }
        assert_eq!(
            seen.len(),
            2,
            "32 salts should exercise both equal-cost next hops, saw {seen:?}"
        );
    }

    #[test]
    fn all_paths_valley_free_on_generated_worlds() {
        use crate::policy::{is_valley_free, StepKind};
        for seed in 0..4 {
            let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, seed));
            let t = &w.topology;
            let dests: Vec<AsIdx> = t.select(|a| a.role == AsRole::Stub);
            for &dest in dests.iter().take(4) {
                let tree = RouteTree::compute(t, dest, &all_up, &no_salt);
                for src in 0..t.n_ases() {
                    let src = AsIdx(src as u32);
                    if let Some(path) = tree.path_from(src) {
                        let steps: Vec<StepKind> = path
                            .windows(2)
                            .map(|w2| {
                                let adj = t
                                    .neighbors(w2[0])
                                    .iter()
                                    .find(|a| a.peer == w2[1])
                                    .expect("path uses real edges");
                                match adj.kind {
                                    EdgeKind::ToProvider => StepKind::Up,
                                    EdgeKind::ToPeer => StepKind::Peer,
                                    EdgeKind::ToCustomer => StepKind::Down,
                                }
                            })
                            .collect();
                        assert!(
                            is_valley_free(&steps),
                            "valley in path {:?} (seed {seed})",
                            tree.asn_path_from(t, src)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn everyone_reachable_when_all_links_up() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 9));
        let t = &w.topology;
        let dest = t.select(|a| a.role == AsRole::Stub)[0];
        let tree = RouteTree::compute(t, dest, &all_up, &no_salt);
        assert_eq!(tree.reachable_count(), t.n_ases());
    }

    #[test]
    fn path_lengths_lower_bounded_by_selected_len() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 2));
        let t = &w.topology;
        let dest = t.select(|a| a.role == AsRole::Stub)[0];
        let tree = RouteTree::compute(t, dest, &all_up, &no_salt);
        for src in 0..t.n_ases() {
            let src = AsIdx(src as u32);
            if let (Some(r), Some(p)) = (tree.route(src), tree.path_from(src)) {
                assert!(
                    p.len() > r.len as usize,
                    "selected len must lower-bound the real path at {}",
                    t.asn(src)
                );
            }
        }
    }
}
