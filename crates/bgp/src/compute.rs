//! Per-destination route computation under Gao–Rexford policy.
//!
//! For one destination AS `d` and one snapshot of link state, computes
//! every AS's selected route to `d` via the standard three-stage
//! valley-free propagation:
//!
//! 1. **customer routes** — BFS from `d` along customer→provider edges
//!    (routes learned from customers propagate everywhere, including
//!    further up);
//! 2. **peer routes** — one peering hop off any AS holding a customer
//!    route (peer-learned routes are only exported to customers, so at
//!    most one peer edge appears, and only at the top of the path);
//! 3. **provider routes** — Dijkstra descending customer edges, where each
//!    AS advertises its *selected* route (class preference first: an AS
//!    with a customer route advertises that one even when a shorter
//!    provider route exists).
//!
//! Selection: customer > peer > provider, then shortest AS path, then a
//! **salted tiebreak** over the next-hop ASN. The salt comes from the
//! churn timeline's TE-shift process, so equal-cost choices drift over
//! time exactly like hot-potato routing does.
//!
//! ## Internet-scale layout
//!
//! At CAIDA scale (~80k ASes, ~700k edges) a tree is computed hundreds of
//! thousands of times per study, so this module is built for steady-state
//! zero allocation and compactness:
//!
//! * all per-tree working state lives in a caller-owned [`TreeScratch`]
//!   that [`RouteTree::compute_into`] reuses — after the first tree no
//!   allocation happens as long as the world doesn't grow;
//! * the link-state and salt closures are sampled **once per link / once
//!   per AS** into flat arrays up front, instead of a dyn-dispatched
//!   binary search per edge visit (the old dominant cost);
//! * [`SelectedRoute`] is packed to 8 bytes (`u32` next hop, `u16`
//!   length, class byte), so a Huge tree is ~500 KB instead of several
//!   MB of `Option` padding.

use crate::policy::RouteClass;
use churnlab_topology::{AsIdx, Asn, LinkId, Topology};
use std::collections::VecDeque;

const INF: u16 = u16::MAX;
const NO_NEXT: u32 = u32::MAX;

/// The route an AS selected toward the tree's destination, packed into
/// 8 bytes. Unreachable nodes hold a sentinel (`len() == u16::MAX`
/// internally) and are surfaced as `None` by [`RouteTree::route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectedRoute {
    next: u32,
    len: u16,
    class: u8,
}

const _: () = assert!(std::mem::size_of::<SelectedRoute>() == 8);

impl SelectedRoute {
    const UNREACHABLE: SelectedRoute = SelectedRoute { next: NO_NEXT, len: INF, class: 0 };

    #[inline]
    fn reachable(self) -> bool {
        self.len != INF
    }

    /// How the route was learned.
    #[inline]
    pub fn class(self) -> RouteClass {
        match self.class {
            0 => RouteClass::Customer,
            1 => RouteClass::Peer,
            _ => RouteClass::Provider,
        }
    }

    /// Shortest valley-free AS-path length (a lower bound; the actual
    /// forwarding path through preference-selected providers may be
    /// longer — see [`RouteTree::path_from`]).
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u16 {
        self.len
    }

    /// Next hop (`None` only at the destination).
    #[inline]
    pub fn next(self) -> Option<AsIdx> {
        (self.next != NO_NEXT).then_some(AsIdx(self.next))
    }
}

/// Reusable working state for [`RouteTree::compute_into`].
///
/// Holds the per-stage distance arrays, the BFS queue, the Dijkstra
/// heap, the link-state bitmap, and the per-AS salt cache. All buffers
/// grow to the world's size on first use and are then recycled: in
/// steady state a tree computation performs **zero** heap allocations
/// (the `route_bench` binary asserts this with a counting allocator).
#[derive(Debug, Default)]
pub struct TreeScratch {
    cust: Vec<u16>,
    peer: Vec<u16>,
    prov: Vec<u16>,
    adv: Vec<u16>,
    queue: VecDeque<u32>,
    /// Dial's bucket queue for the provider descent: every edge has unit
    /// weight, so a per-length bucket gives O(1) push/pop where a binary
    /// heap pays a log factor per operation.
    buckets: Vec<Vec<u32>>,
    /// One bit per link: up (1) or down (0) under this snapshot.
    up: Vec<u64>,
    /// Per-AS tiebreak salt under this snapshot.
    salts: Vec<u64>,
}

impl TreeScratch {
    /// Empty scratch; buffers are sized lazily by the first compute.
    pub fn new() -> Self {
        TreeScratch::default()
    }
}

/// All selected routes toward one destination under one link-state/salt
/// snapshot.
#[derive(Debug, Clone)]
pub struct RouteTree {
    /// The destination AS.
    pub dest: AsIdx,
    routes: Vec<SelectedRoute>,
}

impl RouteTree {
    /// An empty tree to [`compute_into`](RouteTree::compute_into). The
    /// placeholder destination is overwritten by the first compute.
    pub fn empty() -> RouteTree {
        RouteTree { dest: AsIdx(0), routes: Vec::new() }
    }

    /// Compute the tree (convenience wrapper over
    /// [`RouteTree::compute_into`] with throwaway scratch).
    ///
    /// * `link_up(link)` — live link state (from the churn timeline).
    /// * `salt(as_index)` — per-AS tiebreak salt (from the TE process).
    pub fn compute(
        topo: &Topology,
        dest: AsIdx,
        link_up: &dyn Fn(LinkId) -> bool,
        salt: &dyn Fn(usize) -> u64,
    ) -> RouteTree {
        let mut scratch = TreeScratch::new();
        let mut tree = RouteTree::empty();
        RouteTree::compute_into(&mut scratch, topo, dest, link_up, salt, &mut tree);
        tree
    }

    /// Compute the tree into `out`, reusing `scratch` across calls.
    ///
    /// `link_up` is sampled exactly once per link and `salt` once per AS
    /// (into scratch-owned flat arrays), so closure cost is linear in the
    /// world, not in edge visits. Allocation-free once `scratch` and
    /// `out` have seen the world's size.
    pub fn compute_into(
        scratch: &mut TreeScratch,
        topo: &Topology,
        dest: AsIdx,
        link_up: &dyn Fn(LinkId) -> bool,
        salt: &dyn Fn(usize) -> u64,
        out: &mut RouteTree,
    ) {
        assert!(
            topo.is_frozen(),
            "RouteTree::compute_into requires a frozen (CSR) topology: \
             the stages walk per-kind adjacency slices"
        );
        let n = topo.n_ases();
        let d = dest.usize();
        let TreeScratch { cust, peer, prov, adv, queue, buckets, up, salts } = scratch;

        // --- Snapshot the closures into flat arrays. ---------------------
        let n_links = topo.n_links();
        up.clear();
        up.resize(n_links.div_ceil(64), 0);
        for l in 0..n_links {
            if link_up(LinkId(l as u32)) {
                up[l >> 6] |= 1u64 << (l & 63);
            }
        }
        let live = |l: LinkId| -> bool {
            let i = l.0 as usize;
            (up[i >> 6] >> (i & 63)) & 1 == 1
        };
        salts.clear();
        salts.resize(n, 0);
        for (x, s) in salts.iter_mut().enumerate() {
            *s = salt(x);
        }

        // --- Stage 1: customer routes (BFS up). -------------------------
        cust.clear();
        cust.resize(n, INF);
        cust[d] = 0;
        queue.clear();
        queue.push_back(d as u32);
        while let Some(x) = queue.pop_front() {
            let cx = cust[x as usize];
            for adj in topo.provider_edges(AsIdx(x)) {
                if !live(adj.link) {
                    continue;
                }
                let p = adj.peer.usize();
                if cust[p] == INF {
                    cust[p] = cx + 1;
                    queue.push_back(adj.peer.0);
                }
            }
        }

        // --- Stage 2: peer routes (one peering hop). ---------------------
        peer.clear();
        peer.resize(n, INF);
        for (x, px) in peer.iter_mut().enumerate() {
            for adj in topo.peer_edges(AsIdx(x as u32)) {
                if !live(adj.link) {
                    continue;
                }
                let y = adj.peer.usize();
                if cust[y] != INF {
                    *px = (*px).min(cust[y] + 1);
                }
            }
        }
        peer[d] = INF; // the destination doesn't route to itself via a peer

        // Base (pre-provider) advertised length per node.
        let base_len = |x: usize, cust: &[u16], peer: &[u16]| -> u16 {
            if cust[x] != INF {
                cust[x]
            } else {
                peer[x]
            }
        };

        // --- Stage 3: provider routes (Dial's bucket descent). ------------
        // Every edge has unit weight, so Dijkstra degenerates to processing
        // advertised lengths in increasing order through per-length buckets
        // (O(1) push/pop instead of a heap's log factor). All buckets drain
        // to empty by the end, so no cross-tree cleanup is needed.
        prov.clear();
        prov.resize(n, INF);
        adv.clear();
        adv.resize(n, INF);
        debug_assert!(buckets.iter().all(Vec::is_empty));
        let push = |buckets: &mut Vec<Vec<u32>>, len: u16, x: u32| {
            let len = len as usize;
            if buckets.len() <= len {
                buckets.resize_with(len + 1, Vec::new);
            }
            buckets[len].push(x);
        };
        for (x, ax) in adv.iter_mut().enumerate() {
            let b = base_len(x, cust, peer);
            if b != INF {
                *ax = b;
                push(buckets, b, x as u32);
            }
        }
        let mut dist: u16 = 0;
        while (dist as usize) < buckets.len() {
            while let Some(x) = buckets[dist as usize].pop() {
                if dist > adv[x as usize] {
                    continue; // stale entry, improved since queued
                }
                for adj in topo.customer_edges(AsIdx(x)) {
                    if !live(adj.link) {
                        continue;
                    }
                    let c = adj.peer.usize();
                    let cand = dist + 1;
                    if cand < prov[c] {
                        prov[c] = cand;
                        // Class preference: a node with any base route keeps
                        // advertising it; only base-less nodes advertise
                        // provider routes onward.
                        if base_len(c, cust, peer) == INF && cand < adv[c] {
                            adv[c] = cand;
                            push(buckets, cand, adj.peer.0);
                        }
                    }
                }
            }
            dist += 1;
        }

        // --- Selection + tiebroken next hops. ------------------------------
        out.dest = dest;
        let routes = &mut out.routes;
        routes.clear();
        routes.resize(n, SelectedRoute::UNREACHABLE);
        for x in 0..n {
            let (class, len) = if cust[x] != INF {
                (RouteClass::Customer, cust[x])
            } else if peer[x] != INF {
                (RouteClass::Peer, peer[x])
            } else if prov[x] != INF {
                (RouteClass::Provider, prov[x])
            } else {
                continue; // unreachable under this link state
            };
            if x == d {
                routes[x] = SelectedRoute { next: NO_NEXT, len: 0, class: 0 };
                continue;
            }
            // Candidate next hops. Within the customer and peer classes,
            // selection follows shortest AS path (intra-class economics are
            // equal, so length decides). Among *providers*, real networks
            // choose by local preference — a multihomed stub prefers one
            // upstream wholesale and re-prefers under traffic engineering —
            // so every provider holding any route is a candidate and the
            // salted hash decides. This is what lets TE shifts move a
            // stub's egress (and with it, the whole tail of the path),
            // producing the egress-level churn the paper observes.
            let want = len.saturating_sub(1);
            let sx = salts[x];
            let mut best_key = u64::MAX;
            let mut best: u32 = NO_NEXT;
            // Candidates live entirely in the slice matching the selected
            // class, so only that kind's run is scanned.
            let xi = AsIdx(x as u32);
            let candidates = match class {
                RouteClass::Customer => topo.customer_edges(xi),
                RouteClass::Peer => topo.peer_edges(xi),
                RouteClass::Provider => topo.provider_edges(xi),
            };
            for adj in candidates {
                if !live(adj.link) {
                    continue;
                }
                let yi = adj.peer.usize();
                let matches = match class {
                    RouteClass::Customer | RouteClass::Peer => cust[yi] == want,
                    RouteClass::Provider => adv[yi] != INF,
                };
                if matches {
                    let key = crate::mix64(sx ^ u64::from(topo.asn(adj.peer).0));
                    if key < best_key || best == NO_NEXT {
                        best_key = key;
                        best = adj.peer.0;
                    }
                }
            }
            debug_assert!(best != NO_NEXT, "finite length implies a candidate");
            // `len` is the shortest valley-free length (a lower bound);
            // the forwarding path through a preference-selected provider
            // may be longer. `path_from` reports the real path.
            routes[x] = SelectedRoute { next: best, len, class: class.rank() };
        }
    }

    /// The selected route at `src`, if `src` can reach the destination.
    pub fn route(&self, src: AsIdx) -> Option<SelectedRoute> {
        let r = self.routes[src.usize()];
        r.reachable().then_some(r)
    }

    /// Append the AS-level forwarding path from `src` to the destination
    /// (inclusive of both ends) onto `out` after clearing it. Returns
    /// `false` — leaving `out` empty — if the destination is unreachable
    /// from `src`. The allocation-free form of [`RouteTree::path_from`].
    pub fn path_into(&self, src: AsIdx, out: &mut Vec<AsIdx>) -> bool {
        out.clear();
        if !self.routes[src.usize()].reachable() {
            return false;
        }
        out.push(src);
        let mut cur = src;
        while cur != self.dest {
            let r = self.routes[cur.usize()];
            let Some(next) = r.next() else {
                out.clear();
                return false;
            };
            out.push(next);
            cur = next;
            if out.len() > self.routes.len() {
                unreachable!(
                    "forwarding loop: the up-phase follows the acyclic provider \
                     DAG and the down-phase strictly decreases customer length"
                );
            }
        }
        true
    }

    /// Like [`RouteTree::path_into`], mapped to ASNs.
    pub fn asn_path_into(&self, topo: &Topology, src: AsIdx, out: &mut Vec<Asn>) -> bool {
        out.clear();
        if !self.routes[src.usize()].reachable() {
            return false;
        }
        out.push(topo.asn(src));
        let mut cur = src;
        let mut guard = 0usize;
        while cur != self.dest {
            let r = self.routes[cur.usize()];
            let Some(next) = r.next() else {
                out.clear();
                return false;
            };
            out.push(topo.asn(next));
            cur = next;
            guard += 1;
            if guard > self.routes.len() {
                unreachable!("forwarding loop (see path_into)");
            }
        }
        true
    }

    /// The AS-level forwarding path from `src` to the destination,
    /// inclusive of both ends. `None` if unreachable.
    pub fn path_from(&self, src: AsIdx) -> Option<Vec<AsIdx>> {
        let mut path = Vec::new();
        self.path_into(src, &mut path).then_some(path)
    }

    /// Same as [`RouteTree::path_from`], returned as ASNs.
    pub fn asn_path_from(&self, topo: &Topology, src: AsIdx) -> Option<Vec<Asn>> {
        self.path_from(src).map(|p| p.into_iter().map(|i| topo.asn(i)).collect())
    }

    /// Number of ASes that can reach the destination.
    pub fn reachable_count(&self) -> usize {
        self.routes.iter().filter(|r| r.reachable()).count()
    }

    /// Bytes held by the route table (8 per AS) — cache sizing input.
    pub fn route_bytes(&self) -> usize {
        self.routes.len() * std::mem::size_of::<SelectedRoute>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_topology::asys::{AsClass, AsInfo, AsRole};
    use churnlab_topology::graph::EdgeKind;
    use churnlab_topology::geo::{countries, CountryCode};
    use churnlab_topology::links::{Link, LinkStability};
    use churnlab_topology::{generator, WorldConfig, WorldScale};

    fn mk(asn: u32, role: AsRole) -> AsInfo {
        AsInfo {
            asn: Asn(asn),
            name: format!("AS{asn}"),
            country: CountryCode::new("US"),
            class: AsClass::TransitAccess,
            role,
        }
    }

    /// Diamond: stub 5 multihomed to nationals 2 and 3, both under tier-1 1;
    /// destination stub 6 under national 3. Also national 2 peers with 3.
    fn diamond() -> Topology {
        let mut t = Topology::new(countries(3));
        t.add_as(mk(1, AsRole::Tier1)).unwrap();
        t.add_as(mk(2, AsRole::NationalTransit)).unwrap();
        t.add_as(mk(3, AsRole::NationalTransit)).unwrap();
        t.add_as(mk(5, AsRole::Stub)).unwrap();
        t.add_as(mk(6, AsRole::Stub)).unwrap();
        let s = LinkStability::stable;
        t.add_link(Link::transit(Asn(2), Asn(1), s())).unwrap();
        t.add_link(Link::transit(Asn(3), Asn(1), s())).unwrap();
        t.add_link(Link::transit(Asn(5), Asn(2), s())).unwrap();
        t.add_link(Link::transit(Asn(5), Asn(3), s())).unwrap();
        t.add_link(Link::transit(Asn(6), Asn(3), s())).unwrap();
        t.add_link(Link::peering(Asn(2), Asn(3), s())).unwrap();
        t.freeze();
        t
    }

    fn all_up(_: LinkId) -> bool {
        true
    }

    fn no_salt(_: usize) -> u64 {
        0
    }

    #[test]
    fn selected_route_is_packed() {
        assert_eq!(std::mem::size_of::<SelectedRoute>(), 8);
        assert_eq!(std::mem::size_of::<Option<SelectedRoute>>(), 8 + 4); // why we sentinel
    }

    #[test]
    fn provider_selection_is_preference_based() {
        let t = diamond();
        let dest = t.idx(Asn(6)).unwrap();
        let src = t.idx(Asn(5)).unwrap();
        // Among providers, local preference (the salt) decides — both of
        // 5's uplinks are legitimate egresses, and across salts both must
        // appear; every resulting path ends at 6 without loops.
        let mut firsts = std::collections::HashSet::new();
        for sv in 0..16u64 {
            let salt = move |x: usize| crate::mix64(sv ^ (x as u64) << 8);
            let tree = RouteTree::compute(&t, dest, &all_up, &salt);
            let path = tree.asn_path_from(&t, src).unwrap();
            assert_eq!(*path.last().unwrap(), Asn(6));
            let mut seen = std::collections::HashSet::new();
            assert!(path.iter().all(|a| seen.insert(*a)), "loop in {path:?}");
            firsts.insert(path[1]);
        }
        assert!(
            firsts.contains(&Asn(2)) && firsts.contains(&Asn(3)),
            "both egresses should be exercised across salts: {firsts:?}"
        );
    }

    #[test]
    fn customer_route_preferred_over_shorter_paths() {
        // Destination = tier-1's customer cone: from AS 3's perspective,
        // reaching 6 is a customer route; from 2, it must be peer (2–3) or
        // up through 1 — peer preferred over provider by class even though
        // both are length 2 here.
        let t = diamond();
        let dest = t.idx(Asn(6)).unwrap();
        let tree = RouteTree::compute(&t, dest, &all_up, &no_salt);
        let r2 = tree.route(t.idx(Asn(2)).unwrap()).unwrap();
        assert_eq!(r2.class(), RouteClass::Peer, "peer (2-3-6) must beat provider (2-1-3-6)");
        assert_eq!(r2.len(), 2);
        let r1 = tree.route(t.idx(Asn(1)).unwrap()).unwrap();
        assert_eq!(r1.class(), RouteClass::Customer, "1 reaches 6 down its customer cone");
    }

    #[test]
    fn dest_route_is_zero_len() {
        let t = diamond();
        let dest = t.idx(Asn(6)).unwrap();
        let tree = RouteTree::compute(&t, dest, &all_up, &no_salt);
        let r = tree.route(dest).unwrap();
        assert_eq!(r.len(), 0);
        assert!(r.next().is_none());
        assert_eq!(tree.path_from(dest).unwrap(), vec![dest]);
    }

    #[test]
    fn scratch_reuse_matches_fresh_compute() {
        // One scratch + one output tree across many (dest, link-state)
        // combinations must agree exactly with throwaway computes.
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 5));
        let t = &w.topology;
        let mut scratch = TreeScratch::new();
        let mut tree = RouteTree::empty();
        for (i, dest) in t.select(|a| a.role == AsRole::Stub).into_iter().take(6).enumerate() {
            let dead = LinkId((i % t.n_links()) as u32);
            let link_up = move |l: LinkId| l != dead;
            let salt = move |x: usize| crate::mix64((i as u64) << 17 ^ x as u64);
            RouteTree::compute_into(&mut scratch, t, dest, &link_up, &salt, &mut tree);
            let fresh = RouteTree::compute(t, dest, &link_up, &salt);
            assert_eq!(tree.dest, fresh.dest);
            for x in 0..t.n_ases() {
                assert_eq!(
                    tree.route(AsIdx(x as u32)),
                    fresh.route(AsIdx(x as u32)),
                    "route mismatch at {x} for dest {dest:?}"
                );
            }
        }
    }

    #[test]
    fn path_into_matches_path_from_and_reuses_buffer() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 8));
        let t = &w.topology;
        let dest = t.select(|a| a.role == AsRole::Stub)[0];
        let tree = RouteTree::compute(t, dest, &all_up, &no_salt);
        let mut buf = Vec::new();
        let mut asn_buf = Vec::new();
        for x in 0..t.n_ases() {
            let src = AsIdx(x as u32);
            let got = tree.path_into(src, &mut buf);
            assert_eq!(got.then(|| buf.clone()), tree.path_from(src));
            let got_asn = tree.asn_path_into(t, src, &mut asn_buf);
            assert_eq!(got_asn.then(|| asn_buf.clone()), tree.asn_path_from(t, src));
        }
    }

    #[test]
    fn link_failure_reroutes() {
        let t = diamond();
        let dest = t.idx(Asn(6)).unwrap();
        let src = t.idx(Asn(5)).unwrap();
        // Find the 5→3 link and kill it.
        let dead: Vec<LinkId> = t
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.key() == (Asn(3), Asn(5)))
            .map(|(i, _)| LinkId(i as u32))
            .collect();
        assert_eq!(dead.len(), 1);
        let down = dead[0];
        let link_up = move |l: LinkId| l != down;
        let tree = RouteTree::compute(&t, dest, &link_up, &no_salt);
        let path = tree.asn_path_from(&t, src).unwrap();
        // Must route around: 5 → 2 → 3 → 6 (peer at the top).
        assert_eq!(path, vec![Asn(5), Asn(2), Asn(3), Asn(6)]);
    }

    #[test]
    fn total_isolation_returns_none() {
        let t = diamond();
        let dest = t.idx(Asn(6)).unwrap();
        let src = t.idx(Asn(5)).unwrap();
        // Kill both of 5's uplinks.
        let dead: Vec<LinkId> = t
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.a == Asn(5) || l.b == Asn(5))
            .map(|(i, _)| LinkId(i as u32))
            .collect();
        let link_up = move |l: LinkId| !dead.contains(&l);
        let tree = RouteTree::compute(&t, dest, &link_up, &no_salt);
        assert!(tree.path_from(src).is_none());
        assert!(tree.route(src).is_none());
        let mut buf = vec![AsIdx(7)];
        assert!(!tree.path_into(src, &mut buf));
        assert!(buf.is_empty(), "failed path_into must leave the buffer empty");
    }

    #[test]
    fn salt_flips_equal_cost_choice() {
        // Make 5 dual-homed to 2 and 3 with equal-length routes to dest 7
        // hosted under tier-1 1: 5→2→1→? … need symmetric shape. Add dest
        // under 1 directly.
        let mut t = diamond();
        t.add_as(mk(7, AsRole::Stub)).unwrap();
        t.add_link(Link::transit(Asn(7), Asn(1), LinkStability::stable())).unwrap();
        t.freeze(); // mutation thawed the topology; compute needs CSR
        let dest = t.idx(Asn(7)).unwrap();
        let src = t.idx(Asn(5)).unwrap();
        // 5→2→1→7 and 5→3→1→7 are both provider routes of length 3.
        let mut seen = std::collections::HashSet::new();
        for s in 0..32u64 {
            let salt = move |x: usize| crate::mix64(s ^ x as u64);
            let tree = RouteTree::compute(&t, dest, &all_up, &salt);
            let path = tree.asn_path_from(&t, src).unwrap();
            assert_eq!(path.len(), 4);
            seen.insert(path[1]);
        }
        assert_eq!(
            seen.len(),
            2,
            "32 salts should exercise both equal-cost next hops, saw {seen:?}"
        );
    }

    #[test]
    fn all_paths_valley_free_on_generated_worlds() {
        use crate::policy::{is_valley_free, StepKind};
        for seed in 0..4 {
            let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, seed));
            let t = &w.topology;
            let dests: Vec<AsIdx> = t.select(|a| a.role == AsRole::Stub);
            for &dest in dests.iter().take(4) {
                let tree = RouteTree::compute(t, dest, &all_up, &no_salt);
                for src in 0..t.n_ases() {
                    let src = AsIdx(src as u32);
                    if let Some(path) = tree.path_from(src) {
                        let steps: Vec<StepKind> = path
                            .windows(2)
                            .map(|w2| {
                                let adj = t
                                    .neighbors(w2[0])
                                    .iter()
                                    .find(|a| a.peer == w2[1])
                                    .expect("path uses real edges");
                                match adj.kind {
                                    EdgeKind::ToProvider => StepKind::Up,
                                    EdgeKind::ToPeer => StepKind::Peer,
                                    EdgeKind::ToCustomer => StepKind::Down,
                                }
                            })
                            .collect();
                        assert!(
                            is_valley_free(&steps),
                            "valley in path {:?} (seed {seed})",
                            tree.asn_path_from(t, src)
                        );
                    }
                }
            }
        }
    }

    /// The Huge preset shrunk ~40x so the preferential-attachment family
    /// is exercised by debug-mode tests; full Huge runs in the release
    /// bench/CI smoke.
    fn mini_pa(seed: u64) -> WorldConfig {
        let mut cfg = WorldConfig::preset(WorldScale::Huge, seed);
        cfg.n_countries = 20;
        cfg.n_tier1 = 5;
        cfg.pa_transits = 150;
        cfg.pa_stubs = 1_200;
        cfg.pa_peering_links = 2_500;
        cfg.hosting_orgs = 6;
        cfg
    }

    #[test]
    fn pa_sampled_paths_valley_free_and_loop_free() {
        use crate::policy::{is_valley_free, StepKind};
        // Property over the Huge (PA) world family: for random seeds,
        // destinations, salts, and link failures, every returned path is
        // valley-free and visits no AS twice.
        for seed in 0..3u64 {
            let w = generator::generate(&mini_pa(seed));
            let t = &w.topology;
            let stubs = t.select(|a| a.role == AsRole::Stub);
            let mut scratch = TreeScratch::new();
            let mut tree = RouteTree::empty();
            for case in 0..6u64 {
                let dest = stubs[(crate::mix64(seed ^ case << 3) % stubs.len() as u64) as usize];
                let dead = LinkId(
                    (crate::mix64(seed << 7 ^ case) % t.n_links() as u64) as u32,
                );
                let link_up = move |l: LinkId| l != dead;
                let salt = move |x: usize| crate::mix64(seed << 13 ^ case << 40 ^ x as u64);
                RouteTree::compute_into(&mut scratch, t, dest, &link_up, &salt, &mut tree);
                let mut buf = Vec::new();
                for probe in 0..200u64 {
                    let src =
                        AsIdx((crate::mix64(case ^ probe << 17) % t.n_ases() as u64) as u32);
                    if !tree.path_into(src, &mut buf) {
                        continue;
                    }
                    let mut seen = std::collections::HashSet::new();
                    assert!(buf.iter().all(|a| seen.insert(*a)), "loop in {buf:?}");
                    let steps: Vec<StepKind> = buf
                        .windows(2)
                        .map(|w2| {
                            let adj = t
                                .neighbors(w2[0])
                                .iter()
                                .find(|a| a.peer == w2[1])
                                .expect("path uses real edges");
                            assert!(adj.link != dead, "path crossed the failed link");
                            match adj.kind {
                                EdgeKind::ToProvider => StepKind::Up,
                                EdgeKind::ToPeer => StepKind::Peer,
                                EdgeKind::ToCustomer => StepKind::Down,
                            }
                        })
                        .collect();
                    assert!(
                        is_valley_free(&steps),
                        "valley in path (seed {seed}, case {case}, src {src:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn everyone_reachable_when_all_links_up() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 9));
        let t = &w.topology;
        let dest = t.select(|a| a.role == AsRole::Stub)[0];
        let tree = RouteTree::compute(t, dest, &all_up, &no_salt);
        assert_eq!(tree.reachable_count(), t.n_ases());
        assert_eq!(tree.route_bytes(), t.n_ases() * 8);
    }

    #[test]
    fn path_lengths_lower_bounded_by_selected_len() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 2));
        let t = &w.topology;
        let dest = t.select(|a| a.role == AsRole::Stub)[0];
        let tree = RouteTree::compute(t, dest, &all_up, &no_salt);
        for src in 0..t.n_ases() {
            let src = AsIdx(src as u32);
            if let (Some(r), Some(p)) = (tree.route(src), tree.path_from(src)) {
                assert!(
                    p.len() > r.len() as usize,
                    "selected len must lower-bound the real path at {}",
                    t.asn(src)
                );
            }
        }
    }
}
