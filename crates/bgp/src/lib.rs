//! # churnlab-bgp
//!
//! Gao–Rexford (valley-free) interdomain routing with a path-churn event
//! process — the substitute for the real Internet's BGP dynamics that the
//! paper's technique feeds on.
//!
//! The paper's core observation is that **network-level path churn
//! substitutes for strategically placed tomography monitors**: between an
//! ICLab vantage point and a destination, routes change over time (25% of
//! pairs within a day, 67% within a year — Figure 3), and each distinct
//! path contributes a differently-shaped boolean clause, making the SAT
//! instances solvable. This crate produces exactly that behaviour:
//!
//! * [`policy`] — route classes and Gao–Rexford preference (customer >
//!   peer > provider, then shortest AS path, then a salted tiebreak).
//! * [`compute`] — per-destination routing trees via the standard
//!   three-stage valley-free propagation (customer routes up, one peer
//!   hop, provider routes down), parameterised by live link state.
//! * [`churn`] — the event process: per-link up/down timelines (two-state
//!   Markov chains driven by each link's [`churnlab_topology::LinkStability`])
//!   plus per-AS traffic-engineering shifts that re-roll equal-cost
//!   tiebreaks, mirroring hot-potato and TE-induced churn in real BGP.
//! * [`sim`] — [`sim::RoutingSim`], the epoch-indexed path oracle used by
//!   the measurement platform, with a sharded route-tree cache.
//! * [`reference`] — the pre-CSR compute path, retained as the benchmark
//!   baseline and differential oracle for the scratch-reused fast path.
//! * [`stats`] — distinct-path counting over time windows (Figure 3's
//!   statistic) and churn summaries.
//! * [`time`] — simulation time: epochs, days, and the day/week/month/year
//!   windows the paper slices CNFs by.
//!
//! Everything is deterministic given the seed in [`churn::ChurnConfig`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod compute;
pub mod policy;
pub mod reference;
pub mod sim;
pub mod stats;
pub mod time;

pub use churn::{ChurnConfig, ChurnTimeline};
pub use compute::{RouteTree, SelectedRoute, TreeScratch};
pub use reference::{ReferenceRouter, ReferenceTree};
pub use policy::RouteClass;
pub use sim::RoutingSim;
pub use time::{Day, Epoch, Granularity, TimeWindow};

/// splitmix64 — the deterministic mixer used for salted tiebreaks.
/// (Private hashing that must not depend on `std`'s hasher stability.)
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // Consecutive inputs should differ in many bits.
        let d = (mix64(100) ^ mix64(101)).count_ones();
        assert!(d > 10, "poor diffusion: {d} bits");
    }
}
