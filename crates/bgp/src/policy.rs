//! Gao–Rexford routing policy: route classes and preference.
//!
//! Export rules (Gao & Rexford 2001):
//!
//! * routes learned from a **customer** are exported to everyone;
//! * routes learned from a **peer** or **provider** are exported to
//!   customers only.
//!
//! The resulting paths are *valley-free*: an uphill (customer→provider)
//! segment, at most one peering edge, then a downhill (provider→customer)
//! segment. Route selection prefers customer routes over peer routes over
//! provider routes (economics first), then shorter AS paths, then a
//! deterministic salted tiebreak (our stand-in for hot-potato/tie-break
//! details that shift over time and contribute churn).

use serde::{Deserialize, Serialize};

/// The class of a selected route, by how it was learned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RouteClass {
    /// Learned from a customer (most preferred — revenue).
    Customer = 0,
    /// Learned from a settlement-free peer.
    Peer = 1,
    /// Learned from a provider (least preferred — cost).
    Provider = 2,
}

impl RouteClass {
    /// Preference rank; lower is better.
    pub fn rank(self) -> u8 {
        self as u8
    }

    /// Label for debugging/reports.
    pub fn label(self) -> &'static str {
        match self {
            RouteClass::Customer => "customer",
            RouteClass::Peer => "peer",
            RouteClass::Provider => "provider",
        }
    }
}

impl std::fmt::Display for RouteClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Verify that an AS-level path (as a sequence of edge kinds walked from
/// the source) is valley-free: zero or more "up" steps, at most one "peer"
/// step, then zero or more "down" steps.
///
/// `steps` yields, for each consecutive AS pair `(x, y)` along the path,
/// the relationship of the edge from x's perspective.
pub fn is_valley_free(steps: &[StepKind]) -> bool {
    #[derive(PartialEq, PartialOrd)]
    enum Phase {
        Up,
        Peered,
        Down,
    }
    let mut phase = Phase::Up;
    for s in steps {
        match (s, &phase) {
            (StepKind::Up, Phase::Up) => {}
            (StepKind::Peer, Phase::Up) => phase = Phase::Peered,
            (StepKind::Down, _) => phase = Phase::Down,
            (StepKind::Up, _) => return false, // climbing after peering/descending = valley
            (StepKind::Peer, _) => return false, // second peering edge
        }
    }
    true
}

/// Direction of one step along a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Customer → provider.
    Up,
    /// Peer → peer.
    Peer,
    /// Provider → customer.
    Down,
}

#[cfg(test)]
mod tests {
    use super::*;
    use StepKind::*;

    #[test]
    fn class_preference_order() {
        assert!(RouteClass::Customer.rank() < RouteClass::Peer.rank());
        assert!(RouteClass::Peer.rank() < RouteClass::Provider.rank());
        assert!(RouteClass::Customer < RouteClass::Peer);
    }

    #[test]
    fn valley_free_accepts_classic_shapes() {
        assert!(is_valley_free(&[])); // src == dst's AS
        assert!(is_valley_free(&[Up, Up, Down, Down]));
        assert!(is_valley_free(&[Up, Peer, Down]));
        assert!(is_valley_free(&[Peer]));
        assert!(is_valley_free(&[Down, Down]));
        assert!(is_valley_free(&[Up, Up]));
    }

    #[test]
    fn valley_free_rejects_valleys_and_double_peering() {
        assert!(!is_valley_free(&[Down, Up]));
        assert!(!is_valley_free(&[Up, Down, Up]));
        assert!(!is_valley_free(&[Peer, Peer]));
        assert!(!is_valley_free(&[Up, Peer, Up]));
        assert!(!is_valley_free(&[Peer, Up]));
        assert!(!is_valley_free(&[Down, Peer]));
    }
}
