//! The epoch-indexed routing oracle.
//!
//! [`RoutingSim`] ties the topology, the churn timeline, and the route
//! computation together: ask it for the AS-level path between any two ASes
//! at any epoch. Trees are computed per (destination, epoch) and cached,
//! because the measurement platform naturally batches many vantage points
//! against the same destination in the same epoch.
//!
//! ## Cache layout
//!
//! At Internet scale the tree cache is the contention point: one worker
//! thread computing a Huge tree (~0.6 MB, milliseconds) must not stall
//! every other worker's cache *lookups*. The cache is therefore split
//! into [`N_SHARDS`] stripes keyed by destination hash, each behind its
//! own mutex, and trees are computed **outside** any lock. Each stripe is
//! a true LRU (stamp-based, lazily compacted recency queue — both `get`
//! and re-`put` promote), unlike the FIFO it replaces, so the platform's
//! revisit-heavy access pattern keeps hot destinations resident.
//!
//! Capacity comes from [`RoutingSim::with_cache_capacity`] (the world
//! generator exposes `WorldConfig::tree_cache_capacity`); `0` picks an
//! automatic value from a fixed memory budget and the world size, so a
//! Huge world doesn't silently pin gigabytes of trees.
//!
//! Per-thread [`TreeScratch`] buffers are reused across computes, and
//! cache traffic is observable through [`RoutingSim::instrument`]
//! (`churnlab_route_cache_{hit,miss,evict}`, `churnlab_route_trees_computed`,
//! and a compute-nanos histogram).

use crate::churn::{ChurnConfig, ChurnTimeline};
use crate::compute::{RouteTree, TreeScratch};
use crate::time::{Epoch, EpochMapper};
use churnlab_obs::Registry;
use churnlab_topology::{AsIdx, Asn, Topology};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};

/// Number of cache stripes (destinations hash across them).
pub const N_SHARDS: usize = 16;

/// Memory budget the automatic capacity targets (route bytes only).
const AUTO_CACHE_BUDGET_BYTES: usize = 256 << 20;

/// Cache capacity (total trees) for a world of `n_ases`, when the
/// configured capacity is `0` (automatic): a 256 MB budget divided by
/// the per-tree footprint, clamped to `[64, 4096]`. A Small world gets
/// the old fixed 4096; a Huge world (~640 KB/tree) lands near 410.
pub fn auto_cache_capacity(n_ases: usize) -> usize {
    let per_tree = 8 * n_ases.max(1) + 64;
    (AUTO_CACHE_BUDGET_BYTES / per_tree).clamp(64, 4096)
}

thread_local! {
    static SCRATCH: RefCell<TreeScratch> = RefCell::new(TreeScratch::new());
}

/// Cumulative cache-traffic counters (see [`RoutingSim::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a tree computation.
    pub misses: u64,
    /// Trees evicted to stay within capacity.
    pub evictions: u64,
}

struct Entry {
    tree: Arc<RouteTree>,
    stamp: u64,
}

/// One cache stripe: LRU via a monotone stamp per entry and a lazily
/// compacted recency queue (a promoted entry's old queue positions go
/// stale and are skipped at eviction time).
struct CacheShard {
    map: HashMap<(AsIdx, Epoch), Entry>,
    recency: VecDeque<((AsIdx, Epoch), u64)>,
    next_stamp: u64,
    capacity: usize,
}

impl CacheShard {
    fn new(capacity: usize) -> Self {
        CacheShard {
            map: HashMap::new(),
            recency: VecDeque::new(),
            next_stamp: 0,
            capacity: capacity.max(1),
        }
    }

    fn stamp(&mut self) -> u64 {
        self.next_stamp += 1;
        self.next_stamp
    }

    fn get(&mut self, key: &(AsIdx, Epoch)) -> Option<Arc<RouteTree>> {
        let stamp = self.stamp();
        let tree = {
            let e = self.map.get_mut(key)?;
            e.stamp = stamp;
            e.tree.clone()
        };
        self.recency.push_back((*key, stamp));
        self.maybe_compact();
        Some(tree)
    }

    /// Insert (or promote, if racing inserters got here first). Returns
    /// the number of evictions performed.
    fn put(&mut self, key: (AsIdx, Epoch), tree: Arc<RouteTree>) -> u64 {
        let stamp = self.stamp();
        if let Some(e) = self.map.get_mut(&key) {
            // Same (dest, epoch) ⇒ identical tree; keep the resident one
            // but refresh its recency.
            e.stamp = stamp;
            self.recency.push_back((key, stamp));
            self.maybe_compact();
            return 0;
        }
        let mut evicted = 0;
        while self.map.len() >= self.capacity {
            let Some((k, s)) = self.recency.pop_front() else {
                break; // every map entry has a queue position, so unreachable
            };
            // Stale position (the entry was promoted since): skip.
            if self.map.get(&k).is_some_and(|e| e.stamp == s) {
                self.map.remove(&k);
                evicted += 1;
            }
        }
        self.map.insert(key, Entry { tree, stamp });
        self.recency.push_back((key, stamp));
        self.maybe_compact();
        evicted
    }

    /// Drop stale queue positions once they dominate, bounding the queue
    /// at ~4× capacity without per-promotion O(n) shuffling.
    fn maybe_compact(&mut self) {
        if self.recency.len() > 4 * self.capacity.max(16) {
            let map = &self.map;
            self.recency.retain(|(k, s)| map.get(k).is_some_and(|e| e.stamp == *s));
        }
    }
}

/// Cache-traffic metrics exported through `churnlab-obs`.
struct RouteMetrics {
    trees_computed: churnlab_obs::Counter,
    cache_hit: churnlab_obs::Counter,
    cache_miss: churnlab_obs::Counter,
    cache_evict: churnlab_obs::Counter,
    compute_nanos: churnlab_obs::Histogram,
}

/// Routing simulator: path oracle over (src, dst, epoch).
pub struct RoutingSim<'t> {
    topo: &'t Topology,
    churn: ChurnTimeline,
    shards: Vec<Mutex<CacheShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    metrics: OnceLock<RouteMetrics>,
}

impl<'t> RoutingSim<'t> {
    /// Build a simulator over `topo` with churn per `cfg` and automatic
    /// cache capacity (see [`auto_cache_capacity`]).
    pub fn new(topo: &'t Topology, cfg: &ChurnConfig) -> Self {
        RoutingSim::with_cache_capacity(topo, cfg, 0)
    }

    /// Like [`RoutingSim::new`] with an explicit total tree capacity
    /// (`0` = automatic). Worlds carry their preferred value in
    /// `WorldConfig::tree_cache_capacity`.
    pub fn with_cache_capacity(topo: &'t Topology, cfg: &ChurnConfig, capacity: usize) -> Self {
        let churn = ChurnTimeline::build(topo, cfg);
        RoutingSim::assemble(topo, churn, capacity)
    }

    /// Construct from an existing timeline (for sharing across sims).
    pub fn with_timeline(topo: &'t Topology, churn: ChurnTimeline) -> Self {
        RoutingSim::assemble(topo, churn, 0)
    }

    fn assemble(topo: &'t Topology, churn: ChurnTimeline, capacity: usize) -> Self {
        let total = if capacity == 0 { auto_cache_capacity(topo.n_ases()) } else { capacity };
        let per_shard = total.div_ceil(N_SHARDS).max(1);
        let shards = (0..N_SHARDS).map(|_| Mutex::new(CacheShard::new(per_shard))).collect();
        RoutingSim {
            topo,
            churn,
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            metrics: OnceLock::new(),
        }
    }

    /// Register this simulator's counters and the tree-compute-time
    /// histogram in `registry`. Call once, before the hot loop; later
    /// calls are ignored (counters keep feeding the first registry).
    pub fn instrument(&self, registry: &Registry) {
        let _ = self.metrics.set(RouteMetrics {
            trees_computed: registry.counter(
                "churnlab_route_trees_computed",
                "Route trees computed (cache misses that did work)",
                &[],
            ),
            cache_hit: registry.counter(
                "churnlab_route_cache_hit",
                "Route-tree cache lookups served from a stripe",
                &[],
            ),
            cache_miss: registry.counter(
                "churnlab_route_cache_miss",
                "Route-tree cache lookups that missed",
                &[],
            ),
            cache_evict: registry.counter(
                "churnlab_route_cache_evict",
                "Route trees evicted to stay within capacity",
                &[],
            ),
            compute_nanos: registry.histogram(
                "churnlab_route_tree_compute_nanos",
                "Wall nanoseconds per route-tree computation",
                &[],
            ),
        });
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// The churn timeline.
    pub fn churn(&self) -> &ChurnTimeline {
        &self.churn
    }

    /// The epoch mapper (days ↔ epochs).
    pub fn mapper(&self) -> EpochMapper {
        self.churn.mapper()
    }

    /// Total tree capacity across all cache stripes.
    pub fn cache_capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().capacity).sum()
    }

    /// Cumulative cache-traffic counters for this simulator.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
        }
    }

    fn shard_of(&self, dest: AsIdx) -> &Mutex<CacheShard> {
        let h = crate::mix64(u64::from(dest.0));
        &self.shards[(h as usize) % N_SHARDS]
    }

    /// The routing tree toward `dest` at `epoch` (cached).
    pub fn route_tree(&self, dest: AsIdx, epoch: Epoch) -> Arc<RouteTree> {
        let key = (dest, epoch);
        let shard = self.shard_of(dest);
        if let Some(t) = shard.lock().get(&key) {
            self.hits.fetch_add(1, Relaxed);
            if let Some(m) = self.metrics.get() {
                m.cache_hit.inc();
            }
            return t;
        }
        self.misses.fetch_add(1, Relaxed);
        if let Some(m) = self.metrics.get() {
            m.cache_miss.inc();
        }

        // Compute outside the stripe lock, reusing this thread's scratch.
        let churn = &self.churn;
        let started = std::time::Instant::now();
        let mut tree = RouteTree::empty();
        SCRATCH.with(|s| {
            RouteTree::compute_into(
                &mut s.borrow_mut(),
                self.topo,
                dest,
                &|l| churn.link_up(l, epoch),
                &|x| churn.te_salt(x, epoch),
                &mut tree,
            );
        });
        if let Some(m) = self.metrics.get() {
            m.trees_computed.inc();
            m.compute_nanos.observe(started.elapsed().as_nanos() as u64);
        }

        let tree = Arc::new(tree);
        let evicted = shard.lock().put(key, tree.clone());
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Relaxed);
            if let Some(m) = self.metrics.get() {
                m.cache_evict.add(evicted);
            }
        }
        tree
    }

    /// AS-level path (inclusive of both endpoints) from `src` to `dst` at
    /// `epoch`; `None` if unreachable under that link state.
    pub fn as_path(&self, src: AsIdx, dst: AsIdx, epoch: Epoch) -> Option<Vec<AsIdx>> {
        self.route_tree(dst, epoch).path_from(src)
    }

    /// Like [`RoutingSim::as_path`] but returning ASNs.
    pub fn asn_path(&self, src: AsIdx, dst: AsIdx, epoch: Epoch) -> Option<Vec<Asn>> {
        self.as_path(src, dst, epoch)
            .map(|p| p.into_iter().map(|i| self.topo.asn(i)).collect())
    }

    /// Allocation-free form of [`RoutingSim::as_path`]: fill `out` with
    /// the path, returning `false` (and an empty `out`) if unreachable.
    pub fn as_path_into(&self, src: AsIdx, dst: AsIdx, epoch: Epoch, out: &mut Vec<AsIdx>) -> bool {
        self.route_tree(dst, epoch).path_into(src, out)
    }

    /// Allocation-free form of [`RoutingSim::asn_path`].
    pub fn asn_path_into(&self, src: AsIdx, dst: AsIdx, epoch: Epoch, out: &mut Vec<Asn>) -> bool {
        self.route_tree(dst, epoch).asn_path_into(self.topo, src, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_topology::asys::AsRole;
    use churnlab_topology::{generator, WorldConfig, WorldScale};

    #[test]
    fn paths_stable_within_epoch_and_cached() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 1));
        let sim = RoutingSim::new(&w.topology, &ChurnConfig::default());
        let stubs = w.topology.select(|a| a.role == AsRole::Stub);
        let (s, d) = (stubs[0], stubs[1]);
        let p1 = sim.asn_path(s, d, 5);
        let p2 = sim.asn_path(s, d, 5);
        assert_eq!(p1, p2);
        assert!(p1.is_some());
        let stats = sim.cache_stats();
        assert_eq!(stats.misses, 1, "one tree computed");
        assert_eq!(stats.hits, 1, "second query served from cache");
    }

    #[test]
    fn churn_changes_some_paths_over_a_year() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 1));
        let sim = RoutingSim::new(&w.topology, &ChurnConfig::default());
        let stubs = w.topology.select(|a| a.role == AsRole::Stub);
        let total = sim.churn().total_epochs();
        let mut changed_pairs = 0;
        let mut pairs = 0;
        for &s in stubs.iter().take(8) {
            for &d in stubs.iter().rev().take(8) {
                if s == d {
                    continue;
                }
                pairs += 1;
                let mut distinct = std::collections::HashSet::new();
                for e in (0..total).step_by(30) {
                    if let Some(p) = sim.asn_path(s, d, e) {
                        distinct.insert(p);
                    }
                }
                if distinct.len() > 1 {
                    changed_pairs += 1;
                }
            }
        }
        assert!(pairs > 0);
        assert!(changed_pairs > 0, "no path churn observed over a simulated year");
    }

    #[test]
    fn endpoints_present_and_consistent() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 2));
        let sim = RoutingSim::new(&w.topology, &ChurnConfig::default());
        let stubs = w.topology.select(|a| a.role == AsRole::Stub);
        let (s, d) = (stubs[0], stubs[2]);
        let p = sim.as_path(s, d, 0).unwrap();
        assert_eq!(p[0], s);
        assert_eq!(*p.last().unwrap(), d);
        // No AS repeats (loop-free).
        let mut seen = std::collections::HashSet::new();
        for a in &p {
            assert!(seen.insert(*a), "loop through {:?}", w.topology.asn(*a));
        }
    }

    #[test]
    fn same_as_path_is_singleton() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 2));
        let sim = RoutingSim::new(&w.topology, &ChurnConfig::default());
        let stubs = w.topology.select(|a| a.role == AsRole::Stub);
        let p = sim.as_path(stubs[0], stubs[0], 0).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 3));
        let sim = RoutingSim::new(&w.topology, &ChurnConfig::default());
        let stubs = w.topology.select(|a| a.role == AsRole::Stub);
        let mut idx_buf = Vec::new();
        let mut asn_buf = Vec::new();
        for (i, &s) in stubs.iter().take(4).enumerate() {
            let d = stubs[stubs.len() - 1 - i];
            let e = (i * 17) as Epoch;
            let ok = sim.as_path_into(s, d, e, &mut idx_buf);
            assert_eq!(ok.then(|| idx_buf.clone()), sim.as_path(s, d, e));
            let ok = sim.asn_path_into(s, d, e, &mut asn_buf);
            assert_eq!(ok.then(|| asn_buf.clone()), sim.asn_path(s, d, e));
        }
    }

    #[test]
    fn capacity_bounds_residency_and_lru_promotes() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 1));
        // Tiny cache: N_SHARDS stripes of 1 tree each.
        let sim = RoutingSim::with_cache_capacity(&w.topology, &ChurnConfig::default(), N_SHARDS);
        assert_eq!(sim.cache_capacity(), N_SHARDS);
        let stubs = w.topology.select(|a| a.role == AsRole::Stub);
        let d = stubs[0];
        // Distinct epochs against one dest all land in one stripe of
        // capacity 1 ⇒ each new epoch evicts the previous tree.
        for e in 0..6 {
            sim.route_tree(d, e);
        }
        let stats = sim.cache_stats();
        assert_eq!(stats.misses, 6);
        assert_eq!(stats.evictions, 5);
        // LRU: re-touching the resident epoch keeps it resident.
        sim.route_tree(d, 5);
        assert_eq!(sim.cache_stats().hits, 1);
    }

    #[test]
    fn auto_capacity_scales_down_with_world_size() {
        assert_eq!(auto_cache_capacity(100), 4096); // small worlds: old fixed cap
        let huge = auto_cache_capacity(80_000);
        assert!(
            (64..=512).contains(&huge),
            "Huge worlds must cap residency well below 4096, got {huge}"
        );
        assert_eq!(auto_cache_capacity(usize::MAX / 16), 64);
    }

    #[test]
    fn instrument_exports_route_metrics() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 4));
        let sim = RoutingSim::new(&w.topology, &ChurnConfig::default());
        let reg = Registry::new();
        sim.instrument(&reg);
        let stubs = w.topology.select(|a| a.role == AsRole::Stub);
        sim.asn_path(stubs[0], stubs[1], 0);
        sim.asn_path(stubs[2], stubs[1], 0);
        let snap = reg.scrape();
        assert_eq!(snap.counter("churnlab_route_trees_computed", &[]), Some(1));
        assert_eq!(snap.counter("churnlab_route_cache_miss", &[]), Some(1));
        assert_eq!(snap.counter("churnlab_route_cache_hit", &[]), Some(1));
        let hist = snap
            .samples
            .iter()
            .find(|s| s.name == "churnlab_route_tree_compute_nanos")
            .expect("missing compute-nanos histogram");
        match &hist.value {
            churnlab_obs::SampleValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
