//! The epoch-indexed routing oracle.
//!
//! [`RoutingSim`] ties the topology, the churn timeline, and the route
//! computation together: ask it for the AS-level path between any two ASes
//! at any epoch. Trees are computed per (destination, epoch) and cached,
//! because the measurement platform naturally batches many vantage points
//! against the same destination in the same epoch.

use crate::churn::{ChurnConfig, ChurnTimeline};
use crate::compute::RouteTree;
use crate::time::{Epoch, EpochMapper};
use churnlab_topology::{AsIdx, Asn, Topology};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Routing simulator: path oracle over (src, dst, epoch).
pub struct RoutingSim<'t> {
    topo: &'t Topology,
    churn: ChurnTimeline,
    /// Tree cache keyed by (dest, epoch). Bounded FIFO eviction.
    cache: Mutex<TreeCache>,
}

struct TreeCache {
    map: HashMap<(AsIdx, Epoch), Arc<RouteTree>>,
    order: std::collections::VecDeque<(AsIdx, Epoch)>,
    capacity: usize,
}

impl TreeCache {
    fn new(capacity: usize) -> Self {
        TreeCache { map: HashMap::new(), order: std::collections::VecDeque::new(), capacity }
    }

    fn get(&self, key: &(AsIdx, Epoch)) -> Option<Arc<RouteTree>> {
        self.map.get(key).cloned()
    }

    fn put(&mut self, key: (AsIdx, Epoch), tree: Arc<RouteTree>) {
        if self.map.contains_key(&key) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        self.map.insert(key, tree);
        self.order.push_back(key);
    }
}

impl<'t> RoutingSim<'t> {
    /// Build a simulator over `topo` with churn per `cfg`.
    pub fn new(topo: &'t Topology, cfg: &ChurnConfig) -> Self {
        let churn = ChurnTimeline::build(topo, cfg);
        RoutingSim { topo, churn, cache: Mutex::new(TreeCache::new(4096)) }
    }

    /// Construct from an existing timeline (for sharing across sims).
    pub fn with_timeline(topo: &'t Topology, churn: ChurnTimeline) -> Self {
        RoutingSim { topo, churn, cache: Mutex::new(TreeCache::new(4096)) }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// The churn timeline.
    pub fn churn(&self) -> &ChurnTimeline {
        &self.churn
    }

    /// The epoch mapper (days ↔ epochs).
    pub fn mapper(&self) -> EpochMapper {
        self.churn.mapper()
    }

    /// The routing tree toward `dest` at `epoch` (cached).
    pub fn route_tree(&self, dest: AsIdx, epoch: Epoch) -> Arc<RouteTree> {
        if let Some(t) = self.cache.lock().get(&(dest, epoch)) {
            return t;
        }
        let churn = &self.churn;
        let tree = Arc::new(RouteTree::compute(
            self.topo,
            dest,
            &|l| churn.link_up(l, epoch),
            &|x| churn.te_salt(x, epoch),
        ));
        self.cache.lock().put((dest, epoch), tree.clone());
        tree
    }

    /// AS-level path (inclusive of both endpoints) from `src` to `dst` at
    /// `epoch`; `None` if unreachable under that link state.
    pub fn as_path(&self, src: AsIdx, dst: AsIdx, epoch: Epoch) -> Option<Vec<AsIdx>> {
        self.route_tree(dst, epoch).path_from(src)
    }

    /// Like [`RoutingSim::as_path`] but returning ASNs.
    pub fn asn_path(&self, src: AsIdx, dst: AsIdx, epoch: Epoch) -> Option<Vec<Asn>> {
        self.as_path(src, dst, epoch)
            .map(|p| p.into_iter().map(|i| self.topo.asn(i)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_topology::asys::AsRole;
    use churnlab_topology::{generator, WorldConfig, WorldScale};

    #[test]
    fn paths_stable_within_epoch_and_cached() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 1));
        let sim = RoutingSim::new(&w.topology, &ChurnConfig::default());
        let stubs = w.topology.select(|a| a.role == AsRole::Stub);
        let (s, d) = (stubs[0], stubs[1]);
        let p1 = sim.asn_path(s, d, 5);
        let p2 = sim.asn_path(s, d, 5);
        assert_eq!(p1, p2);
        assert!(p1.is_some());
    }

    #[test]
    fn churn_changes_some_paths_over_a_year() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 1));
        let sim = RoutingSim::new(&w.topology, &ChurnConfig::default());
        let stubs = w.topology.select(|a| a.role == AsRole::Stub);
        let total = sim.churn().total_epochs();
        let mut changed_pairs = 0;
        let mut pairs = 0;
        for &s in stubs.iter().take(8) {
            for &d in stubs.iter().rev().take(8) {
                if s == d {
                    continue;
                }
                pairs += 1;
                let mut distinct = std::collections::HashSet::new();
                for e in (0..total).step_by(30) {
                    if let Some(p) = sim.asn_path(s, d, e) {
                        distinct.insert(p);
                    }
                }
                if distinct.len() > 1 {
                    changed_pairs += 1;
                }
            }
        }
        assert!(pairs > 0);
        assert!(changed_pairs > 0, "no path churn observed over a simulated year");
    }

    #[test]
    fn endpoints_present_and_consistent() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 2));
        let sim = RoutingSim::new(&w.topology, &ChurnConfig::default());
        let stubs = w.topology.select(|a| a.role == AsRole::Stub);
        let (s, d) = (stubs[0], stubs[2]);
        let p = sim.as_path(s, d, 0).unwrap();
        assert_eq!(p[0], s);
        assert_eq!(*p.last().unwrap(), d);
        // No AS repeats (loop-free).
        let mut seen = std::collections::HashSet::new();
        for a in &p {
            assert!(seen.insert(*a), "loop through {:?}", w.topology.asn(*a));
        }
    }

    #[test]
    fn same_as_path_is_singleton() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 2));
        let sim = RoutingSim::new(&w.topology, &ChurnConfig::default());
        let stubs = w.topology.select(|a| a.role == AsRole::Stub);
        let p = sim.as_path(stubs[0], stubs[0], 0).unwrap();
        assert_eq!(p.len(), 1);
    }
}
