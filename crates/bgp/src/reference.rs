//! The pre-CSR route computation path, retained as the benchmark
//! baseline and differential-testing oracle.
//!
//! This is the algorithm as it stood before the Internet-scale rework:
//! adjacency in per-AS `Vec<Vec<Adjacency>>`, every working array
//! allocated per call, and the link-state / salt closures dyn-dispatched
//! at every edge visit (each of which, with a real churn timeline behind
//! it, is a binary search over that link's flip history). `route_bench`
//! measures [`RouteTree::compute_into`] against this to enforce the
//! committed speedup floor, and tests assert the two produce identical
//! trees — same selections, same tiebreaks — on every world they share.
//!
//! Do not "improve" this module: its value is being a faithful snapshot.

// The snapshot keeps the original loop shapes, lint-pleasing or not.
#![allow(clippy::needless_range_loop)]

use crate::compute::RouteTree;
use crate::policy::RouteClass;
use churnlab_topology::graph::{Adjacency, EdgeKind};
use churnlab_topology::{AsIdx, Asn, LinkId, Topology};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

const INF: u16 = u16::MAX;

/// A route as the old representation stored it (unpacked, ~12 bytes in
/// an `Option`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReferenceRoute {
    /// How the route was learned.
    pub class: RouteClass,
    /// Shortest valley-free AS-path length.
    pub len: u16,
    /// Next hop (`None` at the destination).
    pub next: Option<AsIdx>,
}

/// Pre-built nested adjacency, as the topology stored it before CSR.
#[derive(Debug)]
pub struct ReferenceRouter {
    adj: Vec<Vec<Adjacency>>,
    asns: Vec<Asn>,
}

/// A route tree computed by the reference path.
#[derive(Debug)]
pub struct ReferenceTree {
    /// The destination AS.
    pub dest: AsIdx,
    routes: Vec<Option<ReferenceRoute>>,
}

impl ReferenceRouter {
    /// Copy a topology's adjacency into the old nested layout.
    pub fn build(topo: &Topology) -> ReferenceRouter {
        let n = topo.n_ases();
        let mut adj = vec![Vec::new(); n];
        let mut asns = Vec::with_capacity(n);
        for x in 0..n {
            let i = AsIdx(x as u32);
            adj[x].extend_from_slice(topo.neighbors(i));
            asns.push(topo.asn(i));
        }
        ReferenceRouter { adj, asns }
    }

    /// The old `RouteTree::compute`, verbatim modulo the storage split:
    /// fresh allocations per call, dyn closure call per edge visit.
    pub fn compute(
        &self,
        dest: AsIdx,
        link_up: &dyn Fn(LinkId) -> bool,
        salt: &dyn Fn(usize) -> u64,
    ) -> ReferenceTree {
        let n = self.adj.len();
        let d = dest.usize();

        // Stage 1: customer routes (BFS up provider edges).
        let mut cust = vec![INF; n];
        cust[d] = 0;
        let mut queue: VecDeque<usize> = VecDeque::new();
        queue.push_back(d);
        while let Some(x) = queue.pop_front() {
            let cx = cust[x];
            for adj in &self.adj[x] {
                if adj.kind != EdgeKind::ToProvider || !link_up(adj.link) {
                    continue;
                }
                let p = adj.peer.usize();
                if cust[p] == INF {
                    cust[p] = cx + 1;
                    queue.push_back(p);
                }
            }
        }

        // Stage 2: peer routes (one peering hop off a customer route).
        let mut peer = vec![INF; n];
        for x in 0..n {
            for adj in &self.adj[x] {
                if adj.kind != EdgeKind::ToPeer || !link_up(adj.link) {
                    continue;
                }
                let y = adj.peer.usize();
                if cust[y] != INF {
                    peer[x] = peer[x].min(cust[y] + 1);
                }
            }
        }
        peer[d] = INF;

        let base_len =
            |x: usize, cust: &[u16], peer: &[u16]| if cust[x] != INF { cust[x] } else { peer[x] };

        // Stage 3: provider routes (Dijkstra down customer edges with
        // class-preference advertisement).
        let mut prov = vec![INF; n];
        let mut adv = vec![INF; n];
        let mut heap: BinaryHeap<Reverse<(u16, usize)>> = BinaryHeap::new();
        for x in 0..n {
            let b = base_len(x, &cust, &peer);
            if b != INF {
                adv[x] = b;
                heap.push(Reverse((b, x)));
            }
        }
        while let Some(Reverse((dist, x))) = heap.pop() {
            if dist > adv[x] {
                continue;
            }
            for adj in &self.adj[x] {
                if adj.kind != EdgeKind::ToCustomer || !link_up(adj.link) {
                    continue;
                }
                let c = adj.peer.usize();
                let cand = dist.saturating_add(1);
                if cand < prov[c] {
                    prov[c] = cand;
                    if base_len(c, &cust, &peer) == INF && cand < adv[c] {
                        adv[c] = cand;
                        heap.push(Reverse((cand, c)));
                    }
                }
            }
        }

        // Selection with salted tiebreak.
        let mut routes: Vec<Option<ReferenceRoute>> = vec![None; n];
        for x in 0..n {
            let (class, len) = if cust[x] != INF {
                (RouteClass::Customer, cust[x])
            } else if peer[x] != INF {
                (RouteClass::Peer, peer[x])
            } else if prov[x] != INF {
                (RouteClass::Provider, prov[x])
            } else {
                continue;
            };
            if x == d {
                routes[x] = Some(ReferenceRoute { class: RouteClass::Customer, len: 0, next: None });
                continue;
            }
            let want = len.saturating_sub(1);
            let sx = salt(x);
            let mut best_key = u64::MAX;
            let mut best: Option<AsIdx> = None;
            for adj in &self.adj[x] {
                if !link_up(adj.link) {
                    continue;
                }
                let yi = adj.peer.usize();
                let matches = match class {
                    RouteClass::Customer => adj.kind == EdgeKind::ToCustomer && cust[yi] == want,
                    RouteClass::Peer => adj.kind == EdgeKind::ToPeer && cust[yi] == want,
                    RouteClass::Provider => adj.kind == EdgeKind::ToProvider && adv[yi] != INF,
                };
                if matches {
                    let key = crate::mix64(sx ^ u64::from(self.asns[yi].0));
                    if key < best_key || best.is_none() {
                        best_key = key;
                        best = Some(adj.peer);
                    }
                }
            }
            routes[x] = Some(ReferenceRoute { class, len, next: best });
        }
        ReferenceTree { dest, routes }
    }
}

impl ReferenceTree {
    /// The selected route at `src`, if reachable.
    pub fn route(&self, src: AsIdx) -> Option<&ReferenceRoute> {
        self.routes[src.usize()].as_ref()
    }

    /// Number of ASes that can reach the destination.
    pub fn reachable_count(&self) -> usize {
        self.routes.iter().filter(|r| r.is_some()).count()
    }

    /// True iff this tree selects exactly the same routes as `tree`
    /// (class, shortest length, and tiebroken next hop, at every AS).
    pub fn agrees_with(&self, tree: &RouteTree) -> bool {
        if self.dest != tree.dest {
            return false;
        }
        (0..self.routes.len()).all(|x| {
            let i = AsIdx(x as u32);
            match (self.routes[x], tree.route(i)) {
                (None, None) => true,
                (Some(r), Some(p)) => {
                    r.class == p.class() && r.len == p.len() && r.next == p.next()
                }
                _ => false,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::TreeScratch;
    use churnlab_topology::{generator, AsRole, WorldConfig, WorldScale};

    #[test]
    fn reference_and_csr_trees_agree_exactly() {
        for seed in 0..3 {
            let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, seed));
            let t = &w.topology;
            let rr = ReferenceRouter::build(t);
            let mut scratch = TreeScratch::new();
            let mut tree = RouteTree::empty();
            let dests: Vec<AsIdx> = t.select(|a| a.role == AsRole::Stub);
            for (i, &dest) in dests.iter().take(5).enumerate() {
                // Vary link state and salts to cover failures + tiebreaks.
                let dead = LinkId(((seed as usize * 31 + i * 7) % t.n_links()) as u32);
                let link_up = move |l: LinkId| l != dead;
                let salt = move |x: usize| crate::mix64((seed << 20) ^ (i as u64) << 9 ^ x as u64);
                let ref_tree = rr.compute(dest, &link_up, &salt);
                RouteTree::compute_into(&mut scratch, t, dest, &link_up, &salt, &mut tree);
                assert!(
                    ref_tree.agrees_with(&tree),
                    "divergence at seed {seed} dest {dest:?}"
                );
                assert_eq!(ref_tree.reachable_count(), tree.reachable_count());
            }
        }
    }
}
