//! Simulation time: epochs, days, and CNF time windows.
//!
//! The measurement period mirrors the paper's (Table 1): one year,
//! 2016-05-01 through 2017-04-30. Days index from 0; an *epoch* is a
//! sub-day routing interval (default 6 per day, i.e. 4-hour slots) so that
//! intra-day path churn — which the paper observes for 25% of pairs — is
//! representable. CNFs are split at four granularities (§3.1): day, week,
//! month, and year.

use serde::{Deserialize, Serialize};

/// A simulation day, 0-based from the start of the measurement period.
pub type Day = u32;

/// A routing epoch (sub-day interval), global index across the whole
/// simulation.
pub type Epoch = u32;

/// Number of days simulated by default (the paper's 2016-05 .. 2017-05).
pub const DEFAULT_TOTAL_DAYS: u32 = 365;

/// CNF time granularities from §3.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Granularity {
    /// One calendar day.
    Day,
    /// Seven days.
    Week,
    /// Thirty days (the paper's "month" slices; the 366th-day remainder
    /// folds into the last month).
    Month,
    /// The whole measurement period.
    Year,
}

impl Granularity {
    /// All granularities, finest first.
    pub const ALL: [Granularity; 4] =
        [Granularity::Day, Granularity::Week, Granularity::Month, Granularity::Year];

    /// Granularities shown in Figure 1a / Figure 4 (the paper plots day,
    /// week, month).
    pub const SUB_YEAR: [Granularity; 3] =
        [Granularity::Day, Granularity::Week, Granularity::Month];

    /// Window length in days (`None` = everything).
    pub fn days(self) -> Option<u32> {
        match self {
            Granularity::Day => Some(1),
            Granularity::Week => Some(7),
            Granularity::Month => Some(30),
            Granularity::Year => None,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Granularity::Day => "day",
            Granularity::Week => "week",
            Granularity::Month => "month",
            Granularity::Year => "year",
        }
    }
}

impl std::fmt::Display for Granularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A concrete time window: a granularity plus its index within the
/// measurement period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TimeWindow {
    /// The granularity.
    pub granularity: Granularity,
    /// Window index (day number, week number, …; always 0 for `Year`).
    pub index: u32,
}

impl TimeWindow {
    /// The window containing `day` at `granularity`, given the total
    /// simulation length (needed to fold the trailing partial month/week
    /// into the final full one, as the paper's slicing does).
    pub fn of(day: Day, granularity: Granularity, total_days: u32) -> TimeWindow {
        let index = match granularity.days() {
            None => 0,
            Some(len) => {
                let n_windows = (total_days / len).max(1);
                (day / len).min(n_windows - 1)
            }
        };
        TimeWindow { granularity, index }
    }

    /// Number of windows of `granularity` in a period of `total_days`.
    pub fn count(granularity: Granularity, total_days: u32) -> u32 {
        match granularity.days() {
            None => 1,
            Some(len) => (total_days / len).max(1),
        }
    }

    /// Last day this window can absorb, or `None` for windows that stay
    /// open for the rest of the stream: the `Year` window, and the final
    /// window of every granularity (it takes the trailing partial slice
    /// *and*, under [`TimeWindow::of`]'s clamping, every day past
    /// `total_days`). A `None` window can never retire under a lateness
    /// horizon; a `Some(end)` window receives no day later than `end`.
    pub fn end_day(self, total_days: u32) -> Option<Day> {
        let len = self.granularity.days()?;
        let n_windows = (total_days / len).max(1);
        if self.index + 1 >= n_windows {
            None
        } else {
            Some((self.index + 1) * len - 1)
        }
    }
}

impl std::fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.granularity, self.index)
    }
}

/// Maps (day, slot) to a global epoch index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochMapper {
    /// Routing epochs per day.
    pub epochs_per_day: u32,
}

impl EpochMapper {
    /// Construct; panics on zero epochs per day.
    pub fn new(epochs_per_day: u32) -> Self {
        assert!(epochs_per_day > 0, "need at least one epoch per day");
        EpochMapper { epochs_per_day }
    }

    /// Epoch of `slot` (0-based) within `day`.
    pub fn epoch(&self, day: Day, slot: u32) -> Epoch {
        day * self.epochs_per_day + (slot % self.epochs_per_day)
    }

    /// The day an epoch belongs to.
    pub fn day_of(&self, epoch: Epoch) -> Day {
        epoch / self.epochs_per_day
    }

    /// Total epochs in `total_days`.
    pub fn total_epochs(&self, total_days: u32) -> u32 {
        total_days * self.epochs_per_day
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_of_day_granularity_is_identity() {
        let w = TimeWindow::of(17, Granularity::Day, 365);
        assert_eq!(w.index, 17);
    }

    #[test]
    fn week_and_month_bucketing() {
        assert_eq!(TimeWindow::of(0, Granularity::Week, 365).index, 0);
        assert_eq!(TimeWindow::of(6, Granularity::Week, 365).index, 0);
        assert_eq!(TimeWindow::of(7, Granularity::Week, 365).index, 1);
        assert_eq!(TimeWindow::of(29, Granularity::Month, 365).index, 0);
        assert_eq!(TimeWindow::of(30, Granularity::Month, 365).index, 1);
    }

    #[test]
    fn trailing_partial_window_folds_into_last() {
        // 365 days = 52 full weeks + 1 day; day 364 joins week 51.
        assert_eq!(TimeWindow::count(Granularity::Week, 365), 52);
        assert_eq!(TimeWindow::of(364, Granularity::Week, 365).index, 51);
        // 365 days = 12 months of 30 + 5 days; day 360..364 joins month 11.
        assert_eq!(TimeWindow::count(Granularity::Month, 365), 12);
        assert_eq!(TimeWindow::of(364, Granularity::Month, 365).index, 11);
    }

    #[test]
    fn year_window_is_single() {
        assert_eq!(TimeWindow::count(Granularity::Year, 365), 1);
        assert_eq!(TimeWindow::of(200, Granularity::Year, 365).index, 0);
    }

    #[test]
    fn end_day_marks_closable_windows() {
        // Interior windows end exactly where the next one starts − 1.
        assert_eq!(TimeWindow::of(0, Granularity::Day, 60).end_day(60), Some(0));
        assert_eq!(TimeWindow::of(8, Granularity::Week, 60).end_day(60), Some(13));
        assert_eq!(TimeWindow::of(5, Granularity::Month, 60).end_day(60), Some(29));
        // The final window of every granularity absorbs the trailing
        // slice (and clamped future days), so it never closes.
        assert_eq!(TimeWindow::of(59, Granularity::Day, 60).end_day(60), None);
        assert_eq!(TimeWindow::of(59, Granularity::Week, 60).end_day(60), None);
        assert_eq!(TimeWindow::of(59, Granularity::Month, 60).end_day(60), None);
        assert_eq!(TimeWindow::of(3, Granularity::Year, 60).end_day(60), None);
        // Clamped future days land in the last (open) window.
        assert_eq!(TimeWindow::of(1000, Granularity::Day, 60).end_day(60), None);
    }

    #[test]
    fn epoch_mapping_roundtrip() {
        let m = EpochMapper::new(6);
        assert_eq!(m.epoch(0, 0), 0);
        assert_eq!(m.epoch(1, 0), 6);
        assert_eq!(m.epoch(2, 5), 17);
        assert_eq!(m.day_of(17), 2);
        assert_eq!(m.total_epochs(365), 2190);
        // Slot overflow wraps within the day rather than spilling over.
        assert_eq!(m.epoch(3, 7), m.epoch(3, 1));
    }

    #[test]
    #[should_panic]
    fn zero_epochs_rejected() {
        EpochMapper::new(0);
    }

    #[test]
    fn windows_are_ordered() {
        let a = TimeWindow::of(3, Granularity::Day, 365);
        let b = TimeWindow::of(4, Granularity::Day, 365);
        assert!(a < b);
    }
}
