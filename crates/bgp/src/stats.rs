//! Path-churn statistics — the machinery behind Figure 3.
//!
//! The paper measures, for every (vantage point, destination) pair, how
//! many *distinct AS-level paths* appear within each day, week, month, and
//! the full year, reporting the fraction of pairs with ≥2 (i.e. any
//! churn) and the distribution of distinct-path counts. These helpers
//! compute those statistics from any source of timestamped paths — the
//! platform feeds measured (traceroute-derived) paths; ablations can feed
//! oracle paths straight from [`crate::RoutingSim`].

use crate::time::{Day, Granularity, TimeWindow};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One observed path sample: who, when, what.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathSample<K> {
    /// Pair identifier (e.g. `(vantage_asn, dest_asn)`).
    pub pair: K,
    /// Day the path was observed.
    pub day: Day,
    /// The AS-level path, rendered as a stable key (e.g. the ASN list).
    pub path: Vec<u32>,
}

/// Distribution of distinct-path counts per pair for one granularity:
/// `dist[k]` = number of (pair, window) combos that observed exactly
/// `k+1` distinct paths; the final bucket aggregates `5+`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistinctPathDist {
    /// The granularity this distribution was computed at.
    pub granularity: Granularity,
    /// Buckets for 1, 2, 3, 4, 5+ distinct paths.
    pub buckets: [u64; 5],
    /// Total (pair, window) combos counted.
    pub total: u64,
}

impl DistinctPathDist {
    /// Fraction of combos with at least `k` distinct paths (k in 1..=5).
    pub fn frac_at_least(&self, k: usize) -> f64 {
        assert!((1..=5).contains(&k));
        if self.total == 0 {
            return 0.0;
        }
        let n: u64 = self.buckets[k - 1..].iter().sum();
        n as f64 / self.total as f64
    }

    /// Fraction of combos with ≥2 distinct paths — the headline "pairs
    /// observed to change" number (25/30/38/67% in the paper).
    pub fn churn_fraction(&self) -> f64 {
        self.frac_at_least(2)
    }
}

/// Compute distinct-path distributions at each granularity.
///
/// For sub-year granularities, each (pair, window) combo in which the pair
/// was observed at least twice counts once; pairs observed once in a
/// window cannot exhibit churn and are excluded (a pair must be *measured*
/// repeatedly for churn to be observable — matching how the paper can only
/// count distinct paths among performed measurements).
pub fn distinct_path_distributions<K: Eq + std::hash::Hash + Clone>(
    samples: &[PathSample<K>],
    granularities: &[Granularity],
    total_days: u32,
) -> Vec<DistinctPathDist> {
    granularities
        .iter()
        .map(|&g| {
            type ComboStats<'a> = (HashSet<&'a [u32]>, u64);
            let mut per_combo: HashMap<(K, TimeWindow), ComboStats<'_>> = HashMap::new();
            for s in samples {
                let w = TimeWindow::of(s.day, g, total_days);
                let e = per_combo
                    .entry((s.pair.clone(), w))
                    .or_insert_with(|| (HashSet::new(), 0));
                e.0.insert(&s.path);
                e.1 += 1;
            }
            let mut buckets = [0u64; 5];
            let mut total = 0u64;
            for (paths, observations) in per_combo.values() {
                if *observations < 2 {
                    continue; // churn unobservable from one measurement
                }
                let k = paths.len().min(5);
                buckets[k - 1] += 1;
                total += 1;
            }
            DistinctPathDist { granularity: g, buckets, total }
        })
        .collect()
}

/// Per-pair distinct path count over the whole period (Figure 3's x-axis
/// at year granularity), exposed separately for per-destination-class
/// breakdowns.
pub fn distinct_paths_per_pair<K: Eq + std::hash::Hash + Clone>(
    samples: &[PathSample<K>],
) -> HashMap<K, usize> {
    let mut per_pair: HashMap<K, HashSet<&[u32]>> = HashMap::new();
    for s in samples {
        per_pair.entry(s.pair.clone()).or_default().insert(&s.path);
    }
    per_pair.into_iter().map(|(k, v)| (k, v.len())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pair: u32, day: Day, path: &[u32]) -> PathSample<u32> {
        PathSample { pair, day, path: path.to_vec() }
    }

    #[test]
    fn stable_pair_counts_one_path() {
        let samples: Vec<_> = (0..10).map(|d| sample(1, d, &[10, 20, 30])).collect();
        let dists =
            distinct_path_distributions(&samples, &[Granularity::Year], 365);
        assert_eq!(dists[0].buckets, [1, 0, 0, 0, 0]);
        assert_eq!(dists[0].churn_fraction(), 0.0);
    }

    #[test]
    fn churny_pair_counts_multiple() {
        let mut samples = vec![];
        for d in 0..10 {
            samples.push(sample(1, d, &[10, 20, 30]));
            samples.push(sample(1, d, &[10, 25, 30]));
        }
        let dists = distinct_path_distributions(
            &samples,
            &[Granularity::Day, Granularity::Year],
            365,
        );
        // Each of the 10 days has 2 distinct paths.
        assert_eq!(dists[0].buckets, [0, 10, 0, 0, 0]);
        assert_eq!(dists[0].churn_fraction(), 1.0);
        // The year window sees 2 distinct paths once.
        assert_eq!(dists[1].buckets, [0, 1, 0, 0, 0]);
    }

    #[test]
    fn single_observation_windows_excluded() {
        // One observation per day: day-granularity combos are all excluded,
        // year granularity has 3 observations with 3 distinct paths.
        let samples = vec![
            sample(1, 0, &[1, 2]),
            sample(1, 40, &[1, 3]),
            sample(1, 80, &[1, 4]),
        ];
        let dists = distinct_path_distributions(
            &samples,
            &[Granularity::Day, Granularity::Year],
            365,
        );
        assert_eq!(dists[0].total, 0);
        assert_eq!(dists[1].buckets, [0, 0, 1, 0, 0]);
    }

    #[test]
    fn five_plus_bucket_saturates() {
        let samples: Vec<_> =
            (0..8).map(|i| sample(1, 0, &[1, 100 + i])).collect();
        let dists = distinct_path_distributions(&samples, &[Granularity::Day], 365);
        assert_eq!(dists[0].buckets, [0, 0, 0, 0, 1]);
        assert_eq!(dists[0].frac_at_least(5), 1.0);
    }

    #[test]
    fn per_pair_counts() {
        let samples = vec![
            sample(1, 0, &[1, 2]),
            sample(1, 5, &[1, 3]),
            sample(2, 0, &[9, 9]),
        ];
        let counts = distinct_paths_per_pair(&samples);
        assert_eq!(counts[&1], 2);
        assert_eq!(counts[&2], 1);
    }

    #[test]
    fn fractions_monotone_in_granularity() {
        // Coarser windows can only see more distinct paths; verify on a
        // synthetic flappy pair measured twice per day.
        let mut samples = vec![];
        for d in 0..365 {
            samples.push(sample(1, d, &[10, 20 + (d % 7), 99]));
            samples.push(sample(1, d, &[10, 20 + ((d + 1) % 7), 99]));
        }
        let dists = distinct_path_distributions(
            &samples,
            &[Granularity::Day, Granularity::Week, Granularity::Month, Granularity::Year],
            365,
        );
        // Distinct counts: day=2, week≥2, month≥2, year=7; the mean distinct
        // count is non-decreasing with window size.
        let means: Vec<f64> = dists
            .iter()
            .map(|d| {
                let weighted: u64 = d
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (i as u64 + 1) * n)
                    .sum();
                weighted as f64 / d.total as f64
            })
            .collect();
        for w in means.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "means not monotone: {means:?}");
        }
    }
}
