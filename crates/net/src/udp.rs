//! UDP datagrams (carrier for DNS in the measurement flows).

use crate::tcp::pseudo_checksum;
use crate::WireError;
use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// A UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes (e.g. an encoded DNS message).
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    /// Construct a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        UdpDatagram { src_port, dst_port, payload }
    }

    /// Encode to wire bytes with a correct pseudo-header checksum.
    pub fn encode(&self, src_ip: u32, dst_ip: u32) -> Vec<u8> {
        let len = 8 + self.payload.len();
        let mut buf = BytesMut::with_capacity(len);
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(len as u16);
        buf.put_u16(0); // checksum placeholder
        buf.extend_from_slice(&self.payload);
        let mut ck = pseudo_checksum(src_ip, dst_ip, 17, &buf);
        // RFC 768: a computed checksum of zero is transmitted as all-ones.
        if ck == 0 {
            ck = 0xffff;
        }
        buf[6] = (ck >> 8) as u8;
        buf[7] = (ck & 0xff) as u8;
        buf.to_vec()
    }

    /// Decode from wire bytes, validating length and checksum.
    pub fn decode(data: &[u8], src_ip: u32, dst_ip: u32) -> Result<Self, WireError> {
        if data.len() < 8 {
            return Err(WireError::Truncated("udp header"));
        }
        let len = u16::from_be_bytes([data[4], data[5]]) as usize;
        if len < 8 || data.len() < len {
            return Err(WireError::Truncated("udp body"));
        }
        let ck_field = u16::from_be_bytes([data[6], data[7]]);
        // Checksum 0 means "not computed" per RFC 768.
        if ck_field != 0 && pseudo_checksum(src_ip, dst_ip, 17, &data[..len]) != 0 {
            return Err(WireError::BadChecksum("udp"));
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            payload: data[8..len].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_basic() {
        let d = UdpDatagram::new(5353, 53, b"query".to_vec());
        let back = UdpDatagram::decode(&d.encode(7, 8), 7, 8).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn corruption_detected() {
        let d = UdpDatagram::new(1, 2, b"payload".to_vec());
        let mut wire = d.encode(7, 8);
        wire[9] ^= 0xff;
        assert_eq!(UdpDatagram::decode(&wire, 7, 8), Err(WireError::BadChecksum("udp")));
    }

    #[test]
    fn zero_checksum_skips_validation() {
        let d = UdpDatagram::new(1, 2, b"x".to_vec());
        let mut wire = d.encode(7, 8);
        wire[6] = 0;
        wire[7] = 0;
        assert!(UdpDatagram::decode(&wire, 7, 8).is_ok());
    }

    #[test]
    fn truncated_rejected() {
        assert!(UdpDatagram::decode(&[0; 4], 1, 2).is_err());
        let d = UdpDatagram::new(1, 2, vec![0; 16]);
        let wire = d.encode(1, 2);
        assert!(UdpDatagram::decode(&wire[..12], 1, 2).is_err());
    }

    proptest! {
        #[test]
        fn prop_udp_roundtrip(
            sport in any::<u16>(), dport in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..512),
            src in any::<u32>(), dst in any::<u32>(),
        ) {
            let d = UdpDatagram::new(sport, dport, payload);
            let back = UdpDatagram::decode(&d.encode(src, dst), src, dst).unwrap();
            prop_assert_eq!(d, back);
        }
    }
}
