//! Traceroute engine over hop paths.
//!
//! ICLab records traceroutes alongside each measurement; the paper's
//! clause formulation (§3.1) then discards tests whose traceroutes are
//! inconclusive: complete failures, unmappable hops, or non-responsive
//! hops flanked by different ASes. This engine produces exactly those
//! kinds of imperfect traceroutes: per-hop non-response, whole-run
//! failures, and early truncation.

use crate::hops::HopPath;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Traceroute failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TracerouteError {
    /// The run produced no usable output (tool error, ICMP filtered
    /// everywhere).
    Failed,
    /// The run stopped before reaching the destination.
    Truncated,
}

/// Configuration for the traceroute engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracerouteConfig {
    /// Probability any individual hop does not answer (shown as `*`).
    pub nonresponse_prob: f64,
    /// Probability the entire run fails.
    pub failure_prob: f64,
    /// Probability the run truncates at a random hop before the end.
    pub truncate_prob: f64,
}

impl Default for TracerouteConfig {
    fn default() -> Self {
        TracerouteConfig { nonresponse_prob: 0.05, failure_prob: 0.01, truncate_prob: 0.01 }
    }
}

impl TracerouteConfig {
    /// A perfectly reliable tracerouting world (for noise-free scenarios).
    pub fn ideal() -> Self {
        TracerouteConfig { nonresponse_prob: 0.0, failure_prob: 0.0, truncate_prob: 0.0 }
    }
}

/// The outcome of one traceroute run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Traceroute {
    /// Per-hop responding address; `None` for a `*` (non-responsive) hop.
    pub hops: Vec<Option<u32>>,
    /// Set when the run failed or truncated.
    pub error: Option<TracerouteError>,
}

impl Traceroute {
    /// Run one traceroute over `path`.
    pub fn run<R: Rng>(path: &HopPath, cfg: &TracerouteConfig, rng: &mut R) -> Self {
        if rng.gen_bool(cfg.failure_prob.clamp(0.0, 1.0)) {
            return Traceroute { hops: Vec::new(), error: Some(TracerouteError::Failed) };
        }
        let total = path.len();
        let cutoff = if total > 1 && rng.gen_bool(cfg.truncate_prob.clamp(0.0, 1.0)) {
            Some(rng.gen_range(1..total))
        } else {
            None
        };
        let mut hops = Vec::with_capacity(total);
        for (i, hop) in path.hops.iter().enumerate() {
            if let Some(c) = cutoff {
                if i >= c {
                    break;
                }
            }
            if rng.gen_bool(cfg.nonresponse_prob.clamp(0.0, 1.0)) {
                hops.push(None);
            } else {
                hops.push(Some(hop.ip));
            }
        }
        Traceroute {
            hops,
            error: cutoff.map(|_| TracerouteError::Truncated),
        }
    }

    /// True if the destination responded (last hop present and responsive).
    pub fn reached_destination(&self, path: &HopPath) -> bool {
        self.error.is_none()
            && self.hops.len() == path.len()
            && self.hops.last().map(|h| *h == Some(path.server_ip)).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_topology::{Asn, Ipv4Prefix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn path() -> HopPath {
        let asns = [Asn(1), Asn(2), Asn(3), Asn(4)];
        let prefixes: HashMap<Asn, Vec<Ipv4Prefix>> = asns
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, vec![Ipv4Prefix::new(((i as u32) + 1) << 24, 16).unwrap()]))
            .collect();
        let mut rng = StdRng::seed_from_u64(5);
        let server = prefixes[&Asn(4)][0].nth_host(1);
        HopPath::expand(&asns, &prefixes, 7, server, (1, 2), &mut rng)
    }

    #[test]
    fn ideal_traceroute_is_complete() {
        let p = path();
        let mut rng = StdRng::seed_from_u64(1);
        let t = Traceroute::run(&p, &TracerouteConfig::ideal(), &mut rng);
        assert!(t.error.is_none());
        assert_eq!(t.hops.len(), p.len());
        assert!(t.hops.iter().all(|h| h.is_some()));
        assert!(t.reached_destination(&p));
        // Every hop matches the underlying path.
        for (i, h) in t.hops.iter().enumerate() {
            assert_eq!(*h, Some(p.hops[i].ip));
        }
    }

    #[test]
    fn failure_produces_empty_run() {
        let p = path();
        let cfg = TracerouteConfig { failure_prob: 1.0, ..TracerouteConfig::ideal() };
        let mut rng = StdRng::seed_from_u64(2);
        let t = Traceroute::run(&p, &cfg, &mut rng);
        assert_eq!(t.error, Some(TracerouteError::Failed));
        assert!(t.hops.is_empty());
        assert!(!t.reached_destination(&p));
    }

    #[test]
    fn nonresponse_shows_stars() {
        let p = path();
        let cfg = TracerouteConfig { nonresponse_prob: 1.0, ..TracerouteConfig::ideal() };
        let mut rng = StdRng::seed_from_u64(3);
        let t = Traceroute::run(&p, &cfg, &mut rng);
        assert!(t.error.is_none());
        assert!(t.hops.iter().all(|h| h.is_none()));
        assert!(!t.reached_destination(&p));
    }

    #[test]
    fn truncation_shortens_run() {
        let p = path();
        let cfg = TracerouteConfig { truncate_prob: 1.0, ..TracerouteConfig::ideal() };
        let mut rng = StdRng::seed_from_u64(4);
        let t = Traceroute::run(&p, &cfg, &mut rng);
        assert_eq!(t.error, Some(TracerouteError::Truncated));
        assert!(t.hops.len() < p.len());
        assert!(!t.hops.is_empty());
    }

    #[test]
    fn deterministic_given_rng() {
        let p = path();
        let cfg = TracerouteConfig::default();
        let a = Traceroute::run(&p, &cfg, &mut StdRng::seed_from_u64(11));
        let b = Traceroute::run(&p, &cfg, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }
}
