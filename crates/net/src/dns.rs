//! DNS messages: the RFC 1035 subset used by the measurement platform.
//!
//! ICLab's DNS-anomaly test issues A queries through two resolvers and
//! counts response packets — a censor that *injects* a response produces a
//! second answer racing the resolver's. This module provides the message
//! model for both legitimate responses and injected ones, including wire
//! encoding (label format) and parsing (with compression-pointer support,
//! since real injectors use pointers to look legitimate).

use crate::WireError;
use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// Query type (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsQType {
    /// IPv4 address record.
    A,
    /// Anything else (kept numeric).
    Other(u16),
}

impl DnsQType {
    fn to_u16(self) -> u16 {
        match self {
            DnsQType::A => 1,
            DnsQType::Other(v) => v,
        }
    }

    fn from_u16(v: u16) -> Self {
        match v {
            1 => DnsQType::A,
            other => DnsQType::Other(other),
        }
    }
}

/// Response code (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsRcode {
    /// No error.
    NoError,
    /// Name does not exist.
    NxDomain,
    /// Server failure.
    ServFail,
    /// Other code, kept numeric.
    Other(u8),
}

impl DnsRcode {
    fn to_u8(self) -> u8 {
        match self {
            DnsRcode::NoError => 0,
            DnsRcode::ServFail => 2,
            DnsRcode::NxDomain => 3,
            DnsRcode::Other(v) => v & 0x0f,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v & 0x0f {
            0 => DnsRcode::NoError,
            2 => DnsRcode::ServFail,
            3 => DnsRcode::NxDomain,
            other => DnsRcode::Other(other),
        }
    }
}

/// An A-record answer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsAnswer {
    /// Owner name.
    pub name: String,
    /// TTL seconds.
    pub ttl: u32,
    /// The IPv4 address.
    pub addr: u32,
}

/// A DNS message carrying exactly one question (as ICLab's tests do).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsMessage {
    /// Transaction ID (responses must echo the query's).
    pub id: u16,
    /// True for responses.
    pub is_response: bool,
    /// Recursion desired (queries) / available (responses) collapsed into
    /// one flag for simplicity.
    pub recursion: bool,
    /// Response code.
    pub rcode: DnsRcode,
    /// Queried name (lowercase, no trailing dot).
    pub qname: String,
    /// Query type.
    pub qtype: DnsQType,
    /// Answers (responses only).
    pub answers: Vec<DnsAnswer>,
}

impl DnsMessage {
    /// An A query for `qname`.
    pub fn query(id: u16, qname: &str) -> Self {
        DnsMessage {
            id,
            is_response: false,
            recursion: true,
            rcode: DnsRcode::NoError,
            qname: qname.to_ascii_lowercase(),
            qtype: DnsQType::A,
            answers: Vec::new(),
        }
    }

    /// A response answering `query` with one A record.
    pub fn answer(query: &DnsMessage, addr: u32, ttl: u32) -> Self {
        DnsMessage {
            id: query.id,
            is_response: true,
            recursion: true,
            rcode: DnsRcode::NoError,
            qname: query.qname.clone(),
            qtype: query.qtype,
            answers: vec![DnsAnswer { name: query.qname.clone(), ttl, addr }],
        }
    }

    /// Encode to wire bytes (uncompressed names in the question, a
    /// compression pointer back to the question name in each answer, as
    /// real servers emit).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u16(self.id);
        let mut flags: u16 = 0;
        if self.is_response {
            flags |= 0x8000;
        }
        if self.recursion {
            flags |= 0x0100 | if self.is_response { 0x0080 } else { 0 };
        }
        flags |= u16::from(self.rcode.to_u8());
        buf.put_u16(flags);
        buf.put_u16(1); // QDCOUNT
        buf.put_u16(self.answers.len() as u16); // ANCOUNT
        buf.put_u16(0); // NSCOUNT
        buf.put_u16(0); // ARCOUNT
        let qname_off = buf.len() as u16;
        encode_name(&self.qname, &mut buf)?;
        buf.put_u16(self.qtype.to_u16());
        buf.put_u16(1); // IN
        for ans in &self.answers {
            if ans.name == self.qname {
                // Compression pointer to the question name.
                buf.put_u16(0xc000 | qname_off);
            } else {
                encode_name(&ans.name, &mut buf)?;
            }
            buf.put_u16(1); // TYPE A
            buf.put_u16(1); // CLASS IN
            buf.put_u32(ans.ttl);
            buf.put_u16(4);
            buf.put_u32(ans.addr);
        }
        Ok(buf.to_vec())
    }

    /// Parse from wire bytes. Non-A answer records are skipped.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < 12 {
            return Err(WireError::Truncated("dns header"));
        }
        let id = u16::from_be_bytes([data[0], data[1]]);
        let flags = u16::from_be_bytes([data[2], data[3]]);
        let qd = u16::from_be_bytes([data[4], data[5]]);
        let an = u16::from_be_bytes([data[6], data[7]]);
        if qd != 1 {
            return Err(WireError::Unsupported("dns qdcount"));
        }
        let mut pos = 12usize;
        let qname = decode_name(data, &mut pos)?;
        if pos + 4 > data.len() {
            return Err(WireError::Truncated("dns question"));
        }
        let qtype = DnsQType::from_u16(u16::from_be_bytes([data[pos], data[pos + 1]]));
        pos += 4; // type + class
        let mut answers = Vec::new();
        for _ in 0..an {
            let name = decode_name(data, &mut pos)?;
            if pos + 10 > data.len() {
                return Err(WireError::Truncated("dns answer"));
            }
            let rtype = u16::from_be_bytes([data[pos], data[pos + 1]]);
            let ttl =
                u32::from_be_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
            let rdlen = u16::from_be_bytes([data[pos + 8], data[pos + 9]]) as usize;
            pos += 10;
            if pos + rdlen > data.len() {
                return Err(WireError::Truncated("dns rdata"));
            }
            if rtype == 1 && rdlen == 4 {
                let addr = u32::from_be_bytes([
                    data[pos],
                    data[pos + 1],
                    data[pos + 2],
                    data[pos + 3],
                ]);
                answers.push(DnsAnswer { name, ttl, addr });
            }
            pos += rdlen;
        }
        Ok(DnsMessage {
            id,
            is_response: flags & 0x8000 != 0,
            recursion: flags & 0x0100 != 0,
            rcode: DnsRcode::from_u8((flags & 0x0f) as u8),
            qname,
            qtype,
            answers,
        })
    }
}

fn encode_name(name: &str, buf: &mut BytesMut) -> Result<(), WireError> {
    if name.len() > 253 {
        return Err(WireError::BadName);
    }
    for label in name.split('.') {
        if label.is_empty() || label.len() > 63 {
            return Err(WireError::BadName);
        }
        buf.put_u8(label.len() as u8);
        buf.extend_from_slice(label.as_bytes());
    }
    buf.put_u8(0);
    Ok(())
}

fn decode_name(data: &[u8], pos: &mut usize) -> Result<String, WireError> {
    let mut out = String::new();
    let mut cursor = *pos;
    let mut jumped = false;
    let mut jumps = 0;
    loop {
        if cursor >= data.len() {
            return Err(WireError::Truncated("dns name"));
        }
        let len = data[cursor] as usize;
        if len & 0xc0 == 0xc0 {
            // Compression pointer.
            if cursor + 1 >= data.len() {
                return Err(WireError::Truncated("dns pointer"));
            }
            let target = ((len & 0x3f) << 8) | data[cursor + 1] as usize;
            if !jumped {
                *pos = cursor + 2;
                jumped = true;
            }
            jumps += 1;
            if jumps > 16 || target >= data.len() {
                return Err(WireError::BadName);
            }
            cursor = target;
            continue;
        }
        if len == 0 {
            if !jumped {
                *pos = cursor + 1;
            }
            return Ok(out);
        }
        if len > 63 || cursor + 1 + len > data.len() {
            return Err(WireError::BadName);
        }
        if !out.is_empty() {
            out.push('.');
        }
        let label = &data[cursor + 1..cursor + 1 + len];
        if !label.iter().all(|b| b.is_ascii() && *b != b'.') {
            return Err(WireError::BadName);
        }
        out.push_str(&String::from_utf8_lossy(label).to_ascii_lowercase());
        cursor += 1 + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn query_roundtrip() {
        let q = DnsMessage::query(0xbeef, "www.example.com");
        let back = DnsMessage::decode(&q.encode().unwrap()).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn answer_roundtrip_uses_compression() {
        let q = DnsMessage::query(7, "blocked.example.org");
        let a = DnsMessage::answer(&q, 0x01020304, 300);
        let wire = a.encode().unwrap();
        // The answer name must be a compression pointer (0xc0..).
        let q_end = 12 + "blocked.example.org".len() + 2 + 4;
        assert_eq!(wire[q_end] & 0xc0, 0xc0);
        let back = DnsMessage::decode(&wire).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn response_flag_set() {
        let q = DnsMessage::query(1, "a.b");
        let a = DnsMessage::answer(&q, 9, 60);
        assert!(!DnsMessage::decode(&q.encode().unwrap()).unwrap().is_response);
        assert!(DnsMessage::decode(&a.encode().unwrap()).unwrap().is_response);
    }

    #[test]
    fn qname_case_insensitive() {
        let q = DnsMessage::query(1, "WwW.ExAmPle.COM");
        assert_eq!(q.qname, "www.example.com");
    }

    #[test]
    fn bad_names_rejected() {
        let mut q = DnsMessage::query(1, "ok.example");
        q.qname = "a..b".to_string();
        assert_eq!(q.encode(), Err(WireError::BadName));
        q.qname = "x".repeat(64) + ".com";
        assert_eq!(q.encode(), Err(WireError::BadName));
        q.qname = "y".repeat(300);
        assert_eq!(q.encode(), Err(WireError::BadName));
    }

    #[test]
    fn pointer_loop_rejected() {
        // Header + a name that is a pointer to itself at offset 12.
        let mut wire = vec![0u8; 12];
        wire[5] = 1; // QDCOUNT = 1
        wire.extend_from_slice(&[0xc0, 12]); // pointer -> 12 (itself)
        wire.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(DnsMessage::decode(&wire), Err(WireError::BadName));
    }

    #[test]
    fn rcode_roundtrip() {
        for rc in [DnsRcode::NoError, DnsRcode::NxDomain, DnsRcode::ServFail, DnsRcode::Other(5)] {
            let mut q = DnsMessage::query(3, "x.y");
            q.rcode = rc;
            q.is_response = true;
            let back = DnsMessage::decode(&q.encode().unwrap()).unwrap();
            assert_eq!(back.rcode, rc);
        }
    }

    proptest! {
        #[test]
        fn prop_dns_roundtrip(
            id in any::<u16>(),
            labels in proptest::collection::vec("[a-z0-9]{1,12}", 1..5),
            addr in any::<u32>(), ttl in any::<u32>(), nanswers in 0usize..4,
        ) {
            let name = labels.join(".");
            let q = DnsMessage::query(id, &name);
            let mut m = if nanswers > 0 { DnsMessage::answer(&q, addr, ttl) } else { q };
            for _ in 1..nanswers {
                m.answers.push(DnsAnswer { name: name.clone(), ttl, addr });
            }
            let back = DnsMessage::decode(&m.encode().unwrap()).unwrap();
            prop_assert_eq!(m, back);
        }

        #[test]
        fn prop_dns_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..96)) {
            let _ = DnsMessage::decode(&data);
        }
    }
}
