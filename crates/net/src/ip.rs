//! IPv4 packets: structured form plus RFC 791 wire format.

use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;
use crate::{internet_checksum, WireError};
use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Transport payload of an IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Payload {
    /// TCP segment (protocol 6).
    Tcp(TcpSegment),
    /// UDP datagram (protocol 17).
    Udp(UdpDatagram),
}

impl Payload {
    /// IANA protocol number.
    pub fn proto(&self) -> u8 {
        match self {
            Payload::Tcp(_) => 6,
            Payload::Udp(_) => 17,
        }
    }
}

/// An IPv4 packet.
///
/// The simulator keeps packets structured; [`Ipv4Packet::encode`] /
/// [`Ipv4Packet::decode`] provide the on-the-wire view (used by the pcap
/// exporter and exercised by property tests).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Remaining time-to-live. This is the field the paper's TTL-anomaly
    /// detector scrutinises: a packet injected by an on-path censor has
    /// traversed fewer hops than one from the true server, so its remaining
    /// TTL differs from the SYNACK's.
    pub ttl: u8,
    /// IP identification field.
    pub ident: u16,
    /// Transport payload.
    pub payload: Payload,
}

impl Ipv4Packet {
    /// Convenience constructor for a TCP packet.
    pub fn tcp(src: u32, dst: u32, ttl: u8, ident: u16, seg: TcpSegment) -> Self {
        Ipv4Packet { src, dst, ttl, ident, payload: Payload::Tcp(seg) }
    }

    /// Convenience constructor for a UDP packet.
    pub fn udp(src: u32, dst: u32, ttl: u8, ident: u16, dgram: UdpDatagram) -> Self {
        Ipv4Packet { src, dst, ttl, ident, payload: Payload::Udp(dgram) }
    }

    /// The TCP segment, if this is a TCP packet.
    pub fn as_tcp(&self) -> Option<&TcpSegment> {
        match &self.payload {
            Payload::Tcp(t) => Some(t),
            _ => None,
        }
    }

    /// The UDP datagram, if this is a UDP packet.
    pub fn as_udp(&self) -> Option<&UdpDatagram> {
        match &self.payload {
            Payload::Udp(u) => Some(u),
            _ => None,
        }
    }

    /// Source as dotted quad.
    pub fn src_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.src)
    }

    /// Destination as dotted quad.
    pub fn dst_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.dst)
    }

    /// Encode to wire bytes: a 20-byte header (no options) with a correct
    /// header checksum, followed by the encoded transport payload
    /// (transport checksums computed over the IPv4 pseudo-header).
    pub fn encode(&self) -> Vec<u8> {
        let body = match &self.payload {
            Payload::Tcp(t) => t.encode(self.src, self.dst),
            Payload::Udp(u) => u.encode(self.src, self.dst),
        };
        let total_len = 20 + body.len();
        let mut buf = BytesMut::with_capacity(total_len);
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(0); // DSCP/ECN
        buf.put_u16(total_len as u16);
        buf.put_u16(self.ident);
        buf.put_u16(0); // flags/fragment offset: DF not modelled
        buf.put_u8(self.ttl);
        buf.put_u8(self.payload.proto());
        buf.put_u16(0); // checksum placeholder
        buf.put_u32(self.src);
        buf.put_u32(self.dst);
        let ck = internet_checksum(&buf[..20]);
        buf[10] = (ck >> 8) as u8;
        buf[11] = (ck & 0xff) as u8;
        buf.extend_from_slice(&body);
        buf.to_vec()
    }

    /// Decode from wire bytes, validating the header checksum and
    /// structure.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < 20 {
            return Err(WireError::Truncated("ipv4 header"));
        }
        if data[0] >> 4 != 4 {
            return Err(WireError::Unsupported("ip version"));
        }
        let ihl = (data[0] & 0x0f) as usize * 4;
        if ihl < 20 || data.len() < ihl {
            return Err(WireError::Truncated("ipv4 options"));
        }
        if internet_checksum(&data[..ihl]) != 0 {
            return Err(WireError::BadChecksum("ipv4 header"));
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total_len < ihl || data.len() < total_len {
            return Err(WireError::Truncated("ipv4 body"));
        }
        let ident = u16::from_be_bytes([data[4], data[5]]);
        let ttl = data[8];
        let proto = data[9];
        let src = u32::from_be_bytes([data[12], data[13], data[14], data[15]]);
        let dst = u32::from_be_bytes([data[16], data[17], data[18], data[19]]);
        let body = &data[ihl..total_len];
        let payload = match proto {
            6 => Payload::Tcp(TcpSegment::decode(body, src, dst)?),
            17 => Payload::Udp(UdpDatagram::decode(body, src, dst)?),
            _ => return Err(WireError::Unsupported("ip protocol")),
        };
        Ok(Ipv4Packet { src, dst, ttl, ident, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpFlags;
    use proptest::prelude::*;

    fn sample_tcp() -> Ipv4Packet {
        Ipv4Packet::tcp(
            0x0a000001,
            0x0a000002,
            57,
            0x1234,
            TcpSegment {
                src_port: 443,
                dst_port: 51000,
                seq: 0xdeadbeef,
                ack: 0x01020304,
                flags: TcpFlags::SYN | TcpFlags::ACK,
                window: 65535,
                payload: vec![],
            },
        )
    }

    #[test]
    fn encode_decode_roundtrip_tcp() {
        let p = sample_tcp();
        let wire = p.encode();
        let back = Ipv4Packet::decode(&wire).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn header_fields_on_wire() {
        let p = sample_tcp();
        let wire = p.encode();
        assert_eq!(wire[0], 0x45);
        assert_eq!(wire[8], 57); // TTL
        assert_eq!(wire[9], 6); // proto
        assert_eq!(&wire[12..16], &[10, 0, 0, 1]);
        assert_eq!(&wire[16..20], &[10, 0, 0, 2]);
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let mut wire = sample_tcp().encode();
        wire[10] ^= 0xff;
        assert_eq!(Ipv4Packet::decode(&wire), Err(WireError::BadChecksum("ipv4 header")));
    }

    #[test]
    fn truncation_rejected() {
        let wire = sample_tcp().encode();
        assert!(Ipv4Packet::decode(&wire[..10]).is_err());
        assert!(Ipv4Packet::decode(&wire[..25]).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut wire = sample_tcp().encode();
        wire[0] = 0x65;
        assert_eq!(Ipv4Packet::decode(&wire), Err(WireError::Unsupported("ip version")));
    }

    proptest! {
        #[test]
        fn prop_ip_tcp_roundtrip(
            src in any::<u32>(), dst in any::<u32>(), ttl in any::<u8>(),
            ident in any::<u16>(), sport in any::<u16>(), dport in any::<u16>(),
            seq in any::<u32>(), ack in any::<u32>(), flags_bits in 0u8..64,
            window in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let p = Ipv4Packet::tcp(src, dst, ttl, ident, TcpSegment {
                src_port: sport, dst_port: dport, seq, ack,
                flags: TcpFlags::from_bits(flags_bits),
                window, payload,
            });
            let back = Ipv4Packet::decode(&p.encode()).unwrap();
            prop_assert_eq!(p, back);
        }

        #[test]
        fn prop_ip_udp_roundtrip(
            src in any::<u32>(), dst in any::<u32>(), ttl in any::<u8>(),
            sport in any::<u16>(), dport in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let p = Ipv4Packet::udp(src, dst, ttl, 0, UdpDatagram {
                src_port: sport, dst_port: dport, payload,
            });
            let back = Ipv4Packet::decode(&p.encode()).unwrap();
            prop_assert_eq!(p, back);
        }

        #[test]
        fn prop_random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = Ipv4Packet::decode(&data); // must not panic
        }
    }
}
