//! Flow synthesis: clean DNS lookups and HTTP GETs over a hop path, with
//! an on-path observer hook for middleboxes.
//!
//! The simulator builds the packet timeline a client-side capture would
//! show. Middleboxes (censors — implemented in `churnlab-censor`) register
//! as [`OnPathObserver`]s at an AS position along the path; they see every
//! *forward* (client → server) packet that reaches their AS, and may drop
//! it and/or inject packets back toward the client. Injected packets get
//! their remaining TTL computed from the injector's position — the
//! asymmetry the paper's TTL detector exploits — while the timeline places
//! them ahead of the genuine response — the race the DNS detector exploits.
//!
//! Injection mechanics mirror real-world censors: an injector cannot see
//! the server's initial sequence number directly (it only watches forward
//! packets), so — like the Great Firewall — it derives it from the ACK
//! field of the client's request.

use crate::capture::{Capture, Direction};
use crate::dns::DnsMessage;
use crate::hops::HopPath;
use crate::http::{HttpRequest, HttpResponse};
use crate::ip::Ipv4Packet;
#[cfg(test)]
use crate::ip::Payload;
use crate::tcp::{TcpFlags, TcpSegment};
use crate::udp::UdpDatagram;
use serde::{Deserialize, Serialize};

/// A packet injected by an on-path observer.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedPacket {
    /// Extra delay after the triggering packet reached the injector.
    pub delay_us: u64,
    /// TTL the injector stamps on the packet *at the injection point*; the
    /// simulator decrements it by the hop distance back to the client.
    pub initial_ttl: u8,
    /// The packet (src/dst/ports/seq as forged by the injector; the `ttl`
    /// field is overwritten on arrival).
    pub pkt: Ipv4Packet,
}

/// What an observer decides about one forward packet.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObserverVerdict {
    /// Stop the packet here (it never reaches later ASes or the server).
    pub drop_forward: bool,
    /// Packets to send back toward the client.
    pub inject: Vec<InjectedPacket>,
}

impl ObserverVerdict {
    /// Let the packet through untouched.
    pub fn pass() -> Self {
        ObserverVerdict::default()
    }
}

/// A middlebox watching forward packets at a fixed AS position on a path.
pub trait OnPathObserver {
    /// Inspect a forward packet arriving at this observer at time `t_us`.
    fn observe(&mut self, pkt: &Ipv4Packet, t_us: u64) -> ObserverVerdict;
}

/// Per-flow configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Initial TTL on client packets.
    pub client_init_ttl: u8,
    /// Initial TTL on server packets.
    pub server_init_ttl: u8,
    /// Client ephemeral port.
    pub client_port: u16,
    /// Client initial sequence number.
    pub isn_client: u32,
    /// Server initial sequence number.
    pub isn_server: u32,
    /// Maximum segment size for response data.
    pub mss: usize,
    /// Organic noise: the server resets the connection after the handshake
    /// (overload, policy) — a false-positive source for the RST detector,
    /// which cannot distinguish organic from injected resets (the paper
    /// blames exactly this for ~30% unsolvable RST CNFs).
    pub organic_rst: bool,
    /// Organic noise: one response segment is lost and retransmitted,
    /// leaving a visible gap-then-duplicate in the capture — a
    /// false-positive source for the SEQNO detector.
    pub organic_loss: bool,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            client_init_ttl: 64,
            server_init_ttl: 64,
            client_port: 40000,
            isn_client: 1000,
            isn_server: 5_000_000,
            mss: 1200,
            organic_rst: false,
            organic_loss: false,
        }
    }
}

/// Functional outcome of an HTTP fetch, as the client's "browser" sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlowOutcome {
    /// A complete HTTP response was assembled (possibly a blockpage).
    HttpOk(HttpResponse),
    /// The connection was reset before a response was assembled.
    HttpReset,
    /// Nothing (or no complete response) arrived.
    HttpTimeout,
}

/// Retransmission timer for dropped SYN / request segments.
const RETRANSMIT_US: u64 = 1_000_000;

/// The flow simulator.
///
/// Stateless: each call synthesises one flow's capture over a path with a
/// set of observers positioned on it.
pub struct FlowSimulator;

impl FlowSimulator {
    /// Propagate one forward packet along the path, consulting observers in
    /// AS-path order. Returns the time the packet reached the server
    /// (`None` if dropped en route), appending injections to the capture.
    #[allow(clippy::too_many_arguments)]
    fn forward(
        path: &HopPath,
        cap: &mut Capture,
        t_send: u64,
        pkt: &Ipv4Packet,
        observers: &mut [(usize, &mut dyn OnPathObserver)],
    ) -> Option<u64> {
        cap.push(t_send, Direction::Out, pkt.clone());
        for (as_pos, obs) in observers.iter_mut() {
            let hop = match path.first_hop_of_as(*as_pos) {
                Some(h) => h,
                None => continue, // observer's AS not on this path
            };
            let t_at = t_send + path.delay_to_hop_us(hop);
            let verdict = obs.observe(pkt, t_at);
            for inj in verdict.inject {
                let mut p = inj.pkt;
                p.ttl = path.ttl_at_client_from_hop(hop, inj.initial_ttl);
                let t_arrive = t_at + path.delay_to_hop_us(hop) + inj.delay_us;
                cap.push(t_arrive, Direction::In, p);
            }
            if verdict.drop_forward {
                return None;
            }
        }
        Some(t_send + path.delay_to_hop_us(path.len() - 1))
    }

    /// Deliver one server packet to the client.
    fn from_server(path: &HopPath, cap: &mut Capture, t_sent_by_server: u64, mut pkt: Ipv4Packet, cfg: &FlowConfig) {
        pkt.ttl = path.ttl_at_client_from_server(cfg.server_init_ttl);
        let t_arrive = t_sent_by_server + path.delay_to_hop_us(path.len() - 1);
        cap.push(t_arrive, Direction::In, pkt);
    }

    /// Simulate a DNS lookup to the resolver at the end of `path`.
    ///
    /// `answer` is what the (honest) resolver would return; `None` models a
    /// resolver failure. Returns the capture and the DNS responses in
    /// arrival order — the client's stub resolver believes the first one.
    pub fn dns_lookup(
        path: &HopPath,
        cfg: &FlowConfig,
        query: &DnsMessage,
        answer: Option<&DnsMessage>,
        observers: &mut [(usize, &mut dyn OnPathObserver)],
    ) -> (Capture, Vec<DnsMessage>) {
        let mut cap = Capture::new();
        let q_wire = query.encode().expect("queries built by the platform are valid");
        let q_pkt = Ipv4Packet::udp(
            path.client_ip,
            path.server_ip,
            cfg.client_init_ttl,
            1,
            UdpDatagram::new(cfg.client_port, 53, q_wire),
        );
        let reached = Self::forward(path, &mut cap, 0, &q_pkt, observers);
        if let (Some(t_reach), Some(ans)) = (reached, answer) {
            let a_wire = ans.encode().expect("platform answers are valid");
            let a_pkt = Ipv4Packet::udp(
                path.server_ip,
                path.client_ip,
                cfg.server_init_ttl,
                2,
                UdpDatagram::new(53, cfg.client_port, a_wire),
            );
            Self::from_server(path, &mut cap, t_reach, a_pkt, cfg);
        }
        let responses = cap.dns_responses().into_iter().map(|(_, m)| m).collect();
        (cap, responses)
    }

    /// Simulate an HTTP GET to the server at the end of `path`.
    ///
    /// `server_body` is the genuine response the server would send.
    pub fn http_get(
        path: &HopPath,
        cfg: &FlowConfig,
        request: &HttpRequest,
        server_body: &HttpResponse,
        observers: &mut [(usize, &mut dyn OnPathObserver)],
    ) -> (Capture, FlowOutcome) {
        let mut cap = Capture::new();
        let sport = cfg.client_port;
        let client = path.client_ip;
        let server = path.server_ip;
        let mut ident_c = 100u16;
        let mut ident_s = 200u16;

        // --- SYN (with one retransmission on drop) ----------------------
        let syn = Ipv4Packet::tcp(client, server, cfg.client_init_ttl, ident_c, {
            TcpSegment::syn(sport, 80, cfg.isn_client)
        });
        ident_c += 1;
        let mut t = 0u64;
        let mut reached = Self::forward(path, &mut cap, t, &syn, observers);
        if reached.is_none() {
            t += RETRANSMIT_US;
            reached = Self::forward(path, &mut cap, t, &syn, observers);
        }
        let t_syn_at_server = match reached {
            Some(ts) => ts,
            None => {
                let outcome = Self::assemble(&cap, cfg);
                return (cap, outcome);
            }
        };

        // --- SYNACK -------------------------------------------------------
        let synack = Ipv4Packet::tcp(server, client, cfg.server_init_ttl, ident_s, TcpSegment {
            src_port: 80,
            dst_port: sport,
            seq: cfg.isn_server,
            ack: cfg.isn_client.wrapping_add(1),
            flags: TcpFlags::SYN | TcpFlags::ACK,
            window: 65535,
            payload: vec![],
        });
        ident_s += 1;
        Self::from_server(path, &mut cap, t_syn_at_server, synack, cfg);
        let t_handshake_done = t_syn_at_server + path.delay_to_hop_us(path.len() - 1);

        // --- ACK + GET ------------------------------------------------------
        let ack_pkt = Ipv4Packet::tcp(client, server, cfg.client_init_ttl, ident_c, TcpSegment {
            src_port: sport,
            dst_port: 80,
            seq: cfg.isn_client.wrapping_add(1),
            ack: cfg.isn_server.wrapping_add(1),
            flags: TcpFlags::ACK,
            window: 65535,
            payload: vec![],
        });
        ident_c += 1;
        let _ = Self::forward(path, &mut cap, t_handshake_done, &ack_pkt, observers);

        let get_payload = request.serialize();
        let get_pkt = Ipv4Packet::tcp(client, server, cfg.client_init_ttl, ident_c, TcpSegment {
            src_port: sport,
            dst_port: 80,
            seq: cfg.isn_client.wrapping_add(1),
            ack: cfg.isn_server.wrapping_add(1),
            flags: TcpFlags::PSH | TcpFlags::ACK,
            window: 65535,
            payload: get_payload.clone(),
        });
        let mut t_get = t_handshake_done + 300;
        let mut get_reached = Self::forward(path, &mut cap, t_get, &get_pkt, observers);
        if get_reached.is_none() {
            t_get += RETRANSMIT_US;
            get_reached = Self::forward(path, &mut cap, t_get, &get_pkt, observers);
        }
        let t_get_at_server = match get_reached {
            Some(ts) => ts,
            None => {
                let outcome = Self::assemble(&cap, cfg);
                return (cap, outcome);
            }
        };

        // --- Server response --------------------------------------------
        let next_client_seq = cfg.isn_client.wrapping_add(1).wrapping_add(get_payload.len() as u32);
        if cfg.organic_rst {
            // Overloaded/impolite server: valid RST instead of data.
            let rst = Ipv4Packet::tcp(server, client, cfg.server_init_ttl, ident_s, TcpSegment {
                src_port: 80,
                dst_port: sport,
                seq: cfg.isn_server.wrapping_add(1),
                ack: next_client_seq,
                flags: TcpFlags::RST | TcpFlags::ACK,
                window: 0,
                payload: vec![],
            });
            Self::from_server(path, &mut cap, t_get_at_server + 100, rst, cfg);
            let outcome = Self::assemble(&cap, cfg);
            return (cap, outcome);
        }

        // ACK of the GET.
        let srv_ack = Ipv4Packet::tcp(server, client, cfg.server_init_ttl, ident_s, TcpSegment {
            src_port: 80,
            dst_port: sport,
            seq: cfg.isn_server.wrapping_add(1),
            ack: next_client_seq,
            flags: TcpFlags::ACK,
            window: 65535,
            payload: vec![],
        });
        ident_s += 1;
        Self::from_server(path, &mut cap, t_get_at_server + 50, srv_ack, cfg);

        // Data segments.
        let body = server_body.serialize();
        let mut seq = cfg.isn_server.wrapping_add(1);
        let mut t_seg = t_get_at_server + 400;
        let chunks: Vec<&[u8]> = body.chunks(cfg.mss.max(1)).collect();
        let lost_index = if cfg.organic_loss && chunks.len() > 1 { Some(chunks.len() / 2) } else { None };
        let mut deferred: Option<(u32, Vec<u8>)> = None;
        for (i, chunk) in chunks.iter().enumerate() {
            let seg = TcpSegment {
                src_port: 80,
                dst_port: sport,
                seq,
                ack: next_client_seq,
                flags: TcpFlags::PSH | TcpFlags::ACK,
                window: 65535,
                payload: chunk.to_vec(),
            };
            if lost_index == Some(i) {
                // Lost in transit: remember for retransmission.
                deferred = Some((seq, chunk.to_vec()));
            } else {
                let pkt = Ipv4Packet::tcp(server, client, cfg.server_init_ttl, ident_s, seg);
                Self::from_server(path, &mut cap, t_seg, pkt, cfg);
            }
            ident_s += 1;
            seq = seq.wrapping_add(chunk.len() as u32);
            t_seg += 150;
        }
        if let Some((rseq, rchunk)) = deferred {
            // Retransmission: same sequence range again, later — the capture
            // now shows a gap followed by an overlap, organically.
            let seg = TcpSegment {
                src_port: 80,
                dst_port: sport,
                seq: rseq,
                ack: next_client_seq,
                flags: TcpFlags::PSH | TcpFlags::ACK,
                window: 65535,
                payload: rchunk,
            };
            let pkt = Ipv4Packet::tcp(server, client, cfg.server_init_ttl, ident_s, seg);
            Self::from_server(path, &mut cap, t_seg + RETRANSMIT_US / 2, pkt, cfg);
            ident_s += 1;
            t_seg += RETRANSMIT_US / 2 + 150;
        }

        // FIN from server, ACK from client.
        let fin = Ipv4Packet::tcp(server, client, cfg.server_init_ttl, ident_s, TcpSegment {
            src_port: 80,
            dst_port: sport,
            seq,
            ack: next_client_seq,
            flags: TcpFlags::FIN | TcpFlags::ACK,
            window: 65535,
            payload: vec![],
        });
        Self::from_server(path, &mut cap, t_seg, fin, cfg);
        let fin_ack = Ipv4Packet::tcp(client, server, cfg.client_init_ttl, ident_c, TcpSegment {
            src_port: sport,
            dst_port: 80,
            seq: next_client_seq,
            ack: seq.wrapping_add(1),
            flags: TcpFlags::FIN | TcpFlags::ACK,
            window: 65535,
            payload: vec![],
        });
        let _ = Self::forward(
            path,
            &mut cap,
            t_seg + path.delay_to_hop_us(path.len() - 1) + 100,
            &fin_ack,
            observers,
        );

        let outcome = Self::assemble(&cap, cfg);
        (cap, outcome)
    }

    /// Reassemble the client's view of the connection: in-order data on the
    /// (server → client) stream, stopping at the first valid RST.
    ///
    /// Injected data racing the genuine response wins by arriving first
    /// with the expected sequence number — exactly how blockpage injection
    /// defeats the real server.
    fn assemble(cap: &Capture, cfg: &FlowConfig) -> FlowOutcome {
        use std::collections::BTreeMap;
        let stream_start = cfg.isn_server.wrapping_add(1);
        // Out-of-order reassembly buffer keyed by offset into the stream.
        let mut buffer: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
        let mut contiguous: u32 = 0; // bytes assembled in order so far
        let mut data: Vec<u8> = Vec::new();
        let mut reset = false;
        for (_, seg) in cap.incoming_tcp() {
            if seg.flags.contains(TcpFlags::RST) {
                // Accept an RST whose seq is within a small window of the
                // next expected byte (clients are permissive in practice).
                let expected = stream_start.wrapping_add(contiguous);
                let delta = seg.seq.wrapping_sub(expected);
                if !(4096..=u32::MAX - 4096).contains(&delta) {
                    reset = true;
                    break;
                }
                continue; // wildly out-of-window RST ignored by the stack
            }
            if seg.has_data() {
                let off = seg.seq.wrapping_sub(stream_start);
                // Ignore segments far outside the plausible stream window.
                if off > 1 << 24 {
                    continue;
                }
                buffer.entry(off).or_insert_with(|| seg.payload.clone());
                // Drain everything now contiguous; the first writer of a
                // byte range wins, mirroring common client stacks (and
                // letting injected data beat the real server's).
                loop {
                    let next = buffer
                        .range(..=contiguous)
                        .next_back()
                        .map(|(o, p)| (*o, p.len() as u32));
                    match next {
                        Some((o, len)) if o.wrapping_add(len) > contiguous => {
                            let skip = (contiguous - o) as usize;
                            let chunk = buffer[&o][skip..].to_vec();
                            data.extend_from_slice(&chunk);
                            contiguous = o.wrapping_add(len);
                        }
                        _ => break,
                    }
                }
                if let Some(resp) = HttpResponse::parse(&data) {
                    let want: usize = resp
                        .header("Content-Length")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(resp.body.len());
                    if resp.body.len() >= want {
                        return FlowOutcome::HttpOk(resp);
                    }
                }
            }
        }
        if reset {
            FlowOutcome::HttpReset
        } else {
            FlowOutcome::HttpTimeout
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_topology::{Asn, Ipv4Prefix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn path() -> HopPath {
        let asns = [Asn(10), Asn(20), Asn(30)];
        let prefixes: HashMap<Asn, Vec<Ipv4Prefix>> = asns
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, vec![Ipv4Prefix::new(((i as u32) + 1) << 24, 16).unwrap()]))
            .collect();
        let mut rng = StdRng::seed_from_u64(9);
        let server = prefixes[&Asn(30)][0].nth_host(1);
        let client = prefixes[&Asn(10)][0].nth_host(1);
        HopPath::expand(&asns, &prefixes, client, server, (1, 2), &mut rng)
    }

    #[test]
    fn clean_get_completes_with_consistent_ttls() {
        let p = path();
        let cfg = FlowConfig::default();
        let req = HttpRequest::get("ok.example.com", "/");
        let resp = HttpResponse::ok("<html>fine</html>");
        let (cap, outcome) = FlowSimulator::http_get(&p, &cfg, &req, &resp, &mut []);
        match outcome {
            FlowOutcome::HttpOk(r) => assert_eq!(r.body, resp.body),
            other => panic!("expected ok, got {other:?}"),
        }
        // All incoming TCP packets carry the same remaining TTL (they all
        // come from the server).
        let ttls: Vec<u8> = cap.incoming_tcp().map(|(p, _)| p.pkt.ttl).collect();
        assert!(!ttls.is_empty());
        assert!(ttls.windows(2).all(|w| w[0] == w[1]), "ttls varied: {ttls:?}");
    }

    #[test]
    fn clean_get_has_monotone_seq_no_gaps() {
        let p = path();
        let cfg = FlowConfig::default();
        let req = HttpRequest::get("ok.example.com", "/");
        let resp = HttpResponse::ok(&"x".repeat(5000));
        let (cap, _) = FlowSimulator::http_get(&p, &cfg, &req, &resp, &mut []);
        let mut expected = cfg.isn_server.wrapping_add(1);
        for (_, seg) in cap.incoming_tcp().filter(|(_, s)| s.has_data()) {
            assert_eq!(seg.seq, expected, "unexpected gap/overlap in clean flow");
            expected = expected.wrapping_add(seg.payload.len() as u32);
        }
    }

    #[test]
    fn organic_rst_flows_reset_without_ttl_anomaly() {
        let p = path();
        let cfg = FlowConfig { organic_rst: true, ..FlowConfig::default() };
        let req = HttpRequest::get("ok.example.com", "/");
        let resp = HttpResponse::ok("body");
        let (cap, outcome) = FlowSimulator::http_get(&p, &cfg, &req, &resp, &mut []);
        assert_eq!(outcome, FlowOutcome::HttpReset);
        let ttls: Vec<u8> = cap.incoming_tcp().map(|(p, _)| p.pkt.ttl).collect();
        assert!(ttls.windows(2).all(|w| w[0] == w[1]), "organic RST must not change TTL");
    }

    #[test]
    fn organic_loss_produces_gap_then_overlap() {
        let p = path();
        let cfg = FlowConfig { organic_loss: true, mss: 400, ..FlowConfig::default() };
        let req = HttpRequest::get("ok.example.com", "/");
        let resp = HttpResponse::ok(&"y".repeat(2500));
        let (cap, outcome) = FlowSimulator::http_get(&p, &cfg, &req, &resp, &mut []);
        // Retransmission repairs the stream, so the fetch still succeeds…
        assert!(matches!(outcome, FlowOutcome::HttpOk(_)));
        // …but the capture order shows a sequence discontinuity.
        let seqs: Vec<u32> = cap
            .incoming_tcp()
            .filter(|(_, s)| s.has_data())
            .map(|(_, s)| s.seq)
            .collect();
        let sorted = {
            let mut s = seqs.clone();
            s.sort();
            s
        };
        assert_ne!(seqs, sorted, "loss must reorder the observed sequence numbers");
    }

    #[test]
    fn dns_lookup_single_answer_when_clean() {
        let p = path();
        let cfg = FlowConfig::default();
        let q = DnsMessage::query(7, "site.example.org");
        let a = DnsMessage::answer(&q, 0x08080404, 60);
        let (cap, responses) = FlowSimulator::dns_lookup(&p, &cfg, &q, Some(&a), &mut []);
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].answers[0].addr, 0x08080404);
        assert_eq!(cap.dns_responses().len(), 1);
    }

    #[test]
    fn dns_lookup_resolver_failure_yields_nothing() {
        let p = path();
        let (_, responses) =
            FlowSimulator::dns_lookup(&p, &FlowConfig::default(), &DnsMessage::query(1, "x.y"), None, &mut []);
        assert!(responses.is_empty());
    }

    /// An observer that injects a forged RST when it sees payload (the GET).
    struct RstInjector {
        fired: bool,
    }

    impl OnPathObserver for RstInjector {
        fn observe(&mut self, pkt: &Ipv4Packet, _t: u64) -> ObserverVerdict {
            if self.fired {
                return ObserverVerdict::pass();
            }
            if let Payload::Tcp(seg) = &pkt.payload {
                if seg.has_data() {
                    self.fired = true;
                    return ObserverVerdict {
                        drop_forward: false,
                        inject: vec![InjectedPacket {
                            delay_us: 10,
                            initial_ttl: 64,
                            pkt: Ipv4Packet::tcp(pkt.dst, pkt.src, 64, 9999, TcpSegment {
                                src_port: 80,
                                dst_port: seg.src_port,
                                seq: seg.ack,
                                ack: seg.seq_end(),
                                flags: TcpFlags::RST,
                                window: 0,
                                payload: vec![],
                            }),
                        }],
                    };
                }
            }
            ObserverVerdict::pass()
        }
    }

    #[test]
    fn injected_rst_resets_and_leaves_ttl_fingerprint() {
        let p = path();
        let cfg = FlowConfig::default();
        let req = HttpRequest::get("blocked.example.com", "/");
        let resp = HttpResponse::ok("real content");
        let mut inj = RstInjector { fired: false };
        let mut observers: Vec<(usize, &mut dyn OnPathObserver)> = vec![(1, &mut inj)];
        let (cap, outcome) = FlowSimulator::http_get(&p, &cfg, &req, &resp, &mut observers);
        assert_eq!(outcome, FlowOutcome::HttpReset);
        // The RST must carry a *different* remaining TTL than the SYNACK.
        let synack_ttl = cap
            .incoming_tcp()
            .find(|(_, s)| s.flags.contains(TcpFlags::SYN | TcpFlags::ACK))
            .map(|(p, _)| p.pkt.ttl)
            .unwrap();
        let rst_ttl = cap
            .incoming_tcp()
            .find(|(_, s)| s.flags.contains(TcpFlags::RST))
            .map(|(p, _)| p.pkt.ttl)
            .unwrap();
        assert!(rst_ttl > synack_ttl, "injector is closer, so more TTL must remain");
    }

    #[test]
    fn observer_off_path_is_ignored() {
        let p = path();
        let mut inj = RstInjector { fired: false };
        // as_pos 7 does not exist on a 3-AS path.
        let mut observers: Vec<(usize, &mut dyn OnPathObserver)> = vec![(7, &mut inj)];
        let (_, outcome) = FlowSimulator::http_get(
            &p,
            &FlowConfig::default(),
            &HttpRequest::get("a.b", "/"),
            &HttpResponse::ok("ok"),
            &mut observers,
        );
        assert!(matches!(outcome, FlowOutcome::HttpOk(_)));
    }

    /// Observer that drops everything with payload (blackholing filter).
    struct Dropper;

    impl OnPathObserver for Dropper {
        fn observe(&mut self, pkt: &Ipv4Packet, _t: u64) -> ObserverVerdict {
            let drop = matches!(&pkt.payload, Payload::Tcp(s) if s.has_data());
            ObserverVerdict { drop_forward: drop, inject: vec![] }
        }
    }

    #[test]
    fn dropped_get_times_out_after_retransmit() {
        let p = path();
        let mut d = Dropper;
        let mut observers: Vec<(usize, &mut dyn OnPathObserver)> = vec![(1, &mut d)];
        let (cap, outcome) = FlowSimulator::http_get(
            &p,
            &FlowConfig::default(),
            &HttpRequest::get("a.b", "/"),
            &HttpResponse::ok("ok"),
            &mut observers,
        );
        assert_eq!(outcome, FlowOutcome::HttpTimeout);
        // The GET appears twice in the capture (original + retransmit).
        let gets = cap
            .packets
            .iter()
            .filter(|cp| {
                cp.dir == Direction::Out
                    && cp.pkt.as_tcp().map(|s| s.has_data()).unwrap_or(false)
            })
            .count();
        assert_eq!(gets, 2);
    }
}
