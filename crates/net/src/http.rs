//! Minimal HTTP/1.1 model: GET requests and responses.
//!
//! Only what the measurement flows need: a serialisable GET (whose Host
//! header is what URL-filtering censors key on) and a response container
//! (whose body is what the blockpage detector inspects).

use serde::{Deserialize, Serialize};

/// An HTTP GET request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpRequest {
    /// Host header (the URL's domain — what filtering middleboxes match).
    pub host: String,
    /// Request path.
    pub path: String,
}

impl HttpRequest {
    /// A GET for `host`/`path`.
    pub fn get(host: &str, path: &str) -> Self {
        HttpRequest { host: host.to_string(), path: path.to_string() }
    }

    /// Serialise to wire text.
    pub fn serialize(&self) -> Vec<u8> {
        format!(
            "GET {} HTTP/1.1\r\nHost: {}\r\nUser-Agent: churnlab/0.1\r\nAccept: */*\r\nConnection: close\r\n\r\n",
            self.path, self.host
        )
        .into_bytes()
    }

    /// Parse from wire text (lenient: only the request line and Host header
    /// are required).
    pub fn parse(data: &[u8]) -> Option<Self> {
        let text = std::str::from_utf8(data).ok()?;
        let mut lines = text.split("\r\n");
        let request_line = lines.next()?;
        let mut parts = request_line.split(' ');
        if parts.next()? != "GET" {
            return None;
        }
        let path = parts.next()?.to_string();
        let host = lines
            .filter_map(|l| l.split_once(':'))
            .find(|(k, _)| k.eq_ignore_ascii_case("host"))
            .map(|(_, v)| v.trim().to_string())?;
        Some(HttpRequest { host, path })
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpResponse {
    /// Status code (200, 403, 302, …).
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Headers as (name, value) pairs, in order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A 200 OK with an HTML body.
    pub fn ok(body: &str) -> Self {
        HttpResponse {
            status: 200,
            reason: "OK".to_string(),
            headers: vec![
                ("Content-Type".to_string(), "text/html".to_string()),
                ("Content-Length".to_string(), body.len().to_string()),
            ],
            body: body.as_bytes().to_vec(),
        }
    }

    /// Serialise to wire text.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason);
        for (k, v) in &self.headers {
            out.push_str(k);
            out.push_str(": ");
            out.push_str(v);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }

    /// Parse from wire text (lenient; body is everything after the blank
    /// line).
    pub fn parse(data: &[u8]) -> Option<Self> {
        let split = data.windows(4).position(|w| w == b"\r\n\r\n")?;
        let head = std::str::from_utf8(&data[..split]).ok()?;
        let body = data[split + 4..].to_vec();
        let mut lines = head.split("\r\n");
        let status_line = lines.next()?;
        let mut parts = status_line.splitn(3, ' ');
        let version = parts.next()?;
        if !version.starts_with("HTTP/") {
            return None;
        }
        let status: u16 = parts.next()?.parse().ok()?;
        let reason = parts.next().unwrap_or("").to_string();
        let headers = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .collect();
        Some(HttpResponse { status, reason, headers, body })
    }

    /// Body as text (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Value of a header (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn request_roundtrip() {
        let r = HttpRequest::get("blocked.example.com", "/news/article.html");
        let back = HttpRequest::parse(&r.serialize()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn request_parse_requires_get_and_host() {
        assert!(HttpRequest::parse(b"POST / HTTP/1.1\r\nHost: x\r\n\r\n").is_none());
        assert!(HttpRequest::parse(b"GET / HTTP/1.1\r\n\r\n").is_none());
        assert!(HttpRequest::parse(b"\xff\xfe").is_none());
    }

    #[test]
    fn response_roundtrip() {
        let r = HttpResponse::ok("<html><body>hello</body></html>");
        let back = HttpResponse::parse(&r.serialize()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn response_header_lookup_case_insensitive() {
        let r = HttpResponse::ok("x");
        assert_eq!(r.header("content-type"), Some("text/html"));
        assert_eq!(r.header("CONTENT-LENGTH"), Some("1"));
        assert_eq!(r.header("x-nope"), None);
    }

    #[test]
    fn response_parse_binary_body() {
        let mut r = HttpResponse::ok("");
        r.body = vec![0, 159, 146, 150];
        let back = HttpResponse::parse(&r.serialize()).unwrap();
        assert_eq!(back.body, r.body);
    }

    proptest! {
        #[test]
        fn prop_request_roundtrip(host in "[a-z0-9.-]{1,40}", path in "/[a-zA-Z0-9/._-]{0,40}") {
            let r = HttpRequest::get(&host, &path);
            let back = HttpRequest::parse(&r.serialize()).unwrap();
            prop_assert_eq!(r, back);
        }

        #[test]
        fn prop_response_roundtrip(status in 100u16..600, body in proptest::collection::vec(any::<u8>(), 0..256)) {
            let r = HttpResponse {
                status,
                reason: "Stuff".to_string(),
                headers: vec![("X-Test".to_string(), "yes".to_string())],
                body,
            };
            let back = HttpResponse::parse(&r.serialize()).unwrap();
            prop_assert_eq!(r, back);
        }

        #[test]
        fn prop_parsers_never_panic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = HttpRequest::parse(&data);
            let _ = HttpResponse::parse(&data);
        }
    }
}
