//! Router-level hop paths.
//!
//! The routing simulator produces *AS-level* paths; traceroutes and TTL
//! arithmetic operate on *router-level* hops. This module expands an AS
//! path into a hop path: each AS contributes one to three router hops,
//! each with an interface address drawn from one of that AS's announced
//! prefixes (so the IP-to-AS database can map hops back — or fail to, when
//! the database is degraded).

use churnlab_topology::{Asn, Ipv4Prefix};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One router-level hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hop {
    /// Interface address that answers traceroute probes.
    pub ip: u32,
    /// Ground-truth owner AS (detectors must NOT read this; only the
    /// IP-to-AS database is fair game for inference).
    pub asn: Asn,
    /// Index of the owner AS within the AS-level path.
    pub as_pos: usize,
}

/// A router-level path from a client to a server.
///
/// `hops` excludes the client itself and ends with the server interface,
/// mirroring what traceroute shows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopPath {
    /// The AS-level path, client's AS first, server's AS last.
    pub as_path: Vec<Asn>,
    /// Router hops in forward (client → server) order.
    pub hops: Vec<Hop>,
    /// The server address (also the last hop's address).
    pub server_ip: u32,
    /// The client address (inside `as_path[0]`).
    pub client_ip: u32,
}

impl HopPath {
    /// Expand an AS-level path to router hops.
    ///
    /// * `as_path` — client AS first, server AS last; must be non-empty.
    /// * `prefixes` — announced prefixes per AS (ground truth).
    /// * `server_ip` — address inside the last AS.
    /// * `routers_per_as` — inclusive range of router hops each transit AS
    ///   contributes (the first AS contributes its egress only; the last
    ///   contributes ingress routers plus the server).
    pub fn expand<R: Rng>(
        as_path: &[Asn],
        prefixes: &HashMap<Asn, Vec<Ipv4Prefix>>,
        client_ip: u32,
        server_ip: u32,
        routers_per_as: (usize, usize),
        rng: &mut R,
    ) -> Self {
        assert!(!as_path.is_empty(), "AS path must be non-empty");
        let mut hops = Vec::new();
        for (pos, asn) in as_path.iter().enumerate() {
            let n = if pos == 0 {
                1 // client-side egress router
            } else {
                rng.gen_range(routers_per_as.0.max(1)..=routers_per_as.1.max(1))
            };
            for _ in 0..n {
                let ip = match prefixes.get(asn).filter(|ps| !ps.is_empty()) {
                    Some(ps) => {
                        let p = ps[rng.gen_range(0..ps.len())];
                        p.nth_host(rng.gen::<u32>())
                    }
                    // An AS with no known prefix: fabricate an address in
                    // space the DB won't map (exercises elimination rule 1).
                    None => 0xc612_0000 | rng.gen::<u16>() as u32, // 198.18/15 benchmark space
                };
                hops.push(Hop { ip, asn: *asn, as_pos: pos });
            }
        }
        // Final hop: the server itself.
        let last_pos = as_path.len() - 1;
        hops.push(Hop { ip: server_ip, asn: as_path[last_pos], as_pos: last_pos });
        HopPath { as_path: as_path.to_vec(), hops, server_ip, client_ip }
    }

    /// Number of router hops between client and server (forward direction).
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True if there are no hops (degenerate single-AS path still has the
    /// server hop, so this is false in practice).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Remaining TTL observed at the client for a packet sent by the
    /// element at `hop_index` (0 = first hop after the client) with initial
    /// TTL `initial`.
    ///
    /// The return path is assumed symmetric: a packet from hop `i` crosses
    /// `i + 1` routers back to the client? No — it crosses exactly the
    /// routers between it and the client, which is `i` (the sender itself
    /// does not decrement). This asymmetry between an on-path injector and
    /// the distant server is exactly the paper's TTL side channel.
    pub fn ttl_at_client_from_hop(&self, hop_index: usize, initial: u8) -> u8 {
        initial.saturating_sub(hop_index as u8)
    }

    /// Remaining TTL observed at the client for a packet sent by the
    /// server with initial TTL `initial`.
    pub fn ttl_at_client_from_server(&self, initial: u8) -> u8 {
        // The server is the last hop; its packets cross every other hop.
        self.ttl_at_client_from_hop(self.hops.len() - 1, initial)
    }

    /// The first hop index owned by the AS at `as_pos` in the AS path, if
    /// any hop belongs to it.
    pub fn first_hop_of_as(&self, as_pos: usize) -> Option<usize> {
        self.hops.iter().position(|h| h.as_pos == as_pos)
    }

    /// One-way propagation delay to hop `i`, microseconds, under a simple
    /// per-hop cost model (deterministic per path shape).
    pub fn delay_to_hop_us(&self, hop_index: usize) -> u64 {
        // 2 ms per router hop within a region; AS boundaries cost more
        // (long-haul). Deterministic: depends only on hop structure.
        let mut us = 0u64;
        for (i, h) in self.hops.iter().enumerate().take(hop_index + 1) {
            let boundary = i == 0 || self.hops[i - 1].as_pos != h.as_pos;
            us += if boundary { 6_000 } else { 1_500 };
        }
        us
    }

    /// Round-trip time client↔server in microseconds.
    pub fn rtt_us(&self) -> u64 {
        2 * self.delay_to_hop_us(self.hops.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn prefix_map(asns: &[u32]) -> HashMap<Asn, Vec<Ipv4Prefix>> {
        asns.iter()
            .enumerate()
            .map(|(i, &a)| {
                (Asn(a), vec![Ipv4Prefix::new(((i as u32) + 1) << 24, 16).unwrap()])
            })
            .collect()
    }

    fn sample_path() -> HopPath {
        let asns = [10, 20, 30, 40];
        let prefixes = prefix_map(&asns);
        let mut rng = StdRng::seed_from_u64(1);
        let server_ip = prefixes[&Asn(40)][0].nth_host(99);
        let client_ip = prefixes[&Asn(10)][0].nth_host(1);
        HopPath::expand(
            &asns.map(Asn),
            &prefixes,
            client_ip,
            server_ip,
            (1, 2),
            &mut rng,
        )
    }

    #[test]
    fn expansion_covers_every_as_in_order() {
        let p = sample_path();
        // Positions must be non-decreasing and cover 0..=3.
        let positions: Vec<usize> = p.hops.iter().map(|h| h.as_pos).collect();
        let mut sorted = positions.clone();
        sorted.sort();
        assert_eq!(positions, sorted, "hops must follow AS path order");
        for pos in 0..4 {
            assert!(positions.contains(&pos), "AS position {pos} missing");
        }
        assert_eq!(*p.hops.last().unwrap(), Hop { ip: p.server_ip, asn: Asn(40), as_pos: 3 });
    }

    #[test]
    fn hop_ips_belong_to_owner_prefix() {
        let p = sample_path();
        let prefixes = prefix_map(&[10, 20, 30, 40]);
        for h in &p.hops {
            let ps = &prefixes[&h.asn];
            assert!(
                ps.iter().any(|px| px.contains(h.ip)),
                "hop {} not inside {}'s prefixes",
                std::net::Ipv4Addr::from(h.ip),
                h.asn
            );
        }
    }

    #[test]
    fn server_ttl_lower_than_onpath_injector() {
        let p = sample_path();
        let server_ttl = p.ttl_at_client_from_server(64);
        // An injector at the first AS boundary is closer: higher TTL remains.
        let censor_hop = p.first_hop_of_as(1).unwrap();
        let censor_ttl = p.ttl_at_client_from_hop(censor_hop, 64);
        assert!(censor_ttl > server_ttl, "{censor_ttl} <= {server_ttl}");
    }

    #[test]
    fn ttl_saturates() {
        let p = sample_path();
        assert_eq!(p.ttl_at_client_from_hop(200, 64), 0);
    }

    #[test]
    fn delays_monotonic() {
        let p = sample_path();
        let mut last = 0;
        for i in 0..p.len() {
            let d = p.delay_to_hop_us(i);
            assert!(d > last, "delay must strictly increase");
            last = d;
        }
        assert_eq!(p.rtt_us(), 2 * p.delay_to_hop_us(p.len() - 1));
    }

    #[test]
    fn unknown_as_gets_unmappable_address() {
        let prefixes = prefix_map(&[10]);
        let mut rng = StdRng::seed_from_u64(3);
        let p = HopPath::expand(
            &[Asn(10), Asn(999)],
            &prefixes,
            1,
            2,
            (1, 1),
            &mut rng,
        );
        let orphan = p.hops.iter().find(|h| h.asn == Asn(999) && h.ip != 2).unwrap();
        assert_eq!(orphan.ip >> 16, 0xc612, "orphan hops live in 198.18/15");
    }

    #[test]
    fn deterministic_given_seed() {
        let prefixes = prefix_map(&[10, 20, 30]);
        let mk = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            HopPath::expand(&[Asn(10), Asn(20), Asn(30)], &prefixes, 1, 2, (1, 3), &mut rng)
        };
        assert_eq!(mk(5), mk(5));
        assert_ne!(mk(5), mk(6));
    }
}
