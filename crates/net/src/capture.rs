//! Client-side packet captures and a libpcap writer.
//!
//! ICLab records raw pcaps at each vantage point and derives every anomaly
//! from them; [`Capture`] is our equivalent. The pcap export writes the
//! classic libpcap format (magic `0xa1b2c3d4`, LINKTYPE_RAW) so captures
//! can be opened in Wireshark/tcpdump for debugging.

use crate::dns::DnsMessage;
use crate::ip::Ipv4Packet;
use serde::{Deserialize, Serialize};
use std::io::{self, Write};

/// Direction of a packet relative to the capturing client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Sent by the client.
    Out,
    /// Received by the client.
    In,
}

/// A timestamped packet as seen at the client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapturedPacket {
    /// Microseconds since the start of the test.
    pub t_us: u64,
    /// Direction.
    pub dir: Direction,
    /// The packet.
    pub pkt: Ipv4Packet,
}

/// A packet capture: the full client-side view of one measurement flow.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Capture {
    /// Packets in timestamp order.
    pub packets: Vec<CapturedPacket>,
}

impl Capture {
    /// Empty capture.
    pub fn new() -> Self {
        Capture::default()
    }

    /// Append a packet (keeps timestamp order by insertion point).
    pub fn push(&mut self, t_us: u64, dir: Direction, pkt: Ipv4Packet) {
        let at = self.packets.partition_point(|p| p.t_us <= t_us);
        self.packets.insert(at, CapturedPacket { t_us, dir, pkt });
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Incoming packets only.
    pub fn incoming(&self) -> impl Iterator<Item = &CapturedPacket> {
        self.packets.iter().filter(|p| p.dir == Direction::In)
    }

    /// Incoming TCP packets as (capture, segment) pairs.
    pub fn incoming_tcp(&self) -> impl Iterator<Item = (&CapturedPacket, &crate::tcp::TcpSegment)> {
        self.incoming().filter_map(|p| p.pkt.as_tcp().map(|t| (p, t)))
    }

    /// Parsed DNS responses received by the client, with timestamps.
    pub fn dns_responses(&self) -> Vec<(u64, DnsMessage)> {
        self.incoming()
            .filter_map(|p| {
                let udp = p.pkt.as_udp()?;
                if udp.src_port != 53 {
                    return None;
                }
                let msg = DnsMessage::decode(&udp.payload).ok()?;
                msg.is_response.then_some((p.t_us, msg))
            })
            .collect()
    }

    /// Write the capture as a classic libpcap file (LINKTYPE_RAW = 101,
    /// microsecond timestamps).
    pub fn write_pcap<W: Write>(&self, w: &mut W) -> io::Result<()> {
        // Global header.
        w.write_all(&0xa1b2_c3d4u32.to_le_bytes())?; // magic
        w.write_all(&2u16.to_le_bytes())?; // major
        w.write_all(&4u16.to_le_bytes())?; // minor
        w.write_all(&0i32.to_le_bytes())?; // thiszone
        w.write_all(&0u32.to_le_bytes())?; // sigfigs
        w.write_all(&65535u32.to_le_bytes())?; // snaplen
        w.write_all(&101u32.to_le_bytes())?; // linktype raw IP
        for p in &self.packets {
            let bytes = p.pkt.encode();
            let sec = (p.t_us / 1_000_000) as u32;
            let usec = (p.t_us % 1_000_000) as u32;
            w.write_all(&sec.to_le_bytes())?;
            w.write_all(&usec.to_le_bytes())?;
            w.write_all(&(bytes.len() as u32).to_le_bytes())?;
            w.write_all(&(bytes.len() as u32).to_le_bytes())?;
            w.write_all(&bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpSegment;
    use crate::udp::UdpDatagram;

    fn tcp_pkt(ttl: u8) -> Ipv4Packet {
        Ipv4Packet::tcp(1, 2, ttl, 0, TcpSegment::syn(1000, 80, 5))
    }

    #[test]
    fn push_keeps_time_order() {
        let mut c = Capture::new();
        c.push(300, Direction::In, tcp_pkt(60));
        c.push(100, Direction::Out, tcp_pkt(64));
        c.push(200, Direction::In, tcp_pkt(61));
        let ts: Vec<u64> = c.packets.iter().map(|p| p.t_us).collect();
        assert_eq!(ts, vec![100, 200, 300]);
    }

    #[test]
    fn equal_timestamps_preserve_insertion_order() {
        let mut c = Capture::new();
        c.push(100, Direction::In, tcp_pkt(1));
        c.push(100, Direction::In, tcp_pkt(2));
        assert_eq!(c.packets[0].pkt.ttl, 1);
        assert_eq!(c.packets[1].pkt.ttl, 2);
    }

    #[test]
    fn dns_response_extraction() {
        let q = DnsMessage::query(9, "x.example.com");
        let a = DnsMessage::answer(&q, 0x05060708, 60);
        let mut c = Capture::new();
        // Outgoing query — must not be extracted.
        c.push(
            0,
            Direction::Out,
            Ipv4Packet::udp(1, 2, 64, 0, UdpDatagram::new(5555, 53, q.encode().unwrap())),
        );
        // Incoming response from port 53.
        c.push(
            1000,
            Direction::In,
            Ipv4Packet::udp(2, 1, 60, 0, UdpDatagram::new(53, 5555, a.encode().unwrap())),
        );
        // Incoming non-DNS UDP — ignored.
        c.push(2000, Direction::In, Ipv4Packet::udp(2, 1, 60, 0, UdpDatagram::new(9, 5555, vec![1])));
        let rs = c.dns_responses();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].0, 1000);
        assert_eq!(rs[0].1.answers[0].addr, 0x05060708);
    }

    #[test]
    fn incoming_tcp_filter() {
        let mut c = Capture::new();
        c.push(0, Direction::Out, tcp_pkt(64));
        c.push(1, Direction::In, tcp_pkt(60));
        assert_eq!(c.incoming_tcp().count(), 1);
    }

    #[test]
    fn pcap_output_has_magic_and_records() {
        let mut c = Capture::new();
        c.push(1_500_000, Direction::In, tcp_pkt(60));
        let mut buf = Vec::new();
        c.write_pcap(&mut buf).unwrap();
        assert_eq!(&buf[..4], &0xa1b2_c3d4u32.to_le_bytes());
        // Global header is 24 bytes; record header 16; then the packet.
        assert!(buf.len() > 24 + 16 + 20);
        // Timestamp seconds field of the first record.
        let sec = u32::from_le_bytes([buf[24], buf[25], buf[26], buf[27]]);
        assert_eq!(sec, 1);
    }
}
