//! TCP segments: flags, sequence space, wire format with pseudo-header
//! checksum.

use crate::{internet_checksum, WireError};
use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// TCP flag bits (subset used by the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TcpFlags(u8);

impl TcpFlags {
    /// FIN: no more data from sender.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: reset the connection. The censorship mechanism of choice for
    /// several nation-state filters (§2, [2,21,34]).
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: acknowledgement field significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG: urgent pointer significant (unused, parsed for realism).
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Empty flag set.
    pub const fn empty() -> Self {
        TcpFlags(0)
    }

    /// From raw bits (upper two bits masked off).
    pub const fn from_bits(bits: u8) -> Self {
        TcpFlags(bits & 0x3f)
    }

    /// Raw bits.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// True if every flag in `other` is set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if no flags are set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl std::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut wrote = false;
        for (bit, name) in [
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::URG, "URG"),
        ] {
            if self.contains(bit) {
                if wrote {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                wrote = true;
            }
        }
        if !wrote {
            f.write_str("-")?;
        }
        Ok(())
    }
}

/// A TCP segment (no options modelled; data offset always 5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Acknowledgement number (meaningful when ACK set).
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// A SYN segment.
    pub fn syn(src_port: u16, dst_port: u16, isn: u32) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq: isn,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 65535,
            payload: vec![],
        }
    }

    /// The exclusive end of this segment's sequence range
    /// (`seq + len`, SYN/FIN each consume one sequence number).
    pub fn seq_end(&self) -> u32 {
        let mut len = self.payload.len() as u32;
        if self.flags.contains(TcpFlags::SYN) {
            len += 1;
        }
        if self.flags.contains(TcpFlags::FIN) {
            len += 1;
        }
        self.seq.wrapping_add(len)
    }

    /// True if the segment carries payload bytes.
    pub fn has_data(&self) -> bool {
        !self.payload.is_empty()
    }

    /// Encode to wire bytes including a correct checksum over the IPv4
    /// pseudo-header.
    pub fn encode(&self, src_ip: u32, dst_ip: u32) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(20 + self.payload.len());
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u32(self.seq);
        buf.put_u32(self.ack);
        buf.put_u8(5 << 4); // data offset 5, reserved 0
        buf.put_u8(self.flags.bits());
        buf.put_u16(self.window);
        buf.put_u16(0); // checksum placeholder
        buf.put_u16(0); // urgent pointer
        buf.extend_from_slice(&self.payload);
        let ck = pseudo_checksum(src_ip, dst_ip, 6, &buf);
        buf[16] = (ck >> 8) as u8;
        buf[17] = (ck & 0xff) as u8;
        buf.to_vec()
    }

    /// Decode from wire bytes, validating length and checksum.
    pub fn decode(data: &[u8], src_ip: u32, dst_ip: u32) -> Result<Self, WireError> {
        if data.len() < 20 {
            return Err(WireError::Truncated("tcp header"));
        }
        let off = (data[12] >> 4) as usize * 4;
        if off < 20 || data.len() < off {
            return Err(WireError::Truncated("tcp options"));
        }
        if pseudo_checksum(src_ip, dst_ip, 6, data) != 0 {
            return Err(WireError::BadChecksum("tcp"));
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: TcpFlags::from_bits(data[13]),
            window: u16::from_be_bytes([data[14], data[15]]),
            payload: data[off..].to_vec(),
        })
    }
}

/// Internet checksum over the IPv4 pseudo-header plus segment bytes.
pub(crate) fn pseudo_checksum(src_ip: u32, dst_ip: u32, proto: u8, seg: &[u8]) -> u16 {
    let mut pseudo = Vec::with_capacity(12 + seg.len());
    pseudo.extend_from_slice(&src_ip.to_be_bytes());
    pseudo.extend_from_slice(&dst_ip.to_be_bytes());
    pseudo.push(0);
    pseudo.push(proto);
    pseudo.extend_from_slice(&(seg.len() as u16).to_be_bytes());
    pseudo.extend_from_slice(seg);
    internet_checksum(&pseudo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn flags_display() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::RST.to_string(), "RST");
        assert_eq!(TcpFlags::empty().to_string(), "-");
    }

    #[test]
    fn flags_contains() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(f.contains(TcpFlags::SYN | TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::RST));
    }

    #[test]
    fn seq_end_accounting() {
        let mut s = TcpSegment::syn(1, 2, 100);
        assert_eq!(s.seq_end(), 101, "SYN consumes one sequence number");
        s.flags = TcpFlags::ACK;
        s.payload = vec![0; 10];
        assert_eq!(s.seq_end(), 110);
        s.flags = TcpFlags::ACK | TcpFlags::FIN;
        assert_eq!(s.seq_end(), 111);
    }

    #[test]
    fn seq_end_wraps() {
        let s = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: u32::MAX - 1,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 0,
            payload: vec![0; 4],
        };
        assert_eq!(s.seq_end(), 2);
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let seg = TcpSegment {
            src_port: 80,
            dst_port: 1024,
            seq: 1,
            ack: 2,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 100,
            payload: b"hello world".to_vec(),
        };
        let mut wire = seg.encode(1, 2);
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        assert_eq!(TcpSegment::decode(&wire, 1, 2), Err(WireError::BadChecksum("tcp")));
    }

    #[test]
    fn checksum_binds_addresses() {
        // A segment captured with spoofed/NATed addresses fails the
        // pseudo-header check — this is why injected packets must forge a
        // checksum for the *claimed* source, not their real one.
        let seg = TcpSegment::syn(1000, 80, 42);
        let wire = seg.encode(0x0a000001, 0x0a000002);
        assert!(TcpSegment::decode(&wire, 0x0a000001, 0x0a000002).is_ok());
        assert!(TcpSegment::decode(&wire, 0x0a000001, 0x0a000003).is_err());
    }

    proptest! {
        #[test]
        fn prop_tcp_roundtrip(
            sport in any::<u16>(), dport in any::<u16>(), seq in any::<u32>(),
            ack in any::<u32>(), bits in 0u8..64, window in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..512),
            src in any::<u32>(), dst in any::<u32>(),
        ) {
            let seg = TcpSegment {
                src_port: sport, dst_port: dport, seq, ack,
                flags: TcpFlags::from_bits(bits), window, payload,
            };
            let back = TcpSegment::decode(&seg.encode(src, dst), src, dst).unwrap();
            prop_assert_eq!(seg, back);
        }

        #[test]
        fn prop_tcp_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = TcpSegment::decode(&data, 1, 2);
        }
    }
}
