//! # churnlab-net
//!
//! Packet-level network substrate for churnlab.
//!
//! The ICLab platform that the paper builds on records *raw packet
//! captures* and derives censorship anomalies from packet artifacts: a
//! second DNS response racing the first, a SYNACK whose IP TTL disagrees
//! with later segments, overlapping/gapped TCP sequence ranges, spurious
//! RSTs, and blockpage payloads. To reproduce the paper honestly, our
//! anomaly detectors must look at *packets*, not at ground truth — so this
//! crate models them:
//!
//! * [`ip`] — IPv4 packets with real header encode/decode and the Internet
//!   checksum.
//! * [`tcp`] — TCP segments (flags, seq/ack) with wire format and
//!   pseudo-header checksum.
//! * [`udp`] — UDP datagrams.
//! * [`dns`] — DNS messages (RFC 1035 subset: A queries/answers, label
//!   encoding, compression-pointer parsing).
//! * [`http`] — a minimal HTTP/1.1 request/response model used for GET
//!   tests and blockpage bodies.
//! * [`hops`] — router-level paths: each AS on an AS-level path expands to
//!   one or more router hops with interface addresses drawn from that AS's
//!   prefixes; TTL arithmetic happens here.
//! * [`flow`] — clean TCP/DNS flow synthesis over a hop path, with an
//!   [`flow::OnPathObserver`] hook through which middleboxes (the censor
//!   engine in `churnlab-censor`) inspect forward packets and inject
//!   responses.
//! * [`capture`] — client-side packet captures plus a libpcap-format
//!   writer.
//! * [`traceroute`] — a traceroute engine over hop paths with
//!   non-responsive hops and failures (the raw material for the paper's
//!   path-elimination rules).
//!
//! The simulation hot path passes structured packets around; the wire
//! formats exist for realism, interop (pcap export) and are
//! property-tested for roundtripping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod dns;
pub mod flow;
pub mod hops;
pub mod http;
pub mod ip;
pub mod tcp;
pub mod traceroute;
pub mod udp;

pub use capture::{Capture, CapturedPacket, Direction};
pub use dns::{DnsMessage, DnsQType, DnsRcode};
pub use flow::{FlowConfig, FlowOutcome, FlowSimulator, InjectedPacket, ObserverVerdict, OnPathObserver};
pub use hops::{Hop, HopPath};
pub use http::{HttpRequest, HttpResponse};
pub use ip::{Ipv4Packet, Payload};
pub use tcp::{TcpFlags, TcpSegment};
pub use traceroute::{Traceroute, TracerouteConfig, TracerouteError};
pub use udp::UdpDatagram;

/// Errors from wire-format parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer too short for the claimed structure.
    Truncated(&'static str),
    /// A field held an unsupported value.
    Unsupported(&'static str),
    /// Checksum mismatch.
    BadChecksum(&'static str),
    /// Malformed DNS name (bad label length / pointer loop).
    BadName,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated(w) => write!(f, "truncated {w}"),
            WireError::Unsupported(w) => write!(f, "unsupported {w}"),
            WireError::BadChecksum(w) => write!(f, "bad checksum in {w}"),
            WireError::BadName => write!(f, "malformed DNS name"),
        }
    }
}

impl std::error::Error for WireError {}

/// The Internet checksum (RFC 1071) over a byte slice.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xab]), internet_checksum(&[0xab, 0x00]));
    }

    #[test]
    fn checksum_of_zeroes_is_ffff() {
        assert_eq!(internet_checksum(&[0, 0, 0, 0]), 0xffff);
    }

    #[test]
    fn checksum_validates_to_zero() {
        // A buffer with its own checksum embedded sums to 0 (i.e. the
        // complement of the running sum is 0).
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0];
        let ck = internet_checksum(&data);
        data[10] = (ck >> 8) as u8;
        data[11] = (ck & 0xff) as u8;
        assert_eq!(internet_checksum(&data), 0);
    }

    #[test]
    fn checksum_order_independent_within_words() {
        // Swapping 16-bit words does not change the sum (one's complement
        // addition is commutative).
        let a = [0x12, 0x34, 0xab, 0xcd];
        let b = [0xab, 0xcd, 0x12, 0x34];
        assert_eq!(internet_checksum(&a), internet_checksum(&b));
    }
}
