//! Measurement noise: everything that makes real data messy.
//!
//! The paper attributes unsolvable CNFs to "(1) noise in the ICLab
//! measurements — i.e., incorrect anomaly detection or path inference or
//! (2) changing censorship policies" (§3.2). Policy changes live in
//! `churnlab-censor`; this module owns (1):
//!
//! * detector false positives/negatives (per anomaly type);
//! * *organic* server RSTs — servers resetting connections for their own
//!   reasons, indistinguishable from injection (the stated cause of RST's
//!   ~30% unsolvable CNFs in Figure 1b);
//! * organic loss + retransmission (exercises — but should not trip — the
//!   SEQNO detector);
//! * traceroute failure modes feeding the paper's elimination rules;
//! * IP-to-AS database staleness (elimination rule 1);
//! * intra-test path changes, where one of a test's three traceroutes sees
//!   a different route (elimination rule 4).

use crate::anomaly::AnomalyType;
use churnlab_net::TracerouteConfig;
use churnlab_topology::Ip2AsNoise;
use serde::{Deserialize, Serialize};

/// All noise knobs for a platform run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Per-type detector false-positive probability (applied per test).
    pub detector_fp: [f64; 5],
    /// Per-type detector false-negative probability (applied per detected
    /// anomaly).
    pub detector_fn: [f64; 5],
    /// Probability a server organically resets the connection.
    pub organic_rst_prob: f64,
    /// Probability one response segment is lost and retransmitted.
    pub organic_loss_prob: f64,
    /// Traceroute engine imperfections.
    pub traceroute: TracerouteConfig,
    /// IP-to-AS database degradation.
    pub ip2as: Ip2AsNoise,
    /// Probability one of a test's three traceroutes runs one epoch later
    /// (catching a route change mid-test — elimination rule 4's trigger).
    pub intra_test_shift_prob: f64,
}

impl NoiseConfig {
    /// Index into the per-type arrays.
    fn idx(t: AnomalyType) -> usize {
        match t {
            AnomalyType::Dns => 0,
            AnomalyType::Seqno => 1,
            AnomalyType::Ttl => 2,
            AnomalyType::Reset => 3,
            AnomalyType::Block => 4,
        }
    }

    /// False-positive probability for a type.
    pub fn fp(&self, t: AnomalyType) -> f64 {
        self.detector_fp[Self::idx(t)]
    }

    /// False-negative probability for a type.
    pub fn fn_(&self, t: AnomalyType) -> f64 {
        self.detector_fn[Self::idx(t)]
    }

    /// A perfectly clean world: detectors are oracles, traceroutes never
    /// fail, databases are fresh, servers never reset. Useful for tests
    /// that check exact localization.
    pub fn none() -> Self {
        NoiseConfig {
            detector_fp: [0.0; 5],
            detector_fn: [0.0; 5],
            organic_rst_prob: 0.0,
            organic_loss_prob: 0.0,
            traceroute: TracerouteConfig::ideal(),
            ip2as: Ip2AsNoise::none(),
            intra_test_shift_prob: 0.0,
        }
    }

    /// Realistic defaults, calibrated so the dataset's anomaly mix and the
    /// CNF solvability distribution land near the paper's (Table 1 /
    /// Figure 1): RST has by far the noisiest detector (organic resets),
    /// the others see rare random flips.
    pub fn realistic() -> Self {
        NoiseConfig {
            //           dns    seq    ttl    rst    block
            detector_fp: [1e-5, 3e-5, 3e-5, 0.0, 5e-6], // rst FPs come from organic resets
            detector_fn: [0.004, 0.006, 0.004, 0.005, 0.004],
            organic_rst_prob: 2.5e-4,
            organic_loss_prob: 0.01,
            traceroute: TracerouteConfig::default(),
            ip2as: Ip2AsNoise::realistic(),
            intra_test_shift_prob: 0.02,
        }
    }
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig::realistic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_zero_everywhere() {
        let n = NoiseConfig::none();
        for t in AnomalyType::ALL {
            assert_eq!(n.fp(t), 0.0);
            assert_eq!(n.fn_(t), 0.0);
        }
        assert_eq!(n.organic_rst_prob, 0.0);
        assert_eq!(n.intra_test_shift_prob, 0.0);
    }

    #[test]
    fn realistic_probabilities_sane() {
        let n = NoiseConfig::realistic();
        for t in AnomalyType::ALL {
            assert!((0.0..0.01).contains(&n.fp(t)), "{t} fp out of range");
            assert!((0.0..0.5).contains(&n.fn_(t)), "{t} fn out of range");
        }
        assert!(n.organic_rst_prob > 0.0 && n.organic_rst_prob < 0.01);
    }

    #[test]
    fn per_type_lookup_distinct() {
        let mut n = NoiseConfig::none();
        n.detector_fp = [0.1, 0.2, 0.3, 0.4, 0.5];
        assert_eq!(n.fp(AnomalyType::Dns), 0.1);
        assert_eq!(n.fp(AnomalyType::Seqno), 0.2);
        assert_eq!(n.fp(AnomalyType::Ttl), 0.3);
        assert_eq!(n.fp(AnomalyType::Reset), 0.4);
        assert_eq!(n.fp(AnomalyType::Block), 0.5);
    }
}
