//! Campaign observability: `churnlab_campaign_*` counters.
//!
//! Wire a [`CampaignObs`] into [`crate::Platform::run_parallel_obs`] and
//! the runner becomes attributable in a `--metrics-out` scrape: how many
//! tests the schedule planned, how many actually executed, how many the
//! fleet-sampling schedule skipped, and each worker's on-CPU generation
//! time (the campaign-side analogue of the engine's `EngineBusy`).

use churnlab_obs::{Counter, Registry};

/// Handles for the campaign-level counters. Cheap to clone per worker;
/// all clones share storage.
pub struct CampaignObs {
    scheduled: Counter,
    run: Counter,
    sampled_out: Counter,
    registry: Registry,
}

impl CampaignObs {
    /// Register the campaign counters on `registry`.
    pub fn new(registry: &Registry) -> Self {
        CampaignObs {
            scheduled: registry.counter(
                "churnlab_campaign_tests_scheduled_total",
                "Tests the campaign schedule planned (sampled-in (url, day, vp) slots x tests per testing day)",
                &[],
            ),
            run: registry.counter(
                "churnlab_campaign_tests_run_total",
                "Tests actually executed, including failed-route records",
                &[],
            ),
            sampled_out: registry.counter(
                "churnlab_campaign_tests_sampled_out_total",
                "Tests skipped because the fleet-sampling schedule left the vantage point out of the day subset",
                &[],
            ),
            registry: registry.clone(),
        }
    }

    /// Per-worker handle set (registers the labeled busy counter).
    pub(crate) fn worker(&self, worker: usize) -> CampaignWorkerObs {
        CampaignWorkerObs {
            scheduled: self.scheduled.clone(),
            run: self.run.clone(),
            sampled_out: self.sampled_out.clone(),
            busy: self.registry.counter(
                "churnlab_campaign_worker_busy_nanos_total",
                "Per-worker on-CPU time spent generating measurements, nanoseconds",
                &[("worker", &worker.to_string())],
            ),
        }
    }
}

/// The counter handles one runner worker increments.
pub(crate) struct CampaignWorkerObs {
    pub(crate) scheduled: Counter,
    pub(crate) run: Counter,
    pub(crate) sampled_out: Counter,
    pub(crate) busy: Counter,
}
