//! Fleet-sampling schedule: bounded per-day work on huge fleets.
//!
//! At the Paper tier every (url, testing-day) sees the entire vantage
//! fleet. On a Huge world (tens of thousands of vantage ASes) that
//! enumeration is the scaling wall: per-day work is O(fleet × urls).
//! This module replaces "everyone tests everything" with a deterministic
//! rotating k-subset per (url, testing-day):
//!
//! * Each URL gets its own pseudorandom permutation of the fleet, seeded
//!   from (seed, url) — so the subsets of different URLs are decorrelated
//!   and the union coverage across a corpus approaches the whole fleet
//!   after a handful of testing days.
//! * Testing day `d` of a URL takes the contiguous block of `k` entries
//!   starting at offset `(d·k) mod fleet` in that permutation, wrapping
//!   around. Consecutive blocks tile the circle, so over `D` testing days
//!   every vantage point is picked either `⌊D·k/fleet⌋` or `⌈D·k/fleet⌉`
//!   times — an *exact* coverage floor, not an expectation. That floor is
//!   what [`FleetSchedule::guaranteed_day_picks`] reports and what the
//!   platform's `tests_per_pair_floor` config is validated against.
//!
//! Subsets are emitted sorted ascending, so a sampled day iterates its
//! vantage points in the same relative order as a full-fleet day — the
//! parallel runner's byte-equality argument does not depend on sampling
//! being on or off.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministic mixer (splitmix64 finalizer), kept in sync with the
/// runner's `mix64`.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The campaign-wide sampling schedule: which k of the fleet's vantage
/// points test a given URL on a given testing day.
#[derive(Debug, Clone)]
pub struct FleetSchedule {
    seed: u64,
    fleet: usize,
    k: usize,
}

impl FleetSchedule {
    /// Build a schedule over a fleet of `fleet` vantage points, sampling
    /// `sample` of them per (url, testing-day). `sample == 0` (or any
    /// value ≥ the fleet size) means no sampling: every day sees the
    /// whole fleet, byte-identical to the pre-sampling runner.
    pub fn new(seed: u64, fleet: usize, sample: usize) -> Self {
        let k = if sample == 0 || sample >= fleet { fleet } else { sample };
        FleetSchedule { seed, fleet, k }
    }

    /// Vantage points sampled per (url, testing-day).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total fleet size.
    pub fn fleet(&self) -> usize {
        self.fleet
    }

    /// Whether the schedule actually subsets the fleet.
    pub fn is_sampling(&self) -> bool {
        self.k < self.fleet
    }

    /// How many times each (vp, url) pair is *guaranteed* to be picked
    /// over `testing_days` testing days: ⌊D·k/fleet⌋. Exact — contiguous
    /// rotation blocks tile the permutation circle, so pick counts differ
    /// by at most one across the fleet.
    pub fn guaranteed_day_picks(&self, testing_days: u32) -> u32 {
        if self.fleet == 0 {
            return 0;
        }
        ((u64::from(testing_days) * self.k as u64) / self.fleet as u64) as u32
    }

    /// Lower bound on *distinct* vantage points a URL has seen after
    /// `testing_days` testing days: min(D·k, fleet).
    pub fn covered_after(&self, testing_days: u32) -> usize {
        (u64::from(testing_days) * self.k as u64).min(self.fleet as u64) as usize
    }

    /// The per-URL plan: the seeded fleet permutation this URL's rotation
    /// walks. Build once per URL, then take day subsets from it.
    pub fn plan_for_url(&self, url_id: u32) -> UrlFleetPlan {
        if !self.is_sampling() {
            // Full fleet: the identity plan, no shuffle needed.
            return UrlFleetPlan { perm: Vec::new(), fleet: self.fleet, k: self.k };
        }
        let mut perm: Vec<u32> = (0..self.fleet as u32).collect();
        let mut rng = StdRng::seed_from_u64(mix64(
            self.seed ^ (u64::from(url_id) << 20) ^ 0x5eed_f1ee,
        ));
        perm.shuffle(&mut rng);
        UrlFleetPlan { perm, fleet: self.fleet, k: self.k }
    }
}

/// One URL's rotation through the fleet.
#[derive(Debug, Clone)]
pub struct UrlFleetPlan {
    /// Seeded permutation of 0..fleet (empty when not sampling).
    perm: Vec<u32>,
    fleet: usize,
    k: usize,
}

impl UrlFleetPlan {
    /// Fill `out` with the vantage indices tested on testing day
    /// `day_index` (the 0-based count of this URL's testing days so far),
    /// sorted ascending so day iteration order matches a full-fleet day.
    pub fn day_subset_into(&self, day_index: u32, out: &mut Vec<usize>) {
        out.clear();
        if self.perm.is_empty() {
            // Full fleet.
            out.extend(0..self.fleet);
            return;
        }
        let v = self.perm.len();
        let start = (u64::from(day_index) * self.k as u64 % v as u64) as usize;
        for i in 0..self.k {
            out.push(self.perm[(start + i) % v] as usize);
        }
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_fleet_when_sample_zero_or_large() {
        for sample in [0, 10, 11, 100] {
            let s = FleetSchedule::new(7, 10, sample);
            assert!(!s.is_sampling());
            assert_eq!(s.k(), 10);
            let plan = s.plan_for_url(3);
            let mut out = Vec::new();
            plan.day_subset_into(5, &mut out);
            assert_eq!(out, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn subsets_are_sorted_sized_and_deterministic() {
        let s = FleetSchedule::new(42, 100, 7);
        let plan = s.plan_for_url(9);
        let plan2 = s.plan_for_url(9);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for d in 0..30 {
            plan.day_subset_into(d, &mut a);
            plan2.day_subset_into(d, &mut b);
            assert_eq!(a, b);
            assert_eq!(a.len(), 7);
            assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            assert!(a.iter().all(|&v| v < 100));
        }
    }

    #[test]
    fn rotation_meets_exact_floor() {
        // Adversarial-ish sizes: k and fleet coprime, k dividing fleet,
        // k = 1, k = fleet-1.
        for (fleet, k) in [(10, 3), (12, 4), (97, 13), (50, 1), (8, 7)] {
            let s = FleetSchedule::new(1, fleet, k);
            for days in [1u32, 2, 5, 23] {
                let plan = s.plan_for_url(0);
                let mut counts = vec![0u32; fleet];
                let mut out = Vec::new();
                for d in 0..days {
                    plan.day_subset_into(d, &mut out);
                    for &vi in &out {
                        counts[vi] += 1;
                    }
                }
                let floor = s.guaranteed_day_picks(days);
                let lo = *counts.iter().min().unwrap();
                let hi = *counts.iter().max().unwrap();
                assert!(lo >= floor, "fleet={fleet} k={k} days={days}: min {lo} < floor {floor}");
                assert!(hi - lo <= 1, "tiling must balance within 1: {lo}..{hi}");
            }
        }
    }

    proptest::proptest! {
        /// The satellite property test: for adversarial (fleet, k, days,
        /// seed) combinations the rotation meets its exact per-pair
        /// floor, subsets stay well-formed, and pick counts never spread
        /// by more than one across the fleet.
        #[test]
        fn rotation_floor_holds_for_adversarial_shapes(
            fleet in 1usize..180,
            k in 0usize..200,
            days in 1u32..60,
            seed in 0u64..1_000,
            url in 0u32..10_000,
        ) {
            let s = FleetSchedule::new(seed, fleet, k);
            let plan = s.plan_for_url(url);
            let mut counts = vec![0u32; fleet];
            let mut out = Vec::new();
            for d in 0..days {
                plan.day_subset_into(d, &mut out);
                proptest::prop_assert_eq!(out.len(), s.k());
                proptest::prop_assert!(out.windows(2).all(|w| w[0] < w[1]));
                for &vi in &out {
                    proptest::prop_assert!(vi < fleet);
                    counts[vi] += 1;
                }
            }
            let floor = s.guaranteed_day_picks(days);
            let lo = *counts.iter().min().unwrap();
            let hi = *counts.iter().max().unwrap();
            proptest::prop_assert!(lo >= floor, "min picks {} < floor {}", lo, floor);
            proptest::prop_assert!(hi - lo <= 1, "pick spread {}..{}", lo, hi);
            let distinct = counts.iter().filter(|&&c| c > 0).count();
            proptest::prop_assert!(distinct >= s.covered_after(days));
        }
    }

    #[test]
    fn different_urls_get_different_permutations() {
        let s = FleetSchedule::new(3, 64, 8);
        let mut a = Vec::new();
        let mut b = Vec::new();
        s.plan_for_url(0).day_subset_into(0, &mut a);
        s.plan_for_url(1).day_subset_into(0, &mut b);
        assert_ne!(a, b, "day-0 subsets of distinct URLs should differ");
    }
}
