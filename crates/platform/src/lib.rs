//! # churnlab-platform
//!
//! The measurement platform: churnlab's stand-in for ICLab (§2.1).
//!
//! ICLab repeatedly runs censorship tests between ~1K vantage points (539
//! ASes) and web servers hosting 774 regionally sensitive URLs, recording
//! for each test: DNS lookups through two resolvers, an HTTP GET with full
//! packet capture, blockpage matching, and three traceroutes. This crate
//! reproduces that pipeline over the simulated Internet:
//!
//! * [`urls`] — the URL corpus: 774 synthetic sensitive URLs with
//!   McAfee-style categories, hosted in content/enterprise ASes.
//! * [`vantage`] — vantage-point placement: VPN vantage points in content
//!   ASes (as ICLab's mostly are) plus a handful of residential
//!   (Raspberry-Pi-style) nodes in access networks.
//! * [`anomaly`] — the five anomaly types of Table 1 (DNS, SEQNO, TTL,
//!   RESET, Blockpage).
//! * [`detect`] — the detectors. They consume *packet captures only*:
//!   duplicate DNS responses inside the 2-second window, TTL disagreement
//!   with the SYNACK, overlapping/gapped sequence ranges, spurious RSTs,
//!   and blockpage fingerprint/length matching (Jones et al. style, with
//!   a censor-free US control body).
//! * [`noise`] — measurement imperfection: detector false
//!   positives/negatives, organic server RSTs (the paper's explanation for
//!   unsolvable RST CNFs), organic loss/retransmission, traceroute
//!   failures, IP-to-AS staleness.
//! * [`measurement`] — the per-test record (§3.1's tuple: vantage AS, URL,
//!   anomaly verdicts, three traceroutes, time).
//! * [`runner`] — the scheduler + executor producing a year of
//!   measurements, streamed to a sink to keep paper-scale runs in memory
//!   bounds.
//! * [`stats`] — Table-1-style dataset statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod detect;
pub mod measurement;
pub mod noise;
pub mod obs;
pub mod runner;
pub mod schedule;
pub mod stats;
pub mod urls;
pub mod vantage;

pub use anomaly::{AnomalySet, AnomalyType};
pub use measurement::{Measurement, TracerouteRecord};
pub use noise::NoiseConfig;
pub use obs::CampaignObs;
pub use runner::{CampaignBusy, ParallelRun, Platform, PlatformConfig, PlatformScale};
pub use schedule::{FleetSchedule, UrlFleetPlan};
pub use stats::DatasetStats;
pub use urls::{UrlCorpus, UrlEntry};
pub use vantage::VantagePoint;
