//! Dataset statistics — the Table 1 rows.

use crate::anomaly::{AnomalySet, AnomalyType};
use crate::measurement::Measurement;
use churnlab_topology::{Asn, Topology};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Aggregate statistics over a measurement run (Table 1's shape).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Unique URLs tested.
    pub unique_urls: usize,
    /// Distinct vantage-point ASes.
    pub vp_ases: usize,
    /// Distinct destination ASes.
    pub dest_ases: usize,
    /// Distinct countries (vantage + destination ASes).
    pub countries: usize,
    /// Total measurements (including failed ones).
    pub measurements: u64,
    /// Measurements that could not run (no route).
    pub failed: u64,
    /// Detected anomaly counts per type (dns, seq, ttl, rst, block order).
    pub anomalies: [u64; 5],
}

impl DatasetStats {
    /// Count for one anomaly type.
    pub fn anomaly_count(&self, t: AnomalyType) -> u64 {
        self.anomalies[Self::idx(t)]
    }

    fn idx(t: AnomalyType) -> usize {
        match t {
            AnomalyType::Dns => 0,
            AnomalyType::Seqno => 1,
            AnomalyType::Ttl => 2,
            AnomalyType::Reset => 3,
            AnomalyType::Block => 4,
        }
    }

    /// Total anomaly detections across types.
    pub fn total_anomalies(&self) -> u64 {
        self.anomalies.iter().sum()
    }

    /// Render the Table-1-style text block.
    pub fn render_table1(&self, period: &str) -> String {
        let pct = |n: u64| {
            if self.measurements == 0 {
                0.0
            } else {
                100.0 * n as f64 / self.measurements as f64
            }
        };
        let mut out = String::new();
        out.push_str(&format!("{:<24} {}\n", "Period", period));
        out.push_str(&format!("{:<24} {}\n", "Unique URLs", self.unique_urls));
        out.push_str(&format!("{:<24} {}\n", "AS Vantage Points", self.vp_ases));
        out.push_str(&format!("{:<24} {}\n", "Destination ASes", self.dest_ases));
        out.push_str(&format!("{:<24} {}\n", "Countries", self.countries));
        out.push_str(&format!("{:<24} {:.1}M\n", "Measurements", self.measurements as f64 / 1e6));
        for (label, t) in [
            ("w/DNS anomalies", AnomalyType::Dns),
            ("w/SEQNO anomalies", AnomalyType::Seqno),
            ("w/TTL anomalies", AnomalyType::Ttl),
            ("w/RESET anomalies", AnomalyType::Reset),
            ("w/Blockpages", AnomalyType::Block),
        ] {
            let n = self.anomaly_count(t);
            out.push_str(&format!("{:<24} {} ({:.2}%)\n", format!("- {label}"), n, pct(n)));
        }
        out
    }
}

/// Incremental accumulator used by the streaming runner.
#[derive(Debug, Default)]
pub struct StatsAccumulator {
    urls: HashSet<u32>,
    vp_ases: HashSet<Asn>,
    dest_ases: HashSet<Asn>,
    measurements: u64,
    failed: u64,
    anomalies: [u64; 5],
}

impl StatsAccumulator {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one measurement in.
    pub fn add(&mut self, m: &Measurement) {
        self.measurements += 1;
        self.urls.insert(m.url_id);
        self.vp_ases.insert(m.vp_asn);
        self.dest_ases.insert(m.dest_asn);
        if m.failed {
            self.failed += 1;
        }
        Self::add_set(&mut self.anomalies, m.detected);
    }

    fn add_set(anomalies: &mut [u64; 5], set: AnomalySet) {
        for t in set.iter() {
            anomalies[DatasetStats::idx(t)] += 1;
        }
    }

    /// Finalise, resolving countries through the topology.
    pub fn finish(self, topo: &Topology) -> DatasetStats {
        let mut countries = HashSet::new();
        for asn in self.vp_ases.iter().chain(self.dest_ases.iter()) {
            if let Some(info) = topo.info_by_asn(*asn) {
                countries.insert(info.country);
            }
        }
        DatasetStats {
            unique_urls: self.urls.len(),
            vp_ases: self.vp_ases.len(),
            dest_ases: self.dest_ases.len(),
            countries: countries.len(),
            measurements: self.measurements,
            failed: self.failed,
            anomalies: self.anomalies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::Measurement;
    use churnlab_topology::{generator, WorldConfig, WorldScale};

    #[test]
    fn accumulates_and_renders() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 1));
        let asns = w.asns();
        let mut acc = StatsAccumulator::new();
        let mut detected = AnomalySet::empty();
        detected.insert(AnomalyType::Dns);
        detected.insert(AnomalyType::Ttl);
        acc.add(&Measurement {
            vp_id: 0,
            vp_asn: asns[0],
            url_id: 0,
            dest_asn: asns[1],
            day: 0,
            epoch: 0,
            detected,
            traceroutes: vec![],
            failed: false,
        });
        acc.add(&Measurement {
            vp_id: 1,
            vp_asn: asns[2],
            url_id: 1,
            dest_asn: asns[1],
            day: 1,
            epoch: 6,
            detected: AnomalySet::empty(),
            traceroutes: vec![],
            failed: true,
        });
        let stats = acc.finish(&w.topology);
        assert_eq!(stats.measurements, 2);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.unique_urls, 2);
        assert_eq!(stats.vp_ases, 2);
        assert_eq!(stats.dest_ases, 1);
        assert_eq!(stats.anomaly_count(AnomalyType::Dns), 1);
        assert_eq!(stats.anomaly_count(AnomalyType::Ttl), 1);
        assert_eq!(stats.anomaly_count(AnomalyType::Reset), 0);
        assert_eq!(stats.total_anomalies(), 2);
        let table = stats.render_table1("2016-05 ~ 2017-05");
        assert!(table.contains("Unique URLs"));
        assert!(table.contains("w/DNS anomalies"));
    }
}
