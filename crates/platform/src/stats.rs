//! Dataset statistics — the Table 1 rows.

use crate::anomaly::{AnomalySet, AnomalyType};
use crate::measurement::Measurement;
use churnlab_topology::{Asn, Topology};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Aggregate statistics over a measurement run (Table 1's shape).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Unique URLs tested.
    pub unique_urls: usize,
    /// Distinct vantage points that actually ran tests (under a
    /// fleet-sampling schedule this can trail the placed fleet early in
    /// the period; the schedule's coverage floor bounds it from below).
    #[serde(default)]
    pub vps: usize,
    /// Distinct vantage-point ASes.
    pub vp_ases: usize,
    /// Distinct destination ASes.
    pub dest_ases: usize,
    /// Distinct countries (vantage + destination ASes).
    pub countries: usize,
    /// Total measurements (including failed ones).
    pub measurements: u64,
    /// Measurements that could not run (no route).
    pub failed: u64,
    /// Detected anomaly counts per type (dns, seq, ttl, rst, block order).
    pub anomalies: [u64; 5],
}

impl DatasetStats {
    /// Count for one anomaly type.
    pub fn anomaly_count(&self, t: AnomalyType) -> u64 {
        self.anomalies[Self::idx(t)]
    }

    fn idx(t: AnomalyType) -> usize {
        match t {
            AnomalyType::Dns => 0,
            AnomalyType::Seqno => 1,
            AnomalyType::Ttl => 2,
            AnomalyType::Reset => 3,
            AnomalyType::Block => 4,
        }
    }

    /// Total anomaly detections across types.
    pub fn total_anomalies(&self) -> u64 {
        self.anomalies.iter().sum()
    }

    /// Render the Table-1-style text block.
    pub fn render_table1(&self, period: &str) -> String {
        let pct = |n: u64| {
            if self.measurements == 0 {
                0.0
            } else {
                100.0 * n as f64 / self.measurements as f64
            }
        };
        let mut out = String::new();
        out.push_str(&format!("{:<24} {}\n", "Period", period));
        out.push_str(&format!("{:<24} {}\n", "Unique URLs", self.unique_urls));
        out.push_str(&format!("{:<24} {}\n", "AS Vantage Points", self.vp_ases));
        out.push_str(&format!("{:<24} {}\n", "Destination ASes", self.dest_ases));
        out.push_str(&format!("{:<24} {}\n", "Countries", self.countries));
        out.push_str(&format!("{:<24} {:.1}M\n", "Measurements", self.measurements as f64 / 1e6));
        for (label, t) in [
            ("w/DNS anomalies", AnomalyType::Dns),
            ("w/SEQNO anomalies", AnomalyType::Seqno),
            ("w/TTL anomalies", AnomalyType::Ttl),
            ("w/RESET anomalies", AnomalyType::Reset),
            ("w/Blockpages", AnomalyType::Block),
        ] {
            let n = self.anomaly_count(t);
            out.push_str(&format!("{:<24} {} ({:.2}%)\n", format!("- {label}"), n, pct(n)));
        }
        out
    }
}

/// Incremental accumulator used by the streaming runner.
#[derive(Debug, Default)]
pub struct StatsAccumulator {
    urls: HashSet<u32>,
    vps: HashSet<u32>,
    vp_ases: HashSet<Asn>,
    dest_ases: HashSet<Asn>,
    measurements: u64,
    failed: u64,
    anomalies: [u64; 5],
}

impl StatsAccumulator {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one measurement in.
    pub fn add(&mut self, m: &Measurement) {
        self.measurements += 1;
        self.urls.insert(m.url_id);
        self.vps.insert(m.vp_id);
        self.vp_ases.insert(m.vp_asn);
        self.dest_ases.insert(m.dest_asn);
        if m.failed {
            self.failed += 1;
        }
        Self::add_set(&mut self.anomalies, m.detected);
    }

    /// Fold another accumulator in — the parallel runner's reduction.
    /// Every field is a set union or a sum, so merge order is irrelevant
    /// and the merged result equals a serial accumulation over the same
    /// measurements.
    pub fn merge(&mut self, other: StatsAccumulator) {
        self.urls.extend(other.urls);
        self.vps.extend(other.vps);
        self.vp_ases.extend(other.vp_ases);
        self.dest_ases.extend(other.dest_ases);
        self.measurements += other.measurements;
        self.failed += other.failed;
        for (a, b) in self.anomalies.iter_mut().zip(other.anomalies) {
            *a += b;
        }
    }

    fn add_set(anomalies: &mut [u64; 5], set: AnomalySet) {
        for t in set.iter() {
            anomalies[DatasetStats::idx(t)] += 1;
        }
    }

    /// Finalise, resolving countries through the topology.
    pub fn finish(self, topo: &Topology) -> DatasetStats {
        let mut countries = HashSet::new();
        for asn in self.vp_ases.iter().chain(self.dest_ases.iter()) {
            if let Some(info) = topo.info_by_asn(*asn) {
                countries.insert(info.country);
            }
        }
        DatasetStats {
            unique_urls: self.urls.len(),
            vps: self.vps.len(),
            vp_ases: self.vp_ases.len(),
            dest_ases: self.dest_ases.len(),
            countries: countries.len(),
            measurements: self.measurements,
            failed: self.failed,
            anomalies: self.anomalies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::Measurement;
    use churnlab_topology::{generator, WorldConfig, WorldScale};

    #[test]
    fn accumulates_and_renders() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 1));
        let asns = w.asns();
        let mut acc = StatsAccumulator::new();
        let mut detected = AnomalySet::empty();
        detected.insert(AnomalyType::Dns);
        detected.insert(AnomalyType::Ttl);
        acc.add(&Measurement {
            vp_id: 0,
            vp_asn: asns[0],
            url_id: 0,
            dest_asn: asns[1],
            day: 0,
            epoch: 0,
            detected,
            traceroutes: vec![],
            failed: false,
        });
        acc.add(&Measurement {
            vp_id: 1,
            vp_asn: asns[2],
            url_id: 1,
            dest_asn: asns[1],
            day: 1,
            epoch: 6,
            detected: AnomalySet::empty(),
            traceroutes: vec![],
            failed: true,
        });
        let stats = acc.finish(&w.topology);
        assert_eq!(stats.measurements, 2);
        assert_eq!(stats.vps, 2);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.unique_urls, 2);
        assert_eq!(stats.vp_ases, 2);
        assert_eq!(stats.dest_ases, 1);
        assert_eq!(stats.anomaly_count(AnomalyType::Dns), 1);
        assert_eq!(stats.anomaly_count(AnomalyType::Ttl), 1);
        assert_eq!(stats.anomaly_count(AnomalyType::Reset), 0);
        assert_eq!(stats.total_anomalies(), 2);
        let table = stats.render_table1("2016-05 ~ 2017-05");
        assert!(table.contains("Unique URLs"));
        assert!(table.contains("w/DNS anomalies"));
    }

    #[test]
    fn merge_equals_serial_accumulation() {
        let w = generator::generate(&WorldConfig::preset(WorldScale::Smoke, 1));
        let asns = w.asns();
        let mk = |vp: u32, url: u32, failed: bool, a: Option<AnomalyType>| {
            let mut detected = AnomalySet::empty();
            if let Some(t) = a {
                detected.insert(t);
            }
            Measurement {
                vp_id: vp,
                vp_asn: asns[vp as usize % asns.len()],
                url_id: url,
                dest_asn: asns[(url as usize + 1) % asns.len()],
                day: url,
                epoch: 0,
                detected,
                traceroutes: vec![],
                failed,
            }
        };
        let ms = [
            mk(0, 0, false, Some(AnomalyType::Dns)),
            mk(1, 1, true, None),
            mk(2, 0, false, Some(AnomalyType::Reset)),
            mk(0, 2, false, None),
        ];
        let mut serial = StatsAccumulator::new();
        for m in &ms {
            serial.add(m);
        }
        let mut left = StatsAccumulator::new();
        let mut right = StatsAccumulator::new();
        left.add(&ms[0]);
        right.add(&ms[1]);
        right.add(&ms[2]);
        left.add(&ms[3]);
        let mut merged = StatsAccumulator::new();
        merged.merge(right);
        merged.merge(left);
        assert_eq!(merged.finish(&w.topology), serial.finish(&w.topology));
    }
}
