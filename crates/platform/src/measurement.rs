//! The per-test measurement record.
//!
//! §3.1 of the paper: "Each record in the ICLab dataset contains: (1) the
//! vantage point AS, (2) the URL being tested, (3) the anomaly being
//! tested (and whether it was detected or not), (4) three traceroutes
//! between the vantage point and the URL at the time of testing, and (5)
//! the time at which the test was performed." [`Measurement`] is exactly
//! that tuple (all five anomaly types are tested in one record).

use crate::anomaly::AnomalySet;
use churnlab_net::TracerouteError;
use churnlab_topology::Asn;
use serde::{Deserialize, Serialize};

/// One recorded traceroute: per-hop responding address (`None` = `*`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracerouteRecord {
    /// Responding hops (None = non-responsive).
    pub hops: Vec<Option<u32>>,
    /// Error, if the run failed or truncated.
    pub error: Option<TracerouteError>,
}

impl TracerouteRecord {
    /// A failed run with no output.
    pub fn failed() -> Self {
        TracerouteRecord { hops: Vec::new(), error: Some(TracerouteError::Failed) }
    }
}

/// One measurement (one vantage point testing one URL at one time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Vantage point identifier. Distinguishes exits of multi-country VPN
    /// providers that share one registered AS (the paper's ~1,000 vantage
    /// points live in only 539 ASes); per-pair path-churn accounting keys
    /// on this, since "source" in Figure 3 is the vantage point.
    pub vp_id: u32,
    /// Vantage point AS, as registered: what whois reports for the vantage
    /// address. PoPs of one hosting organization share this.
    pub vp_asn: Asn,
    /// URL id (resolve via the corpus).
    pub url_id: u32,
    /// Destination (hosting) AS of the URL — known to the platform
    /// operators, as it is to ICLab who picked the servers.
    pub dest_asn: Asn,
    /// Simulation day of the test.
    pub day: u32,
    /// Routing epoch the test ran in.
    pub epoch: u32,
    /// Detected anomalies (post detector-noise).
    pub detected: AnomalySet,
    /// The three traceroutes run alongside the test.
    pub traceroutes: Vec<TracerouteRecord>,
    /// True if the test could not run at all (no route to destination);
    /// such records carry failed traceroutes and no anomaly verdicts.
    pub failed: bool,
}

impl Measurement {
    /// True if any anomaly was detected.
    pub fn anomalous(&self) -> bool {
        !self.detected.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::AnomalyType;

    #[test]
    fn anomalous_flag() {
        let mut m = Measurement {
            vp_id: 0,
            vp_asn: Asn(1),
            url_id: 0,
            dest_asn: Asn(2),
            day: 0,
            epoch: 0,
            detected: AnomalySet::empty(),
            traceroutes: vec![],
            failed: false,
        };
        assert!(!m.anomalous());
        m.detected.insert(AnomalyType::Dns);
        assert!(m.anomalous());
    }

    #[test]
    fn failed_traceroute_record() {
        let t = TracerouteRecord::failed();
        assert!(t.hops.is_empty());
        assert_eq!(t.error, Some(TracerouteError::Failed));
    }
}
