//! Vantage-point placement.
//!
//! ICLab's vantage points are overwhelmingly commercial-VPN exits hosted
//! in content (datacenter) ASes — the paper notes this explicitly in its
//! ethics discussion — plus a handful of volunteer Raspberry Pi nodes on
//! residential connections. We mirror that: `n_vpn` vantage points in
//! distinct content ASes and `n_residential` in access-network stubs.

use churnlab_topology::{Asn, CountryCode, GeneratedWorld};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The kind of vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VantageKind {
    /// Commercial VPN exit in a content AS.
    Vpn,
    /// Volunteer Raspberry Pi on a residential access network.
    Residential,
}

/// One vantage point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VantagePoint {
    /// Stable identifier.
    pub id: u32,
    /// Hosting AS (the routing node; a hosting-org PoP for multi-country
    /// VPN providers).
    pub asn: Asn,
    /// The *registered* ASN of the hosting AS — what whois reports for the
    /// VP's address, and therefore what the measurement record carries.
    /// Equal to `asn` except for hosting-org PoPs, where every PoP of the
    /// organization shares the org's public ASN.
    pub public_asn: Asn,
    /// Client address inside the AS.
    pub ip: u32,
    /// VPN or residential.
    pub kind: VantageKind,
}

/// Place vantage points. Takes at most one VP per AS node (the paper
/// counts *vantage point ASes*; multi-country hosting orgs contribute one
/// VP per PoP under a shared public ASN, mirroring ICLab's ~1,000 VPs in
/// 539 ASes); if the world has fewer eligible ASes than requested, every
/// eligible AS gets one.
pub fn place(world: &GeneratedWorld, n_vpn: usize, n_residential: usize, seed: u64) -> Vec<VantagePoint> {
    place_avoiding(world, n_vpn, n_residential, &[], 1.0, seed)
}

/// Like [`place`], but prefers ASes outside `avoid` countries: at most
/// `avoid_frac` of each vantage class comes from avoided countries.
/// Commercial VPN exits concentrate in uncensored jurisdictions, and ICLab
/// deliberately avoids high-risk regions — with one deliberate exception:
/// hosting-org PoPs are taken wholesale, wherever they are. Subscribing to
/// a commercial VPN provider buys the *entire* exit footprint, censored
/// countries included; that is precisely how ICLab observed censored
/// networks without local volunteers.
pub fn place_avoiding(
    world: &GeneratedWorld,
    n_vpn: usize,
    n_residential: usize,
    avoid: &[CountryCode],
    avoid_frac: f64,
    seed: u64,
) -> Vec<VantagePoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    let order = |hosts: &mut Vec<Asn>, rng: &mut StdRng, cap: usize| {
        // Preferred (non-avoided) first, then up to `cap` avoided ones.
        let mut preferred: Vec<Asn> = hosts
            .iter()
            .copied()
            .filter(|a| {
                let c = world.topology.info_by_asn(*a).expect("host exists").country;
                !avoid.contains(&c)
            })
            .collect();
        // Complement of `preferred`, computed by the same country test
        // rather than an O(n²) membership scan — at the Huge tier the
        // eligible-host pool is ~20k ASes.
        let mut avoided: Vec<Asn> = hosts
            .iter()
            .copied()
            .filter(|a| {
                let c = world.topology.info_by_asn(*a).expect("host exists").country;
                avoid.contains(&c)
            })
            .collect();
        preferred.shuffle(rng);
        avoided.shuffle(rng);
        // Concentrate in hosting hubs: commercial VPN exits cluster in a
        // handful of datacenter-heavy countries. Hubs = the 8 non-avoided
        // countries with the most eligible hosts; ~70% of the preferred
        // order comes from hubs.
        {
            use std::collections::HashMap;
            let mut per_country: HashMap<CountryCode, usize> = HashMap::new();
            for a in &preferred {
                let c = world.topology.info_by_asn(*a).expect("host exists").country;
                *per_country.entry(c).or_insert(0) += 1;
            }
            let mut ranked: Vec<(CountryCode, usize)> = per_country.into_iter().collect();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let hubs: Vec<CountryCode> = ranked.iter().take(5).map(|(c, _)| *c).collect();
            let (hub_hosts, other_hosts): (Vec<Asn>, Vec<Asn>) =
                preferred.iter().partition(|a| {
                    hubs.contains(&world.topology.info_by_asn(**a).expect("host").country)
                });
            let mut merged = Vec::with_capacity(preferred.len());
            let mut hi = hub_hosts.into_iter();
            let mut oi = other_hosts.into_iter();
            loop {
                let mut advanced = false;
                for _ in 0..9 {
                    if let Some(h) = hi.next() {
                        merged.push(h);
                        advanced = true;
                    }
                }
                for _ in 0..1 {
                    if let Some(o) = oi.next() {
                        merged.push(o);
                        advanced = true;
                    }
                }
                if !advanced {
                    break;
                }
            }
            preferred = merged;
        }
        avoided.truncate(cap);
        // Interleave a few avoided hosts early so censored-country vantage
        // points exist even when the preferred pool is large.
        let mut out = Vec::with_capacity(preferred.len() + avoided.len());
        let step = (preferred.len() / (avoided.len() + 1)).max(1);
        let mut pi = preferred.into_iter();
        for a in avoided {
            for _ in 0..step {
                if let Some(x) = pi.next() {
                    out.push(x);
                }
            }
            out.push(a);
        }
        out.extend(pi);
        out
    };
    let cap_vpn = ((n_vpn as f64) * avoid_frac).ceil() as usize;
    let cap_res = ((n_residential as f64) * avoid_frac).ceil() as usize;
    // Hosting-org PoPs come first (one VP per PoP, full footprint,
    // avoid-list exempt); independent content ASes fill the remainder.
    let org_hosts: Vec<Asn> =
        world.orgs.iter().flat_map(|o| o.pops.iter().copied()).collect();
    let mut vpn_hosts: Vec<Asn> = world
        .topology
        .ases()
        .iter()
        .filter(|a| a.hosts_vpn_vantage() && !world.is_org_pop(a.asn))
        .map(|a| a.asn)
        .collect();
    let mut res_hosts: Vec<Asn> = world
        .topology
        .ases()
        .iter()
        .filter(|a| a.hosts_residential_vantage())
        .map(|a| a.asn)
        .collect();
    let independent = order(&mut vpn_hosts, &mut rng, cap_vpn);
    let vpn_hosts: Vec<Asn> = org_hosts.into_iter().chain(independent).collect();
    let res_hosts = order(&mut res_hosts, &mut rng, cap_res);
    let mut out = Vec::new();
    let mut id = 0u32;
    for asn in vpn_hosts.into_iter().take(n_vpn) {
        let ip = world.host_in(asn, 77).expect("content AS has prefixes");
        out.push(VantagePoint {
            id,
            asn,
            public_asn: world.public_asn(asn),
            ip,
            kind: VantageKind::Vpn,
        });
        id += 1;
    }
    for asn in res_hosts.into_iter().take(n_residential) {
        let ip = world.host_in(asn, 78).expect("stub AS has prefixes");
        out.push(VantagePoint {
            id,
            asn,
            public_asn: world.public_asn(asn),
            ip,
            kind: VantageKind::Residential,
        });
        id += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_topology::{generator, WorldConfig, WorldScale};

    fn world() -> GeneratedWorld {
        generator::generate(&WorldConfig::preset(WorldScale::Small, 4))
    }

    #[test]
    fn placement_counts_and_kinds() {
        let w = world();
        let vps = place(&w, 20, 5, 1);
        let vpn = vps.iter().filter(|v| v.kind == VantageKind::Vpn).count();
        let res = vps.iter().filter(|v| v.kind == VantageKind::Residential).count();
        assert_eq!(vpn, 20);
        assert!(res <= 5);
        // Each VPN VP lives in a content AS; residential in access stubs.
        for v in &vps {
            let info = w.topology.info_by_asn(v.asn).unwrap();
            match v.kind {
                VantageKind::Vpn => assert!(info.hosts_vpn_vantage()),
                VantageKind::Residential => assert!(info.hosts_residential_vantage()),
            }
        }
    }

    #[test]
    fn one_vp_per_as() {
        let w = world();
        let vps = place(&w, 500, 500, 1);
        let mut asns: Vec<Asn> = vps.iter().map(|v| v.asn).collect();
        let n = asns.len();
        asns.sort();
        asns.dedup();
        assert_eq!(asns.len(), n, "duplicate vantage AS");
    }

    #[test]
    fn vp_ips_map_back_to_as() {
        let w = world();
        for v in place(&w, 10, 3, 2) {
            assert_eq!(w.ip2as.lookup(v.ip), Some(v.asn));
        }
    }

    #[test]
    fn org_pops_covered_first_with_shared_public_asn() {
        let w = world();
        let total_pops: usize = w.orgs.iter().map(|o| o.pops.len()).sum();
        let vps = place(&w, total_pops + 10, 0, 1);
        for org in &w.orgs {
            for pop in &org.pops {
                let vp = vps
                    .iter()
                    .find(|v| v.asn == *pop)
                    .unwrap_or_else(|| panic!("PoP {pop} of {} has no VP", org.name));
                assert_eq!(vp.public_asn, org.public, "PoP VPs share the org ASN");
            }
        }
        // Non-org VPs have identity public ASNs.
        for vp in &vps {
            if !w.is_org_pop(vp.asn) {
                assert_eq!(vp.public_asn, vp.asn);
            }
        }
        // Multiple VPs share a public ASN only through orgs.
        let shared = vps
            .iter()
            .filter(|v| vps.iter().filter(|u| u.public_asn == v.public_asn).count() > 1)
            .all(|v| w.is_org_pop(v.asn));
        assert!(shared);
    }

    #[test]
    fn org_pops_exempt_from_avoid_list() {
        let w = world();
        // Avoid every country: only org PoPs (exempt) can host VPN VPs
        // beyond the avoid cap.
        let all: Vec<CountryCode> = w.topology.countries().iter().map(|c| c.code).collect();
        let vps = place_avoiding(&w, 500, 0, &all, 0.0, 3);
        let total_pops: usize = w.orgs.iter().map(|o| o.pops.len()).sum();
        assert!(vps.len() >= total_pops, "org footprint must survive the avoid list");
        assert!(vps.iter().take(total_pops).all(|v| w.is_org_pop(v.asn)));
    }

    #[test]
    fn placement_deterministic() {
        let w = world();
        assert_eq!(place(&w, 15, 4, 9), place(&w, 15, 4, 9));
        assert_ne!(place(&w, 15, 4, 9), place(&w, 15, 4, 10));
    }
}
