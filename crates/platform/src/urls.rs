//! The URL test corpus.
//!
//! The paper's dataset covers 774 unique URLs hosted in 620 destination
//! ASes. Our corpus generator places synthetic sensitive domains in the
//! world's content/enterprise ASes, assigns each a McAfee-style category
//! (weighted so shopping/classifieds dominate, matching §4's category
//! findings), and gives every site a stable page body whose size the
//! blockpage detector can compare against (the Jones-et-al length
//! heuristic).

use churnlab_censor::UrlCategory;
use churnlab_topology::{Asn, CountryCode, GeneratedWorld};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One URL under test.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UrlEntry {
    /// Corpus-stable identifier.
    pub id: u32,
    /// Domain name (what censors match on).
    pub domain: String,
    /// Request path.
    pub path: String,
    /// Content category.
    pub category: UrlCategory,
    /// Hosting AS.
    pub server_asn: Asn,
    /// Server address (inside the hosting AS's prefix space).
    pub server_ip: u32,
    /// Genuine page body size in bytes (body is deterministic filler).
    pub body_len: usize,
}

impl UrlEntry {
    /// The genuine page body (deterministic from the domain).
    pub fn body(&self) -> String {
        let mut s = String::with_capacity(self.body_len + 64);
        s.push_str("<html><head><title>");
        s.push_str(&self.domain);
        s.push_str("</title></head><body>");
        while s.len() < self.body_len {
            s.push_str("<p>lorem ipsum dolor sit amet consectetur</p>");
        }
        s.push_str("</body></html>");
        s
    }
}

/// The URL corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UrlCorpus {
    entries: Vec<UrlEntry>,
    by_domain: HashMap<String, u32>,
}

impl UrlCorpus {
    /// Generate `n` URLs hosted in the world's content/enterprise ASes.
    pub fn generate(world: &GeneratedWorld, n: usize, seed: u64) -> Self {
        Self::generate_avoiding(world, n, seed, &[], 1.0)
    }

    /// Like [`UrlCorpus::generate`], but at most `avoid_frac` of the URLs
    /// are hosted in `avoid` countries. Regionally *sensitive* content is
    /// overwhelmingly hosted outside the censoring jurisdiction — that is
    /// why it gets censored at the network level rather than taken down.
    pub fn generate_avoiding(
        world: &GeneratedWorld,
        n: usize,
        seed: u64,
        avoid: &[CountryCode],
        avoid_frac: f64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Hosting-org PoPs are VPN-exit networks, not website hosts; the
        // paper's destination servers are the sensitive sites themselves.
        let all_hosts: Vec<Asn> = world
            .topology
            .ases()
            .iter()
            .filter(|a| a.hosts_content() && !world.is_org_pop(a.asn))
            .map(|a| a.asn)
            .collect();
        assert!(!all_hosts.is_empty(), "world has no content-hosting ASes");
        let preferred: Vec<Asn> = all_hosts
            .iter()
            .copied()
            .filter(|a| {
                !avoid.contains(&world.topology.info_by_asn(*a).expect("host").country)
            })
            .collect();
        // Complement of `preferred` by the same country test (an O(n²)
        // membership scan would dominate Huge-corpus generation).
        let avoided: Vec<Asn> = all_hosts
            .iter()
            .copied()
            .filter(|a| {
                avoid.contains(&world.topology.info_by_asn(*a).expect("host").country)
            })
            .collect();
        let avoided_set: std::collections::HashSet<Asn> = avoided.iter().copied().collect();
        let max_avoided = ((n as f64) * avoid_frac).round() as usize;
        let mut n_avoided_placed = 0usize;

        // Weighted category pool.
        let mut pool: Vec<UrlCategory> = Vec::new();
        for c in UrlCategory::ALL {
            for _ in 0..c.weight() {
                pool.push(c);
            }
        }

        const WORDS: [&str; 16] = [
            "bazaar", "tribune", "connect", "market", "stream", "portal", "voice", "forum",
            "gazette", "deal", "exchange", "beacon", "digest", "arcade", "junction", "mosaic",
        ];
        const TLDS: [&str; 5] = ["com", "net", "org", "info", "biz"];

        let mut entries = Vec::with_capacity(n);
        let mut by_domain = HashMap::with_capacity(n);
        for i in 0..n {
            let category = *pool.choose(&mut rng).expect("non-empty pool");
            let word = WORDS[rng.gen_range(0..WORDS.len())];
            let tld = TLDS[rng.gen_range(0..TLDS.len())];
            let domain = format!("{}-{}{}.{}", category.label(), word, i, tld);
            // Short-circuit order matters: `gen_bool` must draw exactly
            // when it did before the running-counter rewrite, or seeds
            // change meaning.
            let in_avoided = !avoided.is_empty()
                && n_avoided_placed < max_avoided
                && rng.gen_bool(avoid_frac.clamp(0.0, 1.0));
            let pool = if in_avoided || preferred.is_empty() { &avoided } else { &preferred };
            let server_asn = pool[rng.gen_range(0..pool.len())];
            if avoided_set.contains(&server_asn) {
                n_avoided_placed += 1;
            }
            let server_ip = world
                .host_in(server_asn, 1000 + i as u32)
                .expect("content AS has prefixes");
            let id = i as u32;
            by_domain.insert(domain.clone(), id);
            entries.push(UrlEntry {
                id,
                domain,
                path: "/".to_string(),
                category,
                server_asn,
                server_ip,
                body_len: rng.gen_range(900..8000),
            });
        }
        UrlCorpus { entries, by_domain }
    }

    /// All entries in id order.
    pub fn entries(&self) -> &[UrlEntry] {
        &self.entries
    }

    /// Entry by id.
    pub fn get(&self, id: u32) -> &UrlEntry {
        &self.entries[id as usize]
    }

    /// Entry by domain.
    pub fn by_domain(&self, domain: &str) -> Option<&UrlEntry> {
        self.by_domain.get(domain).map(|&i| self.get(i))
    }

    /// Number of URLs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (domain, category) pairs — the shape
    /// [`churnlab_censor::CensorPolicy::compile`] consumes.
    pub fn domain_category_pairs(&self) -> Vec<(String, UrlCategory)> {
        self.entries.iter().map(|e| (e.domain.clone(), e.category)).collect()
    }

    /// Number of distinct destination ASes (Table 1's "Destination ASes").
    pub fn distinct_dest_ases(&self) -> usize {
        let mut v: Vec<Asn> = self.entries.iter().map(|e| e.server_asn).collect();
        v.sort();
        v.dedup();
        v.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_topology::{generator, WorldConfig, WorldScale};

    fn world() -> GeneratedWorld {
        generator::generate(&WorldConfig::preset(WorldScale::Small, 5))
    }

    #[test]
    fn corpus_shape() {
        let w = world();
        let c = UrlCorpus::generate(&w, 100, 3);
        assert_eq!(c.len(), 100);
        assert!(c.distinct_dest_ases() > 10);
        // Domains unique.
        let mut d: Vec<&str> = c.entries().iter().map(|e| e.domain.as_str()).collect();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 100);
    }

    #[test]
    fn server_ips_map_to_server_as() {
        let w = world();
        let c = UrlCorpus::generate(&w, 50, 3);
        for e in c.entries() {
            assert_eq!(w.ip2as.lookup(e.server_ip), Some(e.server_asn), "{}", e.domain);
            assert!(w.topology.info_by_asn(e.server_asn).unwrap().hosts_content());
        }
    }

    #[test]
    fn lookup_by_domain() {
        let w = world();
        let c = UrlCorpus::generate(&w, 20, 3);
        let e = &c.entries()[7];
        assert_eq!(c.by_domain(&e.domain).unwrap().id, 7);
        assert!(c.by_domain("no-such.example").is_none());
    }

    #[test]
    fn bodies_deterministic_and_sized() {
        let w = world();
        let c = UrlCorpus::generate(&w, 10, 3);
        for e in c.entries() {
            let b1 = e.body();
            let b2 = e.body();
            assert_eq!(b1, b2);
            assert!(b1.len() >= e.body_len, "body shorter than declared");
            assert!(b1.contains(&e.domain));
        }
    }

    #[test]
    fn generation_deterministic() {
        let w = world();
        let a = UrlCorpus::generate(&w, 30, 9);
        let b = UrlCorpus::generate(&w, 30, 9);
        assert_eq!(a, b);
        let c = UrlCorpus::generate(&w, 30, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn categories_weighted_toward_shopping() {
        let w = world();
        let c = UrlCorpus::generate(&w, 774, 3);
        let shopping = c
            .entries()
            .iter()
            .filter(|e| e.category == UrlCategory::OnlineShopping)
            .count();
        let religion = c
            .entries()
            .iter()
            .filter(|e| e.category == UrlCategory::Religion)
            .count();
        assert!(shopping > religion, "weights not applied: {shopping} vs {religion}");
    }
}
