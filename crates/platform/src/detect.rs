//! The five anomaly detectors (§2.1 of the paper).
//!
//! Detectors consume packet captures and the reassembled HTTP outcome —
//! never simulator ground truth — so they have honest false-positive and
//! false-negative modes:
//!
//! * **DNS**: two response packets for the same query id within two
//!   seconds (the paper's exact rule).
//! * **TTL**: the IP TTL of the connection's SYNACK disagrees with a later
//!   packet of the same connection (relies on the censor being unable to
//!   act before the SYNACK, as the paper argues). Misses censors that
//!   mimic TTLs.
//! * **SEQNO**: overlapping sequence ranges with *different* payload
//!   bytes, an unfilled gap at stream end, or an RST whose sequence number
//!   aligns with no segment boundary. Exact duplicates (organic
//!   retransmissions) are deliberately not flagged.
//! * **RESET**: any mid-connection RST — which by construction cannot
//!   distinguish organic from injected resets; the resulting false
//!   positives are the paper's explanation for ~30% of RST CNFs being
//!   unsolvable.
//! * **Blockpage**: fingerprint-list substring match (OONI-style), with a
//!   Jones-et-al length-ratio fallback against the censor-free US control
//!   body — which catches unfingerprinted blockpages but misses nothing
//!   else in a noise-free world.

use crate::anomaly::{AnomalySet, AnomalyType};
use churnlab_net::{Capture, FlowOutcome, TcpFlags};

/// DNS anomaly window from the paper: a second response within 2 s.
const DNS_WINDOW_US: u64 = 2_000_000;

/// Detect DNS injection: ≥2 responses for the same transaction id within
/// the 2-second window.
pub fn detect_dns(dns_capture: &Capture) -> bool {
    let responses = dns_capture.dns_responses();
    for (i, (t1, m1)) in responses.iter().enumerate() {
        for (t2, m2) in responses.iter().skip(i + 1) {
            if m1.id == m2.id && t2.saturating_sub(*t1) <= DNS_WINDOW_US {
                return true;
            }
        }
    }
    false
}

/// Detect TTL anomalies: any incoming TCP packet whose TTL differs from
/// the SYNACK's. Returns false when no SYNACK was captured.
pub fn detect_ttl(http_capture: &Capture) -> bool {
    let synack_ttl = http_capture
        .incoming_tcp()
        .find(|(_, s)| s.flags.contains(TcpFlags::SYN | TcpFlags::ACK))
        .map(|(p, _)| p.pkt.ttl);
    let baseline = match synack_ttl {
        Some(t) => t,
        None => return false,
    };
    http_capture.incoming_tcp().any(|(p, s)| {
        !s.flags.contains(TcpFlags::SYN) && p.pkt.ttl != baseline
    })
}

/// Detect sequence-number anomalies.
pub fn detect_seqno(http_capture: &Capture) -> bool {
    // Establish the stream origin from the SYNACK.
    let stream_start = match http_capture
        .incoming_tcp()
        .find(|(_, s)| s.flags.contains(TcpFlags::SYN | TcpFlags::ACK))
        .map(|(_, s)| s.seq.wrapping_add(1))
    {
        Some(s) => s,
        None => return false,
    };
    let rel = |seq: u32| seq.wrapping_sub(stream_start);

    // Collect incoming data segments as relative ranges.
    let mut segments: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut rsts: Vec<u32> = Vec::new();
    for (_, seg) in http_capture.incoming_tcp() {
        if seg.flags.contains(TcpFlags::RST) {
            rsts.push(rel(seg.seq));
        } else if seg.has_data() {
            let off = rel(seg.seq);
            if off < 1 << 24 {
                segments.push((off, seg.payload.clone()));
            }
        }
    }

    // Rule 1: overlapping ranges with differing content.
    for (i, (a_off, a_pay)) in segments.iter().enumerate() {
        for (b_off, b_pay) in segments.iter().skip(i + 1) {
            let a_end = a_off + a_pay.len() as u32;
            let b_end = b_off + b_pay.len() as u32;
            let lo = (*a_off).max(*b_off);
            let hi = a_end.min(b_end);
            if lo >= hi {
                continue; // disjoint
            }
            let a_slice = &a_pay[(lo - a_off) as usize..(hi - a_off) as usize];
            let b_slice = &b_pay[(lo - b_off) as usize..(hi - b_off) as usize];
            if a_slice != b_slice {
                return true;
            }
        }
    }

    // Rule 2: a gap in the stream that never fills.
    if !segments.is_empty() {
        let mut ranges: Vec<(u32, u32)> =
            segments.iter().map(|(o, p)| (*o, *o + p.len() as u32)).collect();
        ranges.sort();
        let mut covered_end = 0u32;
        let mut gap = false;
        for (s, e) in ranges {
            if s > covered_end {
                gap = true;
                break;
            }
            covered_end = covered_end.max(e);
        }
        if gap {
            return true;
        }
    }

    // Rule 3: an RST whose sequence number aligns with no segment boundary.
    if !rsts.is_empty() {
        let mut boundaries: Vec<u32> = vec![0];
        for (o, p) in &segments {
            boundaries.push(*o);
            boundaries.push(*o + p.len() as u32);
        }
        for r in rsts {
            // Plausible positions: within the stream (small positive
            // offsets) or just before it (small negative offsets — sloppy
            // injectors undershoot too).
            let plausible = !(1 << 24..=u32::MAX - 4096).contains(&r);
            if plausible && !boundaries.contains(&r) {
                return true;
            }
        }
    }
    false
}

/// Detect RESET anomalies: any incoming RST on the measured connection.
pub fn detect_reset(http_capture: &Capture) -> bool {
    http_capture
        .incoming_tcp()
        .any(|(_, s)| s.flags.contains(TcpFlags::RST))
}

/// Detect blockpages: fingerprint scan over every received TCP payload
/// (ICLab analyses raw captures, so a blockpage that lost the reassembly
/// race — or arrived after an injected RST — is still visible), plus the
/// Jones-et-al length heuristic against the censor-free US control body
/// for pages the fingerprint list does not know.
pub fn detect_block(
    http_capture: &Capture,
    outcome: &FlowOutcome,
    fingerprints: &[&str],
    control_body: Option<&[u8]>,
) -> bool {
    // Raw-capture fingerprint scan.
    for (_, seg) in http_capture.incoming_tcp() {
        if !seg.has_data() {
            continue;
        }
        let text = String::from_utf8_lossy(&seg.payload);
        if fingerprints.iter().any(|f| text.contains(f)) {
            return true;
        }
    }
    // Length heuristic on what the browser actually assembled.
    let resp = match outcome {
        FlowOutcome::HttpOk(r) => r,
        _ => return false,
    };
    let body = resp.body_text();
    if let Some(control) = control_body {
        // Jones et al.: blockpages differ starkly in length from the real
        // page. Flag HTML bodies under 30% / over 333% of the control size.
        let got = resp.body.len() as f64;
        let want = control.len().max(1) as f64;
        let ratio = got / want;
        if !(0.30..=3.33).contains(&ratio) && body.to_ascii_lowercase().contains("<html") {
            return true;
        }
    }
    false
}

/// Run all five detectors over one measurement's artifacts.
pub fn detect_all(
    dns_capture: &Capture,
    http_capture: &Capture,
    http_outcome: &FlowOutcome,
    fingerprints: &[&str],
    control_body: Option<&[u8]>,
) -> AnomalySet {
    let mut set = AnomalySet::empty();
    if detect_dns(dns_capture) {
        set.insert(AnomalyType::Dns);
    }
    if detect_ttl(http_capture) {
        set.insert(AnomalyType::Ttl);
    }
    if detect_seqno(http_capture) {
        set.insert(AnomalyType::Seqno);
    }
    if detect_reset(http_capture) {
        set.insert(AnomalyType::Reset);
    }
    if detect_block(http_capture, http_outcome, fingerprints, control_body) {
        set.insert(AnomalyType::Block);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_censor::{
        ActiveCensor, CensorPolicy, Mechanism, MechanismProfile, TestContext, UrlCategory,
    };
    use churnlab_net::{
        DnsMessage, FlowConfig, FlowSimulator, HopPath, HttpRequest, HttpResponse,
        OnPathObserver,
    };
    use churnlab_topology::{Asn, Ipv4Prefix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn path() -> HopPath {
        let asns = [Asn(10), Asn(20), Asn(30), Asn(40)];
        let prefixes: HashMap<Asn, Vec<Ipv4Prefix>> = asns
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, vec![Ipv4Prefix::new(((i as u32) + 1) << 24, 16).unwrap()]))
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        let server = prefixes[&Asn(40)][0].nth_host(1);
        let client = prefixes[&Asn(10)][0].nth_host(1);
        HopPath::expand(&asns, &prefixes, client, server, (1, 2), &mut rng)
    }

    fn censor(mechs: Vec<Mechanism>, profile: MechanismProfile) -> churnlab_censor::CompiledCensor {
        CensorPolicy::steady(Asn(20), mechs, profile, [UrlCategory::News], 365)
            .compile(&[("bad.example".into(), UrlCategory::News)])
    }

    fn run_http(
        compiled: Option<&churnlab_censor::CompiledCensor>,
        domain: &str,
        cfg: &FlowConfig,
    ) -> (churnlab_net::Capture, FlowOutcome, HttpResponse) {
        let p = path();
        let real = HttpResponse::ok(&format!(
            "<html><body>{}</body></html>",
            "real content ".repeat(200)
        ));
        let req = HttpRequest::get(domain, "/");
        let mimic = cfg
            .server_init_ttl
            .saturating_sub(p.len() as u8 - 1)
            .saturating_add(p.first_hop_of_as(1).unwrap() as u8);
        let mut armed;
        let mut observers: Vec<(usize, &mut dyn OnPathObserver)> = vec![];
        if let Some(c) = compiled {
            armed = ActiveCensor::new(c, TestContext { day: 5, mimic_init_ttl: mimic });
            observers.push((1, &mut armed));
        }
        let (cap, outcome) = FlowSimulator::http_get(&p, cfg, &req, &real, &mut observers);
        (cap, outcome, real)
    }

    #[test]
    fn clean_flow_detects_nothing() {
        let cfg = FlowConfig::default();
        let (cap, outcome, real) = run_http(None, "bad.example", &cfg);
        let set = detect_all(
            &Capture::new(),
            &cap,
            &outcome,
            &churnlab_censor::blockpage::fingerprint_list(),
            Some(&real.serialize()),
        );
        assert!(set.is_empty(), "clean flow flagged: {set}");
    }

    #[test]
    fn organic_loss_not_flagged_as_seqno() {
        let cfg = FlowConfig { organic_loss: true, mss: 500, ..FlowConfig::default() };
        let (cap, _, _) = run_http(None, "bad.example", &cfg);
        assert!(!detect_seqno(&cap), "retransmission must not look like censorship");
    }

    #[test]
    fn organic_rst_flags_reset_only() {
        let cfg = FlowConfig { organic_rst: true, ..FlowConfig::default() };
        let (cap, outcome, real) = run_http(None, "bad.example", &cfg);
        assert!(detect_reset(&cap));
        assert!(!detect_ttl(&cap), "server's own RST has the right TTL");
        assert!(!detect_seqno(&cap), "server's own RST has the right seq");
        assert!(!detect_block(&cap, &outcome, &[], Some(&real.serialize())));
    }

    #[test]
    fn rst_injection_flags_reset_and_ttl() {
        let c = censor(vec![Mechanism::RstInjection], MechanismProfile::default());
        let (cap, _, _) = run_http(Some(&c), "bad.example", &FlowConfig::default());
        assert!(detect_reset(&cap), "injected RST missed");
        assert!(detect_ttl(&cap), "injector TTL fingerprint missed");
    }

    #[test]
    fn mimicking_injector_evades_ttl_detector() {
        let profile = MechanismProfile { mimic_ttl: true, ..Default::default() };
        let c = censor(vec![Mechanism::RstInjection], profile);
        let (cap, _, _) = run_http(Some(&c), "bad.example", &FlowConfig::default());
        assert!(detect_reset(&cap));
        assert!(!detect_ttl(&cap), "mimicked TTL should evade the detector");
    }

    #[test]
    fn sloppy_rst_flags_seqno() {
        let profile = MechanismProfile { seq_fuzz: 700, ..Default::default() };
        let c = censor(vec![Mechanism::RstInjection], profile);
        let (cap, _, _) = run_http(Some(&c), "bad.example", &FlowConfig::default());
        assert!(detect_seqno(&cap), "fuzzed RST seq must trip the SEQNO detector");
    }

    #[test]
    fn blockpage_detected_by_fingerprint() {
        let profile = MechanismProfile { blockpage_id: 0, ..Default::default() };
        let c = censor(vec![Mechanism::Blockpage], profile);
        let (cap, outcome, real) = run_http(Some(&c), "bad.example", &FlowConfig::default());
        let fps = churnlab_censor::blockpage::fingerprint_list();
        assert!(detect_block(&cap, &outcome, &fps, Some(&real.serialize())));
        // The page arrives from the censor's position: TTL anomaly too
        // (matching the paper's UK "Block, TTL" pattern).
        assert!(detect_ttl(&cap));
    }

    #[test]
    fn unfingerprinted_blockpage_caught_by_length_heuristic() {
        // Template 4 ("generic-denied") is not in the fingerprint list.
        let profile = MechanismProfile { blockpage_id: 4, ..Default::default() };
        let c = censor(vec![Mechanism::Blockpage], profile);
        let (cap, outcome, real) = run_http(Some(&c), "bad.example", &FlowConfig::default());
        let fps = churnlab_censor::blockpage::fingerprint_list();
        assert!(
            detect_block(&cap, &outcome, &fps, Some(&real.body)),
            "length heuristic should catch the stealth blockpage"
        );
        assert!(
            !detect_block(&cap, &outcome, &fps, None),
            "without a control body the stealth page evades"
        );
    }

    #[test]
    fn seq_manipulation_flags_seqno() {
        let c = censor(vec![Mechanism::SeqManipulation], MechanismProfile::default());
        let (cap, _, _) = run_http(Some(&c), "bad.example", &FlowConfig::default());
        assert!(detect_seqno(&cap), "poisoned stream must trip SEQNO");
    }

    #[test]
    fn untargeted_domain_is_clean() {
        let c = censor(Mechanism::ALL.to_vec(), MechanismProfile::default());
        let (cap, outcome, real) = run_http(Some(&c), "innocent.example", &FlowConfig::default());
        let set = detect_all(
            &Capture::new(),
            &cap,
            &outcome,
            &churnlab_censor::blockpage::fingerprint_list(),
            Some(&real.serialize()),
        );
        assert!(set.is_empty(), "uncensored domain flagged: {set}");
    }

    #[test]
    fn dns_injection_detected_via_double_response() {
        let p = path();
        let c = censor(vec![Mechanism::DnsInjection], MechanismProfile::default());
        let q = DnsMessage::query(9, "bad.example");
        let honest = DnsMessage::answer(&q, p.server_ip, 300);
        let mut armed = ActiveCensor::new(&c, TestContext { day: 5, mimic_init_ttl: 64 });
        let mut observers: Vec<(usize, &mut dyn OnPathObserver)> = vec![(1, &mut armed)];
        let (cap, responses) =
            FlowSimulator::dns_lookup(&p, &FlowConfig::default(), &q, Some(&honest), &mut observers);
        assert_eq!(responses.len(), 2, "injected + honest");
        assert!(detect_dns(&cap));
        // The injected response arrives first (closer).
        assert_ne!(responses[0].answers[0].addr, p.server_ip);
    }

    #[test]
    fn single_dns_response_is_clean() {
        let p = path();
        let q = DnsMessage::query(9, "bad.example");
        let honest = DnsMessage::answer(&q, p.server_ip, 300);
        let (cap, _) =
            FlowSimulator::dns_lookup(&p, &FlowConfig::default(), &q, Some(&honest), &mut []);
        assert!(!detect_dns(&cap));
    }
}
