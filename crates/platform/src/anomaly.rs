//! The five anomaly types ICLab reports (Table 1, §2.1).

use serde::{Deserialize, Serialize};

/// A censorship anomaly type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AnomalyType {
    /// Injected DNS responses (two answers racing).
    Dns,
    /// Sequence-number overlaps/gaps (Weaver-style injector artifacts).
    Seqno,
    /// IP TTL disagreement with the connection's SYNACK.
    Ttl,
    /// Spurious TCP RSTs.
    Reset,
    /// Blockpage content served instead of the real page.
    Block,
}

impl AnomalyType {
    /// All types, in the order the paper's Figure 1b uses
    /// (block, dns, rst, seq, ttl) is alphabetical there; we keep a stable
    /// semantic order here and sort for display.
    pub const ALL: [AnomalyType; 5] = [
        AnomalyType::Dns,
        AnomalyType::Seqno,
        AnomalyType::Ttl,
        AnomalyType::Reset,
        AnomalyType::Block,
    ];

    /// Short label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            AnomalyType::Dns => "dns",
            AnomalyType::Seqno => "seq",
            AnomalyType::Ttl => "ttl",
            AnomalyType::Reset => "rst",
            AnomalyType::Block => "block",
        }
    }

    /// Bit position inside an [`AnomalySet`].
    fn bit(self) -> u8 {
        match self {
            AnomalyType::Dns => 0,
            AnomalyType::Seqno => 1,
            AnomalyType::Ttl => 2,
            AnomalyType::Reset => 3,
            AnomalyType::Block => 4,
        }
    }
}

impl std::fmt::Display for AnomalyType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A compact set of anomaly types (bitmask).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AnomalySet(u8);

impl AnomalySet {
    /// Empty set.
    pub const fn empty() -> Self {
        AnomalySet(0)
    }

    /// Insert a type.
    pub fn insert(&mut self, t: AnomalyType) {
        self.0 |= 1 << t.bit();
    }

    /// Remove a type.
    pub fn remove(&mut self, t: AnomalyType) {
        self.0 &= !(1 << t.bit());
    }

    /// Membership test.
    pub fn contains(self, t: AnomalyType) -> bool {
        self.0 & (1 << t.bit()) != 0
    }

    /// True if no anomaly detected.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of anomaly types present.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterate over the contained types.
    pub fn iter(self) -> impl Iterator<Item = AnomalyType> {
        AnomalyType::ALL.into_iter().filter(move |t| self.contains(*t))
    }

    /// Toggle membership of `t` (used by detector-noise bit flips).
    pub fn toggle(&mut self, t: AnomalyType) {
        self.0 ^= 1 << t.bit();
    }
}

impl FromIterator<AnomalyType> for AnomalySet {
    fn from_iter<I: IntoIterator<Item = AnomalyType>>(iter: I) -> Self {
        let mut s = AnomalySet::empty();
        for t in iter {
            s.insert(t);
        }
        s
    }
}

impl std::fmt::Display for AnomalySet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        let mut first = true;
        for t in self.iter() {
            if !first {
                f.write_str(",")?;
            }
            f.write_str(t.label())?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_operations() {
        let mut s = AnomalySet::empty();
        assert!(s.is_empty());
        s.insert(AnomalyType::Dns);
        s.insert(AnomalyType::Reset);
        assert!(s.contains(AnomalyType::Dns));
        assert!(s.contains(AnomalyType::Reset));
        assert!(!s.contains(AnomalyType::Ttl));
        assert_eq!(s.len(), 2);
        s.remove(AnomalyType::Dns);
        assert!(!s.contains(AnomalyType::Dns));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn toggle_flips() {
        let mut s = AnomalySet::empty();
        s.toggle(AnomalyType::Block);
        assert!(s.contains(AnomalyType::Block));
        s.toggle(AnomalyType::Block);
        assert!(!s.contains(AnomalyType::Block));
    }

    #[test]
    fn iteration_and_display() {
        let s: AnomalySet = [AnomalyType::Ttl, AnomalyType::Dns].into_iter().collect();
        let v: Vec<AnomalyType> = s.iter().collect();
        assert_eq!(v, vec![AnomalyType::Dns, AnomalyType::Ttl]);
        assert_eq!(s.to_string(), "dns,ttl");
        assert_eq!(AnomalySet::empty().to_string(), "none");
    }

    #[test]
    fn labels_match_paper_legend() {
        let mut labels: Vec<&str> = AnomalyType::ALL.iter().map(|t| t.label()).collect();
        labels.sort();
        assert_eq!(labels, vec!["block", "dns", "rst", "seq", "ttl"]);
    }
}
