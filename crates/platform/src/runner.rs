//! The measurement runner: ICLab's scheduler + executor.
//!
//! Every (vantage point, URL) pair is tested on a fixed cadence — the
//! paper's 4.9M measurements over a year work out to roughly one test per
//! pair per month — with `tests_per_testing_day` runs spread across the
//! day's routing epochs (which is what lets intra-day path churn become
//! *observable*, Figure 3's per-day series). Each test:
//!
//! 1. resolves the AS path from the routing simulator at the test's epoch,
//! 2. expands it to router hops and arms every censoring AS on the path,
//! 3. runs a DNS lookup and an HTTP GET at the packet level,
//! 4. runs the five detectors over the captures,
//! 5. applies detector noise, and
//! 6. records the §3.1 measurement tuple with three traceroutes.
//!
//! Measurements stream to a sink (the paper-scale run produces millions of
//! records; holding them all is the *caller's* choice).

use crate::anomaly::{AnomalySet, AnomalyType};
use crate::detect;
use crate::measurement::{Measurement, TracerouteRecord};
use crate::noise::NoiseConfig;
use crate::stats::{DatasetStats, StatsAccumulator};
use crate::urls::UrlCorpus;
use crate::vantage::{self, VantagePoint};
use churnlab_bgp::RoutingSim;
use churnlab_censor::{ActiveCensor, CensorshipScenario, CompiledCensor, TestContext};
use churnlab_net::{
    DnsMessage, FlowConfig, FlowSimulator, HopPath, HttpRequest, HttpResponse, OnPathObserver,
    Traceroute,
};
use churnlab_topology::{Asn, GeneratedWorld, Ip2AsDb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Reusable AS-path buffers for the measurement loop: one campaign runs
/// millions of tests, and the routing layer can fill paths in place
/// ([`RoutingSim::asn_path_into`]) instead of allocating per test.
#[derive(Default)]
struct PathBuffers {
    /// The test's primary path at its epoch.
    main: Vec<Asn>,
    /// The next-epoch path probed by the route-shift traceroute.
    alt: Vec<Asn>,
}

/// Convenience scale presets for the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlatformScale {
    /// Tiny: unit tests (12 URLs, ~12 VPs, 60 days).
    Smoke,
    /// Small: integration tests and quick experiments (~40k measurements).
    Small,
    /// Paper: 774 URLs, ~539 VP ASes, ~5M measurements over a year.
    Paper,
}

/// Platform configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Seed for corpus, vantage placement, and per-test randomness.
    pub seed: u64,
    /// URLs in the test list (paper: 774).
    pub n_urls: usize,
    /// VPN vantage points (one per content AS; paper: most of 539).
    pub n_vpn_vantage: usize,
    /// Residential vantage points.
    pub n_residential_vantage: usize,
    /// Tests per (vantage, URL) pair over the whole period (paper ≈ 12).
    pub tests_per_pair: u32,
    /// Tests run per testing day (spread over routing epochs).
    pub tests_per_testing_day: u32,
    /// Days in the measurement period.
    pub total_days: u32,
    /// Router hops contributed by each transit AS (min, max).
    pub routers_per_as: (usize, usize),
    /// Maximum fraction of vantage points placed in censoring countries
    /// (commercial VPN providers concentrate in uncensored jurisdictions;
    /// ICLab additionally avoids high-risk regions).
    pub vp_censor_country_frac: f64,
    /// Maximum fraction of test URLs hosted inside censoring countries
    /// (sensitive content is mostly hosted abroad).
    pub url_censor_country_frac: f64,
    /// Noise model.
    pub noise: NoiseConfig,
}

impl PlatformConfig {
    /// Preset for a scale.
    pub fn preset(scale: PlatformScale, seed: u64) -> Self {
        match scale {
            PlatformScale::Smoke => PlatformConfig {
                seed,
                n_urls: 16,
                n_vpn_vantage: 20,
                n_residential_vantage: 4,
                tests_per_pair: 24,
                tests_per_testing_day: 2,
                total_days: 60,
                routers_per_as: (1, 2),
                vp_censor_country_frac: 0.0,
                url_censor_country_frac: 0.03,
                noise: NoiseConfig::realistic(),
            },
            PlatformScale::Small => PlatformConfig {
                seed,
                n_urls: 60,
                n_vpn_vantage: 160,
                n_residential_vantage: 24,
                tests_per_pair: 146,
                tests_per_testing_day: 2,
                total_days: 365,
                routers_per_as: (1, 3),
                vp_censor_country_frac: 0.0,
                url_censor_country_frac: 0.03,
                noise: NoiseConfig::realistic(),
            },
            PlatformScale::Paper => PlatformConfig {
                seed,
                n_urls: 774,
                n_vpn_vantage: 780,
                n_residential_vantage: 60,
                tests_per_pair: 12,
                tests_per_testing_day: 2,
                total_days: 365,
                routers_per_as: (1, 3),
                vp_censor_country_frac: 0.0,
                url_censor_country_frac: 0.03,
                noise: NoiseConfig::realistic(),
            },
        }
    }

    /// Days between testing days for one pair.
    pub fn testing_interval_days(&self) -> u32 {
        let testing_days = (self.tests_per_pair / self.tests_per_testing_day).max(1);
        (self.total_days / testing_days).max(1)
    }
}

/// Deterministic mixer for scheduling phases and per-group RNG seeds.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The assembled measurement platform.
pub struct Platform<'w> {
    world: &'w GeneratedWorld,
    cfg: PlatformConfig,
    corpus: UrlCorpus,
    vantage: Vec<VantagePoint>,
    compiled: HashMap<Asn, CompiledCensor>,
    fingerprints: Vec<&'static str>,
    measured_ip2as: Ip2AsDb,
}

impl<'w> Platform<'w> {
    /// Assemble the platform: generate the URL corpus, place vantage
    /// points, compile censor policies against the corpus, and degrade the
    /// IP-to-AS database per the noise config.
    pub fn new(
        world: &'w GeneratedWorld,
        scenario: &CensorshipScenario,
        cfg: PlatformConfig,
    ) -> Self {
        // Only *transit-censored* jurisdictions (heavy/medium tiers) repel
        // vantage points and hosting: VPN providers do operate in countries
        // whose hosting ASes quietly filter (that is exactly how the paper
        // catches them) — what they avoid is state-level transit censorship.
        let censoring_countries: Vec<churnlab_topology::CountryCode> = scenario
            .country_tiers
            .iter()
            .filter(|(_, t)| {
                matches!(
                    t,
                    churnlab_censor::scenario::CensorTier::Heavy
                        | churnlab_censor::scenario::CensorTier::Medium
                )
            })
            .map(|(c, _)| *c)
            .collect();
        let corpus = UrlCorpus::generate_avoiding(
            world,
            cfg.n_urls,
            mix64(cfg.seed ^ 0x11),
            &censoring_countries,
            cfg.url_censor_country_frac,
        );
        let vantage = vantage::place_avoiding(
            world,
            cfg.n_vpn_vantage,
            cfg.n_residential_vantage,
            &censoring_countries,
            cfg.vp_censor_country_frac,
            mix64(cfg.seed ^ 0x22),
        );
        let pairs = corpus.domain_category_pairs();
        let compiled = scenario
            .policies
            .iter()
            .map(|p| (p.asn, p.compile(&pairs)))
            .collect();
        let all_asns = world.asns();
        let mut db_rng = StdRng::seed_from_u64(mix64(cfg.seed ^ 0x33));
        // The analyst's database is built from registry data: hosting-org
        // PoP prefixes all map to the org's public ASN (then degraded by
        // the staleness noise model).
        let measured_ip2as =
            world.registry_ip2as().degraded(cfg.noise.ip2as, &all_asns, &mut db_rng);
        Platform { world, cfg, corpus, vantage, compiled, fingerprints: churnlab_censor::blockpage::fingerprint_list(), measured_ip2as }
    }

    /// The URL corpus.
    pub fn corpus(&self) -> &UrlCorpus {
        &self.corpus
    }

    /// The vantage points.
    pub fn vantage_points(&self) -> &[VantagePoint] {
        &self.vantage
    }

    /// The (degraded) IP-to-AS database measurements should be interpreted
    /// with — the analyst's view, not ground truth.
    pub fn measured_ip2as(&self) -> &Ip2AsDb {
        &self.measured_ip2as
    }

    /// The configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// The world under measurement.
    pub fn world(&self) -> &GeneratedWorld {
        self.world
    }

    /// Run the full measurement campaign, streaming records to `sink`.
    pub fn run(&self, sim: &RoutingSim, mut sink: impl FnMut(Measurement)) -> DatasetStats {
        let mut acc = StatsAccumulator::new();
        let interval = self.cfg.testing_interval_days();
        let all_vps: Vec<usize> = (0..self.vantage.len()).collect();
        // Path buffers reused across every test in the campaign (the
        // routing layer fills them in place — no per-measurement Vec).
        let mut paths = PathBuffers::default();
        for url in self.corpus.entries() {
            // URL-list sweeps: every vantage point tests a URL on the same
            // testing days (the platform walks its list on a global
            // cadence, like ICLab's repeated full-list suites). The sweep
            // phase is per-URL so load spreads across days, while each
            // (url, testing-day) still sees the entire fleet — the
            // cross-vantage coverage that lets one vantage's clean path
            // exonerate ASes on another vantage's censored path.
            let phase = (mix64(self.cfg.seed ^ u64::from(url.id)) % u64::from(interval)) as u32;
            for day in 0..self.cfg.total_days {
                if day % interval != phase {
                    continue;
                }
                let bucket = &all_vps;
                let mut rng = StdRng::seed_from_u64(mix64(
                    self.cfg.seed ^ (u64::from(url.id) << 32) ^ u64::from(day),
                ));
                for &vi in bucket {
                    let vp = &self.vantage[vi];
                    let epochs_per_day = sim.mapper().epochs_per_day;
                    let k = self.cfg.tests_per_testing_day.max(1);
                    for t in 0..k {
                        // Spread the day's tests across day segments
                        // (measurement suites run hours apart), so intra-day
                        // route changes are observable.
                        let seg = (epochs_per_day * t / k, (epochs_per_day * (t + 1) / k).max(epochs_per_day * t / k + 1));
                        let slot = rng.gen_range(seg.0..seg.1.min(epochs_per_day));
                        let m = self.run_test(sim, vp, url.id, day, slot, &mut rng, &mut paths);
                        acc.add(&m);
                        sink(m);
                    }
                }
            }
        }
        acc.finish(&self.world.topology)
    }

    /// Run the full measurement campaign, handing each measurement to
    /// `sink` together with its tested domain — the export hook: a record
    /// written from this sink is self-contained (interpretable without
    /// the generating corpus), which is what interchange dumps need.
    pub fn run_with_domains(
        &self,
        sim: &RoutingSim,
        mut sink: impl FnMut(Measurement, &str),
    ) -> DatasetStats {
        let corpus = &self.corpus;
        self.run(sim, move |m| {
            let domain = &corpus.get(m.url_id).domain;
            sink(m, domain)
        })
    }

    /// Run the campaign and collect everything (small scales only).
    pub fn run_collect(&self, sim: &RoutingSim) -> (Vec<Measurement>, DatasetStats) {
        let mut out = Vec::new();
        let stats = self.run(sim, |m| out.push(m));
        (out, stats)
    }

    /// Execute one test.
    #[allow(clippy::too_many_arguments)]
    fn run_test(
        &self,
        sim: &RoutingSim,
        vp: &VantagePoint,
        url_id: u32,
        day: u32,
        slot: u32,
        rng: &mut StdRng,
        paths: &mut PathBuffers,
    ) -> Measurement {
        let url = self.corpus.get(url_id);
        let epoch = sim.mapper().epoch(day, slot);
        let topo = &self.world.topology;
        let vp_idx = topo.idx(vp.asn).expect("vantage AS exists");
        let dest_idx = topo.idx(url.server_asn).expect("dest AS exists");
        if !sim.asn_path_into(vp_idx, dest_idx, epoch, &mut paths.main) {
            return Measurement {
                vp_id: vp.id,
                vp_asn: vp.public_asn,
                url_id,
                dest_asn: url.server_asn,
                day,
                epoch,
                detected: AnomalySet::empty(),
                traceroutes: vec![
                    TracerouteRecord::failed(),
                    TracerouteRecord::failed(),
                    TracerouteRecord::failed(),
                ],
                failed: true,
            };
        }
        let asn_path: &[Asn] = &paths.main;

        let hop_path = HopPath::expand(
            asn_path,
            &self.world.prefixes,
            vp.ip,
            url.server_ip,
            self.cfg.routers_per_as,
            rng,
        );

        // Arm every censoring AS on the path.
        let flow_cfg = FlowConfig {
            client_port: rng.gen_range(32768..61000),
            isn_client: rng.gen(),
            isn_server: rng.gen(),
            organic_rst: rng.gen_bool(self.cfg.noise.organic_rst_prob.clamp(0.0, 1.0)),
            organic_loss: rng.gen_bool(self.cfg.noise.organic_loss_prob.clamp(0.0, 1.0)),
            ..FlowConfig::default()
        };
        let server_remaining =
            flow_cfg.server_init_ttl.saturating_sub(hop_path.len() as u8 - 1);
        let mut armed: Vec<(usize, ActiveCensor)> = Vec::new();
        for (pos, asn) in asn_path.iter().enumerate() {
            if let Some(compiled) = self.compiled.get(asn) {
                let hop = hop_path.first_hop_of_as(pos).expect("AS on path has hops");
                let mimic = server_remaining.saturating_add(hop as u8);
                armed.push((
                    pos,
                    ActiveCensor::new(compiled, TestContext { day, mimic_init_ttl: mimic }),
                ));
            }
        }

        // --- DNS test -----------------------------------------------------
        let query = DnsMessage::query(rng.gen(), &url.domain);
        let honest = DnsMessage::answer(&query, url.server_ip, 300);
        let mut observers: Vec<(usize, &mut dyn OnPathObserver)> =
            armed.iter_mut().map(|(p, c)| (*p, c as &mut dyn OnPathObserver)).collect();
        let (dns_cap, _responses) =
            FlowSimulator::dns_lookup(&hop_path, &flow_cfg, &query, Some(&honest), &mut observers);

        // --- HTTP test ----------------------------------------------------
        let request = HttpRequest::get(&url.domain, &url.path);
        let genuine_body = url.body();
        let genuine = HttpResponse::ok(&genuine_body);
        let mut observers: Vec<(usize, &mut dyn OnPathObserver)> =
            armed.iter_mut().map(|(p, c)| (*p, c as &mut dyn OnPathObserver)).collect();
        let (http_cap, outcome) =
            FlowSimulator::http_get(&hop_path, &flow_cfg, &request, &genuine, &mut observers);

        // --- Detection -----------------------------------------------------
        let mut detected = detect::detect_all(
            &dns_cap,
            &http_cap,
            &outcome,
            &self.fingerprints,
            Some(genuine_body.as_bytes()),
        );
        // Detector noise. Real detector failures are *systematic* — a
        // vantage whose capture setup mangles TTLs mangles them every time;
        // a page variant the blockpage matcher misses is missed every time.
        // So false verdict flips are sticky per (vantage, URL, anomaly),
        // not per-test coin flips (which would make dense windows
        // self-contradictory at rates real data does not show).
        for (ti, t) in AnomalyType::ALL.into_iter().enumerate() {
            let tag = mix64(
                self.cfg.seed
                    ^ (u64::from(vp.id) << 40)
                    ^ (u64::from(url_id) << 8)
                    ^ ti as u64,
            );
            let roll = tag as f64 / u64::MAX as f64;
            if detected.contains(t) {
                if roll < self.cfg.noise.fn_(t).clamp(0.0, 1.0) {
                    detected.remove(t);
                }
            } else if roll < self.cfg.noise.fp(t).clamp(0.0, 1.0) {
                detected.insert(t);
            }
        }

        // --- Traceroutes ----------------------------------------------------
        let mut traceroutes = Vec::with_capacity(3);
        for i in 0..3 {
            // With small probability the last traceroute catches a route
            // change (next epoch's path) — the paper's elimination rule 4.
            let shifted = i == 2
                && rng.gen_bool(self.cfg.noise.intra_test_shift_prob.clamp(0.0, 1.0));
            let record = if shifted {
                let changed = sim.asn_path_into(vp_idx, dest_idx, epoch + 1, &mut paths.alt)
                    && paths.alt != asn_path;
                if changed {
                    let alt_path = HopPath::expand(
                        &paths.alt,
                        &self.world.prefixes,
                        vp.ip,
                        url.server_ip,
                        self.cfg.routers_per_as,
                        rng,
                    );
                    let t = Traceroute::run(&alt_path, &self.cfg.noise.traceroute, rng);
                    TracerouteRecord { hops: t.hops, error: t.error }
                } else {
                    let t = Traceroute::run(&hop_path, &self.cfg.noise.traceroute, rng);
                    TracerouteRecord { hops: t.hops, error: t.error }
                }
            } else {
                let t = Traceroute::run(&hop_path, &self.cfg.noise.traceroute, rng);
                TracerouteRecord { hops: t.hops, error: t.error }
            };
            traceroutes.push(record);
        }

        Measurement {
            vp_id: vp.id,
            vp_asn: vp.public_asn,
            url_id,
            dest_asn: url.server_asn,
            day,
            epoch,
            detected,
            traceroutes,
            failed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnlab_bgp::ChurnConfig;
    use churnlab_censor::CensorConfig;
    use churnlab_topology::{generator, WorldConfig, WorldScale};

    struct Setup {
        world: GeneratedWorld,
    }

    fn world() -> Setup {
        Setup { world: generator::generate(&WorldConfig::preset(WorldScale::Smoke, 21)) }
    }

    fn churn_cfg(total_days: u32) -> ChurnConfig {
        ChurnConfig { total_days, ..ChurnConfig::default() }
    }

    #[test]
    fn smoke_run_produces_measurements() {
        let s = world();
        let mut ccfg = CensorConfig::scaled_for(s.world.topology.countries().len());
        ccfg.total_days = 60;
        let scenario = CensorshipScenario::generate_for_world(&s.world, &ccfg);
        let pcfg = PlatformConfig::preset(PlatformScale::Smoke, 5);
        let platform = Platform::new(&s.world, &scenario, pcfg.clone());
        let sim = RoutingSim::new(&s.world.topology, &churn_cfg(pcfg.total_days));
        let (ms, stats) = platform.run_collect(&sim);
        let expected = platform.vantage_points().len() as u64
            * platform.corpus().len() as u64
            * u64::from(pcfg.tests_per_pair);
        assert_eq!(stats.measurements, expected, "schedule must hit the target cadence");
        assert_eq!(ms.len() as u64, stats.measurements);
        // Every measurement carries 3 traceroutes.
        assert!(ms.iter().all(|m| m.traceroutes.len() == 3));
    }

    #[test]
    fn run_is_deterministic() {
        let s = world();
        let mut ccfg = CensorConfig::scaled_for(s.world.topology.countries().len());
        ccfg.total_days = 60;
        let scenario = CensorshipScenario::generate_for_world(&s.world, &ccfg);
        let pcfg = PlatformConfig::preset(PlatformScale::Smoke, 5);
        let platform = Platform::new(&s.world, &scenario, pcfg.clone());
        let sim = RoutingSim::new(&s.world.topology, &churn_cfg(pcfg.total_days));
        let (a, _) = platform.run_collect(&sim);
        let (b, _) = platform.run_collect(&sim);
        assert_eq!(a, b);
    }

    #[test]
    fn noise_free_run_flags_only_censored_flows() {
        let s = world();
        let mut ccfg = CensorConfig::scaled_for(s.world.topology.countries().len());
        ccfg.total_days = 60;
        ccfg.policy_change_prob = 0.0;
        let scenario = CensorshipScenario::generate_for_world(&s.world, &ccfg);
        let mut pcfg = PlatformConfig::preset(PlatformScale::Smoke, 5);
        pcfg.noise = NoiseConfig::none();
        let platform = Platform::new(&s.world, &scenario, pcfg.clone());
        let sim = RoutingSim::new(&s.world.topology, &churn_cfg(pcfg.total_days));
        let (ms, stats) = platform.run_collect(&sim);
        assert!(stats.total_anomalies() > 0, "no anomalies at all — censors unobserved");
        // In a noise-free world every detected anomaly must trace back to a
        // real censor somewhere on the measured path: verify via ground
        // truth that the URL was actually targeted by some censor that day.
        for m in ms.iter().filter(|m| m.anomalous()) {
            let url = platform.corpus().get(m.url_id);
            let censored_somewhere = scenario
                .policies
                .iter()
                .any(|p| p.blocks_on(url.category, m.day));
            assert!(
                censored_somewhere,
                "anomaly {:?} on untargeted URL {} (day {})",
                m.detected, url.domain, m.day
            );
        }
    }

    #[test]
    fn failed_routes_recorded_as_failed() {
        // Freeze the world with churn_scale 0 but kill enough links that
        // some stub is sometimes isolated — simplest check: run with a
        // normal world and assert the failed count is tracked (possibly 0).
        let s = world();
        let ccfg = CensorConfig::scaled_for(s.world.topology.countries().len());
        let scenario = CensorshipScenario::generate_for_world(&s.world, &ccfg);
        let pcfg = PlatformConfig::preset(PlatformScale::Smoke, 6);
        let platform = Platform::new(&s.world, &scenario, pcfg.clone());
        let sim = RoutingSim::new(&s.world.topology, &churn_cfg(pcfg.total_days));
        let (ms, stats) = platform.run_collect(&sim);
        let failed = ms.iter().filter(|m| m.failed).count() as u64;
        assert_eq!(stats.failed, failed);
        for m in ms.iter().filter(|m| m.failed) {
            assert!(m.traceroutes.iter().all(|t| t.error.is_some()));
            assert!(m.detected.is_empty());
        }
    }

    #[test]
    fn interval_math() {
        let mut cfg = PlatformConfig::preset(PlatformScale::Small, 1);
        assert_eq!(cfg.testing_interval_days(), 5); // 365 / 73 testing days
        cfg.tests_per_pair = 2;
        cfg.tests_per_testing_day = 2;
        assert_eq!(cfg.testing_interval_days(), 365);
    }
}
